// What-if capacity planning: a downstream use of the library beyond
// reproducing the paper.
//
// An operator with a fixed monthly workload asks: how does total weighted
// JCT move as I grow the cluster, and when does adding GPUs stop paying?
// The sweep evaluates Hare on the same trace across cluster sizes in
// parallel (one deterministic simulation per size on the thread pool) and
// reports the marginal improvement per added GPU.
#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/hare.hpp"

int main(int argc, char** argv) {
  using namespace hare;

  const std::size_t jobs_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;

  workload::TraceConfig trace;
  trace.job_count = jobs_count;
  trace.base_arrival_rate = 0.5;
  trace.rounds_scale_min = 0.15;
  trace.rounds_scale_max = 0.4;
  const workload::JobSet jobs = workload::TraceGenerator(77).generate(trace);
  std::cout << "workload: " << jobs.job_count() << " jobs / "
            << jobs.task_count() << " tasks\n";

  const std::size_t sizes[] = {16, 24, 32, 48, 64, 96, 128};
  std::vector<double> wjct(std::size(sizes), 0.0);
  std::vector<double> util(std::size(sizes), 0.0);

  common::ThreadPool pool;
  pool.parallel_for_each(std::size(sizes), [&](std::size_t i) {
    const cluster::Cluster cluster =
        cluster::make_simulation_cluster(sizes[i]);
    core::HareSystem system(cluster);
    system.submit_all(jobs);
    core::HareScheduler scheduler;
    const core::RunReport report = system.run(scheduler);
    wjct[i] = report.result.weighted_jct;
    util[i] = report.result.mean_gpu_utilization();
  });

  common::Table table({"GPUs", "weighted JCT (ks)", "mean util",
                       "improvement vs prev", "per added GPU (%)"});
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    auto row = table.row();
    row.cell(sizes[i]).cell(wjct[i] / 1e3, 1).cell(util[i], 2);
    if (i == 0) {
      row.cell(std::string("-")).cell(std::string("-"));
    } else {
      const double gain = 1.0 - wjct[i] / wjct[i - 1];
      row.cell(gain * 100.0, 1)
          .cell(gain * 100.0 / static_cast<double>(sizes[i] - sizes[i - 1]),
                2);
    }
  }
  table.print(std::cout);
  std::cout << "diminishing returns appear once the cluster stops being the "
               "bottleneck — the knee is where per-added-GPU gains collapse.\n";
  return 0;
}
