// Trace workflow: synthesize a workload trace, save it to disk, reload it,
// and replay it deterministically — the loop a cluster operator uses to
// re-examine yesterday's workload under a new scheduler or cluster
// configuration.
//
// Usage: trace_replay [trace_file]
//   If trace_file exists it is replayed; otherwise a fresh trace is
//   generated, saved there, and replayed.
#include <filesystem>
#include <iostream>

#include "core/hare.hpp"

int main(int argc, char** argv) {
  using namespace hare;

  const std::string path = argc > 1 ? argv[1] : "hare_example_trace.txt";

  workload::JobSet jobs;
  if (std::filesystem::exists(path)) {
    std::cout << "replaying existing trace: " << path << '\n';
    jobs = workload::load_trace_file(path);
  } else {
    std::cout << "generating a new trace -> " << path << '\n';
    workload::TraceConfig config;
    config.job_count = 50;
    config.rounds_scale_min = 0.2;
    config.rounds_scale_max = 0.5;
    jobs = workload::TraceGenerator(2026).generate(config);
    workload::save_trace_file(jobs, path);
  }
  std::cout << "trace: " << jobs.job_count() << " jobs, " << jobs.task_count()
            << " tasks, first arrival " << jobs.earliest_arrival() << "s\n";

  // Replay twice on the testbed cluster; identical outputs demonstrate the
  // deterministic pipeline (seeded profiler + deterministic simulator).
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  core::HareScheduler scheduler;

  double previous = -1.0;
  for (int replay = 0; replay < 2; ++replay) {
    core::HareSystem system(cluster);
    system.submit_all(jobs);
    const core::RunReport report = system.run(scheduler);
    std::cout << "replay " << replay
              << ": weighted JCT = " << report.result.weighted_jct
              << " s, makespan = " << report.result.makespan << " s\n";
    if (previous >= 0.0 && previous != report.result.weighted_jct) {
      std::cerr << "ERROR: replays diverged!\n";
      return 1;
    }
    previous = report.result.weighted_jct;
  }
  std::cout << "replays identical — trace-driven runs are reproducible.\n";
  return 0;
}
