// Live executor demo: run a Hare schedule on the *threaded* runtime (real
// executor threads + parameter-server hub, §6 architecture) and check it
// against the discrete-event simulator.
#include <iostream>

#include "core/hare.hpp"

int main() {
  using namespace hare;

  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 2)
                                 .add_machine(cluster::GpuType::T4, 2)
                                 .build();

  workload::JobSet jobs;
  for (int j = 0; j < 5; ++j) {
    workload::JobSpec spec;
    spec.model = j % 2 ? workload::ModelType::ResNet50
                       : workload::ModelType::GraphSAGE;
    spec.rounds = 4;
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(j % 2);
    spec.name = "job-" + std::to_string(j);
    jobs.add_job(spec);
  }

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  core::HareScheduler scheduler;
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});

  // Discrete-event prediction.
  const sim::Simulator simulator(cluster, jobs, times);
  const sim::SimResult predicted = simulator.run(schedule);

  // Real threads: 1 simulated second = 200 microseconds of wall time.
  runtime::RuntimeConfig config;
  config.microseconds_per_sim_second = 200.0;
  runtime::ExecutorRuntime executors(cluster, jobs, times, config);
  std::cout << "running " << jobs.job_count() << " jobs on "
            << cluster.gpu_count() << " executor threads...\n";
  const runtime::RuntimeResult actual = executors.run(schedule);

  std::cout << "\n  job        simulator (s)   threaded runtime (s)\n";
  for (std::size_t j = 0; j < jobs.job_count(); ++j) {
    std::cout << "  " << jobs.job(JobId(static_cast<int>(j))).spec.name
              << "      " << predicted.jobs[j].completion << "            "
              << actual.job_completion[j] << '\n';
  }
  std::cout << "\nmakespan: simulator " << predicted.makespan
            << " s vs runtime " << actual.makespan << " s\n"
            << "cross-job switches: " << actual.switch_count << " ("
            << actual.resident_hits << " speculative-memory hits)\n";
  return 0;
}
