// Quickstart: build a small heterogeneous cluster, submit a few DML jobs,
// schedule them with Hare, and print the realized metrics.
#include <iostream>

#include "core/hare.hpp"

int main() {
  using namespace hare;

  // A 6-GPU cluster mixing three generations on two machines.
  cluster::Cluster cluster =
      cluster::ClusterBuilder{}
          .add_machine(cluster::GpuType::V100, 2, 25.0)
          .add_machine(cluster::GpuType::T4, 2, 25.0)
          .add_machine(cluster::GpuType::K80, 2, 25.0)
          .build();

  core::HareSystem system(std::move(cluster));

  // Three jobs with different models, sync scales, and arrivals.
  workload::JobSpec resnet;
  resnet.model = workload::ModelType::ResNet50;
  resnet.rounds = 8;
  resnet.tasks_per_round = 2;
  system.submit(resnet);

  workload::JobSpec bert;
  bert.model = workload::ModelType::BertBase;
  bert.rounds = 5;
  bert.tasks_per_round = 4;
  bert.arrival = 10.0;
  system.submit(bert);

  workload::JobSpec sage;
  sage.model = workload::ModelType::GraphSAGE;
  sage.rounds = 10;
  sage.tasks_per_round = 1;
  sage.arrival = 5.0;
  system.submit(sage);

  core::HareScheduler hare_scheduler;
  const core::RunReport report = system.run(hare_scheduler);

  std::cout << "scheduler          : " << report.scheduler << '\n';
  std::cout << "weighted JCT (s)   : " << report.result.weighted_jct << '\n';
  std::cout << "makespan (s)       : " << report.result.makespan << '\n';
  std::cout << "mean GPU util      : " << report.result.mean_gpu_utilization()
            << '\n';
  std::cout << "approx ratio       : " << report.approximation.ratio
            << "  (guarantee " << report.approximation.guarantee << ")\n";

  std::cout << "\nPer-job completion times:\n";
  for (std::size_t j = 0; j < report.result.jobs.size(); ++j) {
    const auto& record = report.result.jobs[j];
    std::cout << "  job " << j << ": arrival " << record.arrival
              << "s -> completion " << record.completion << "s (JCT "
              << record.jct() << "s)\n";
  }
  return 0;
}
