// Fast task switching walkthrough (§4).
//
// Shows, step by step, where the milliseconds go when a GPU switches
// between jobs under the three executor designs, and how the speculative
// memory manager turns repeat visits into resident hits.
#include <iomanip>
#include <iostream>

#include "core/hare.hpp"

namespace {

using namespace hare;

void print_breakdown(std::string_view label,
                     const switching::SwitchBreakdown& b) {
  std::cout << "  " << label << ":\n"
            << std::fixed << std::setprecision(2)
            << "    clean    " << b.clean * 1e3 << " ms\n"
            << "    context  " << b.context * 1e3 << " ms\n"
            << "    init     " << b.init * 1e3 << " ms\n"
            << "    alloc    " << b.alloc * 1e3 << " ms\n"
            << "    transfer " << b.transfer * 1e3 << " ms\n"
            << "    TOTAL    " << b.total() * 1e3 << " ms"
            << (b.model_resident ? "  (model resident)" : "") << "\n";
}

}  // namespace

int main() {
  using namespace hare;
  std::cout << "Switching a V100 from a ResNet50 task to a Bert_base task:\n\n";

  for (auto policy : {switching::SwitchPolicy::Default,
                      switching::SwitchPolicy::PipeSwitch,
                      switching::SwitchPolicy::Hare}) {
    switching::SwitchModelConfig config;
    config.policy = policy;
    const switching::SwitchCostModel model(config);
    const auto breakdown =
        model.switch_cost(JobId(1), workload::ModelType::BertBase,
                          cluster::GpuType::V100, JobId(0), nullptr);
    print_breakdown(switching::switch_policy_name(policy), breakdown);
    std::cout << '\n';
  }

  std::cout << "Speculative memory management on a 16 GiB V100:\n\n";
  switching::SpeculativeMemoryManager memory(
      cluster::gpu_spec(cluster::GpuType::V100).memory);

  const auto& bert = workload::model_spec(workload::ModelType::BertBase);
  const auto& resnet = workload::model_spec(workload::ModelType::ResNet50);

  // Job 0 (Bert) trains a task and completes; its weights stay resident.
  memory.on_task_start(JobId(0), workload::task_memory_footprint(bert, 32),
                       workload::model_state_bytes(bert));
  memory.on_task_complete(1.0);
  std::cout << "  after Bert task:   kept " << memory.kept_bytes() / (1 << 20)
            << " MiB resident for job 0\n";

  // Job 1 (ResNet50) runs in between.
  memory.on_task_start(JobId(1), workload::task_memory_footprint(resnet, 64),
                       workload::model_state_bytes(resnet));
  memory.on_task_complete(2.0);
  std::cout << "  after ResNet task: " << memory.kept_count()
            << " model states resident (" << memory.kept_bytes() / (1 << 20)
            << " MiB)\n";

  // Job 0 returns: its model is still on the GPU — no transfer at all.
  const auto revisit = memory.on_task_start(
      JobId(0), workload::task_memory_footprint(bert, 32),
      workload::model_state_bytes(bert));
  std::cout << "  Bert returns:      resident="
            << (revisit.model_resident ? "yes" : "no")
            << ", bytes to load = " << revisit.bytes_to_load << "\n";

  switching::SwitchModelConfig hare_config;
  const switching::SwitchCostModel hare_model(hare_config);
  const auto hit = hare_model.switch_cost(
      JobId(0), workload::ModelType::BertBase, cluster::GpuType::V100,
      JobId(1), &memory);
  std::cout << "\n  A resident-hit switch under Hare costs just "
            << std::fixed << std::setprecision(2) << hit.total() * 1e3
            << " ms (vs "
            << switching::SwitchCostModel{}
                       .switch_cost(JobId(9), workload::ModelType::BertBase,
                                    cluster::GpuType::V100, JobId(1), &memory)
                       .total() *
                   1e3
            << " ms for a cold job).\n";
  return 0;
}
