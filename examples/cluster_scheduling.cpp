// Scheduler comparison on a user-defined heterogeneous cluster.
//
// Builds a custom cluster (command-line sized), synthesizes a Table 2
// workload, runs Hare and the four baselines on identical inputs, and
// prints the comparison the way an operator would evaluate schedulers
// before adopting one.
//
// Usage: cluster_scheduling [num_gpus] [num_jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/hare.hpp"

int main(int argc, char** argv) {
  using namespace hare;

  const std::size_t num_gpus =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const std::size_t num_jobs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  const cluster::Cluster cluster = cluster::make_simulation_cluster(num_gpus);
  std::cout << "cluster: " << cluster.gpu_count() << " GPUs on "
            << cluster.machine_count() << " machines (";
  for (const auto& [type, count] : cluster.type_histogram()) {
    std::cout << ' ' << count << 'x' << cluster::gpu_type_name(type);
  }
  std::cout << " )\n";

  workload::TraceConfig trace;
  trace.job_count = num_jobs;
  trace.rounds_scale_min = 0.15;
  trace.rounds_scale_max = 0.45;
  const workload::JobSet jobs =
      workload::TraceGenerator(seed).generate(trace);
  std::cout << "workload: " << jobs.job_count() << " jobs, "
            << jobs.task_count() << " tasks\n";

  common::Table table({"scheduler", "weighted JCT (ks)", "makespan (ks)",
                       "mean GPU util", "sched time (ms)", "approx ratio"});
  for (const auto& scheduler : core::make_standard_schedulers()) {
    core::HareSystem::Options options;
    options.seed = seed;
    const bool is_hare = scheduler->name() == std::string_view("Hare");
    options.sim.switching.policy = is_hare ? switching::SwitchPolicy::Hare
                                           : switching::SwitchPolicy::Default;
    options.sim.use_memory_manager = is_hare;

    core::HareSystem system(cluster, options);
    system.submit_all(jobs);
    const core::RunReport report = system.run(*scheduler);
    table.row()
        .cell(report.scheduler)
        .cell(report.result.weighted_jct / 1e3, 2)
        .cell(report.result.makespan / 1e3, 2)
        .cell(report.result.mean_gpu_utilization(), 2)
        .cell(report.scheduling_ms, 1)
        .cell(report.approximation.ratio, 2);
  }
  table.print(std::cout);
  return 0;
}
