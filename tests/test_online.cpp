// Tests for the online scheduling extension (the paper's future work):
// incremental Algorithm 1 planning at arrival events.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/online_hare.hpp"
#include "sched/gavel_fifo.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::core {
namespace {

using testing::Instance;
using testing::make_random_instance;

class OnlineValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineValidityTest, ProducesValidExecutableSchedules) {
  const Instance inst = make_random_instance(GetParam());
  OnlineHareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.task_count(), inst.jobs.task_count());
  EXPECT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));

  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  for (const auto& job : result.jobs) EXPECT_GT(job.completion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineValidityTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

TEST(OnlineHare, OnePlanningRoundPerDistinctArrival) {
  const Instance inst = make_random_instance(210, 10, 8);
  OnlineHareScheduler scheduler;
  (void)scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  // Arrivals from the MMPP are almost surely distinct.
  EXPECT_EQ(scheduler.planning_rounds(), inst.jobs.job_count());
}

TEST(OnlineHare, BatchingWindowCoalescesRounds) {
  const Instance inst = make_random_instance(211, 12, 8);
  OnlineHareConfig config;
  config.batching_window_s = 1e9;  // everything in one batch
  OnlineHareScheduler scheduler(config);
  (void)scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(scheduler.planning_rounds(), 1u);
}

TEST(OnlineHare, SingleBatchEquivalentInstanceStillValid) {
  // With one giant batch the online planner sees the whole instance at
  // once; its result should be close to offline Hare's (same relaxation,
  // same Algorithm 1 — the only difference is π is batch-local).
  const Instance inst = make_random_instance(212);
  OnlineHareConfig online_config;
  online_config.batching_window_s = 1e9;
  OnlineHareScheduler online(online_config);
  HareScheduler offline;

  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const double online_jct =
      simulator.run(online.schedule({inst.cluster, inst.jobs, inst.times}))
          .weighted_jct;
  const double offline_jct =
      simulator.run(offline.schedule({inst.cluster, inst.jobs, inst.times}))
          .weighted_jct;
  EXPECT_LT(common::relative_difference(online_jct, offline_jct), 0.25);
}

TEST(OnlineHare, CompetitiveWithOfflineAcrossSeeds) {
  // Online pays a bounded regret vs offline: across seeds the aggregate
  // weighted JCT stays within 2x of offline Hare and beats the offline
  // FIFO baseline.
  double online_total = 0.0;
  double offline_total = 0.0;
  double fifo_total = 0.0;
  for (std::uint64_t seed = 220; seed < 226; ++seed) {
    const Instance inst = make_random_instance(seed, 16, 8);
    const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
    OnlineHareScheduler online;
    HareScheduler offline;
    sched::GavelFifoScheduler fifo;
    online_total +=
        simulator.run(online.schedule({inst.cluster, inst.jobs, inst.times}))
            .weighted_jct;
    offline_total +=
        simulator.run(offline.schedule({inst.cluster, inst.jobs, inst.times}))
            .weighted_jct;
    fifo_total +=
        simulator.run(fifo.schedule({inst.cluster, inst.jobs, inst.times}))
            .weighted_jct;
  }
  EXPECT_GE(online_total, offline_total * 0.99);  // can't beat hindsight much
  EXPECT_LE(online_total, offline_total * 2.0);
  EXPECT_LT(online_total, fifo_total);
}

TEST(OnlineHare, IncrementalStateAccumulatesMonotonically) {
  const Instance inst = make_random_instance(230, 8, 4);
  HareScheduler planner;
  HareScheduler::IncrementalState state;
  sim::Schedule schedule;

  std::vector<Time> previous_phi(inst.cluster.gpu_count(), 0.0);
  for (std::size_t j = 0; j < inst.jobs.job_count(); ++j) {
    std::vector<char> mask(inst.jobs.job_count(), 0);
    mask[j] = 1;
    (void)planner.schedule_jobs({inst.cluster, inst.jobs, inst.times}, mask,
                                state, schedule);
    for (std::size_t g = 0; g < previous_phi.size(); ++g) {
      EXPECT_GE(state.phi[g], previous_phi[g]);
    }
    previous_phi = state.phi;
  }
  EXPECT_EQ(schedule.task_count(), inst.jobs.task_count());
  EXPECT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));
}

TEST(OnlineHare, RejectsUnsupportedModes) {
  const Instance inst = make_random_instance(240, 4, 4);
  HareConfig config;
  config.relaxation.mode = RelaxMode::LpCuts;
  HareScheduler planner(config);
  HareScheduler::IncrementalState state;
  sim::Schedule schedule;
  std::vector<char> mask(inst.jobs.job_count(), 1);
  EXPECT_THROW((void)planner.schedule_jobs(
                   {inst.cluster, inst.jobs, inst.times}, mask, state,
                   schedule),
               common::Error);
}

}  // namespace
}  // namespace hare::core
