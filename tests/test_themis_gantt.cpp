// Tests for the Themis-style fairness baseline and the Gantt renderer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/hare.hpp"
#include "sched/themis_fair.hpp"
#include "sim/fairness.hpp"
#include "sim/gantt.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

// ------------------------------------------------------------ Themis_Fair --

class ThemisValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThemisValidityTest, ValidCompleteSchedules) {
  const Instance inst = make_random_instance(GetParam());
  sched::ThemisFairScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.task_count(), inst.jobs.task_count());
  EXPECT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  for (const auto& job : result.jobs) EXPECT_GT(job.completion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThemisValidityTest,
                         ::testing::Values(701, 702, 703, 704));

TEST(ThemisFair, ServesMostDisadvantagedFirst) {
  // Two jobs waiting at t=0 on one GPU: identical except job 1 has a much
  // smaller exclusive runtime, giving it the larger rho (it is hurt more
  // per second of waiting). Themis serves the small job first.
  workload::JobSet jobs;
  workload::JobSpec big;
  big.rounds = 8;
  jobs.add_job(big);
  workload::JobSpec small;
  small.rounds = 1;
  jobs.add_job(small);
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(2, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);
  times.set(JobId(1), GpuId(0), 1.0, 0.1);

  sched::ThemisFairScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({shell.cluster, jobs, times});
  const sim::Simulator simulator(shell.cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  // rho at t=0: big = 1, small = 1 — ties broken by id... after the first
  // dispatch the waiting job accrues age. With both rho equal at the first
  // instant Themis picks job 0; the essential property is bounded max
  // slowdown, checked below on a contended instance.
  EXPECT_GT(result.jobs[0].completion, 0.0);
  EXPECT_GT(result.jobs[1].completion, 0.0);
}

TEST(ThemisFair, FairerThanSrtfOnMaxSlowdown) {
  // SRTF starves long jobs under a stream of short ones; Themis's
  // rho-first ordering bounds the worst slowdown tighter.
  const Instance inst = make_random_instance(710, 24, 8);
  sched::ThemisFairScheduler themis;
  sched::SrtfScheduler srtf;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const auto themis_result =
      simulator.run(themis.schedule({inst.cluster, inst.jobs, inst.times}));
  const auto srtf_result =
      simulator.run(srtf.schedule({inst.cluster, inst.jobs, inst.times}));
  const double themis_max = sim::max_slowdown(
      sim::job_slowdowns(inst.jobs, inst.times, themis_result));
  const double srtf_max = sim::max_slowdown(
      sim::job_slowdowns(inst.jobs, inst.times, srtf_result));
  EXPECT_LE(themis_max, srtf_max * 1.05);
}

// ------------------------------------------------------------------ gantt --

TEST(Gantt, RendersAllGpuRows) {
  const Instance inst = make_random_instance(720, 5, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);

  const std::string chart =
      sim::render_gantt(inst.cluster, inst.jobs, result);
  std::size_t rows = 0;
  for (char c : chart) rows += c == '|' ? 1 : 0;
  // Two pipes per GPU row.
  EXPECT_EQ(rows, inst.cluster.gpu_count() * 2);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
}

TEST(Gantt, BusyGlyphsPresent) {
  const Instance inst = make_uniform_instance({1.0}, 2, 2, 1, 0.05);
  sim::Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(2), TaskId(1), TaskId(3)}};
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);

  sim::GanttOptions options;
  options.width = 40;
  options.show_legend = false;
  const std::string chart =
      sim::render_gantt(inst.cluster, inst.jobs, result, options);
  EXPECT_NE(chart.find('0'), std::string::npos);
  EXPECT_NE(chart.find('1'), std::string::npos);
}

TEST(Gantt, RejectsTinyWidth) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  sim::Schedule schedule;
  schedule.sequences = {{TaskId(0)}};
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  sim::GanttOptions options;
  options.width = 4;
  EXPECT_THROW(
      (void)sim::render_gantt(inst.cluster, inst.jobs, result, options),
      common::Error);
}

}  // namespace
}  // namespace hare
