// Equivalence guarantees for the fast planning pipeline.
//
// The engine knobs (warm-started LP cuts, indexed placement, pool-sharded
// candidate scans, cached TimeTable aggregates) are wall-clock
// optimizations only. This suite pins that contract:
//  (a) warm-started LpCuts reaches the same objective and cut count as the
//      cold-start reference on the Fig 1 toy and on random instances;
//  (b) the naive, indexed, and sharded planners emit bit-identical
//      sim::Schedules (task→GPU sequences and predicted starts) across
//      seeds, placement rules, and relaxation modes;
//  (c) the cached TimeTable aggregates match naive reductions and survive
//      invalidation via set().
#include <gtest/gtest.h>

#include <vector>

#include "core/hare.hpp"
#include "core/placement_index.hpp"
#include "test_util.hpp"
#include "workload/feasibility.hpp"

namespace hare {
namespace {

testing::Instance fig1_toy() {
  testing::Instance instance;
  instance.cluster = cluster::ClusterBuilder{}
                         .add_machine(cluster::GpuType::V100, 1)
                         .add_machine(cluster::GpuType::T4, 1)
                         .add_machine(cluster::GpuType::K80, 1)
                         .build();
  workload::JobSpec j1;
  j1.rounds = 2;
  j1.tasks_per_round = 2;
  instance.jobs.add_job(j1);
  workload::JobSpec j2;
  j2.rounds = 4;
  j2.tasks_per_round = 1;
  instance.jobs.add_job(j2);
  workload::JobSpec j3;
  j3.rounds = 2;
  j3.tasks_per_round = 2;
  instance.jobs.add_job(j3);

  instance.times = profiler::TimeTable(3, 3);
  const double t[3][3] = {{1.0, 1.1, 1.2}, {1.0, 0.4, 2.0}, {1.1, 1.2, 1.0}};
  for (int j = 0; j < 3; ++j) {
    for (int g = 0; g < 3; ++g) {
      instance.times.set(JobId(j), GpuId(g), t[j][g], 0.05);
    }
  }
  return instance;
}

core::RelaxationResult solve_lp(const testing::Instance& instance,
                                bool warm) {
  core::RelaxationConfig config;
  config.mode = core::RelaxMode::LpCuts;
  config.engine.warm_start_lp = warm;
  config.engine.naive = !warm;  // cold reference = pre-optimization path
  const core::HareRelaxation relaxation(config);
  return relaxation.solve(instance.cluster, instance.jobs, instance.times);
}

void expect_warm_matches_cold(const testing::Instance& instance) {
  const core::RelaxationResult cold = solve_lp(instance, false);
  const core::RelaxationResult warm = solve_lp(instance, true);

  // Every cut round reports the canonicalized optimal vertex, so warm and
  // cold continuations separate the *same* cut trajectory even when the
  // optimum is degenerate: identical cut counts, identical x̂, same
  // objective.
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_EQ(warm.cut_count, cold.cut_count);
  EXPECT_EQ(warm.x_hat, cold.x_hat);
  EXPECT_GE(warm.cut_count, 1u) << "toy/random instances always need cuts";

  // Every re-solve after the first must actually have reused the basis.
  ASSERT_EQ(warm.lp_rounds.size(), warm.lp_solves);
  for (std::size_t r = 0; r < warm.lp_rounds.size(); ++r) {
    EXPECT_EQ(warm.lp_rounds[r].warm, r > 0) << "round " << r;
  }
  for (const auto& round : cold.lp_rounds) EXPECT_FALSE(round.warm);

  // The point of warm starting: the whole cutting-plane run costs fewer
  // pivots than the cold reference, which pays a full two-phase solve per
  // round.
  if (cold.lp_solves > 1) {
    EXPECT_LT(warm.simplex_pivots, cold.simplex_pivots);
  }
}

TEST(WarmStartLp, MatchesColdStartOnFig1Toy) {
  expect_warm_matches_cold(fig1_toy());
}

TEST(WarmStartLp, MatchesColdStartOnRandomInstances) {
  for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
    SCOPED_TRACE(seed);
    expect_warm_matches_cold(testing::make_random_instance(seed, 8, 4));
  }
}

core::HareConfig engine_config(core::RelaxMode mode, core::Placement place,
                               bool naive, std::size_t threads,
                               std::size_t scan_min_gpus,
                               bool warm_start = true) {
  core::HareConfig config;
  config.relaxation.mode = mode;
  config.placement = place;
  config.relaxation.engine.naive = naive;
  config.relaxation.engine.warm_start_lp = warm_start;
  config.relaxation.engine.threads = threads;
  config.relaxation.engine.parallel_scan_min_gpus = scan_min_gpus;
  return config;
}

void expect_same_schedule(const sim::Schedule& a, const sim::Schedule& b) {
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t g = 0; g < a.sequences.size(); ++g) {
    EXPECT_EQ(a.sequences[g], b.sequences[g]) << "gpu " << g;
  }
  // Bit-identical, not approximately equal: every engine evaluates the same
  // floating-point candidate expressions.
  EXPECT_EQ(a.predicted_start, b.predicted_start);
  EXPECT_EQ(a.predicted_objective, b.predicted_objective);
}

TEST(PlannerEquivalence, EnginesAgreeAcrossSeedsAndModes) {
  for (const std::uint64_t seed : {3ull, 17ull, 40ull, 77ull}) {
    for (const auto mode : {core::RelaxMode::Fluid, core::RelaxMode::LpCuts}) {
      for (const auto place : {core::Placement::EarliestFinish,
                               core::Placement::EarliestAvailable}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " mode=" << static_cast<int>(mode)
                     << " place=" << static_cast<int>(place));
        const testing::Instance instance =
            testing::make_random_instance(seed, 10, 6);
        const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                          instance.times};

        // Every engine must reproduce the naive reference bit-for-bit:
        // indexed placement, pooling, sharded scans, warm starting, and the
        // LP backend change wall-clock only (LpCuts rounds report the
        // canonicalized vertex, so even warm starting cannot drift to a
        // different optimum).
        core::HareScheduler naive(
            engine_config(mode, place, /*naive=*/true, 1, 192));
        const sim::Schedule reference = naive.schedule(input);

        core::HareScheduler cold_indexed(engine_config(
            mode, place, /*naive=*/false, 1, 192, /*warm_start=*/false));
        expect_same_schedule(reference, cold_indexed.schedule(input));

        // The production engine (warm start on): serial, pooled, and
        // pool-sharded paths must agree with each other for every seed.
        core::HareScheduler warm_serial(
            engine_config(mode, place, /*naive=*/false, 1, 192));
        const sim::Schedule warm_reference = warm_serial.schedule(input);
        expect_same_schedule(reference, warm_reference);

        // Pooled: parallel separation + parallel preprocessing, indexed
        // scans.
        core::HareScheduler pooled(
            engine_config(mode, place, /*naive=*/false, 4, 192));
        expect_same_schedule(warm_reference, pooled.schedule(input));

        // Pooled with sharded candidate scans forced on (threshold below
        // the 6-GPU cluster).
        core::HareScheduler sharded(
            engine_config(mode, place, /*naive=*/false, 4, 2));
        expect_same_schedule(warm_reference, sharded.schedule(input));
      }
    }
  }
}

TEST(PlacementIndexBuckets, EngageOnExactTablesAndProbeIdentically) {
  // Direct index-level check: with a type-uniform table the bucketed index
  // engages, and every query answers exactly like the flat-scan index
  // through a long interleaved probe/set_phi workload.
  const testing::Instance instance = testing::make_random_instance(13, 12, 16);
  const auto fits =
      workload::fitting_matrix(instance.cluster, instance.jobs);

  core::PlacementIndex flat(instance.times, instance.cluster.gpu_count(),
                            fits);
  core::PlacementIndex bucketed(instance.times, instance.cluster.gpu_count(),
                                fits, {}, nullptr, &instance.cluster,
                                /*bucket_min_gpus=*/1);
  ASSERT_TRUE(bucketed.bucketed());
  EXPECT_FALSE(flat.bucketed());

  common::Rng rng(99);
  for (int probe = 0; probe < 500; ++probe) {
    const JobId job(static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(instance.jobs.job_count()))));
    const Time release = rng.uniform() * 10.0;
    const auto ff = flat.earliest_finish(job, release);
    const auto bf = bucketed.earliest_finish(job, release);
    ASSERT_EQ(ff.gpu, bf.gpu) << "probe " << probe;
    EXPECT_EQ(ff.start, bf.start);
    EXPECT_EQ(ff.finish, bf.finish);

    const auto fa = flat.earliest_available(job, release);
    const auto ba = bucketed.earliest_available(job, release);
    ASSERT_EQ(fa.gpu, ba.gpu) << "probe " << probe;
    EXPECT_EQ(fa.start, ba.start);

    // Busy the winner, as the list scheduler does.
    if (ff.valid()) {
      flat.set_phi(ff.gpu, ff.finish);
      bucketed.set_phi(ff.gpu, ff.finish);
    }
    if (probe % 97 == 96) {
      flat.reset_phi({});
      bucketed.reset_phi({});
    }
  }

  // Measurements are memoized per (shape, GPU type, uplink), so even the
  // noisy no-db profiler now produces within-type-uniform rows and the
  // bucketed index may engage on them.
  workload::PerfModel perf;
  profiler::Profiler noisy_profiler(perf, profiler::ProfilerConfig{}, 13);
  profiler::TimeTable noisy =
      noisy_profiler.profile(instance.jobs, instance.cluster);
  core::PlacementIndex from_noisy(noisy, instance.cluster.gpu_count(), fits,
                                  {}, nullptr, &instance.cluster,
                                  /*bucket_min_gpus=*/1);
  EXPECT_TRUE(from_noisy.bucketed());

  // A genuinely per-GPU perturbation (one instance slower than its type
  // siblings) must still be detected at build time and fall the index back
  // to the flat scan — bit-identity stays unconditional.
  JobId bumped_job{};
  GpuId bumped_gpu{};
  bool found = false;
  for (std::size_t j = 0; j < fits.size() && !found; ++j) {
    for (std::size_t g = 0; g < fits[j].size() && !found; ++g) {
      if (fits[j][g]) {
        bumped_job = JobId(static_cast<int>(j));
        bumped_gpu = GpuId(static_cast<int>(g));
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  noisy.set(bumped_job, bumped_gpu, noisy.tc(bumped_job, bumped_gpu) * 1.5,
            noisy.ts(bumped_job, bumped_gpu));
  core::PlacementIndex from_perturbed(noisy, instance.cluster.gpu_count(),
                                      fits, {}, nullptr, &instance.cluster,
                                      /*bucket_min_gpus=*/1);
  EXPECT_FALSE(from_perturbed.bucketed());
}

TEST(PlannerEquivalence, BucketedIndexMatchesFlatScan) {
  // The per-(domain, type) bucketed placement index is exactness-checked at
  // build and must answer every earliest-finish / earliest-available query
  // with the same GPU and the same times as the flat SIMD scan.
  for (const std::uint64_t seed : {5ull, 23ull, 61ull}) {
    for (const auto place : {core::Placement::EarliestFinish,
                             core::Placement::EarliestAvailable}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " place=" << static_cast<int>(place));
      const testing::Instance instance =
          testing::make_random_instance(seed, 12, 8);
      const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                        instance.times};

      core::HareConfig flat = engine_config(core::RelaxMode::Fluid, place,
                                            /*naive=*/false, 1, 192);
      flat.relaxation.engine.bucketed_index_min_gpus = 0;  // disabled
      core::HareScheduler flat_planner(flat);
      const sim::Schedule reference = flat_planner.schedule(input);

      core::HareConfig bucketed = flat;
      bucketed.relaxation.engine.bucketed_index_min_gpus = 1;  // forced on
      core::HareScheduler bucketed_planner(bucketed);
      expect_same_schedule(reference, bucketed_planner.schedule(input));
    }
  }
}

TEST(PlannerEquivalence, BucketedIndexFallsBackOnNoisyTables) {
  // Per-GPU profiling noise breaks within-type row uniformity; the index
  // must detect it at build time and fall back to the flat scan without
  // changing a single placement.
  const testing::Instance exact = testing::make_random_instance(31, 10, 8);
  workload::PerfModel perf;
  profiler::ProfilerConfig noisy;
  noisy.measurement_noise_cv = 0.05;
  profiler::Profiler profiler(perf, noisy, 31);
  const profiler::TimeTable noisy_times =
      profiler.profile(exact.jobs, exact.cluster);
  const sched::SchedulerInput input{exact.cluster, exact.jobs, noisy_times};

  core::HareConfig flat =
      engine_config(core::RelaxMode::Fluid, core::Placement::EarliestFinish,
                    /*naive=*/false, 1, 192);
  flat.relaxation.engine.bucketed_index_min_gpus = 0;
  core::HareScheduler flat_planner(flat);
  const sim::Schedule reference = flat_planner.schedule(input);

  core::HareConfig bucketed = flat;
  bucketed.relaxation.engine.bucketed_index_min_gpus = 1;
  core::HareScheduler bucketed_planner(bucketed);
  expect_same_schedule(reference, bucketed_planner.schedule(input));
}

TEST(PlannerEquivalence, IncrementalPlanningAgrees) {
  const testing::Instance instance = testing::make_random_instance(11, 10, 6);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  auto run_incremental = [&](bool naive) {
    core::HareScheduler scheduler(engine_config(
        core::RelaxMode::Fluid, core::Placement::EarliestFinish, naive, 1,
        192));
    core::HareScheduler::IncrementalState state;
    sim::Schedule schedule;
    // Two batches: first half of the jobs, then the rest.
    const std::size_t jobs = instance.jobs.job_count();
    std::vector<char> first(jobs, 0);
    std::vector<char> second(jobs, 0);
    for (std::size_t j = 0; j < jobs; ++j) {
      (j < jobs / 2 ? first : second)[j] = 1;
    }
    scheduler.schedule_jobs(input, first, state, schedule);
    scheduler.schedule_jobs(input, second, state, schedule);
    return schedule;
  };

  expect_same_schedule(run_incremental(true), run_incremental(false));
}

TEST(TimeTableCache, AggregatesMatchNaiveReductions) {
  const testing::Instance instance = testing::make_random_instance(5, 9, 7);
  const profiler::TimeTable& times = instance.times;

  for (std::size_t j = 0; j < times.job_count(); ++j) {
    const JobId job(static_cast<int>(j));
    Time min_tc = kTimeInfinity, max_tc = 0.0;
    Time min_ts = kTimeInfinity, max_ts = 0.0;
    Time min_total = kTimeInfinity;
    std::size_t fastest = 0;
    for (std::size_t g = 0; g < times.gpu_count(); ++g) {
      const GpuId gpu(static_cast<int>(g));
      if (times.tc(job, gpu) < min_tc) {
        min_tc = times.tc(job, gpu);
        fastest = g;
      }
      max_tc = std::max(max_tc, times.tc(job, gpu));
      min_ts = std::min(min_ts, times.ts(job, gpu));
      max_ts = std::max(max_ts, times.ts(job, gpu));
      min_total = std::min(min_total, times.total(job, gpu));
    }
    EXPECT_EQ(times.min_tc(job), min_tc);
    EXPECT_EQ(times.max_tc(job), max_tc);
    EXPECT_EQ(times.min_ts(job), min_ts);
    EXPECT_EQ(times.max_ts(job), max_ts);
    EXPECT_EQ(times.min_total(job), min_total);
    EXPECT_EQ(static_cast<std::size_t>(times.fastest_gpu(job).value()),
              fastest);
  }

  double alpha = 1.0;
  for (std::size_t j = 0; j < times.job_count(); ++j) {
    const JobId job(static_cast<int>(j));
    if (times.min_tc(job) > 0.0) {
      alpha = std::max(alpha, times.max_tc(job) / times.min_tc(job));
    }
    if (times.min_ts(job) > 0.0) {
      alpha = std::max(alpha, times.max_ts(job) / times.min_ts(job));
    }
  }
  EXPECT_DOUBLE_EQ(times.alpha(), alpha);
}

TEST(TimeTableCache, SetInvalidatesAggregates) {
  profiler::TimeTable times(2, 3);
  times.set(JobId(0), GpuId(0), 1.0, 0.2);
  times.set(JobId(0), GpuId(1), 2.0, 0.1);
  times.set(JobId(0), GpuId(2), 3.0, 0.3);
  times.set(JobId(1), GpuId(0), 5.0, 0.5);
  times.set(JobId(1), GpuId(1), 4.0, 0.5);
  times.set(JobId(1), GpuId(2), 6.0, 0.5);

  EXPECT_EQ(times.min_tc(JobId(0)), 1.0);
  EXPECT_EQ(times.fastest_gpu(JobId(0)), GpuId(0));
  EXPECT_EQ(times.fastest_gpu(JobId(1)), GpuId(1));
  EXPECT_DOUBLE_EQ(times.alpha(), 3.0);

  // Mutating one (job, GPU) refreshes that job's aggregates and α.
  times.set(JobId(0), GpuId(2), 0.5, 0.05);
  EXPECT_EQ(times.min_tc(JobId(0)), 0.5);
  EXPECT_EQ(times.max_tc(JobId(0)), 2.0);
  EXPECT_EQ(times.min_ts(JobId(0)), 0.05);
  EXPECT_EQ(times.fastest_gpu(JobId(0)), GpuId(2));
  EXPECT_EQ(times.min_total(JobId(0)), 0.55);
  EXPECT_DOUBLE_EQ(times.alpha(), 4.0);

  // Untouched job unaffected.
  EXPECT_EQ(times.min_tc(JobId(1)), 4.0);
  EXPECT_EQ(times.max_ts(JobId(1)), 0.5);
}

}  // namespace
}  // namespace hare
