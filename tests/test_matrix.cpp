// Cross-configuration property matrix: every (scheduler × cluster shape ×
// executor policy) combination must produce valid, complete, bound-
// respecting executions. These sweeps catch interaction bugs the focused
// unit tests miss.
#include <gtest/gtest.h>

#include <tuple>

#include "core/hare.hpp"
#include "sched/backfill.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;

enum class Which {
  Hare,
  HareStrict,
  HareLiteral,
  HareOnline,
  GavelFifo,
  Srtf,
  SchedHomo,
  SchedAllox,
  Backfill,
};

std::unique_ptr<sched::Scheduler> make(Which which) {
  switch (which) {
    case Which::Hare: return std::make_unique<core::HareScheduler>();
    case Which::HareStrict: {
      core::HareConfig config;
      config.sync = core::SyncScheme::Strict;
      return std::make_unique<core::HareScheduler>(config);
    }
    case Which::HareLiteral: {
      core::HareConfig config;
      config.placement = core::Placement::EarliestAvailable;
      return std::make_unique<core::HareScheduler>(config);
    }
    case Which::HareOnline:
      return std::make_unique<core::OnlineHareScheduler>();
    case Which::GavelFifo: return std::make_unique<sched::GavelFifoScheduler>();
    case Which::Srtf: return std::make_unique<sched::SrtfScheduler>();
    case Which::SchedHomo: return std::make_unique<sched::SchedHomoScheduler>();
    case Which::SchedAllox:
      return std::make_unique<sched::SchedAlloxScheduler>();
    case Which::Backfill: return std::make_unique<sched::BackfillScheduler>();
  }
  return nullptr;
}

const char* which_name(Which which) {
  switch (which) {
    case Which::Hare: return "Hare";
    case Which::HareStrict: return "HareStrict";
    case Which::HareLiteral: return "HareLiteral";
    case Which::HareOnline: return "HareOnline";
    case Which::GavelFifo: return "GavelFifo";
    case Which::Srtf: return "Srtf";
    case Which::SchedHomo: return "SchedHomo";
    case Which::SchedAllox: return "SchedAllox";
    case Which::Backfill: return "Backfill";
  }
  return "?";
}

Instance make_instance(cluster::HeterogeneityLevel level, std::size_t gpus) {
  Instance instance;
  instance.cluster = cluster::make_heterogeneity_cluster(level, gpus);
  workload::TraceConfig config;
  config.job_count = 10;
  config.base_arrival_rate = 0.3;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.15;
  workload::TraceGenerator generator(2026);
  instance.jobs = generator.generate(config);
  profiler::Profiler profiler(workload::PerfModel{},
                              profiler::ProfilerConfig{}, 2026);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

using MatrixParam =
    std::tuple<Which, cluster::HeterogeneityLevel, switching::SwitchPolicy>;

class MatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(MatrixTest, ValidBoundedExecution) {
  const auto [which, level, policy] = GetParam();
  const Instance inst = make_instance(level, 8);

  auto scheduler = make(which);
  const sim::Schedule schedule =
      scheduler->schedule({inst.cluster, inst.jobs, inst.times});
  ASSERT_EQ(schedule.task_count(), inst.jobs.task_count())
      << which_name(which);
  ASSERT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));

  sim::SimConfig config;
  config.switching.policy = policy;
  config.use_memory_manager = policy == switching::SwitchPolicy::Hare;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const sim::SimResult result = simulator.run(schedule);

  // Completion sanity.
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.completion, 0.0);
    EXPECT_GE(job.jct(), 0.0);
  }
  // Objective respects the certified lower bound (a fast-switching
  // executor adds only overhead, never negative time).
  const double lb =
      core::combined_lower_bound(inst.cluster, inst.jobs, inst.times);
  EXPECT_GE(result.weighted_completion + 1e-6, lb) << which_name(which);
  // Utilization bounded.
  for (const auto& gpu : result.gpus) {
    EXPECT_LE(gpu.utilization(result.makespan), 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatrixTest,
    ::testing::Combine(
        ::testing::Values(Which::Hare, Which::HareStrict, Which::HareLiteral,
                          Which::HareOnline, Which::GavelFifo, Which::Srtf,
                          Which::SchedHomo, Which::SchedAllox,
                          Which::Backfill),
        ::testing::Values(cluster::HeterogeneityLevel::Low,
                          cluster::HeterogeneityLevel::Mid,
                          cluster::HeterogeneityLevel::High),
        ::testing::Values(switching::SwitchPolicy::Hare,
                          switching::SwitchPolicy::PipeSwitch)),
    [](const ::testing::TestParamInfo<MatrixParam>& param_info) {
      const Which which = std::get<0>(param_info.param);
      const cluster::HeterogeneityLevel level = std::get<1>(param_info.param);
      const switching::SwitchPolicy policy = std::get<2>(param_info.param);
      std::string name = which_name(which);
      switch (level) {
        case cluster::HeterogeneityLevel::Low: name += "_Low"; break;
        case cluster::HeterogeneityLevel::Mid: name += "_Mid"; break;
        case cluster::HeterogeneityLevel::High: name += "_High"; break;
      }
      name += policy == switching::SwitchPolicy::Hare ? "_HareSw" : "_PipeSw";
      return name;
    });

}  // namespace
}  // namespace hare
