// Tests for the sync-scale advisor and schedule plan serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "core/advisor.hpp"
#include "core/hare.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;
using testing::make_random_instance;

// ----------------------------------------------------------------- advisor --

TEST(Advisor, ComputeBoundModelScalesOnHomogeneousGpus) {
  // ResNet50 on 8 V100s: near-linear parallel efficiency, so the advisor
  // recommends a wide scale.
  const auto cluster = cluster::make_heterogeneity_cluster(
      cluster::HeterogeneityLevel::Low, 8);
  workload::JobSpec spec;
  spec.model = workload::ModelType::ResNet50;
  spec.rounds = 16;  // interpreted at scale 1; scale k runs 16/k rounds
  const workload::PerfModel perf;

  const auto advice = core::advise_sync_scale(cluster, spec, perf);
  ASSERT_EQ(advice.size(), 4u);
  EXPECT_EQ(advice.front().scale, 1u);
  EXPECT_DOUBLE_EQ(advice.front().efficiency, 1.0);
  // Wider is faster...
  for (std::size_t i = 1; i < advice.size(); ++i) {
    EXPECT_LT(advice[i].completion, advice[i - 1].completion);
  }
  // ...and efficiency stays high on identical GPUs (sync is the only tax).
  EXPECT_GT(advice.back().efficiency, 0.8);
  EXPECT_EQ(core::recommend_sync_scale(cluster, spec, perf, 0.5), 8u);
}

TEST(Advisor, HeterogeneousClusterDiscouragesWideGangs) {
  // One V100 + seven K80s: every task beyond the first drags the round to
  // K80 speed, so wide scales have poor efficiency for a model with a 7x
  // V100/K80 gap.
  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 1)
                                 .add_machine(cluster::GpuType::K80, 7)
                                 .build();
  workload::JobSpec spec;
  spec.model = workload::ModelType::ResNet50;
  spec.rounds = 16;  // interpreted at scale 1; scale k runs 16/k rounds
  const workload::PerfModel perf;

  const auto advice = core::advise_sync_scale(cluster, spec, perf);
  // Efficiency at scale 8 is far below homogeneous levels.
  EXPECT_LT(advice.back().efficiency, 0.6);
  EXPECT_LT(core::recommend_sync_scale(cluster, spec, perf, 0.7), 8u);
}

TEST(Advisor, SkipsScalesThatDoNotFit) {
  const auto cluster = cluster::make_heterogeneity_cluster(
      cluster::HeterogeneityLevel::Low, 2);
  workload::JobSpec spec;
  spec.model = workload::ModelType::GraphSAGE;
  spec.rounds = 2;
  const auto advice =
      core::advise_sync_scale(cluster, spec, workload::PerfModel{});
  for (const auto& entry : advice) EXPECT_LE(entry.scale, 2u);
}

TEST(Advisor, RejectsEmptyCandidates) {
  const auto cluster = cluster::make_testbed_cluster();
  workload::JobSpec spec;
  EXPECT_THROW((void)core::advise_sync_scale(cluster, spec,
                                             workload::PerfModel{}, {}),
               common::Error);
}

// ------------------------------------------------------- plan serialization --

TEST(PlanSerialization, RoundTripsExactly) {
  const Instance inst = make_random_instance(800, 8, 6);
  core::HareScheduler scheduler;
  const sim::Schedule original =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  std::stringstream stream;
  sim::save_schedule(original, stream);
  const sim::Schedule loaded = sim::load_schedule(stream, inst.jobs);

  ASSERT_EQ(loaded.sequences.size(), original.sequences.size());
  for (std::size_t g = 0; g < original.sequences.size(); ++g) {
    EXPECT_EQ(loaded.sequences[g], original.sequences[g]);
  }
  ASSERT_EQ(loaded.predicted_start.size(), original.predicted_start.size());
  for (std::size_t i = 0; i < original.predicted_start.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.predicted_start[i], original.predicted_start[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.predicted_objective,
                   original.predicted_objective);

  // And the loaded plan executes to identical results.
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  EXPECT_DOUBLE_EQ(simulator.run(loaded).weighted_jct,
                   simulator.run(original).weighted_jct);
}

TEST(PlanSerialization, FileRoundTrip) {
  const Instance inst = make_random_instance(801, 4, 4);
  core::HareScheduler scheduler;
  const sim::Schedule original =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const std::string path = ::testing::TempDir() + "/hare_plan.txt";
  sim::save_schedule_file(original, path);
  const sim::Schedule loaded = sim::load_schedule_file(path, inst.jobs);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.task_count(), original.task_count());
}

TEST(PlanSerialization, RejectsCorruptPlans) {
  const Instance inst = make_random_instance(802, 3, 4);
  std::stringstream bad_header("not-a-plan 1 1 0.0\n0\n\n");
  EXPECT_THROW((void)sim::load_schedule(bad_header, inst.jobs),
               common::Error);

  // A structurally valid file for the wrong job set fails validation.
  core::HareScheduler scheduler;
  const sim::Schedule plan =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  std::stringstream stream;
  sim::save_schedule(plan, stream);
  const Instance other = make_random_instance(803, 5, 4);
  EXPECT_THROW((void)sim::load_schedule(stream, other.jobs), common::Error);
}

}  // namespace
}  // namespace hare
