// Unit tests for the common substrate: RNG, statistics, tables, thread
// pool, and error handling.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/resource.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace hare {
namespace {

using common::Distribution;
using common::Rng;
using common::Summary;
using common::Table;
using common::ThreadPool;

// ---------------------------------------------------------------- types --

TEST(Types, IdDefaultIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
}

TEST(Types, IdEqualityAndOrdering) {
  EXPECT_EQ(JobId(3), JobId(3));
  EXPECT_NE(JobId(3), JobId(4));
  EXPECT_LT(JobId(3), JobId(4));
}

TEST(Types, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<JobId, TaskId>);
  static_assert(!std::is_same_v<GpuId, MachineId>);
}

TEST(Types, ByteLiterals) {
  EXPECT_EQ(1_MiB, 1024ull * 1024ull);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(Types, IdHashUsableInContainers) {
  std::set<JobId> ids{JobId(1), JobId(2), JobId(1)};
  EXPECT_EQ(ids.size(), 2u);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{5}, std::int64_t{9});
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(std::uint64_t{0}), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, LogNormalPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.log_normal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitIndependence) {
  Rng parent(31);
  Rng child = parent.split();
  // Child and a fresh draw of the parent should not track each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// ---------------------------------------------------------------- stats --

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesConcatenation) {
  Rng rng(41);
  Summary a;
  Summary b;
  Summary all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(5.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Distribution, QuantilesExact) {
  Distribution d;
  for (double v : {4.0, 1.0, 3.0, 2.0}) d.add(v);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(d.median(), 2.5);
}

TEST(Distribution, CdfSteps) {
  Distribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0}) d.add(v);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
}

TEST(Distribution, CdfCurveMonotone) {
  Distribution d;
  Rng rng(43);
  for (int i = 0; i < 500; ++i) d.add(rng.uniform(0.0, 100.0));
  const auto curve = d.cdf_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Distribution, EmptyIsSafe) {
  const Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.quantile(0.5), 0.0);
  EXPECT_EQ(d.cdf(1.0), 0.0);
  EXPECT_TRUE(d.cdf_curve(10).empty());
}

TEST(Stats, RelativeDifference) {
  EXPECT_DOUBLE_EQ(common::relative_difference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(common::relative_difference(100.0, 95.0), 0.05);
  EXPECT_DOUBLE_EQ(common::relative_difference(95.0, 100.0), 0.05);
}

// ---------------------------------------------------------------- table --

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("b").cell(22.125, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.125"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("has,comma").cell("has\"quote");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.row().cell("only");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only"), std::string::npos);
}

// ----------------------------------------------------------- threadpool --

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_each(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_each(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_each(
                   10,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for_each(1000, [&](std::size_t i) {
    sum += static_cast<int>(i % 7);
  });
  int expected = 0;
  for (int i = 0; i < 1000; ++i) expected += i % 7;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, NestedParallelForEachRunsInline) {
  // Re-entrant parallel_for_each from a worker of the same pool must not
  // deadlock (one worker waiting on shards only it could run) and must
  // still execute every nested index exactly once.
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::current(), nullptr);
  EXPECT_FALSE(pool.on_worker_thread());

  std::vector<std::atomic<int>> inner(64);
  std::atomic<int> outer{0};
  pool.parallel_for_each(8, [&](std::size_t) {
    EXPECT_EQ(ThreadPool::current(), &pool);
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for_each(64, [&](std::size_t i) { inner[i]++; });
    outer++;
  });
  EXPECT_EQ(outer.load(), 8);
  for (const auto& h : inner) EXPECT_EQ(h.load(), 8);
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPool, NestedCallPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_each(
          4,
          [&](std::size_t) {
            pool.parallel_for_each(4, [](std::size_t i) {
              if (i == 2) throw std::runtime_error("nested boom");
            });
          }),
      std::runtime_error);

  // The pool stays usable after the failed nested fan-out.
  std::atomic<int> hits{0};
  pool.parallel_for_each(16, [&](std::size_t) { hits++; });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, InlineNestedPathAttemptsAllIndices) {
  // The pooled path attempts every index even after one throws and
  // rethrows the first exception at the join point. The inline nested
  // path (re-entrant call on a worker) must behave identically: a throw
  // at index 1 may not abort indices 2..7.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> inner(8);
  std::atomic<int> caught{0};
  pool.parallel_for_each(2, [&](std::size_t) {
    try {
      pool.parallel_for_each(8, [&](std::size_t i) {
        inner[i]++;
        if (i == 1) throw std::runtime_error("early boom");
      });
      FAIL() << "nested fan-out should have rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early boom");
      caught++;
    }
  });
  EXPECT_EQ(caught.load(), 2);
  // Every nested index ran in both outer invocations despite the throw.
  for (const auto& h : inner) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, InlineNestedPathRethrowsFirstException) {
  // Multiple throwing indices on the inline path: the first (lowest
  // index, since the inline loop is sequential) wins, matching
  // rethrow_pending's first-throw-wins contract for pooled tasks.
  ThreadPool pool(1);
  pool.parallel_for_each(1, [&](std::size_t) {
    try {
      pool.parallel_for_each(6, [](std::size_t i) {
        if (i >= 2) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "nested fan-out should have rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 2");
    }
  });
}

TEST(ThreadPool, DistinctPoolsDoNotLookNested) {
  // A worker of pool A submitting to pool B is a genuine fan-out, not a
  // re-entrant call: B must use its own workers.
  ThreadPool outer_pool(2);
  ThreadPool inner_pool(2);
  std::atomic<int> hits{0};
  outer_pool.parallel_for_each(4, [&](std::size_t) {
    EXPECT_EQ(ThreadPool::current(), &outer_pool);
    EXPECT_FALSE(inner_pool.on_worker_thread());
    inner_pool.parallel_for_each(8, [&](std::size_t) {
      EXPECT_EQ(ThreadPool::current(), &inner_pool);
      hits++;
    });
  });
  EXPECT_EQ(hits.load(), 32);
}

// ------------------------------------------------------------- resource --

TEST(Resource, PeakRssReportsPlatformContract) {
#if defined(__unix__) || defined(__APPLE__)
  // The platform exposes getrusage: the helper must report a positive,
  // plausible peak (a running test binary is at least a few hundred KiB
  // and far below 1 TiB).
  const std::size_t rss = common::peak_rss_bytes();
  EXPECT_GT(rss, 100u * 1024);
  EXPECT_LT(rss, std::size_t{1} << 40);
#if defined(__linux__)
  // Linux reports ru_maxrss in KiB; the byte normalization makes the
  // result an exact KiB multiple. A unit mix-up (reporting raw KiB as
  // bytes, or scaling twice) breaks either this or the bounds above.
  EXPECT_EQ(rss % 1024, 0u);
#endif
#else
  // Documented fallback: platforms without the call report 0 so callers
  // can print unconditionally and gate only on nonzero.
  EXPECT_EQ(common::peak_rss_bytes(), 0u);
#endif
}

TEST(Resource, PeakRssIsMonotonic) {
  const std::size_t before = common::peak_rss_bytes();
  // Touch a fresh allocation so the peak has a chance to move; whether or
  // not it does, the reported peak must never decrease within a process.
  std::vector<char> ballast(4 * 1024 * 1024);
  for (std::size_t i = 0; i < ballast.size(); i += 4096) {
    ballast[i] = static_cast<char>(i);
  }
  const std::size_t after = common::peak_rss_bytes();
  EXPECT_GE(after, before);
}

// ---------------------------------------------------------------- error --

TEST(Error, CheckThrowsWithContext) {
  try {
    HARE_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  HARE_CHECK(1 + 1 == 2);
  HARE_CHECK_MSG(true, "never rendered");
}

}  // namespace
}  // namespace hare
