// Tests for the extension modules: EASY backfill, fairness metrics, and
// CSV result export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hare.hpp"
#include "sched/backfill.hpp"
#include "sim/export.hpp"
#include "sim/fairness.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

// ---------------------------------------------------------------- backfill --

class BackfillValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackfillValidityTest, ValidCompleteSchedules) {
  const Instance inst = make_random_instance(GetParam());
  sched::BackfillScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.task_count(), inst.jobs.task_count());
  EXPECT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  for (const auto& job : result.jobs) EXPECT_GT(job.completion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackfillValidityTest,
                         ::testing::Values(601, 602, 603, 604));

TEST(Backfill, FillsHeadOfLineHoles) {
  // Job 0 (wide, needs both GPUs) arrives first but GPU 1 is busy with
  // job 1 for a long time; job 2 (short, narrow) arrives last. FIFO
  // blocks job 2 behind the wide head; backfill runs it in the hole.
  workload::JobSet jobs;
  workload::JobSpec busy;
  busy.rounds = 10;  // long occupant
  busy.tasks_per_round = 1;
  jobs.add_job(busy);  // job 0
  workload::JobSpec wide;
  wide.rounds = 2;
  wide.tasks_per_round = 2;
  wide.arrival = 0.5;
  jobs.add_job(wide);  // job 1: blocked head
  workload::JobSpec narrow;
  narrow.rounds = 1;
  narrow.tasks_per_round = 1;
  narrow.arrival = 1.0;
  jobs.add_job(narrow);  // job 2: backfill candidate

  const Instance shell = make_uniform_instance({1.0, 1.0}, 1, 1, 1);
  profiler::TimeTable times(3, 2);
  for (int j = 0; j < 3; ++j) {
    times.set(JobId(j), GpuId(0), 1.0, 0.05);
    times.set(JobId(j), GpuId(1), 1.0, 0.05);
  }

  sched::GavelFifoScheduler fifo;
  sched::BackfillScheduler backfill;
  const sim::Simulator simulator(shell.cluster, jobs, times);
  const auto fifo_result =
      simulator.run(fifo.schedule({shell.cluster, jobs, times}));
  const auto backfill_result =
      simulator.run(backfill.schedule({shell.cluster, jobs, times}));

  // The narrow job finishes much earlier under backfill...
  EXPECT_LT(backfill_result.jobs[2].completion,
            fifo_result.jobs[2].completion);
  // ...and the blocked head is not pushed back by it.
  EXPECT_LE(backfill_result.jobs[1].completion,
            fifo_result.jobs[1].completion + 1e-6);
}

TEST(Backfill, NoWorseThanFifoOnAverage) {
  double fifo_total = 0.0;
  double backfill_total = 0.0;
  for (std::uint64_t seed = 610; seed < 618; ++seed) {
    const Instance inst = make_random_instance(seed);
    sched::GavelFifoScheduler fifo;
    sched::BackfillScheduler backfill;
    const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
    fifo_total +=
        simulator.run(fifo.schedule({inst.cluster, inst.jobs, inst.times}))
            .weighted_jct;
    backfill_total +=
        simulator
            .run(backfill.schedule({inst.cluster, inst.jobs, inst.times}))
            .weighted_jct;
  }
  EXPECT_LE(backfill_total, fifo_total * 1.01);
}

TEST(Backfill, HareStillWins) {
  const Instance inst = make_random_instance(620, 16, 8);
  core::HareScheduler hare;
  sched::BackfillScheduler backfill;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const double hare_jct =
      simulator.run(hare.schedule({inst.cluster, inst.jobs, inst.times}))
          .weighted_jct;
  const double backfill_jct =
      simulator.run(backfill.schedule({inst.cluster, inst.jobs, inst.times}))
          .weighted_jct;
  EXPECT_LT(hare_jct, backfill_jct);
}

// ---------------------------------------------------------------- fairness --

TEST(Fairness, JainsIndexBounds) {
  EXPECT_DOUBLE_EQ(sim::jains_index({}), 1.0);
  EXPECT_DOUBLE_EQ(sim::jains_index({2.0, 2.0, 2.0}), 1.0);
  // One job hogging: index -> 1/n.
  EXPECT_NEAR(sim::jains_index({1000.0, 0.001, 0.001}), 1.0 / 3.0, 0.01);
  const double mixed = sim::jains_index({1.0, 2.0, 3.0});
  EXPECT_GT(mixed, 1.0 / 3.0);
  EXPECT_LT(mixed, 1.0);
}

TEST(Fairness, SlowdownsAtLeastNearOne) {
  const Instance inst = make_random_instance(630);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  const auto slowdowns = sim::job_slowdowns(inst.jobs, inst.times, result);
  ASSERT_EQ(slowdowns.size(), inst.jobs.job_count());
  for (double s : slowdowns) EXPECT_GT(s, 0.5);
  EXPECT_GE(sim::max_slowdown(slowdowns), 1.0 - 1e-6);
}

TEST(Fairness, HareFairerThanFifoUnderContention) {
  // FIFO's head-of-line blocking produces highly uneven slowdowns; Hare's
  // weighted-completion objective spreads them far more evenly.
  const Instance inst = make_random_instance(631, 20, 8);
  core::HareScheduler hare;
  sched::GavelFifoScheduler fifo;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);

  const auto hare_result =
      simulator.run(hare.schedule({inst.cluster, inst.jobs, inst.times}));
  const auto fifo_result =
      simulator.run(fifo.schedule({inst.cluster, inst.jobs, inst.times}));
  const double hare_max = sim::max_slowdown(
      sim::job_slowdowns(inst.jobs, inst.times, hare_result));
  const double fifo_max = sim::max_slowdown(
      sim::job_slowdowns(inst.jobs, inst.times, fifo_result));
  EXPECT_LT(hare_max, fifo_max);
}

// ------------------------------------------------------------------ export --

TEST(Export, TaskCsvHasHeaderAndAllRows) {
  const Instance inst = make_random_instance(640, 6, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);

  std::ostringstream os;
  sim::export_task_csv(inst.cluster, inst.jobs, result, os);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, inst.jobs.task_count() + 1);
  EXPECT_EQ(text.rfind("task,job,", 0), 0u);
}

TEST(Export, JobCsvRowsMatchJobs) {
  const Instance inst = make_random_instance(641, 5, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);

  std::ostringstream os;
  sim::export_job_csv(inst.jobs, result, os);
  std::size_t lines = 0;
  for (char c : os.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, inst.jobs.job_count() + 1);
}

TEST(Export, FilesRoundTrip) {
  const Instance inst = make_random_instance(642, 4, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);

  const std::string prefix = ::testing::TempDir() + "/hare_export";
  sim::export_result_files(inst.cluster, inst.jobs, result, prefix);
  std::ifstream tasks(prefix + "_tasks.csv");
  std::ifstream jobs(prefix + "_jobs.csv");
  EXPECT_TRUE(tasks.good());
  EXPECT_TRUE(jobs.good());
  std::remove((prefix + "_tasks.csv").c_str());
  std::remove((prefix + "_jobs.csv").c_str());
}

}  // namespace
}  // namespace hare
