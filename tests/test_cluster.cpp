// Unit tests for the cluster substrate: GPU catalogue, builder, presets.
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "cluster/gpu.hpp"
#include "common/error.hpp"

namespace hare::cluster {
namespace {

TEST(GpuCatalogue, SpecsAreConsistent) {
  for (GpuType type : all_gpu_types()) {
    const GpuSpec& spec = gpu_spec(type);
    EXPECT_EQ(spec.type, type);
    EXPECT_GT(spec.fp32_tflops, 0.0);
    EXPECT_GT(spec.mem_bandwidth_gbps, 0.0);
    EXPECT_GT(spec.memory, 0u);
    EXPECT_GT(spec.pcie_gbps, 0.0);
    EXPECT_GT(spec.context_create_s, 0.0);
    EXPECT_GT(spec.context_destroy_s, 0.0);
    EXPECT_FALSE(spec.name.empty());
  }
}

TEST(GpuCatalogue, RelativeSpeedsMatchGenerations) {
  // V100 is the fastest of the paper's testbed; K80 and M60 the slowest.
  EXPECT_GT(gpu_spec(GpuType::V100).fp32_tflops,
            gpu_spec(GpuType::T4).fp32_tflops);
  EXPECT_GT(gpu_spec(GpuType::T4).fp32_tflops,
            gpu_spec(GpuType::K80).fp32_tflops);
  EXPECT_GT(gpu_spec(GpuType::A100).fp32_tflops,
            gpu_spec(GpuType::V100).fp32_tflops);
}

TEST(GpuCatalogue, PcieMatchesPaperTestbed) {
  // §7.1: all GPUs use PCIe-3 x16 at 15.75 GB/s.
  for (GpuType type : all_gpu_types()) {
    EXPECT_DOUBLE_EQ(gpu_spec(type).pcie_gbps, 15.75);
  }
}

TEST(GpuCatalogue, Names) {
  EXPECT_EQ(gpu_type_name(GpuType::V100), "V100");
  EXPECT_EQ(gpu_arch_name(GpuArch::Volta), "Volta");
  EXPECT_EQ(gpu_arch_name(gpu_spec(GpuType::T4).arch), "Turing");
}

TEST(ClusterBuilder, BuildsMachinesAndGpus) {
  const Cluster c = ClusterBuilder{}
                        .add_machine(GpuType::V100, 4, 25.0, "v100-box")
                        .add_machine(GpuType::K80, 2, 10.0)
                        .build();
  EXPECT_EQ(c.gpu_count(), 6u);
  EXPECT_EQ(c.machine_count(), 2u);
  EXPECT_EQ(c.machine(MachineId(0)).name, "v100-box");
  EXPECT_EQ(c.machine(MachineId(0)).gpus.size(), 4u);
  EXPECT_DOUBLE_EQ(c.machine(MachineId(1)).network_gbps, 10.0);
  EXPECT_EQ(c.gpu(GpuId(5)).type, GpuType::K80);
  EXPECT_EQ(c.gpu(GpuId(5)).machine, MachineId(1));
}

TEST(ClusterBuilder, GpuIdsAreDense) {
  const Cluster c = ClusterBuilder{}
                        .add_machine(GpuType::T4, 3)
                        .add_machine(GpuType::M60, 2)
                        .build();
  for (std::size_t g = 0; g < c.gpu_count(); ++g) {
    EXPECT_EQ(c.gpu(GpuId(static_cast<int>(g))).id.value(),
              static_cast<int>(g));
  }
}

TEST(ClusterBuilder, RejectsEmptyMachine) {
  ClusterBuilder b;
  EXPECT_THROW(b.add_machine(GpuType::V100, 0), common::Error);
}

TEST(Cluster, InvalidIdsThrow) {
  const Cluster c = ClusterBuilder{}.add_machine(GpuType::V100, 1).build();
  EXPECT_THROW((void)c.gpu(GpuId(5)), common::Error);
  EXPECT_THROW((void)c.gpu(GpuId{}), common::Error);
  EXPECT_THROW((void)c.machine(MachineId(9)), common::Error);
}

TEST(Cluster, TypeHistogram) {
  const Cluster c = make_testbed_cluster();
  std::map<GpuType, std::size_t> hist;
  for (const auto& [type, count] : c.type_histogram()) hist[type] = count;
  EXPECT_EQ(hist[GpuType::V100], 8u);
  EXPECT_EQ(hist[GpuType::T4], 4u);
  EXPECT_EQ(hist[GpuType::K80], 1u);
  EXPECT_EQ(hist[GpuType::M60], 2u);
}

TEST(Cluster, TestbedMatchesPaper) {
  // §7.1: 15 GPUs on 4 EC2 instances, 25 Gbps Ethernet.
  const Cluster c = make_testbed_cluster();
  EXPECT_EQ(c.gpu_count(), 15u);
  EXPECT_EQ(c.machine_count(), 4u);
  for (const auto& m : c.machines()) {
    EXPECT_DOUBLE_EQ(m.network_gbps, 25.0);
  }
  EXPECT_FALSE(c.homogeneous());
}

TEST(Cluster, SetNetworkGbps) {
  Cluster c = make_testbed_cluster();
  c.set_network_gbps(10.0);
  for (const auto& m : c.machines()) EXPECT_DOUBLE_EQ(m.network_gbps, 10.0);
  EXPECT_THROW(c.set_network_gbps(0.0), common::Error);
}

TEST(Cluster, PeakSpeedRatio) {
  const Cluster homo = ClusterBuilder{}.add_machine(GpuType::V100, 4).build();
  EXPECT_DOUBLE_EQ(homo.peak_speed_ratio(), 1.0);
  EXPECT_TRUE(homo.homogeneous());

  const Cluster hetero = make_testbed_cluster();
  EXPECT_GT(hetero.peak_speed_ratio(), 3.0);
}

TEST(HeterogeneityPresets, LowIsHomogeneousV100) {
  const Cluster c =
      make_heterogeneity_cluster(HeterogeneityLevel::Low, 32);
  EXPECT_EQ(c.gpu_count(), 32u);
  EXPECT_TRUE(c.homogeneous());
  EXPECT_EQ(c.gpus().front().type, GpuType::V100);
}

TEST(HeterogeneityPresets, MidHasTwoTypes) {
  const Cluster c =
      make_heterogeneity_cluster(HeterogeneityLevel::Mid, 32);
  EXPECT_EQ(c.gpu_count(), 32u);
  EXPECT_EQ(c.type_histogram().size(), 2u);
}

TEST(HeterogeneityPresets, HighHasFourTypes) {
  const Cluster c =
      make_heterogeneity_cluster(HeterogeneityLevel::High, 32);
  EXPECT_EQ(c.gpu_count(), 32u);
  EXPECT_EQ(c.type_histogram().size(), 4u);
}

TEST(HeterogeneityPresets, Names) {
  EXPECT_EQ(heterogeneity_level_name(HeterogeneityLevel::Low), "low (V100)");
  EXPECT_EQ(heterogeneity_level_name(HeterogeneityLevel::High),
            "high (V100+T4+K80+M60)");
}

class ApportionmentTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ApportionmentTest, SimulationClusterExactTotal) {
  const std::size_t total = GetParam();
  const Cluster c = make_simulation_cluster(total);
  EXPECT_EQ(c.gpu_count(), total);
  // Testbed proportions 8:4:1:2 — V100 should be the plurality for any
  // total of at least 4.
  std::map<GpuType, std::size_t> hist;
  for (const auto& [type, count] : c.type_histogram()) hist[type] = count;
  if (total >= 15) {
    EXPECT_GT(hist[GpuType::V100], hist[GpuType::T4]);
    EXPECT_GT(hist[GpuType::T4], hist[GpuType::K80]);
  }
}

TEST_P(ApportionmentTest, MachinesRespectCapacity) {
  const std::size_t total = GetParam();
  const Cluster c = make_simulation_cluster(total, 25.0, 8);
  for (const auto& m : c.machines()) {
    EXPECT_GE(m.gpus.size(), 1u);
    EXPECT_LE(m.gpus.size(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApportionmentTest,
                         ::testing::Values(1, 4, 15, 16, 40, 80, 120, 160,
                                           200));

}  // namespace
}  // namespace hare::cluster
