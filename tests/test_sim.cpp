// Tests for the discrete-event simulator: event queue, network model,
// schedule validation, and execution invariants (§5.1 constraints 4-8).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/hare_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/schedule.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::sim {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

// ------------------------------------------------------------ event queue --

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.push(3.0, 3);
  queue.push(1.0, 1);
  queue.push(2.0, 2);
  EXPECT_EQ(queue.pop().payload, 1);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(5.0, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(queue.pop().payload, i);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> queue;
  EXPECT_EQ(queue.size(), 0u);
  queue.push(1.0, 0);
  queue.push(2.0, 1);
  EXPECT_EQ(queue.size(), 2u);
  (void)queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

// ---------------------------------------------------------------- network --

TEST(Network, SingleTransferExactDuration) {
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 1, 8.0)
          .build();  // 8 Gbit/s = 1 GB/s
  NetworkModel net(cluster);
  net.start_transfer(MachineId(0), 2e9, 0.0);  // 2 GB
  EXPECT_NEAR(net.next_completion(), 2.0, 1e-9);
  const auto done = net.complete_at(net.next_completion());
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(net.active_count(), 0u);
}

TEST(Network, ConcurrentTransfersShareBandwidth) {
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 1, 8.0)
          .build();
  NetworkModel net(cluster);
  net.start_transfer(MachineId(0), 1e9, 0.0);
  net.start_transfer(MachineId(0), 1e9, 0.0);
  // Two equal 1 GB transfers at 1 GB/s shared: both complete at t = 2.
  EXPECT_NEAR(net.next_completion(), 2.0, 1e-9);
  EXPECT_EQ(net.complete_at(2.0).size(), 2u);
}

TEST(Network, LateArrivalStretchesEarlier) {
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 1, 8.0)
          .build();
  NetworkModel net(cluster);
  net.start_transfer(MachineId(0), 1e9, 0.0);
  // At t=0.5, 0.5 GB remains; a second transfer halves the rate, so the
  // first finishes at 0.5 + 0.5/0.5 = 1.5.
  net.start_transfer(MachineId(0), 1e9, 0.5);
  EXPECT_NEAR(net.next_completion(), 1.5, 1e-9);
}

TEST(Network, MachinesAreIndependent) {
  const auto cluster = cluster::ClusterBuilder{}
                           .add_machine(cluster::GpuType::V100, 1, 8.0)
                           .add_machine(cluster::GpuType::K80, 1, 8.0)
                           .build();
  NetworkModel net(cluster);
  net.start_transfer(MachineId(0), 1e9, 0.0);
  net.start_transfer(MachineId(1), 1e9, 0.0);
  EXPECT_NEAR(net.next_completion(), 1.0, 1e-9);
  EXPECT_EQ(net.complete_at(1.0).size(), 2u);
}

TEST(Network, RejectsBadTransfers) {
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 1).build();
  NetworkModel net(cluster);
  EXPECT_THROW(net.start_transfer(MachineId(5), 1.0, 0.0), common::Error);
  EXPECT_THROW(net.start_transfer(MachineId(0), 0.0, 0.0), common::Error);
}

// ------------------------------------------------------ schedule validation --

TEST(ScheduleValidation, AcceptsCompleteSchedule) {
  const Instance inst = make_uniform_instance({1.0, 1.0}, 2, 2, 2);
  Schedule schedule;
  schedule.sequences.resize(2);
  for (const auto& task : inst.jobs.tasks()) {
    schedule.sequences[task.slot % 2].push_back(task.id);
  }
  EXPECT_NO_THROW(validate_schedule(schedule, inst.jobs));
}

TEST(ScheduleValidation, RejectsMissingTask) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 2);
  Schedule schedule;
  schedule.sequences.resize(1);
  schedule.sequences[0].push_back(TaskId(0));  // task 1 missing
  EXPECT_THROW(validate_schedule(schedule, inst.jobs), common::Error);
}

TEST(ScheduleValidation, RejectsDuplicateTask) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  Schedule schedule;
  schedule.sequences.resize(1);
  schedule.sequences[0] = {TaskId(0), TaskId(0)};
  EXPECT_THROW(validate_schedule(schedule, inst.jobs), common::Error);
}

TEST(ScheduleValidation, RejectsUnknownTask) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  Schedule schedule;
  schedule.sequences.resize(1);
  schedule.sequences[0] = {TaskId(99)};
  EXPECT_THROW(validate_schedule(schedule, inst.jobs), common::Error);
}

TEST(ScheduleValidation, RejectsDependencyCycle) {
  // Two jobs, two rounds of one task each; interleave them across two GPUs
  // so each GPU's chain contradicts the other's round order.
  const Instance inst = make_uniform_instance({1.0, 1.0}, 2, 2, 1);
  // job0: tasks 0 (r0), 1 (r1); job1: tasks 2 (r0), 3 (r1).
  Schedule schedule;
  schedule.sequences.resize(2);
  schedule.sequences[0] = {TaskId(1), TaskId(2)};  // job0 r1 before job1 r0
  schedule.sequences[1] = {TaskId(3), TaskId(0)};  // job1 r1 before job0 r0
  EXPECT_THROW(validate_schedule(schedule, inst.jobs), common::Error);
}

// -------------------------------------------------------------- simulator --

/// Execution invariants every simulation must satisfy (constraints 4-8).
void check_invariants(const Instance& inst, const Schedule& schedule,
                      const SimResult& result) {
  constexpr double kEps = 1e-6;
  // (5)+(8): tasks on one GPU never overlap and run in sequence order.
  for (std::size_t g = 0; g < schedule.sequences.size(); ++g) {
    Time previous_end = 0.0;
    for (TaskId id : schedule.sequences[g]) {
      const auto& record = result.tasks[static_cast<std::size_t>(id.value())];
      EXPECT_EQ(record.gpu, GpuId(static_cast<int>(g)));
      EXPECT_GE(record.start + kEps, previous_end);
      EXPECT_GE(record.compute_start + kEps, record.start);
      EXPECT_GT(record.compute_end, record.compute_start);
      EXPECT_GE(record.sync_end + kEps, record.compute_end);
      previous_end = record.compute_end;
    }
  }
  for (const auto& job : inst.jobs.jobs()) {
    // (4): no task before arrival.
    for (TaskId id : job.task_ids()) {
      EXPECT_GE(result.tasks[static_cast<std::size_t>(id.value())].start +
                    kEps,
                job.spec.arrival);
    }
    // (7): round r+1 starts after every round-r task's sync.
    for (std::uint32_t r = 1; r < job.rounds(); ++r) {
      Time barrier = 0.0;
      for (TaskId id :
           inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r - 1))) {
        barrier = std::max(
            barrier, result.tasks[static_cast<std::size_t>(id.value())]
                         .sync_end);
      }
      for (TaskId id :
           inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
        EXPECT_GE(result.tasks[static_cast<std::size_t>(id.value())].start +
                      kEps,
                  barrier);
      }
    }
    // (6): completion is the last round's barrier.
    Time last_barrier = 0.0;
    for (TaskId id : inst.jobs.round_tasks(
             job.id, static_cast<RoundIndex>(job.rounds() - 1))) {
      last_barrier = std::max(
          last_barrier,
          result.tasks[static_cast<std::size_t>(id.value())].sync_end);
    }
    EXPECT_NEAR(
        result.jobs[static_cast<std::size_t>(job.id.value())].completion,
        last_barrier, 1e-9);
  }
}

class SimulatorInvariantTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimulatorInvariantTest, HareScheduleSatisfiesAllConstraints) {
  const Instance inst = make_random_instance(GetParam());
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const SimResult result = simulator.run(schedule);
  check_invariants(inst, schedule, result);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.weighted_completion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Simulator, DeterministicReplay) {
  const Instance inst = make_random_instance(42);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  SimConfig config;
  config.runtime_noise_cv = 0.05;
  config.noise_seed = 7;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult a = simulator.run(schedule);
  const SimResult b = simulator.run(schedule);
  EXPECT_DOUBLE_EQ(a.weighted_jct, b.weighted_jct);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].start, b.tasks[i].start);
  }
}

TEST(Simulator, NoiseModeStaysCloseToExact) {
  // The paper validates its simulator against the testbed at <5%; a 5%
  // per-task jitter must not move aggregate metrics by more than ~10%.
  const Instance inst = make_random_instance(11, 16, 8);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  const Simulator exact(inst.cluster, inst.jobs, inst.times);
  SimConfig noisy_config;
  noisy_config.runtime_noise_cv = 0.05;
  const Simulator noisy(inst.cluster, inst.jobs, inst.times, noisy_config);

  const double a = exact.run(schedule).weighted_jct;
  const double b = noisy.run(schedule).weighted_jct;
  EXPECT_LT(common::relative_difference(a, b), 0.10);
}

TEST(Simulator, SwitchStatsCountCrossJobSwitches) {
  // Two single-round jobs back-to-back on one GPU: exactly one cross-job
  // switch is recorded.
  const Instance inst = make_uniform_instance({1.0}, 2, 1, 1);
  Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(1)}};
  SimConfig config;
  config.switching.policy = switching::SwitchPolicy::PipeSwitch;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult result = simulator.run(schedule);
  std::size_t switches = 0;
  for (const auto& stat : result.switch_stats) switches += stat.switch_count;
  EXPECT_EQ(switches, 1u);
  EXPECT_GT(result.total_switch_time(), 0.0);
}

TEST(Simulator, HareMemoryManagerYieldsResidentHits) {
  // One job, several rounds on a single GPU: rounds 2.. find the model
  // resident (same-job continuation counts as resident too).
  const Instance inst = make_uniform_instance({1.0}, 1, 4, 1);
  Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(1), TaskId(2), TaskId(3)}};
  SimConfig config;
  config.switching.policy = switching::SwitchPolicy::Hare;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult result = simulator.run(schedule);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(result.tasks[i].model_resident);
  }
}

TEST(Simulator, SyncOverlapsNextTask) {
  // Job A's sync must not delay job B's compute on the same GPU: with
  // tc=1, ts=10, two independent 1-round jobs run back-to-back at t=0,~1.
  const Instance inst = make_uniform_instance({1.0}, 2, 1, 1, 10.0);
  Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(1)}};
  SimConfig config;
  config.switching.same_job_overhead_s = 0.0;
  config.switching.switch_base_s = 0.0;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult result = simulator.run(schedule);
  EXPECT_LT(result.tasks[1].compute_start, 1.1);
  // But the first job's completion still waits for its sync.
  EXPECT_NEAR(result.jobs[0].completion, 11.0, 0.1);
}

TEST(Simulator, ArrivalsDelayStart) {
  Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  // Rebuild with a late arrival.
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.rounds = 1;
  spec.tasks_per_round = 1;
  spec.arrival = 5.0;
  jobs.add_job(spec);
  profiler::TimeTable times(1, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);

  Schedule schedule;
  schedule.sequences = {{TaskId(0)}};
  const Simulator simulator(inst.cluster, jobs, times);
  const SimResult result = simulator.run(schedule);
  EXPECT_GE(result.tasks[0].start, 5.0);
  EXPECT_NEAR(result.jobs[0].jct(), result.jobs[0].completion - 5.0, 1e-9);
}

TEST(Simulator, ContentionModeStretchesConcurrentSyncs) {
  // Two tasks of one round on the same machine sync simultaneously; with
  // contention their round barrier lands later than the exclusive model.
  cluster::Cluster cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 2, 1.0)
          .build();  // 1 Gbit/s: sync is slow and contended
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.model = workload::ModelType::BertBase;
  spec.rounds = 1;
  spec.tasks_per_round = 2;
  jobs.add_job(spec);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  Schedule schedule;
  schedule.sequences = {{TaskId(0)}, {TaskId(1)}};

  const Simulator exclusive(cluster, jobs, times);
  SimConfig contended_config;
  contended_config.model_network_contention = true;
  const Simulator contended(cluster, jobs, times, contended_config);

  const Time exclusive_done = exclusive.run(schedule).jobs[0].completion;
  const Time contended_done = contended.run(schedule).jobs[0].completion;
  EXPECT_GT(contended_done, exclusive_done * 1.2);
}

TEST(Simulator, TimelineRecordsBusyIntervals) {
  const Instance inst = make_uniform_instance({1.0}, 2, 2, 1);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  SimConfig config;
  config.record_timeline = true;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult result = simulator.run(schedule);
  ASSERT_EQ(result.busy_intervals.size(), 1u);
  EXPECT_EQ(result.busy_intervals[0].size(), 4u);
  const double frac = result.busy_fraction(GpuId(0), 0.0, result.makespan);
  EXPECT_GT(frac, 0.5);
  EXPECT_LE(frac, 1.0 + 1e-9);
}

TEST(Simulator, UtilizationBounded) {
  const Instance inst = make_random_instance(21);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const SimResult result = simulator.run(schedule);
  for (const auto& gpu : result.gpus) {
    EXPECT_GE(gpu.utilization(result.makespan), 0.0);
    EXPECT_LE(gpu.utilization(result.makespan), 1.0 + 1e-9);
  }
  EXPECT_GT(result.mean_gpu_utilization(), 0.0);
}

TEST(Simulator, JctDistributionMatchesJobs) {
  const Instance inst = make_random_instance(31);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const SimResult result = simulator.run(schedule);
  const auto dist = result.jct_distribution();
  EXPECT_EQ(dist.count(), inst.jobs.job_count());
  EXPECT_DOUBLE_EQ(dist.cdf(result.makespan + 1.0), 1.0);
}

TEST(Simulator, MismatchedInputsRejected) {
  const Instance inst = make_uniform_instance({1.0, 1.0}, 1, 1, 1);
  profiler::TimeTable wrong(1, 5);
  EXPECT_THROW(Simulator(inst.cluster, inst.jobs, wrong), common::Error);

  const Simulator simulator(inst.cluster, inst.jobs, inst.times);
  Schedule bad;
  bad.sequences.resize(1);  // cluster has 2 GPUs
  EXPECT_THROW(simulator.run(bad), common::Error);
}

}  // namespace
}  // namespace hare::sim

namespace hare::sim {
namespace {

TEST(Simulator, HarePlanTimesExactUnderZeroCostExecutor) {
  // With every switching cost zeroed and exact times, the simulator must
  // realize Algorithm 1's predicted start times to the nanosecond — the
  // planner and the executor implement the same §5.1 semantics.
  const testing::Instance inst = testing::make_random_instance(99, 10, 6);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  SimConfig config;
  config.switching.free_switching = true;
  config.use_memory_manager = false;
  const Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const SimResult result = simulator.run(schedule);

  for (const auto& task : inst.jobs.tasks()) {
    const std::size_t i = static_cast<std::size_t>(task.id.value());
    EXPECT_NEAR(result.tasks[i].start, schedule.predicted_start[i], 1e-6)
        << "task " << task.id;
  }
  // The planner's objective equals the realized one.
  double realized = 0.0;
  for (const auto& job : result.jobs) {
    realized += job.weight * job.completion;
  }
  EXPECT_NEAR(realized, schedule.predicted_objective, 1e-6);
}

TEST(Simulator, SwitchCostsOnlyDelayNeverReorder) {
  // Turning realistic switching costs on shifts starts later but keeps
  // each GPU's task order (the sequences are the contract).
  const testing::Instance inst = testing::make_random_instance(98, 8, 4);
  core::HareScheduler scheduler;
  const Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  SimConfig zero;
  zero.switching.free_switching = true;
  zero.use_memory_manager = false;
  SimConfig real;
  real.switching.policy = switching::SwitchPolicy::Hare;

  const SimResult fast =
      Simulator(inst.cluster, inst.jobs, inst.times, zero).run(schedule);
  const SimResult costed =
      Simulator(inst.cluster, inst.jobs, inst.times, real).run(schedule);
  for (std::size_t i = 0; i < fast.tasks.size(); ++i) {
    EXPECT_GE(costed.tasks[i].start + 1e-9, fast.tasks[i].start);
    EXPECT_EQ(costed.tasks[i].gpu, fast.tasks[i].gpu);
  }
  EXPECT_GE(costed.weighted_jct, fast.weighted_jct - 1e-9);
}

}  // namespace
}  // namespace hare::sim
