// Cross-backend equivalence for the LP core (dense tableau vs sparse
// revised simplex).
//
// The two backends share the LinearProgram front end but nothing else:
// Dense runs the original two-phase tableau with shifted bounds, Sparse
// runs the LU-factorized revised simplex with native bounded variables.
// This suite pins the contract between them:
//  (a) on randomized LPs (feasible, infeasible, unbounded, degenerate)
//      both backends report the same status and, when optimal, objectives
//      within 1e-6;
//  (b) bounded variables (shifted lower bounds, finite uppers, fixed
//      variables) round-trip identically through both backends;
//  (c) the Beale cycling LP terminates at the optimum on both backends —
//      the stall-triggered Bland's-rule regression test for the removed
//      big-M path;
//  (d) warm-started cutting-plane loops (IncrementalLpSolver) agree with
//      each other and with cold re-solves round by round;
//  (e) the planner corpus produces bit-identical sim::Schedules whichever
//      backend solves the LpCuts relaxation (the canonicalized vertex is
//      backend-independent).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/hare.hpp"
#include "opt/basis_lu.hpp"
#include "opt/revised_simplex.hpp"
#include "opt/simplex.hpp"
#include "opt/sparse_matrix.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using opt::LinearProgram;
using opt::LpBackend;
using opt::LpIterationStats;
using opt::LpSolution;
using opt::LpStatus;
using opt::Relation;

// --------------------------------------------------- status + objective ----

void expect_backends_agree(const LinearProgram& lp,
                           double value_tolerance = 0.0) {
  LpIterationStats dense_stats;
  LpIterationStats sparse_stats;
  const LpSolution dense = lp.solve(100000, &dense_stats, LpBackend::Dense);
  const LpSolution sparse = lp.solve(100000, &sparse_stats, LpBackend::Sparse);

  ASSERT_EQ(dense.status, sparse.status)
      << "dense=" << static_cast<int>(dense.status)
      << " sparse=" << static_cast<int>(sparse.status);
  if (dense.status != LpStatus::Optimal) return;

  EXPECT_NEAR(dense.objective, sparse.objective,
              1e-6 * std::max(1.0, std::abs(dense.objective)));
  if (value_tolerance > 0.0) {
    ASSERT_EQ(dense.values.size(), sparse.values.size());
    for (std::size_t j = 0; j < dense.values.size(); ++j) {
      EXPECT_NEAR(dense.values[j], sparse.values[j], value_tolerance)
          << "variable " << j;
    }
  }
}

// Random LP with a planted feasible point: rhs values are derived from a
// random x* >= 0 so the program is never infeasible by construction (it may
// still be unbounded, which both backends must then report).
LinearProgram make_planted_lp(std::uint64_t seed, std::size_t vars,
                              std::size_t rows) {
  common::Rng rng(seed);
  LinearProgram lp;
  std::vector<double> x_star(vars);
  for (std::size_t j = 0; j < vars; ++j) {
    x_star[j] = rng.uniform(0.0, 5.0);
    lp.add_variable(rng.uniform(-2.0, 2.0));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    double activity = 0.0;
    for (std::size_t j = 0; j < vars; ++j) {
      if (!rng.bernoulli(0.6)) continue;
      const double coeff = rng.uniform(-3.0, 3.0);
      terms.push_back({j, coeff});
      activity += coeff * x_star[j];
    }
    if (terms.empty()) terms.push_back({rng.uniform_int(vars), 1.0});
    const std::uint64_t kind = rng.uniform_int(std::uint64_t{3});
    if (kind == 0) {
      lp.add_constraint(terms, Relation::LessEqual,
                        activity + rng.uniform(0.0, 4.0));
    } else if (kind == 1) {
      lp.add_constraint(terms, Relation::GreaterEqual,
                        activity - rng.uniform(0.0, 4.0));
    } else {
      lp.add_constraint(terms, Relation::Equal, activity);
    }
  }
  return lp;
}

class LpBackendRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpBackendRandomTest, PlantedFeasibleAgree) {
  // Boxed objectives keep most of these bounded; either way both backends
  // must agree on status and objective.
  for (const auto& [vars, rows] : {std::pair<std::size_t, std::size_t>{4, 3},
                                  {6, 8},
                                  {10, 14},
                                  {16, 20}}) {
    SCOPED_TRACE(::testing::Message() << "vars=" << vars << " rows=" << rows);
    LinearProgram lp = make_planted_lp(GetParam() * 1000 + vars, vars, rows);
    // Cap every variable so the planted programs are always bounded; this
    // also exercises finite upper bounds on both backends.
    for (std::size_t j = 0; j < lp.variable_count(); ++j) {
      lp.set_bounds(j, 0.0, 50.0);
    }
    expect_backends_agree(lp);
  }
}

TEST_P(LpBackendRandomTest, UncappedStatusesAgree) {
  // Without the caps some instances are unbounded: statuses must match.
  LinearProgram lp = make_planted_lp(GetParam() * 7919, 8, 6);
  LpIterationStats stats;
  const LpSolution dense = lp.solve(100000, &stats, LpBackend::Dense);
  const LpSolution sparse = lp.solve(100000, &stats, LpBackend::Sparse);
  ASSERT_EQ(dense.status, sparse.status);
  if (dense.status == LpStatus::Optimal) {
    EXPECT_NEAR(dense.objective, sparse.objective,
                1e-6 * std::max(1.0, std::abs(dense.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpBackendRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(LpBackend, InfeasibleAgree) {
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Dense).status,
            LpStatus::Infeasible);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Sparse).status,
            LpStatus::Infeasible);
}

TEST(LpBackend, InfeasibleBoundsVsRowAgree) {
  // The row demands x >= 3 but the bound caps x at 2.
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  lp.set_bounds(x, 0.0, 2.0);
  lp.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 3.0);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Dense).status,
            LpStatus::Infeasible);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Sparse).status,
            LpStatus::Infeasible);
}

TEST(LpBackend, UnboundedAgree) {
  // min -x - y with only a coupling floor: both can grow without limit.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-1.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::LessEqual, 1.0);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Dense).status,
            LpStatus::Unbounded);
  EXPECT_EQ(lp.solve(100000, nullptr, LpBackend::Sparse).status,
            LpStatus::Unbounded);
}

// ------------------------------------------------------ bounded variables --

TEST(LpBackend, ShiftedLowerBounds) {
  // min x + y with x >= 3, y >= 1.5: optimum sits on the lower bounds.
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.set_bounds(x, 3.0, LinearProgram::kInfinity);
  lp.set_bounds(y, 1.5, LinearProgram::kInfinity);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 10.0);
  expect_backends_agree(lp, 1e-7);
  const LpSolution sol = lp.solve(100000, nullptr, LpBackend::Sparse);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[x], 3.0, 1e-9);
  EXPECT_NEAR(sol.values[y], 1.5, 1e-9);
  EXPECT_NEAR(sol.objective, 4.5, 1e-9);
}

TEST(LpBackend, FiniteUpperBoundsBindAtOptimum) {
  // min -x - 2y, x <= 2, y <= 3, x + y <= 4: optimum x=1, y=3, obj=-7.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-2.0);
  lp.set_bounds(x, 0.0, 2.0);
  lp.set_bounds(y, 0.0, 3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 4.0);
  expect_backends_agree(lp, 1e-7);
  const LpSolution sol = lp.solve(100000, nullptr, LpBackend::Sparse);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -7.0, 1e-9);
  EXPECT_NEAR(sol.values[x], 1.0, 1e-9);
  EXPECT_NEAR(sol.values[y], 3.0, 1e-9);
}

TEST(LpBackend, FixedVariables) {
  // x fixed at 2 participates in the rows but never pivots.
  LinearProgram lp;
  const auto x = lp.add_variable(5.0);
  const auto y = lp.add_variable(1.0);
  lp.set_bounds(x, 2.0, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 6.0);
  expect_backends_agree(lp, 1e-7);
  const LpSolution sol = lp.solve(100000, nullptr, LpBackend::Sparse);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[x], 2.0, 1e-12);
  EXPECT_NEAR(sol.values[y], 4.0, 1e-9);
  EXPECT_NEAR(sol.objective, 14.0, 1e-9);
}

TEST(LpBackend, ReleaseStyleBoundsMatchExplicitRows) {
  // The relaxation states x_i >= release_i as bounds; an equivalent program
  // with explicit >= rows must reach the same objective on both backends.
  common::Rng rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(trial);
    const std::size_t vars = 5;
    std::vector<double> release(vars);
    for (auto& r : release) r = rng.uniform(0.0, 3.0);

    LinearProgram bounded;
    LinearProgram rowed;
    for (std::size_t j = 0; j < vars; ++j) {
      const double c = rng.uniform(0.5, 2.0);
      bounded.add_variable(c);
      rowed.add_variable(c);
      bounded.set_bounds(j, release[j], LinearProgram::kInfinity);
      rowed.add_constraint({{j, 1.0}}, Relation::GreaterEqual, release[j]);
    }
    // A few coupling rows keep the optimum off the trivial corner.
    for (int i = 0; i < 3; ++i) {
      std::vector<std::pair<std::size_t, double>> terms;
      double rhs = 0.0;
      for (std::size_t j = 0; j < vars; ++j) {
        const double coeff = rng.uniform(0.2, 1.0);
        terms.push_back({j, coeff});
        rhs += coeff * (release[j] + rng.uniform(0.0, 1.0));
      }
      bounded.add_constraint(terms, Relation::GreaterEqual, rhs);
      rowed.add_constraint(terms, Relation::GreaterEqual, rhs);
    }

    for (const auto backend : {LpBackend::Dense, LpBackend::Sparse}) {
      const LpSolution b = bounded.solve(100000, nullptr, backend);
      const LpSolution r = rowed.solve(100000, nullptr, backend);
      ASSERT_TRUE(b.optimal());
      ASSERT_TRUE(r.optimal());
      EXPECT_NEAR(b.objective, r.objective,
                  1e-6 * std::max(1.0, std::abs(r.objective)));
    }
  }
}

// --------------------------------------------------- degeneracy / cycling --

TEST(LpBackend, BealeCyclingLpTerminates) {
  // Beale's classic cycling example: textbook Dantzig pricing cycles
  // forever. The stall-triggered switch to Bland's rule (which replaced the
  // old big-M drive) must terminate both backends at the optimum -0.05.
  LinearProgram lp;
  const auto x1 = lp.add_variable(-0.75);
  const auto x2 = lp.add_variable(150.0);
  const auto x3 = lp.add_variable(-0.02);
  const auto x4 = lp.add_variable(6.0);
  lp.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                    Relation::LessEqual, 0.0);
  lp.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                    Relation::LessEqual, 0.0);
  lp.add_constraint({{x3, 1.0}}, Relation::LessEqual, 1.0);
  for (const auto backend : {LpBackend::Dense, LpBackend::Sparse}) {
    SCOPED_TRACE(opt::lp_backend_name(backend));
    const LpSolution sol = lp.solve(100000, nullptr, backend);
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);
  }
}

TEST(LpBackend, DegenerateVertexAgree) {
  // Many redundant constraints through one vertex: heavy primal degeneracy.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::LessEqual, 4.0);
  lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::LessEqual, 3.0);
  lp.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::LessEqual, 3.0);
  lp.add_constraint({{x, 1.0}}, Relation::LessEqual, 1.0);
  lp.add_constraint({{y, 1.0}}, Relation::LessEqual, 1.0);
  expect_backends_agree(lp, 1e-7);
  const LpSolution sol = lp.solve(100000, nullptr, LpBackend::Sparse);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

// --------------------------------------------------------- warm cut loops --

TEST(LpBackend, WarmCutLoopMatchesColdAndAcrossBackends) {
  // Mimics the LpCuts inner loop: solve, append >=-cuts, re-solve. The warm
  // dense, warm sparse, and cold re-solve paths must track the same
  // objective after every round.
  for (const std::uint64_t seed : {5ull, 23ull, 71ull}) {
    SCOPED_TRACE(seed);
    LinearProgram lp = make_planted_lp(seed, 8, 6);
    for (std::size_t j = 0; j < lp.variable_count(); ++j) {
      lp.set_bounds(j, 0.0, 50.0);
    }

    opt::IncrementalLpSolver warm_dense(lp, /*warm_start=*/true,
                                        LpBackend::Dense);
    opt::IncrementalLpSolver warm_sparse(lp, /*warm_start=*/true,
                                         LpBackend::Sparse);
    opt::IncrementalLpSolver cold(lp, /*warm_start=*/false, LpBackend::Sparse);
    EXPECT_EQ(warm_dense.backend(), LpBackend::Dense);
    EXPECT_EQ(warm_sparse.backend(), LpBackend::Sparse);

    common::Rng rng(seed ^ 0xabcdefull);
    for (int round = 0; round < 5; ++round) {
      SCOPED_TRACE(round);
      const LpSolution a = warm_dense.solve();
      const LpSolution b = warm_sparse.solve();
      const LpSolution c = cold.solve();
      // A random cut may clash with the planted equality rows and make the
      // program infeasible; all three paths must then agree on that too.
      ASSERT_EQ(a.status, c.status);
      ASSERT_EQ(b.status, c.status);
      if (c.status != LpStatus::Optimal) break;
      const double tol = 1e-6 * std::max(1.0, std::abs(c.objective));
      EXPECT_NEAR(a.objective, c.objective, tol);
      EXPECT_NEAR(b.objective, c.objective, tol);
      EXPECT_EQ(warm_dense.last_solve_was_warm(), round > 0);
      EXPECT_EQ(warm_sparse.last_solve_was_warm(), round > 0);
      EXPECT_FALSE(cold.last_solve_was_warm());
      if (round > 0) {
        // Warm re-solves price the cut in with dual pivots, not a fresh
        // phase 1.
        EXPECT_EQ(warm_sparse.last_stats().phase1, 0u);
      }

      // Cut off the current optimum: sum of a few variables must rise.
      std::vector<std::pair<std::size_t, double>> terms;
      double activity = 0.0;
      for (std::size_t j = 0; j < lp.variable_count(); ++j) {
        if (!rng.bernoulli(0.5)) continue;
        terms.push_back({j, 1.0});
        activity += c.values[j];
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      // Keep the cut satisfiable under the x <= 50 caps (a subset already
      // pinned at its upper bound would otherwise make the program
      // infeasible — correctly, but that is not what this test probes).
      const double rhs =
          std::min(activity + rng.uniform(0.1, 1.0),
                   50.0 * static_cast<double>(terms.size()) - 1.0);
      warm_dense.add_ge_constraint(terms, rhs);
      warm_sparse.add_ge_constraint(terms, rhs);
      cold.add_ge_constraint(terms, rhs);
    }
  }
}

// ------------------------------------------------- planner schedule parity --

core::HareConfig planner_config(LpBackend backend, bool warm, bool naive) {
  core::HareConfig config;
  config.relaxation.mode = core::RelaxMode::LpCuts;
  config.relaxation.engine.naive = naive;
  config.relaxation.engine.warm_start_lp = warm;
  config.relaxation.engine.lp_backend = backend;
  return config;
}

void expect_same_schedule(const sim::Schedule& a, const sim::Schedule& b) {
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t g = 0; g < a.sequences.size(); ++g) {
    EXPECT_EQ(a.sequences[g], b.sequences[g]) << "gpu " << g;
  }
  EXPECT_EQ(a.predicted_start, b.predicted_start);
  EXPECT_EQ(a.predicted_objective, b.predicted_objective);
}

TEST(LpBackendSchedule, BackendsProduceIdenticalSchedules) {
  // The tentpole contract: whichever backend solves the relaxation — dense
  // or sparse, warm or cold, naive reference or production engine — the
  // downstream schedule is bit-identical, because every cut round reports
  // the canonicalized optimal vertex rather than the solver's incumbent.
  for (const std::uint64_t seed : {3ull, 17ull, 40ull}) {
    for (const auto& [jobs, gpus] : {std::pair<std::size_t, std::size_t>{6, 4},
                                    {10, 6}}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " jobs=" << jobs << " gpus=" << gpus);
      const testing::Instance instance =
          testing::make_random_instance(seed, jobs, gpus);
      const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                        instance.times};

      core::HareScheduler naive_dense(
          planner_config(LpBackend::Dense, /*warm=*/false, /*naive=*/true));
      const sim::Schedule reference = naive_dense.schedule(input);

      core::HareScheduler dense_warm(
          planner_config(LpBackend::Dense, /*warm=*/true, /*naive=*/false));
      expect_same_schedule(reference, dense_warm.schedule(input));

      core::HareScheduler sparse_warm(
          planner_config(LpBackend::Sparse, /*warm=*/true, /*naive=*/false));
      expect_same_schedule(reference, sparse_warm.schedule(input));

      core::HareScheduler sparse_cold(
          planner_config(LpBackend::Sparse, /*warm=*/false, /*naive=*/false));
      expect_same_schedule(reference, sparse_cold.schedule(input));
    }
  }
}

TEST(LpBackendSchedule, RelaxationReportsResolvedBackendAndShape) {
  const testing::Instance instance = testing::make_random_instance(9, 8, 4);

  core::RelaxationConfig config;
  config.mode = core::RelaxMode::LpCuts;
  config.engine.lp_backend = LpBackend::Sparse;
  const core::HareRelaxation sparse_relax(config);
  const core::RelaxationResult sparse =
      sparse_relax.solve(instance.cluster, instance.jobs, instance.times);
  EXPECT_EQ(sparse.lp_backend, LpBackend::Sparse);
  EXPECT_GT(sparse.lp_rows, 0u);
  EXPECT_GT(sparse.lp_cols, 0u);
  EXPECT_GE(sparse.lp_nonzeros, sparse.lp_rows);
  EXPECT_EQ(sparse.canonical_solves, sparse.lp_solves);
  EXPECT_GT(sparse.canonical_pivots, 0u);

  config.engine.lp_backend = LpBackend::Dense;
  const core::HareRelaxation dense_relax(config);
  const core::RelaxationResult dense =
      dense_relax.solve(instance.cluster, instance.jobs, instance.times);
  EXPECT_EQ(dense.lp_backend, LpBackend::Dense);
  // Identical canonical vertices => identical cut trajectories => identical
  // final LP shapes.
  EXPECT_EQ(dense.lp_rows, sparse.lp_rows);
  EXPECT_EQ(dense.lp_cols, sparse.lp_cols);
  EXPECT_EQ(dense.lp_nonzeros, sparse.lp_nonzeros);
  EXPECT_EQ(dense.cut_count, sparse.cut_count);
  EXPECT_EQ(dense.x_hat, sparse.x_hat);
  EXPECT_NEAR(dense.objective, sparse.objective,
              1e-6 * std::max(1.0, std::abs(sparse.objective)));

  // The naive engine pins the dense reference regardless of the knob.
  core::PlannerEngine engine;
  engine.naive = true;
  engine.lp_backend = LpBackend::Sparse;
  EXPECT_EQ(engine.resolved_lp_backend(), LpBackend::Dense);
}

// ------------------------------------------------- hyper-sparse LU core ----

/// Random diagonally-dominant sparse basis: columns 0..m-1 carry a strong
/// diagonal plus a couple of small off-diagonal entries (nonsingular by
/// dominance), columns m.. are sparse candidates for basis exchanges.
opt::SparseMatrix make_sparse_basis_matrix(int m, int extra_cols,
                                           common::Rng& rng) {
  opt::SparseMatrix A(m);
  for (int j = 0; j < m + extra_cols; ++j) {
    A.add_column();
    std::vector<std::pair<int, double>> entries;
    if (j < m) {
      entries.emplace_back(j, rng.uniform(3.0, 5.0));
      for (int k = 0; k < 2; ++k) {
        const int r =
            static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(m)));
        if (r != j) entries.emplace_back(r, rng.uniform(-0.4, 0.4));
      }
    } else {
      for (int k = 0; k < 3; ++k) {
        const int r =
            static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(m)));
        entries.emplace_back(r, rng.uniform(0.5, 1.5));
      }
    }
    std::sort(entries.begin(), entries.end());
    int last = -1;
    for (const auto& [row, value] : entries) {
      if (row == last) continue;  // columns must be row-sorted and unique
      last = row;
      A.push(j, row, value);
    }
  }
  return A;
}

std::vector<int> identity_basis(int m) {
  std::vector<int> basis(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<std::size_t>(i)] = i;
  return basis;
}

TEST(HyperSparseLu, SparseSolvesMatchDenseBitwise) {
  // The graph-driven FTRAN/BTRAN fire the same elimination steps in the
  // same ascending order as the dense sweep, so the doubles — not just
  // their rounding — must agree, and the reported nonzero pattern must be
  // exactly the dense result's support.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    common::Rng rng(seed);
    const int m = 48;
    const opt::SparseMatrix A = make_sparse_basis_matrix(m, 0, rng);
    opt::BasisLU lu;
    lu.set_hyper(true);
    ASSERT_TRUE(lu.factorize(A, identity_basis(m)));
    ASSERT_TRUE(lu.hyper_ready());

    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> v(static_cast<std::size_t>(m), 0.0);
      std::vector<int> v_rows;
      const int nnz = 1 + static_cast<int>(rng.uniform_int(3ull));
      for (int k = 0; k < nnz; ++k) {
        const int r =
            static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(m)));
        if (v[static_cast<std::size_t>(r)] == 0.0) v_rows.push_back(r);
        v[static_cast<std::size_t>(r)] = rng.uniform(-2.0, 2.0);
      }
      std::sort(v_rows.begin(), v_rows.end());

      std::vector<double> dense_out;
      lu.ftran(v, dense_out);
      std::vector<double> sparse_out(static_cast<std::size_t>(m), 0.0);
      std::vector<int> out_pos;
      lu.ftran_sparse(v, v_rows, sparse_out, out_pos);
      ASSERT_TRUE(std::is_sorted(out_pos.begin(), out_pos.end()));
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(sparse_out[static_cast<std::size_t>(i)],
                  dense_out[static_cast<std::size_t>(i)])
            << "ftran position " << i << " seed " << seed;
      }
      for (int i = 0; i < m; ++i) {
        const bool listed =
            std::binary_search(out_pos.begin(), out_pos.end(), i);
        if (!listed) {
          EXPECT_EQ(sparse_out[static_cast<std::size_t>(i)], 0.0);
        }
      }

      std::vector<double> dense_back;
      lu.btran(v, dense_back);  // v reused as a position-space vector
      std::vector<double> sparse_back(static_cast<std::size_t>(m), 0.0);
      std::vector<int> out_rows;
      lu.btran_sparse(v, v_rows, sparse_back, out_rows);
      ASSERT_TRUE(std::is_sorted(out_rows.begin(), out_rows.end()));
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(sparse_back[static_cast<std::size_t>(i)],
                  dense_back[static_cast<std::size_t>(i)])
            << "btran row " << i << " seed " << seed;
      }
    }
  }
}

TEST(HyperSparseLu, SparseUpdateMatchesDenseUpdate) {
  // Two LU objects track the same basis-exchange sequence, one through
  // update() (dense spike scan) and one through update_sparse() (listed
  // positions). The etas — and therefore every later solve — must agree
  // bitwise.
  common::Rng rng(99);
  const int m = 32;
  const int extra = 40;
  const opt::SparseMatrix A = make_sparse_basis_matrix(m, extra, rng);
  std::vector<int> basis = identity_basis(m);

  opt::BasisLU lu_dense;
  opt::BasisLU lu_sparse;
  lu_dense.set_hyper(true);
  lu_sparse.set_hyper(true);
  ASSERT_TRUE(lu_dense.factorize(A, basis));
  ASSERT_TRUE(lu_sparse.factorize(A, basis));

  int exchanges = 0;
  for (int q = m; q < m + extra && exchanges < 12; ++q) {
    std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);
    std::vector<int> rhs_rows;
    for (const opt::SparseEntry& e : A.column(q)) {
      rhs[static_cast<std::size_t>(e.row)] = e.value;
      rhs_rows.push_back(e.row);
    }
    std::vector<double> spike;
    lu_dense.ftran(rhs, spike);
    std::vector<double> spike_sparse(static_cast<std::size_t>(m), 0.0);
    std::vector<int> spike_pos;
    lu_sparse.ftran_sparse(rhs, rhs_rows, spike_sparse, spike_pos);

    // Largest pivot keeps the exchanged basis comfortably nonsingular.
    int p = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(spike[static_cast<std::size_t>(i)]) >
          std::abs(spike[static_cast<std::size_t>(p)])) {
        p = i;
      }
    }
    if (std::abs(spike[static_cast<std::size_t>(p)]) < 0.15) continue;
    if (basis[static_cast<std::size_t>(p)] >= m) continue;  // keep variety
    ASSERT_TRUE(lu_dense.update(p, spike));
    ASSERT_TRUE(lu_sparse.update_sparse(p, spike_sparse, spike_pos));
    basis[static_cast<std::size_t>(p)] = q;
    ++exchanges;

    std::vector<double> probe(static_cast<std::size_t>(m), 0.0);
    std::vector<int> probe_rows;
    const int r =
        static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(m)));
    probe[static_cast<std::size_t>(r)] = rng.uniform(0.5, 1.5);
    probe_rows.push_back(r);
    std::vector<double> via_dense;
    lu_dense.ftran(probe, via_dense);
    std::vector<double> via_sparse(static_cast<std::size_t>(m), 0.0);
    std::vector<int> via_pos;
    lu_sparse.ftran_sparse(probe, probe_rows, via_sparse, via_pos);
    for (int i = 0; i < m; ++i) {
      ASSERT_EQ(via_sparse[static_cast<std::size_t>(i)],
                via_dense[static_cast<std::size_t>(i)])
          << "after exchange " << exchanges << " position " << i;
    }
  }
  ASSERT_GE(exchanges, 6) << "the corpus produced too few usable exchanges";
  EXPECT_EQ(lu_dense.eta_count(), lu_sparse.eta_count());
}

TEST(HyperSparseLu, MarkowitzFactorizationSolvesTheSameSystem) {
  // Markowitz pivoting reorders the elimination, so the doubles may differ
  // in rounding — but both factorizations must solve B x = v: check the
  // residual through the original matrix, and the two solutions against
  // each other at solver tolerance.
  common::Rng rng(7);
  const int m = 64;
  const opt::SparseMatrix A = make_sparse_basis_matrix(m, 0, rng);
  const std::vector<int> basis = identity_basis(m);

  opt::BasisLU plain;
  opt::BasisLU markowitz;
  markowitz.set_markowitz(true);
  ASSERT_TRUE(plain.factorize(A, basis));
  ASSERT_TRUE(markowitz.factorize(A, basis));

  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> v(static_cast<std::size_t>(m));
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    std::vector<double> x_plain;
    std::vector<double> x_mark;
    plain.ftran(v, x_plain);
    markowitz.ftran(v, x_mark);
    for (const opt::BasisLU* which : {&plain, &markowitz}) {
      const std::vector<double>& x = which == &plain ? x_plain : x_mark;
      std::vector<double> residual = v;
      for (int i = 0; i < m; ++i) {
        for (const opt::SparseEntry& e :
             A.column(basis[static_cast<std::size_t>(i)])) {
          residual[static_cast<std::size_t>(e.row)] -=
              e.value * x[static_cast<std::size_t>(i)];
        }
      }
      for (int i = 0; i < m; ++i) {
        EXPECT_NEAR(residual[static_cast<std::size_t>(i)], 0.0, 1e-9);
      }
    }
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(x_plain[static_cast<std::size_t>(i)],
                  x_mark[static_cast<std::size_t>(i)], 1e-9);
    }
  }
}

// ----------------------------------------------- Classic vs Hyper modes ----

/// Small bounded packing LP with a planted feasible region (0 is always
/// feasible; finite upper bounds keep it bounded).
LinearProgram make_mode_corpus_lp(int rows, int cols, std::uint64_t seed) {
  common::Rng rng(seed);
  LinearProgram lp;
  std::vector<std::vector<std::pair<std::size_t, double>>> row_terms(
      static_cast<std::size_t>(rows));
  for (int j = 0; j < cols; ++j) {
    const std::size_t var = lp.add_variable(-rng.uniform(0.5, 2.0));
    lp.set_bounds(var, 0.0, rng.uniform(0.5, 2.0));
    for (int k = 0; k < 2; ++k) {
      const int r =
          static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(rows)));
      row_terms[static_cast<std::size_t>(r)].emplace_back(
          static_cast<std::size_t>(j), rng.uniform(0.2, 1.0));
    }
  }
  for (int i = 0; i < rows; ++i) {
    lp.add_constraint(row_terms[static_cast<std::size_t>(i)],
                      Relation::LessEqual, rng.uniform(1.0, 4.0));
  }
  return lp;
}

TEST(HyperSparseMode, ClassicAndHyperAgreeOnObjectiveCorpus) {
  // Partial pricing changes the pivot trajectory, never the optimum: both
  // sparse sub-modes must land on the same objective across a randomized
  // corpus (and both must claim optimality).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const LinearProgram lp = make_mode_corpus_lp(16, 120, seed);
    opt::RevisedSimplex classic(lp);
    classic.set_sparse_mode(opt::SparseMode::Classic);
    const LpSolution classic_sol = classic.solve(100000);
    opt::RevisedSimplex hyper(lp);
    hyper.set_sparse_mode(opt::SparseMode::Hyper);
    const LpSolution hyper_sol = hyper.solve(100000);

    EXPECT_FALSE(classic.hyper_enabled());
    EXPECT_TRUE(hyper.hyper_enabled());
    ASSERT_EQ(classic_sol.status, LpStatus::Optimal) << "seed " << seed;
    ASSERT_EQ(hyper_sol.status, LpStatus::Optimal) << "seed " << seed;
    EXPECT_NEAR(classic_sol.objective, hyper_sol.objective,
                1e-7 * std::max(1.0, std::abs(classic_sol.objective)))
        << "seed " << seed;
  }
}

TEST(HyperSparseMode, AutoHeuristicPicksHyperOnlyForWideLps) {
  // Auto keeps the classic trajectory unless the LP is wide enough for
  // partial pricing to pay: >= kHyperMinCols columns and >= 8x wider than
  // tall (column count includes the per-row logicals).
  const LinearProgram narrow = make_mode_corpus_lp(16, 120, 42);
  opt::RevisedSimplex narrow_solver(narrow);
  (void)narrow_solver.solve(100000);
  EXPECT_FALSE(narrow_solver.hyper_enabled());

  const LinearProgram wide =
      make_mode_corpus_lp(8, opt::RevisedSimplex::kHyperMinCols, 43);
  opt::RevisedSimplex wide_solver(wide);
  (void)wide_solver.solve(200000);
  EXPECT_TRUE(wide_solver.hyper_enabled());
}

}  // namespace
}  // namespace hare
