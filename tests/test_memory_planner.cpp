// Tests for offline memory planning: the paper's greedy keep-latest
// heuristic vs the exact optimum, and the property that greedy is near-
// optimal in practice (§4's justification for using the heuristic).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "switching/memory_planner.hpp"

namespace hare::switching {
namespace {

constexpr Bytes GB = 1024ull * 1024 * 1024;

PlannedTask task(int job, Bytes footprint, Bytes state) {
  return PlannedTask{JobId(job), footprint, state};
}

TEST(MemoryPlanner, EmptySequence) {
  const auto greedy = plan_greedy({}, 16 * GB);
  EXPECT_EQ(greedy.transferred_bytes, 0u);
  const auto optimal = plan_optimal({}, 16 * GB);
  EXPECT_EQ(optimal.transferred_bytes, 0u);
}

TEST(MemoryPlanner, SingleTaskTransfersOnce) {
  const std::vector<PlannedTask> seq = {task(0, 4 * GB, 1 * GB)};
  const auto greedy = plan_greedy(seq, 16 * GB);
  EXPECT_EQ(greedy.transferred_bytes, 1 * GB);
  EXPECT_EQ(greedy.resident_hits, 0u);
}

TEST(MemoryPlanner, RevisitHitsWhenRoomy) {
  const std::vector<PlannedTask> seq = {
      task(0, 4 * GB, 1 * GB), task(1, 4 * GB, 1 * GB),
      task(0, 4 * GB, 1 * GB)};
  const auto greedy = plan_greedy(seq, 16 * GB);
  EXPECT_EQ(greedy.resident_hits, 1u);
  EXPECT_EQ(greedy.transferred_bytes, 2 * GB);
  const auto optimal = plan_optimal(seq, 16 * GB);
  EXPECT_EQ(optimal.transferred_bytes, 2 * GB);
}

TEST(MemoryPlanner, GreedyEvictsEarliestAndLosesHit) {
  // Capacity forces one eviction; greedy evicts job 0 (earliest) and so
  // misses its revisit, while keeping job 1 whose revisit never comes.
  const std::vector<PlannedTask> seq = {
      task(0, 5 * GB, 4 * GB),   // kept: 4 GB
      task(1, 5 * GB, 4 * GB),   // kept: 8 GB total
      task(2, 9 * GB, 1 * GB),   // needs 9: evict job 0 (earliest)
      task(0, 5 * GB, 4 * GB),   // would have hit had job 1 been evicted
  };
  const Bytes capacity = 13 * GB;
  const auto greedy = plan_greedy(seq, capacity);
  const auto optimal = plan_optimal(seq, capacity);
  EXPECT_LT(optimal.transferred_bytes, greedy.transferred_bytes);
  EXPECT_GE(optimal.resident_hits, 1u);
}

TEST(MemoryPlanner, OptimalNeverWorseThanGreedy) {
  common::Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const int jobs = 2 + static_cast<int>(rng.uniform_int(std::uint64_t{3}));
    // Per-job sizes are fixed (same model every round).
    std::vector<std::pair<Bytes, Bytes>> job_sizes;  // (footprint, state)
    for (int j = 0; j < jobs; ++j) {
      const Bytes state = (1 + rng.uniform_int(std::uint64_t{4})) * GB / 2;
      const Bytes workspace = (1 + rng.uniform_int(std::uint64_t{6})) * GB / 2;
      job_sizes.emplace_back(state + workspace, state);
    }
    std::vector<PlannedTask> seq;
    const int length = 4 + static_cast<int>(rng.uniform_int(std::uint64_t{10}));
    for (int i = 0; i < length; ++i) {
      const int job = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(jobs)));
      seq.push_back(task(job, job_sizes[static_cast<std::size_t>(job)].first,
                         job_sizes[static_cast<std::size_t>(job)].second));
    }
    const Bytes capacity = 8 * GB;
    const auto greedy = plan_greedy(seq, capacity);
    const auto optimal = plan_optimal(seq, capacity);
    EXPECT_LE(optimal.transferred_bytes, greedy.transferred_bytes);
    // Both plans must evaluate cleanly.
    const auto check = evaluate_plan(seq, capacity, optimal.keep);
    EXPECT_EQ(check.transferred_bytes, optimal.transferred_bytes);
  }
}

TEST(MemoryPlanner, GreedyNearOptimalOnTypicalSequences) {
  // §4's claim: the heuristic "works sufficiently well in practice".
  // Across random task interleavings, greedy transfers at most ~40% more
  // bytes than optimal in aggregate.
  common::Rng rng(7);
  double greedy_total = 0.0;
  double optimal_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PlannedTask> seq;
    for (int i = 0; i < 12; ++i) {
      const int job = static_cast<int>(rng.uniform_int(std::uint64_t{4}));
      seq.push_back(task(job, 3 * GB, 1 * GB));
    }
    const auto greedy = plan_greedy(seq, 10 * GB);
    const auto optimal = plan_optimal(seq, 10 * GB);
    greedy_total += static_cast<double>(greedy.transferred_bytes);
    optimal_total += static_cast<double>(optimal.transferred_bytes);
  }
  EXPECT_LE(greedy_total, optimal_total * 1.4);
}

TEST(MemoryPlanner, EvaluateRejectsInfeasibleKeeps) {
  const std::vector<PlannedTask> seq = {
      task(0, 5 * GB, 5 * GB), task(1, 5 * GB, 5 * GB),
      task(2, 8 * GB, 1 * GB)};
  // Keeping both earlier states leaves no room for task 2.
  EXPECT_THROW(evaluate_plan(seq, 13 * GB, {1, 1, 0}), common::Error);
  // Dropping one makes it feasible.
  EXPECT_NO_THROW(evaluate_plan(seq, 13 * GB, {0, 1, 0}));
}

TEST(MemoryPlanner, RejectsImpossibleTask) {
  const std::vector<PlannedTask> seq = {task(0, 20 * GB, 1 * GB)};
  EXPECT_THROW(plan_greedy(seq, 16 * GB), common::Error);
  EXPECT_THROW(plan_optimal(seq, 16 * GB), common::Error);
}

TEST(MemoryPlanner, KeepVectorRoundTrips) {
  const std::vector<PlannedTask> seq = {
      task(0, 4 * GB, 2 * GB), task(1, 4 * GB, 2 * GB),
      task(0, 4 * GB, 2 * GB), task(1, 4 * GB, 2 * GB)};
  const auto greedy = plan_greedy(seq, 16 * GB);
  const auto evaluated = evaluate_plan(seq, 16 * GB, greedy.keep);
  EXPECT_EQ(evaluated.transferred_bytes, greedy.transferred_bytes);
  EXPECT_EQ(evaluated.resident_hits, greedy.resident_hits);
}

TEST(MemoryPlanner, OptimalSkipsUselessKeeps) {
  // No job repeats: keeping anything is pointless; optimal keeps nothing.
  const std::vector<PlannedTask> seq = {
      task(0, 4 * GB, 2 * GB), task(1, 4 * GB, 2 * GB),
      task(2, 4 * GB, 2 * GB)};
  const auto optimal = plan_optimal(seq, 16 * GB);
  for (char k : optimal.keep) EXPECT_EQ(k, 0);
  EXPECT_EQ(optimal.transferred_bytes, 6 * GB);
}

}  // namespace
}  // namespace hare::switching
