// Robustness and failure-injection tests: Hare's offline plans executed
// under conditions the planner did not anticipate — heavy-tailed
// stragglers, systematically wrong profiles, extreme workload skew — must
// stay correct (all constraints hold, everything completes) and degrade
// gracefully rather than collapse.
#include <gtest/gtest.h>

#include "core/hare.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;
using testing::make_random_instance;

sim::SimResult run_with(const Instance& inst, const sim::Schedule& schedule,
                        sim::SimConfig config = {}) {
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  return simulator.run(schedule);
}

TEST(Robustness, HeavyRuntimeNoiseStillCompletesEverything) {
  const Instance inst = make_random_instance(401);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  sim::SimConfig config;
  config.runtime_noise_cv = 0.5;  // 50% per-task scatter
  const sim::SimResult result = run_with(inst, schedule, config);
  for (const auto& job : result.jobs) EXPECT_GT(job.completion, 0.0);
  EXPECT_GT(result.makespan, 0.0);
}

class StragglerTest : public ::testing::TestWithParam<double> {};

TEST_P(StragglerTest, DegradationBoundedByStragglerFactor) {
  // Multiply one job's actual times by a straggler factor the planner
  // never saw; total weighted JCT must grow by at most (roughly) the same
  // factor — schedules cannot amplify stragglers unboundedly.
  const double factor = GetParam();
  const Instance inst = make_random_instance(402, 10, 8);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const double baseline = run_with(inst, schedule).weighted_jct;

  profiler::TimeTable degraded = inst.times;
  const JobId victim(0);
  for (std::size_t g = 0; g < inst.cluster.gpu_count(); ++g) {
    const GpuId gpu(static_cast<int>(g));
    degraded.set(victim, gpu, inst.times.tc(victim, gpu) * factor,
                 inst.times.ts(victim, gpu));
  }
  const sim::Simulator simulator(inst.cluster, inst.jobs, degraded);
  const double degraded_jct = simulator.run(schedule).weighted_jct;
  EXPECT_GT(degraded_jct, baseline * 0.99);
  EXPECT_LT(degraded_jct, baseline * (factor + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Factors, StragglerTest,
                         ::testing::Values(2.0, 4.0, 8.0));

TEST(Robustness, WrongProfileStillValidAndBounded) {
  // Plan with a profile that is systematically 2x optimistic; execution
  // with true times must still satisfy every constraint and land within
  // 2.5x of the well-informed plan.
  const Instance inst = make_random_instance(403, 12, 8);
  profiler::TimeTable optimistic = inst.times;
  for (const auto& job : inst.jobs.jobs()) {
    for (std::size_t g = 0; g < inst.cluster.gpu_count(); ++g) {
      const GpuId gpu(static_cast<int>(g));
      optimistic.set(job.id, gpu, inst.times.tc(job.id, gpu) * 0.5,
                     inst.times.ts(job.id, gpu) * 0.5);
    }
  }
  core::HareScheduler scheduler;
  const sim::Schedule misinformed =
      scheduler.schedule({inst.cluster, inst.jobs, optimistic});
  const sim::Schedule informed =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  const double misinformed_jct = run_with(inst, misinformed).weighted_jct;
  const double informed_jct = run_with(inst, informed).weighted_jct;
  EXPECT_LT(misinformed_jct, informed_jct * 2.5);
}

TEST(Robustness, UniformlyScaledProfilePreservesPlanQuality) {
  // A profile wrong by a *constant* factor preserves all orderings (when
  // arrivals don't skew the mix — time-scaling only commutes with the
  // plan for simultaneous arrivals), so the sequences must be identical.
  Instance inst = make_random_instance(404, 10, 8);
  workload::JobSet jobs;
  for (const auto& job : inst.jobs.jobs()) {
    workload::JobSpec spec = job.spec;
    spec.arrival = 0.0;
    jobs.add_job(spec);
  }
  inst.jobs = std::move(jobs);
  profiler::TimeTable scaled = inst.times;
  for (const auto& job : inst.jobs.jobs()) {
    for (std::size_t g = 0; g < inst.cluster.gpu_count(); ++g) {
      const GpuId gpu(static_cast<int>(g));
      scaled.set(job.id, gpu, inst.times.tc(job.id, gpu) * 3.0,
                 inst.times.ts(job.id, gpu) * 3.0);
    }
  }
  core::HareScheduler a;
  core::HareScheduler b;
  const sim::Schedule plan_true =
      a.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Schedule plan_scaled =
      b.schedule({inst.cluster, inst.jobs, scaled});
  ASSERT_EQ(plan_true.sequences.size(), plan_scaled.sequences.size());
  for (std::size_t g = 0; g < plan_true.sequences.size(); ++g) {
    EXPECT_EQ(plan_true.sequences[g], plan_scaled.sequences[g]);
  }
}

TEST(Robustness, ExtremeWeightSkewDoesNotStarveLightJobs) {
  workload::JobSet jobs;
  for (int j = 0; j < 10; ++j) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::ResNet50;
    spec.rounds = 4;
    spec.tasks_per_round = 2;
    spec.weight = j == 0 ? 1000.0 : 1.0;
    jobs.add_job(spec);
  }
  const auto cluster = cluster::make_heterogeneity_cluster(
      cluster::HeterogeneityLevel::High, 8);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 405);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  core::HareScheduler scheduler;
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
  const sim::Simulator simulator(cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  // The heavy job goes first...
  for (std::size_t j = 1; j < jobs.job_count(); ++j) {
    EXPECT_LE(result.jobs[0].completion, result.jobs[j].completion + 1e-6);
  }
  // ...but the light ones all still run (starvation-free).
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.completion, 0.0);
    EXPECT_LE(job.completion, result.makespan + 1e-9);
  }
}

TEST(Robustness, ManySingleTaskJobsAndOneGiant) {
  // Pathological mix: 30 tiny jobs plus one giant 8-way job on a small
  // cluster; everything must schedule and execute.
  workload::JobSet jobs;
  for (int j = 0; j < 30; ++j) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::GraphSAGE;
    spec.rounds = 2;
    spec.tasks_per_round = 1;
    jobs.add_job(spec);
  }
  workload::JobSpec giant;
  giant.model = workload::ModelType::BertBase;
  giant.rounds = 6;
  giant.tasks_per_round = 8;
  jobs.add_job(giant);

  const auto cluster = cluster::make_simulation_cluster(8);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 406);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  for (const auto& scheduler : core::make_standard_schedulers()) {
    const sim::Schedule schedule =
        scheduler->schedule({cluster, jobs, times});
    const sim::Simulator simulator(cluster, jobs, times);
    const sim::SimResult result = simulator.run(schedule);
    for (const auto& job : result.jobs) {
      EXPECT_GT(job.completion, 0.0) << scheduler->name();
    }
  }
}

TEST(Robustness, ZeroLengthArrivalBurst) {
  // Every job arriving at the exact same instant (worst-case burst).
  workload::JobSet jobs;
  for (int j = 0; j < 20; ++j) {
    workload::JobSpec spec;
    spec.model = static_cast<workload::ModelType>(j % 8);
    spec.rounds = 3;
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(j % 4);
    jobs.add_job(spec);
  }
  const auto cluster = cluster::make_testbed_cluster();
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 407);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  core::OnlineHareScheduler online;  // one arrival batch with all 20 jobs
  const sim::Schedule schedule = online.schedule({cluster, jobs, times});
  EXPECT_EQ(online.planning_rounds(), 1u);
  const sim::Simulator simulator(cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  EXPECT_GT(result.makespan, 0.0);
}

}  // namespace
}  // namespace hare
