#include <gtest/gtest.h>

#include "core/hare.hpp"

TEST(Smoke, UmbrellaHeaderCompiles) {
  hare::cluster::Cluster cluster = hare::cluster::make_testbed_cluster();
  EXPECT_EQ(cluster.gpu_count(), 15u);
}
