// Integration tests: the full preparation→scheduling→execution pipeline on
// testbed-scale instances, reproducing the paper's headline claims in
// miniature.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/hare.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

core::HareSystem::Options options_for(bool hare_executor,
                                      std::uint64_t seed = 42) {
  core::HareSystem::Options options;
  options.seed = seed;
  options.sim.switching.policy = hare_executor
                                     ? switching::SwitchPolicy::Hare
                                     : switching::SwitchPolicy::Default;
  options.sim.use_memory_manager = hare_executor;
  return options;
}

workload::JobSet testbed_workload(std::size_t jobs, std::uint64_t seed) {
  workload::TraceConfig config;
  config.job_count = jobs;
  config.rounds_scale_min = 0.1;
  config.rounds_scale_max = 0.3;
  workload::TraceGenerator generator(seed);
  return generator.generate(config);
}

TEST(Integration, HareBeatsEveryBaselineOnTestbedWorkload) {
  // The paper's headline (Fig 12): Hare's total weighted JCT beats all
  // four baselines on the 15-GPU testbed workload.
  core::HareSystem system(cluster::make_testbed_cluster(), options_for(true));
  system.submit_all(testbed_workload(24, 1234));

  double hare_jct = 0.0;
  for (const auto& scheduler : core::make_standard_schedulers()) {
    core::HareSystem::Options options =
        options_for(scheduler->name() == std::string_view("Hare"));
    core::HareSystem fresh(cluster::make_testbed_cluster(), options);
    fresh.submit_all(testbed_workload(24, 1234));
    const auto report = fresh.run(*scheduler);
    if (scheduler->name() == std::string_view("Hare")) {
      hare_jct = report.result.weighted_jct;
    } else {
      EXPECT_GT(report.result.weighted_jct, hare_jct)
          << scheduler->name() << " should lose to Hare";
    }
  }
}

TEST(Integration, HareAdvantageGrowsWithHeterogeneity) {
  // Fig 16's shape: the Hare-vs-Sched_Homo gap widens from the homogeneous
  // cluster to the 4-type cluster.
  double gap[2] = {0.0, 0.0};
  const cluster::HeterogeneityLevel levels[2] = {
      cluster::HeterogeneityLevel::Low, cluster::HeterogeneityLevel::High};
  for (int i = 0; i < 2; ++i) {
    const auto cluster = cluster::make_heterogeneity_cluster(levels[i], 16);
    core::HareScheduler hare;
    sched::SchedHomoScheduler homo;

    core::HareSystem hare_system(cluster, options_for(true));
    hare_system.submit_all(testbed_workload(20, 99));
    core::HareSystem homo_system(cluster, options_for(false));
    homo_system.submit_all(testbed_workload(20, 99));

    const double hare_jct = hare_system.run(hare).result.weighted_jct;
    const double homo_jct = homo_system.run(homo).result.weighted_jct;
    gap[i] = homo_jct / hare_jct;
  }
  EXPECT_GT(gap[1], gap[0]);
}

TEST(Integration, FastSwitchingMattersUnderPreemptiveSchedule) {
  // Run the same Hare schedule under the Default executor vs the Hare
  // executor: the fine-grained interleaving only pays off with fast
  // switching (Table 3 / §4 motivation).
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = testbed_workload(16, 7);

  core::HareScheduler scheduler;
  double jct[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    core::HareSystem system(cluster, options_for(i == 1));
    system.submit_all(jobs);
    jct[i] = system.run(scheduler).result.weighted_jct;
  }
  EXPECT_LT(jct[1], jct[0]);  // Hare executor strictly better
}

TEST(Integration, SpeculativeMemoryReducesSwitchTime) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = testbed_workload(16, 8);
  core::HareScheduler scheduler;

  core::HareSystem::Options with_mm = options_for(true);
  core::HareSystem::Options without_mm = options_for(true);
  without_mm.sim.use_memory_manager = false;

  core::HareSystem a(cluster, with_mm);
  a.submit_all(jobs);
  core::HareSystem b(cluster, without_mm);
  b.submit_all(jobs);

  const auto with_result = a.run(scheduler).result;
  const auto without_result = b.run(scheduler).result;
  EXPECT_LE(with_result.total_switch_time(),
            without_result.total_switch_time());
  // And at least some switches found the model resident.
  std::size_t hits = 0;
  for (const auto& stat : with_result.switch_stats) {
    hits += stat.resident_hits;
  }
  EXPECT_GT(hits, 0u);
}

TEST(Integration, TestbedVsSimulatorGapSmall) {
  // §7.3: the simulator tracks the (noisy) testbed within ~5%.
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = testbed_workload(20, 11);
  core::HareScheduler scheduler;

  core::HareSystem::Options testbed_options = options_for(true);
  testbed_options.sim.runtime_noise_cv = 0.05;
  core::HareSystem testbed(cluster, testbed_options);
  testbed.submit_all(jobs);

  core::HareSystem simulator(cluster, options_for(true));
  simulator.submit_all(jobs);

  const double a = testbed.run(scheduler).result.weighted_jct;
  const double b = simulator.run(scheduler).result.weighted_jct;
  EXPECT_LT(common::relative_difference(a, b), 0.05);
}

TEST(Integration, TraceFileReplayIsDeterministic) {
  const auto jobs = testbed_workload(15, 21);
  const std::string path = ::testing::TempDir() + "/hare_trace.txt";
  workload::save_trace_file(jobs, path);
  const auto replayed = workload::load_trace_file(path);
  std::remove(path.c_str());

  core::HareScheduler scheduler;
  const auto cluster = cluster::make_testbed_cluster();

  core::HareSystem a(cluster, options_for(true));
  a.submit_all(jobs);
  core::HareSystem b(cluster, options_for(true));
  b.submit_all(replayed);

  EXPECT_DOUBLE_EQ(a.run(scheduler).result.weighted_jct,
                   b.run(scheduler).result.weighted_jct);
}

TEST(Integration, ProfileDbPersistsAcrossSystems) {
  const auto cluster = cluster::make_testbed_cluster();
  core::HareSystem first(cluster, options_for(true));
  first.submit_all(testbed_workload(10, 31));
  (void)first.profiled_times();

  const std::string path = ::testing::TempDir() + "/hare_db.txt";
  first.profile_db().save_file(path);

  profiler::ProfileDb restored;
  restored.load_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.size(), first.profile_db().size());
  EXPECT_GT(restored.size(), 0u);
}

TEST(Integration, StarvationFree) {
  // Design goal 3 (§3): every job completes; no task waits forever. Skewed
  // weights and long jobs must not starve light short ones (or vice
  // versa).
  workload::JobSet jobs;
  for (int j = 0; j < 12; ++j) {
    workload::JobSpec spec;
    spec.model = j % 2 ? workload::ModelType::BertBase
                       : workload::ModelType::GraphSAGE;
    spec.rounds = j % 2 ? 8 : 2;
    spec.weight = j % 3 ? 1.0 : 8.0;
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(j % 4);
    jobs.add_job(spec);
  }
  core::HareSystem system(cluster::make_testbed_cluster(), options_for(true));
  system.submit_all(jobs);
  core::HareScheduler scheduler;
  const auto report = system.run(scheduler);
  for (const auto& job : report.result.jobs) {
    EXPECT_GT(job.completion, 0.0);
    EXPECT_LT(job.completion, report.result.makespan + 1e-9);
  }
}

TEST(Integration, WeightedJobsFinishEarlier) {
  // Doubling a job's weight must not push its completion later, all else
  // equal (weighted objective steers the schedule toward it).
  workload::JobSet base;
  for (int j = 0; j < 8; ++j) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::ResNet50;
    spec.rounds = 4;
    spec.tasks_per_round = 2;
    base.add_job(spec);
  }
  const auto cluster = cluster::make_heterogeneity_cluster(
      cluster::HeterogeneityLevel::Mid, 4);

  auto run_with_weight = [&](double weight) {
    workload::JobSet jobs;
    for (std::size_t j = 0; j < base.job_count(); ++j) {
      workload::JobSpec spec = base.job(JobId(static_cast<int>(j))).spec;
      if (j == 7) spec.weight = weight;
      jobs.add_job(spec);
    }
    core::HareSystem system(cluster, options_for(true));
    system.submit_all(jobs);
    core::HareScheduler scheduler;
    return system.run(scheduler).result.jobs[7].completion;
  };

  EXPECT_LE(run_with_weight(8.0), run_with_weight(1.0) + 1e-6);
}

}  // namespace
}  // namespace hare
