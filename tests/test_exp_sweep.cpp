// hare::exp sweep engine: parallel fan-out must be bit-identical to the
// serial path, the calendar event queue must pop in exactly the reference
// heap's order (ties included), worker exceptions must surface loudly,
// and scratch reuse must never change a simulation result.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/hare.hpp"
#include "exp/engine.hpp"
#include "sim/event_queue.hpp"

namespace hare {
namespace {

exp::SweepSpec small_grid() {
  exp::SweepSpec spec;
  for (const std::size_t job_count : {8, 12}) {
    workload::TraceConfig config;
    config.job_count = job_count;
    auto jobs = workload::TraceGenerator(900 + job_count).generate(config);
    spec.scenarios.push_back(exp::ScenarioSpec{
        std::to_string(job_count) + " jobs",
        cluster::make_simulation_cluster(8), std::move(jobs)});
  }
  spec.seeds = {3, 17};
  return spec;
}

void expect_cells_identical(const exp::CellResult& a,
                            const exp::CellResult& b) {
  ASSERT_EQ(a.result.scheduler, b.result.scheduler);
  EXPECT_EQ(a.seed, b.seed);
  // Exact double equality on purpose: the engines must produce the same
  // bits, not merely close numbers.
  EXPECT_EQ(a.result.weighted_jct, b.result.weighted_jct);
  EXPECT_EQ(a.result.weighted_completion, b.result.weighted_completion);
  EXPECT_EQ(a.result.makespan, b.result.makespan);
  EXPECT_EQ(a.result.mean_utilization, b.result.mean_utilization);
  ASSERT_EQ(a.result.sim.tasks.size(), b.result.sim.tasks.size());
  for (std::size_t i = 0; i < a.result.sim.tasks.size(); ++i) {
    const sim::TaskRecord& ta = a.result.sim.tasks[i];
    const sim::TaskRecord& tb = b.result.sim.tasks[i];
    EXPECT_EQ(ta.gpu.value(), tb.gpu.value());
    EXPECT_EQ(ta.start, tb.start);
    EXPECT_EQ(ta.switch_time, tb.switch_time);
    EXPECT_EQ(ta.compute_end, tb.compute_end);
    EXPECT_EQ(ta.sync_end, tb.sync_end);
    EXPECT_EQ(ta.model_resident, tb.model_resident);
  }
}

TEST(ExpSweep, ParallelBitIdenticalToSerial) {
  const exp::SweepSpec spec = small_grid();

  exp::Engine::Options serial_options;
  serial_options.serial = true;
  exp::Engine serial_engine(serial_options);
  const exp::SweepResult serial = serial_engine.run(spec);

  exp::Engine::Options parallel_options;
  parallel_options.workers = 4;
  exp::Engine parallel_engine(parallel_options);
  const exp::SweepResult parallel = parallel_engine.run(spec);

  EXPECT_EQ(serial.workers, 1u);
  ASSERT_EQ(serial.cells.size(), spec.cell_count());
  ASSERT_EQ(parallel.cells.size(), spec.cell_count());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    expect_cells_identical(serial.cells[i], parallel.cells[i]);
  }
}

TEST(ExpSweep, MatchesLegacySerialComparisonLoop) {
  // The engine's cells must reproduce the pre-engine serial bench loop
  // (one HareSystem per scheme, seed ^ 0x5eed noise stream) bit for bit.
  const auto cluster = cluster::make_simulation_cluster(8);
  workload::TraceConfig config;
  config.job_count = 10;
  const auto jobs = workload::TraceGenerator(1234).generate(config);

  exp::ScenarioOptions options;
  options.seed = 77;
  options.runtime_noise_cv = 0.05;  // exercise the noise path too

  std::vector<exp::SchemeResult> legacy;
  for (const auto& scheduler : core::make_standard_schedulers(options.hare)) {
    core::HareSystem::Options sys_options;
    sys_options.seed = options.seed;
    sys_options.perf = options.perf;
    sys_options.sim.runtime_noise_cv = options.runtime_noise_cv;
    sys_options.sim.noise_seed = options.seed ^ 0x5eedull;
    const bool is_hare = scheduler->name() == std::string_view("Hare");
    sys_options.sim.switching.policy =
        is_hare ? switching::SwitchPolicy::Hare
                : switching::SwitchPolicy::Default;
    sys_options.sim.use_memory_manager = is_hare;
    core::HareSystem system(cluster, sys_options);
    system.submit_all(jobs);
    const core::RunReport report = system.run(*scheduler);
    exp::SchemeResult entry;
    entry.scheduler = report.scheduler;
    entry.weighted_jct = report.result.weighted_jct;
    entry.makespan = report.result.makespan;
    legacy.push_back(std::move(entry));
  }

  exp::SweepSpec spec;
  spec.scenarios.push_back(exp::ScenarioSpec{"legacy", cluster, jobs, options});
  exp::Engine engine(exp::Engine::Options{4, false});
  const auto schemes = engine.run(spec).comparison(0);

  ASSERT_EQ(schemes.size(), legacy.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    EXPECT_EQ(schemes[i].scheduler, legacy[i].scheduler);
    EXPECT_EQ(schemes[i].weighted_jct, legacy[i].weighted_jct);
    EXPECT_EQ(schemes[i].makespan, legacy[i].makespan);
  }
}

TEST(ExpEngine, ThrowingCellFailsLoudly) {
  exp::Engine engine(exp::Engine::Options{4, false});
  EXPECT_THROW(
      engine.map(16,
                 [](std::size_t i) -> int {
                   if (i == 11) throw std::runtime_error("cell 11 exploded");
                   return static_cast<int>(i);
                 }),
      std::runtime_error);

  // The engine (and its pool) must stay usable after a failed sweep.
  const auto ok = engine.map(8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(ok.size(), 8u);
  EXPECT_EQ(ok[7], 49u);
}

TEST(ExpEngine, OneWorkerRunsInlineOnCallingThread) {
  // With one effective worker, dispatching through the pool only adds task
  // allocation and queue wake-ups (measured ~0.78x of the serial loop), so
  // map() must run inline on the calling thread — and still match the
  // multi-worker engine bit for bit.
  exp::Engine one(exp::Engine::Options{1, false});
  EXPECT_EQ(one.workers(), 1u);
  const auto caller = std::this_thread::get_id();
  const auto inline_out = one.map(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 7 * i;
  });

  exp::Engine pooled(exp::Engine::Options{4, false});
  const auto pooled_out = pooled.map(16, [](std::size_t i) { return 7 * i; });
  EXPECT_EQ(inline_out, pooled_out);

  // Whole sweeps agree too, and the 1-worker run reports workers == 1 so
  // regression gates can recognize the inline path.
  const exp::SweepSpec spec = small_grid();
  const exp::SweepResult serial_result =
      exp::Engine(exp::Engine::Options{1, true}).run(spec);
  const exp::SweepResult one_result =
      exp::Engine(exp::Engine::Options{1, false}).run(spec);
  EXPECT_EQ(one_result.workers, 1u);
  ASSERT_EQ(one_result.cells.size(), serial_result.cells.size());
  for (std::size_t i = 0; i < one_result.cells.size(); ++i) {
    expect_cells_identical(serial_result.cells[i], one_result.cells[i]);
  }
}

TEST(ExpEngine, MapMergesInIndexOrder) {
  exp::Engine engine(exp::Engine::Options{4, false});
  const auto out =
      engine.map(100, [](std::size_t i) { return 3 * i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

// --- event queue backends ------------------------------------------------

using IntQueue = sim::EventQueue<int>;

std::vector<std::pair<Time, int>> drain(IntQueue& queue) {
  std::vector<std::pair<Time, int>> out;
  Time last = -kTimeInfinity;
  std::uint64_t last_sequence = 0;
  bool first = true;
  while (!queue.empty()) {
    const auto event = queue.pop();
    // The contract: strict (time, sequence) order.
    if (!first) {
      EXPECT_TRUE(event.time > last ||
                  (event.time == last && event.sequence > last_sequence))
          << "pop order violated at t=" << event.time;
    }
    first = false;
    last = event.time;
    last_sequence = event.sequence;
    out.emplace_back(event.time, event.payload);
  }
  return out;
}

TEST(EventQueueBackends, IdenticalOrderUnderEqualTimestamps) {
  IntQueue calendar(sim::QueueBackend::Calendar);
  IntQueue heap(sim::QueueBackend::Heap);
  // Heavy ties: insertion order must break them identically in both.
  const double times[] = {5.0, 1.0, 1.0, 1.0, 3.0, 5.0, 0.0, 0.0, 3.0, 1.0};
  int payload = 0;
  for (const double t : times) {
    calendar.push(t, payload);
    heap.push(t, payload);
    ++payload;
  }
  EXPECT_EQ(drain(calendar), drain(heap));
}

TEST(EventQueueBackends, IdenticalOrderUnderInterleavedPushPop) {
  IntQueue calendar(sim::QueueBackend::Calendar);
  IntQueue heap(sim::QueueBackend::Heap);
  common::Rng rng(99);
  int payload = 0;
  std::vector<std::pair<Time, int>> calendar_out;
  std::vector<std::pair<Time, int>> heap_out;
  Time now = 0.0;
  // Simulator-shaped traffic: pop the frontier, schedule a few near-future
  // events per pop, occasionally a far-future one (overflow + rebuild).
  for (int round = 0; round < 400; ++round) {
    const int pushes = 1 + static_cast<int>(rng.uniform() * 3.0);
    for (int p = 0; p < pushes; ++p) {
      const double span = rng.uniform() < 0.1 ? 1e4 : 10.0;
      const Time t = now + rng.uniform() * span;
      calendar.push(t, payload);
      heap.push(t, payload);
      ++payload;
    }
    ASSERT_FALSE(calendar.empty());
    const auto a = calendar.pop();
    const auto b = heap.pop();
    now = a.time;
    calendar_out.emplace_back(a.time, a.payload);
    heap_out.emplace_back(b.time, b.payload);
  }
  EXPECT_EQ(calendar_out, heap_out);
  EXPECT_EQ(drain(calendar), drain(heap));
}

TEST(EventQueueBackends, ClearRetainsNothing) {
  IntQueue queue(sim::QueueBackend::Calendar);
  for (int i = 0; i < 50; ++i) queue.push(i * 0.5, i);
  (void)queue.pop();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  queue.push(2.0, 1);
  queue.push(1.0, 2);
  const auto first = queue.pop();
  EXPECT_EQ(first.payload, 2);
  EXPECT_EQ(first.sequence, 1u);  // numbering restarted
}

TEST(SimBackends, HeapAndCalendarProduceIdenticalResults) {
  const auto cluster = cluster::make_simulation_cluster(8);
  workload::TraceConfig config;
  config.job_count = 12;
  const auto jobs = workload::TraceGenerator(5).generate(config);

  auto run_with = [&](sim::QueueBackend backend) {
    core::HareSystem::Options options;
    options.sim.event_queue = backend;
    core::HareSystem system(cluster, options);
    system.submit_all(jobs);
    core::HareScheduler scheduler;
    return system.run(scheduler);
  };
  const auto calendar = run_with(sim::QueueBackend::Calendar);
  const auto heap = run_with(sim::QueueBackend::Heap);
  EXPECT_EQ(calendar.result.weighted_jct, heap.result.weighted_jct);
  EXPECT_EQ(calendar.result.makespan, heap.result.makespan);
  ASSERT_EQ(calendar.result.tasks.size(), heap.result.tasks.size());
  for (std::size_t i = 0; i < calendar.result.tasks.size(); ++i) {
    EXPECT_EQ(calendar.result.tasks[i].start, heap.result.tasks[i].start);
    EXPECT_EQ(calendar.result.tasks[i].compute_end,
              heap.result.tasks[i].compute_end);
  }
}

TEST(SimScratch, ReuseNeverChangesAResult) {
  const auto cluster = cluster::make_simulation_cluster(8);
  workload::TraceConfig config;
  config.job_count = 10;
  const auto jobs = workload::TraceGenerator(8).generate(config);

  core::HareSystem system(cluster, {});
  system.submit_all(jobs);
  core::HareScheduler scheduler;

  sim::SimScratch scratch;
  const auto first = system.run(scheduler, scratch);
  const auto second = system.run(scheduler, scratch);  // reused buffers
  const auto fresh = system.run(scheduler);            // fresh scratch
  EXPECT_EQ(first.result.weighted_jct, second.result.weighted_jct);
  EXPECT_EQ(first.result.weighted_jct, fresh.result.weighted_jct);
  EXPECT_EQ(first.result.makespan, second.result.makespan);
  ASSERT_EQ(first.result.tasks.size(), second.result.tasks.size());
  for (std::size_t i = 0; i < first.result.tasks.size(); ++i) {
    EXPECT_EQ(first.result.tasks[i].compute_end,
              second.result.tasks[i].compute_end);
  }
}

// --- thread pool ---------------------------------------------------------

TEST(ThreadPoolErrors, SubmitExceptionSurfacesAtRethrowPending) {
  common::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker task failed"); });
  pool.wait_idle();
  EXPECT_TRUE(pool.has_pending_exception());
  EXPECT_THROW(pool.rethrow_pending(), std::runtime_error);
  // Collected: a second rethrow is a no-op.
  EXPECT_FALSE(pool.has_pending_exception());
  pool.rethrow_pending();
}

TEST(ThreadPoolErrors, ParallelForEachRethrowsFirstError) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_each(
                   64,
                   [](std::size_t i) {
                     if (i % 13 == 7) throw std::runtime_error("shard failed");
                   }),
               std::runtime_error);
  // Pool stays usable.
  std::atomic<int> hits{0};
  pool.parallel_for_each(16, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPoolConfig, HareJobsEnvOverridesWorkerCount) {
  ::setenv("HARE_JOBS", "3", 1);
  EXPECT_EQ(common::default_worker_count(), 3u);
  common::ThreadPool pool;
  EXPECT_EQ(pool.size(), 3u);

  ::setenv("HARE_JOBS", "not-a-number", 1);
  EXPECT_GE(common::default_worker_count(), 1u);  // falls back to hardware

  ::setenv("HARE_JOBS", "0", 1);
  EXPECT_GE(common::default_worker_count(), 1u);  // zero is ignored

  ::unsetenv("HARE_JOBS");
}

TEST(ExpEngine, SerialEnvForcesSerialPath) {
  ::setenv("HARE_EXP_SERIAL", "1", 1);
  exp::Engine engine;
  EXPECT_TRUE(engine.serial());
  EXPECT_EQ(engine.workers(), 1u);
  ::unsetenv("HARE_EXP_SERIAL");
  exp::Engine parallel_engine;
  EXPECT_FALSE(parallel_engine.serial());
}

}  // namespace
}  // namespace hare
