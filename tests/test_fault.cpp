// Fault-injection subsystem tests: spec parsing, deterministic plan
// generation, scenario semantics (failure/recovery, cancellation,
// dead-letter), replan-on-failure through the real planners, and the
// determinism contract — the same fault spec + seed yields bit-identical
// SimResults across repeated runs and across serial vs pooled sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/hare.hpp"
#include "exp/engine.hpp"
#include "fault/fault_spec.hpp"
#include "fault/runner.hpp"
#include "test_util.hpp"

namespace hare {
namespace {

using testing::Instance;
using testing::make_random_instance;

// ------------------------------------------------------------- equality --

bool records_identical(const sim::TaskRecord& a, const sim::TaskRecord& b) {
  return a.gpu == b.gpu && a.ready == b.ready && a.start == b.start &&
         a.switch_time == b.switch_time &&
         a.compute_start == b.compute_start &&
         a.compute_end == b.compute_end && a.sync_end == b.sync_end &&
         a.model_resident == b.model_resident && a.attempts == b.attempts;
}

/// Bitwise result equality (exact double compares, no tolerance): the
/// determinism contract promises bit-identical runs, so == is the test.
bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.tasks.size() != b.tasks.size() || a.jobs.size() != b.jobs.size() ||
      a.gpus.size() != b.gpus.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (!records_identical(a.tasks[i], b.tasks[i])) return false;
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.arrival != y.arrival || x.completion != y.completion ||
        x.weight != y.weight || x.outcome != y.outcome ||
        x.restarts != y.restarts) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.gpus.size(); ++i) {
    const auto& x = a.gpus[i];
    const auto& y = b.gpus[i];
    if (x.busy_compute != y.busy_compute || x.busy_switch != y.busy_switch ||
        x.last_busy_end != y.last_busy_end || x.task_count != y.task_count) {
      return false;
    }
  }
  const auto& fa = a.faults;
  const auto& fb = b.faults;
  return a.makespan == b.makespan &&
         a.weighted_completion == b.weighted_completion &&
         a.weighted_jct == b.weighted_jct &&
         fa.machine_failures == fb.machine_failures &&
         fa.gpu_failures == fb.gpu_failures &&
         fa.recoveries == fb.recoveries &&
         fa.cancellations == fb.cancellations &&
         fa.restarts == fb.restarts && fa.dead_letters == fb.dead_letters &&
         fa.replans == fb.replans && fa.tasks_killed == fb.tasks_killed &&
         fa.lost_compute == fb.lost_compute &&
         fa.restart_overhead == fb.restart_overhead &&
         fa.recovery_latencies == fb.recovery_latencies;
}

/// §5.1 execution invariants restricted to jobs that completed: barrier
/// ordering between consecutive rounds, arrival gating, completion = last
/// barrier. Replanned tasks move GPUs, so per-GPU sequence order against
/// the original schedule is not checked here.
void check_completed_job_invariants(const Instance& inst,
                                    const sim::SimResult& result) {
  constexpr double kEps = 1e-6;
  for (const auto& job : inst.jobs.jobs()) {
    const auto& record = result.jobs[static_cast<std::size_t>(job.id.value())];
    if (record.outcome != sim::JobOutcome::Completed) continue;
    for (TaskId id : job.task_ids()) {
      const auto& task = result.tasks[static_cast<std::size_t>(id.value())];
      EXPECT_GE(task.attempts, 1u);
      EXPECT_GE(task.start + kEps, job.spec.arrival);
      EXPECT_GE(task.compute_start + kEps, task.start);
      EXPECT_GT(task.compute_end, task.compute_start);
      EXPECT_GE(task.sync_end + kEps, task.compute_end);
    }
    for (std::uint32_t r = 1; r < job.rounds(); ++r) {
      Time barrier = 0.0;
      for (TaskId id :
           inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r - 1))) {
        barrier = std::max(
            barrier,
            result.tasks[static_cast<std::size_t>(id.value())].sync_end);
      }
      for (TaskId id :
           inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
        EXPECT_GE(result.tasks[static_cast<std::size_t>(id.value())].start +
                      kEps,
                  barrier);
      }
    }
    Time last_barrier = 0.0;
    for (TaskId id : inst.jobs.round_tasks(
             job.id, static_cast<RoundIndex>(job.rounds() - 1))) {
      last_barrier = std::max(
          last_barrier,
          result.tasks[static_cast<std::size_t>(id.value())].sync_end);
    }
    EXPECT_NEAR(record.completion, last_barrier, 1e-9);
  }
}

fault::FaultRunReport run_scenario(const Instance& inst,
                                   fault::FaultRunnerConfig config) {
  fault::FaultRunner runner(inst.cluster, inst.jobs, inst.times, inst.times,
                            std::move(config));
  return runner.run();
}

// ---------------------------------------------------------- spec parsing --

TEST(FaultSpec, ParsesAllKeys) {
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "seed=7,machine_failures=2,gpu_failures=3,mttf=500,mttr=40,"
      "cancellations=1,stragglers=2,straggler_factor=3.5,"
      "straggler_duration=25,max_retries=5,backoff_base=2,"
      "backoff_factor=1.5,backoff_cap=60,restart_overhead=0.5,"
      "replan_budget=4,horizon=900");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.machine_failures, 2u);
  EXPECT_EQ(spec.gpu_failures, 3u);
  EXPECT_DOUBLE_EQ(spec.mttf, 500.0);
  EXPECT_DOUBLE_EQ(spec.mttr, 40.0);
  EXPECT_EQ(spec.cancellations, 1u);
  EXPECT_EQ(spec.stragglers, 2u);
  EXPECT_DOUBLE_EQ(spec.straggler_factor, 3.5);
  EXPECT_DOUBLE_EQ(spec.straggler_duration, 25.0);
  EXPECT_EQ(spec.retry.max_retries, 5u);
  EXPECT_DOUBLE_EQ(spec.retry.backoff_base_s, 2.0);
  EXPECT_DOUBLE_EQ(spec.retry.backoff_factor, 1.5);
  EXPECT_DOUBLE_EQ(spec.retry.backoff_cap_s, 60.0);
  EXPECT_DOUBLE_EQ(spec.retry.restart_overhead_s, 0.5);
  EXPECT_EQ(spec.replan_budget, 4u);
  EXPECT_DOUBLE_EQ(spec.horizon, 900.0);
}

TEST(FaultSpec, EmptyStringThrows) {
  EXPECT_THROW((void)fault::parse_fault_spec(""), common::Error);
}

TEST(FaultSpec, DuplicateKeyThrowsNamingTheKey) {
  try {
    (void)fault::parse_fault_spec("mttf=10,mttr=5,mttf=20");
    FAIL() << "duplicate key accepted";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mttf"), std::string::npos);
  }
}

TEST(FaultSpec, OverflowValueThrowsNamingTheKey) {
  try {
    (void)fault::parse_fault_spec("mttf=1e9999");
    FAIL() << "overflowing value accepted";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mttf"), std::string::npos);
  }
  // Integer counts reject magnitudes past what the integral cast holds.
  EXPECT_THROW((void)fault::parse_fault_spec("gpu_failures=1e30"),
               common::Error);
}

TEST(FaultSpec, TrailingSeparatorThrows) {
  EXPECT_THROW((void)fault::parse_fault_spec("mttf=10,"), common::Error);
  EXPECT_THROW((void)fault::parse_fault_spec("mttf=10,,mttr=5"),
               common::Error);
  EXPECT_THROW((void)fault::parse_fault_spec("events=(fail_gpu:0@10;)"),
               common::Error);
}

TEST(FaultSpec, ParsesJobCompleteEvents) {
  const fault::FaultSpec spec =
      fault::parse_fault_spec("events=(complete_job:7@42)");
  ASSERT_EQ(spec.scripted.size(), 1u);
  EXPECT_EQ(spec.scripted[0].kind, fault::FaultKind::JobComplete);
  EXPECT_EQ(spec.scripted[0].job, JobId(7));
  EXPECT_DOUBLE_EQ(spec.scripted[0].time, 42.0);
}

TEST(FaultSpec, ParsesScriptedEvents) {
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "events=(fail_machine:1@30;recover_machine:1@80;fail_gpu:4@10;"
      "recover_gpu:4@15;cancel_job:3@12;straggle_gpu:2@5-25:3)");
  // straggle expands into a start+end pair.
  ASSERT_EQ(spec.scripted.size(), 7u);
  EXPECT_EQ(spec.scripted[0].kind, fault::FaultKind::MachineFail);
  EXPECT_EQ(spec.scripted[0].machine, MachineId(1));
  EXPECT_DOUBLE_EQ(spec.scripted[0].time, 30.0);
  EXPECT_EQ(spec.scripted[1].kind, fault::FaultKind::MachineRecover);
  EXPECT_EQ(spec.scripted[2].kind, fault::FaultKind::GpuFail);
  EXPECT_EQ(spec.scripted[2].gpu, GpuId(4));
  EXPECT_EQ(spec.scripted[3].kind, fault::FaultKind::GpuRecover);
  EXPECT_EQ(spec.scripted[4].kind, fault::FaultKind::JobCancel);
  EXPECT_EQ(spec.scripted[4].job, JobId(3));
  EXPECT_EQ(spec.scripted[5].kind, fault::FaultKind::StragglerStart);
  EXPECT_DOUBLE_EQ(spec.scripted[5].factor, 3.0);
  EXPECT_EQ(spec.scripted[6].kind, fault::FaultKind::StragglerEnd);
  EXPECT_DOUBLE_EQ(spec.scripted[6].time, 25.0);
}

TEST(FaultSpec, RejectsUnknownKeysAndMalformedValues) {
  EXPECT_THROW((void)fault::parse_fault_spec("bogus_knob=1"), common::Error);
  EXPECT_THROW((void)fault::parse_fault_spec("mttf=abc"), common::Error);
  EXPECT_THROW((void)fault::parse_fault_spec("events=(explode:1@2)"),
               common::Error);
  EXPECT_THROW((void)fault::parse_fault_spec("events=(fail_gpu:1)"),
               common::Error);
}

TEST(FaultSpec, BackoffIsExponentialAndCapped) {
  fault::RetryPolicy retry;
  retry.backoff_base_s = 5.0;
  retry.backoff_factor = 2.0;
  retry.backoff_cap_s = 18.0;
  EXPECT_DOUBLE_EQ(retry.backoff(1), 5.0);
  EXPECT_DOUBLE_EQ(retry.backoff(2), 10.0);
  EXPECT_DOUBLE_EQ(retry.backoff(3), 18.0);  // 20 capped
  EXPECT_DOUBLE_EQ(retry.backoff(9), 18.0);
}

// -------------------------------------------------------- plan generation --

TEST(FaultPlan, GenerationIsDeterministicInSeed) {
  const Instance inst = make_random_instance(501);
  fault::FaultSpec spec;
  spec.seed = 11;
  spec.machine_failures = 1;
  spec.gpu_failures = 2;
  spec.mttr = 30.0;
  spec.cancellations = 2;
  spec.stragglers = 1;

  const fault::FaultPlan a =
      fault::generate_fault_plan(spec, inst.cluster, inst.jobs, 600.0);
  const fault::FaultPlan b =
      fault::generate_fault_plan(spec, inst.cluster, inst.jobs, 600.0);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].machine, b.events[i].machine);
    EXPECT_EQ(a.events[i].gpu, b.events[i].gpu);
    EXPECT_EQ(a.events[i].job, b.events[i].job);
  }

  spec.seed = 12;
  const fault::FaultPlan c =
      fault::generate_fault_plan(spec, inst.cluster, inst.jobs, 600.0);
  bool any_different = a.events.size() != c.events.size();
  for (std::size_t i = 0; !any_different && i < a.events.size(); ++i) {
    any_different = a.events[i].time != c.events[i].time;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultPlan, EventsAreTimeSorted) {
  const Instance inst = make_random_instance(502);
  fault::FaultSpec spec;
  spec.seed = 3;
  spec.gpu_failures = 3;
  spec.mttr = 20.0;
  spec.cancellations = 2;
  const fault::FaultPlan plan =
      fault::generate_fault_plan(spec, inst.cluster, inst.jobs, 400.0);
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].time, plan.events[i].time);
  }
}

// -------------------------------------------------------------- scenarios --

TEST(FaultScenario, MachineFailureWithRecoveryCompletesEverything) {
  const Instance inst = make_random_instance(503, 10, 8);
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec(
      "events=(fail_machine:0@20;recover_machine:0@60)");
  const fault::FaultRunReport report = run_scenario(inst, config);

  EXPECT_GE(report.faulted.faults.gpu_failures, 1u);
  EXPECT_GE(report.faulted.faults.recoveries, 1u);
  for (const auto& job : report.faulted.jobs) {
    EXPECT_EQ(job.outcome, sim::JobOutcome::Completed);
  }
  check_completed_job_invariants(inst, report.faulted);

  // Nothing executed on the dead machine during its downtime: every
  // surviving task record on one of its GPUs lies entirely outside
  // [20, 60).
  for (const GpuId gpu : inst.cluster.machine(MachineId(0)).gpus) {
    for (const auto& task : report.faulted.tasks) {
      if (task.gpu != gpu || task.attempts == 0) continue;
      EXPECT_TRUE(task.compute_end <= 20.0 + 1e-9 ||
                  task.start >= 60.0 - 1e-9)
          << "task ran on failed GPU during downtime: start=" << task.start
          << " compute_end=" << task.compute_end;
    }
  }
  EXPECT_GE(report.degradation_ratio, 0.99);
}

TEST(FaultScenario, CancellationRemovesJobFromAggregates) {
  const Instance inst = make_random_instance(504, 8, 8);
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec("events=(cancel_job:2@5)");
  const fault::FaultRunReport report = run_scenario(inst, config);

  const auto& cancelled = report.faulted.jobs[2];
  EXPECT_EQ(cancelled.outcome, sim::JobOutcome::Cancelled);
  EXPECT_DOUBLE_EQ(cancelled.completion, 5.0);
  EXPECT_EQ(report.faulted.faults.cancellations, 1u);

  // The cancelled job contributes nothing to weighted JCT; the others
  // finish no later than fault-free (a cancellation only frees capacity).
  double expected = 0.0;
  for (std::size_t j = 0; j < report.faulted.jobs.size(); ++j) {
    const auto& job = report.faulted.jobs[j];
    if (job.outcome == sim::JobOutcome::Completed) {
      expected += job.weight * job.jct();
    }
  }
  EXPECT_NEAR(report.faulted.weighted_jct, expected, 1e-6);
  check_completed_job_invariants(inst, report.faulted);
}

TEST(FaultScenario, PermanentFailureWithoutReplanDeadLetters) {
  // No replan hook wired at all: jobs displaced by a permanent GPU
  // failure cannot be rescued and must be dead-lettered, not hang.
  const Instance inst = make_random_instance(505, 6, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  fault::FaultSpec spec = fault::parse_fault_spec("events=(fail_gpu:0@10)");
  const fault::FaultPlan plan =
      fault::generate_fault_plan(spec, inst.cluster, inst.jobs, 100.0);
  sim::SimConfig config;
  config.fault_plan = &plan;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times, config);
  const sim::SimResult result = simulator.run(schedule);

  EXPECT_GE(result.faults.dead_letters, 1u);
  std::size_t dead = 0;
  for (const auto& job : result.jobs) {
    if (job.outcome == sim::JobOutcome::DeadLettered) ++dead;
  }
  EXPECT_EQ(dead, result.faults.dead_letters);
}

TEST(FaultScenario, ExhaustedRetriesDeadLetter) {
  // max_retries=0: the first failure a job suffers exhausts its retry
  // budget even though a replan hook exists.
  const Instance inst = make_random_instance(506, 8, 8);
  fault::FaultRunnerConfig config;
  config.spec =
      fault::parse_fault_spec("max_retries=0,events=(fail_machine:0@15)");
  const fault::FaultRunReport report = run_scenario(inst, config);

  EXPECT_GE(report.faulted.faults.dead_letters, 1u);
  EXPECT_EQ(report.faulted.faults.restarts, 0u);
  for (const auto& job : report.faulted.jobs) {
    if (job.outcome == sim::JobOutcome::DeadLettered) {
      EXPECT_EQ(job.restarts, 0u);
    }
  }
  check_completed_job_invariants(inst, report.faulted);
}

TEST(FaultScenario, CombinedScenarioReportsDegradationMetrics) {
  // The acceptance scenario: a machine failure with recovery, a
  // cancellation, and an exhausted-retry dead-letter in one run.
  const Instance inst = make_random_instance(507, 12, 8);
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec(
      "max_retries=1,backoff_base=2,"
      "events=(fail_machine:0@25;recover_machine:0@70;cancel_job:1@10;"
      "fail_gpu:4@30;fail_gpu:5@40;recover_gpu:4@90;recover_gpu:5@95)");
  const fault::FaultRunReport report = run_scenario(inst, config);

  const sim::FaultStats& stats = report.faulted.faults;
  EXPECT_GE(stats.machine_failures, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_EQ(stats.cancellations, 1u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_GT(report.degradation_ratio, 0.0);
  EXPECT_GE(report.starvation, 1.0 - 1e-9);
  EXPECT_GE(report.fragmentation, 0.0);
  EXPECT_LE(report.fragmentation, 1.0);
  EXPECT_TRUE(std::isfinite(report.degradation_ratio));
  check_completed_job_invariants(inst, report.faulted);
}

TEST(FaultScenario, StragglerWindowSlowsButCompletes) {
  const Instance inst = make_random_instance(508, 8, 8);
  fault::FaultRunnerConfig config;
  config.spec =
      fault::parse_fault_spec("events=(straggle_gpu:0@0-200:4)");
  const fault::FaultRunReport report = run_scenario(inst, config);
  for (const auto& job : report.faulted.jobs) {
    EXPECT_EQ(job.outcome, sim::JobOutcome::Completed);
  }
  // A 4x slowdown on one GPU cannot speed the run up.
  EXPECT_GE(report.faulted.weighted_jct,
            report.fault_free.weighted_jct - 1e-9);
  check_completed_job_invariants(inst, report.faulted);
}

TEST(FaultScenario, ZeroReplanBudgetFallsBackToGreedy) {
  const Instance inst = make_random_instance(509, 10, 8);
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec(
      "replan_budget=0,events=(fail_machine:0@20;recover_machine:0@80)");
  const fault::FaultRunReport report = run_scenario(inst, config);
  EXPECT_EQ(report.replans_full, 0u);
  EXPECT_GE(report.replans_greedy, 1u);
  for (const auto& job : report.faulted.jobs) {
    EXPECT_EQ(job.outcome, sim::JobOutcome::Completed);
  }
  check_completed_job_invariants(inst, report.faulted);
}

// ------------------------------------------------------------ determinism --

fault::FaultRunnerConfig stochastic_config() {
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec(
      "seed=13,machine_failures=1,gpu_failures=1,mttr=30,cancellations=1,"
      "max_retries=3,backoff_base=2");
  return config;
}

TEST(FaultDeterminism, RepeatedRunsAreBitIdentical) {
  const Instance inst = make_random_instance(510, 10, 8);
  const fault::FaultRunReport a = run_scenario(inst, stochastic_config());
  const fault::FaultRunReport b = run_scenario(inst, stochastic_config());
  EXPECT_TRUE(results_identical(a.faulted, b.faulted));
  EXPECT_TRUE(results_identical(a.fault_free, b.fault_free));
  EXPECT_DOUBLE_EQ(a.degradation_ratio, b.degradation_ratio);
  ASSERT_EQ(a.plan.events.size(), b.plan.events.size());
}

TEST(FaultDeterminism, SerialAndPooledSweepsAreBitIdentical) {
  // The same four scenarios fanned across the experiment engine's pool
  // must be byte-for-byte what a serial loop produces — fault handling
  // keeps the strict (time, sequence) event order.
  const std::vector<std::uint64_t> seeds = {21, 22, 23, 24};
  auto run_cell = [&](std::size_t i) {
    const Instance inst = make_random_instance(511, 8, 8);
    fault::FaultRunnerConfig config = stochastic_config();
    config.spec.seed = seeds[i];
    return run_scenario(inst, config).faulted;
  };

  exp::Engine::Options serial_options;
  serial_options.serial = true;
  exp::Engine serial_engine(serial_options);
  const auto serial = serial_engine.map(seeds.size(), run_cell);

  exp::Engine::Options pooled_options;
  pooled_options.workers = 4;
  exp::Engine pooled_engine(pooled_options);
  const auto pooled = pooled_engine.map(seeds.size(), run_cell);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], pooled[i])) << "cell " << i;
  }
}

TEST(FaultDeterminism, QueueBackendsAgreeOnFaultRuns) {
  const Instance inst = make_random_instance(512, 8, 8);
  fault::FaultRunnerConfig calendar = stochastic_config();
  calendar.sim.event_queue = sim::QueueBackend::Calendar;
  fault::FaultRunnerConfig heap = stochastic_config();
  heap.sim.event_queue = sim::QueueBackend::Heap;
  const fault::FaultRunReport a = run_scenario(inst, calendar);
  const fault::FaultRunReport b = run_scenario(inst, heap);
  EXPECT_TRUE(results_identical(a.faulted, b.faulted));
}

// --------------------------------------------------------- sharded replan --

TEST(FaultSharded, ReplanTouchesOnlyAffectedShards) {
  // 32 GPUs in 4 racks (network domains); kill one machine in rack 0.
  // The hierarchical replan partitions displaced jobs over the surviving
  // cluster — shards that receive no displaced job must not plan.
  Instance inst;
  inst.cluster = cluster::make_simulation_cluster(32, 25.0, 4, 2);
  workload::TraceConfig trace_config;
  trace_config.job_count = 12;
  trace_config.base_arrival_rate = 0.2;
  trace_config.sync_scales = {1, 2, 2, 4};
  trace_config.rounds_scale_min = 0.05;
  trace_config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(513);
  inst.jobs = generator.generate(trace_config);
  profiler::Profiler profiler(workload::PerfModel{},
                              profiler::ProfilerConfig{}, 513);
  inst.times = profiler.exact(inst.jobs, inst.cluster);

  fault::FaultRunnerConfig config;
  config.sharded = true;
  config.spec = fault::parse_fault_spec(
      "events=(fail_machine:0@20;recover_machine:0@120)");
  const fault::FaultRunReport report = run_scenario(inst, config);

  EXPECT_GE(report.faulted.faults.replans, 1u);
  EXPECT_GT(report.replan_shards_total, 0u);
  EXPECT_LT(report.replan_shards_planned, report.replan_shards_total)
      << "every shard planned — replan is not localized";
  check_completed_job_invariants(inst, report.faulted);
}

}  // namespace
}  // namespace hare
