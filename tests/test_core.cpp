// Tests for Hare's core: the Hare_Sched_RL relaxation (fluid and LP+cuts
// modes), Algorithm 1, the α(2+α) approximation guarantee, lower bounds,
// and the Fig 1 / Fig 4 motivating scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "core/bounds.hpp"
#include "core/hare_system.hpp"
#include "opt/queyranne.hpp"
#include "core/hare_scheduler.hpp"
#include "core/relaxation.hpp"
#include "sched/sched_allox.hpp"
#include "sched/sched_homo.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::core {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

double run_objective(const Instance& inst, sched::Scheduler& scheduler) {
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  return simulator.run(schedule).weighted_completion;
}

// -------------------------------------------------------------- relaxation --

TEST(Relaxation, FluidRespectsArrivalAndPrecedence) {
  const Instance inst = make_random_instance(3);
  const HareRelaxation relaxation;
  const RelaxationResult result =
      relaxation.solve(inst.cluster, inst.jobs, inst.times);

  ASSERT_EQ(result.x_hat.size(), inst.jobs.task_count());
  for (const auto& task : inst.jobs.tasks()) {
    const std::size_t i = static_cast<std::size_t>(task.id.value());
    EXPECT_GE(result.x_hat[i] + 1e-9,
              inst.jobs.job(task.job).spec.arrival);
    EXPECT_TRUE(result.y_hat[i].valid());
    // (7): a task starts after every previous-round task's finish.
    if (task.round > 0) {
      for (TaskId prev :
           inst.jobs.round_tasks(task.job, task.round - 1)) {
        const std::size_t p = static_cast<std::size_t>(prev.value());
        EXPECT_GE(result.x_hat[i] + 1e-9,
                  result.x_hat[p] +
                      inst.times.total(task.job, result.y_hat[p]));
      }
    }
  }
}

TEST(Relaxation, HIsXPlusHalfMaxTc) {
  const Instance inst = make_random_instance(4);
  const HareRelaxation relaxation;
  const RelaxationResult result =
      relaxation.solve(inst.cluster, inst.jobs, inst.times);
  for (const auto& task : inst.jobs.tasks()) {
    const std::size_t i = static_cast<std::size_t>(task.id.value());
    EXPECT_NEAR(result.h[i],
                result.x_hat[i] + 0.5 * inst.times.max_tc(task.job), 1e-9);
  }
}

TEST(Relaxation, LpModeAddsCutsAndLowerBounds) {
  const Instance inst = make_random_instance(5, /*jobs=*/5, /*gpus=*/3);
  RelaxationConfig fluid_config;
  const RelaxationResult fluid =
      HareRelaxation(fluid_config).solve(inst.cluster, inst.jobs, inst.times);

  RelaxationConfig lp_config;
  lp_config.mode = RelaxMode::LpCuts;
  const RelaxationResult lp =
      HareRelaxation(lp_config).solve(inst.cluster, inst.jobs, inst.times);

  EXPECT_GE(lp.lp_solves, 1u);
  // The LP relaxes non-preemption into subset inequalities, so its value
  // cannot exceed the fluid pass's realized objective under the same ŷ.
  EXPECT_LE(lp.objective, fluid.objective + 1e-6);
  EXPECT_GT(lp.objective, 0.0);
}

TEST(Relaxation, LpSolutionSatisfiesQueyranneOnEveryMachine) {
  const Instance inst = make_random_instance(6, 4, 3);
  RelaxationConfig config;
  config.mode = RelaxMode::LpCuts;
  config.max_cut_rounds = 32;
  const RelaxationResult lp =
      HareRelaxation(config).solve(inst.cluster, inst.jobs, inst.times);

  // Re-run separation at the final point: no machine may still be violated.
  std::vector<std::vector<TaskId>> machine_tasks(inst.cluster.gpu_count());
  for (const auto& task : inst.jobs.tasks()) {
    machine_tasks[static_cast<std::size_t>(
                      lp.y_hat[static_cast<std::size_t>(task.id.value())]
                          .value())]
        .push_back(task.id);
  }
  for (std::size_t g = 0; g < machine_tasks.size(); ++g) {
    std::vector<double> t;
    std::vector<double> x;
    for (TaskId id : machine_tasks[g]) {
      t.push_back(
          inst.times.tc(inst.jobs.task(id).job, GpuId(static_cast<int>(g))));
      x.push_back(lp.x_hat[static_cast<std::size_t>(id.value())]);
    }
    const auto cut = opt::separate_queyranne_cut(t, x, 1e-4);
    EXPECT_TRUE(cut.subset.empty()) << "machine " << g << " violated by "
                                    << cut.violation;
  }
}

TEST(Relaxation, ModesAgreeOnOrderingShape) {
  // On a tiny instance the two modes should rank jobs' first tasks the
  // same way (short/heavy before long/light).
  workload::JobSet jobs;
  workload::JobSpec heavy;
  heavy.rounds = 1;
  heavy.weight = 4.0;
  jobs.add_job(heavy);
  workload::JobSpec light;
  light.rounds = 6;
  light.weight = 1.0;
  jobs.add_job(light);
  // One GPU, so the two jobs contend and the relaxation must order them.
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(2, 1);
  for (int j = 0; j < 2; ++j) {
    times.set(JobId(j), GpuId(0), 1.0, 0.1);
  }

  for (RelaxMode mode : {RelaxMode::Fluid, RelaxMode::LpCuts}) {
    RelaxationConfig config;
    config.mode = mode;
    const RelaxationResult result =
        HareRelaxation(config).solve(shell.cluster, jobs, times);
    // Heavy-short job's task must carry the smaller H.
    EXPECT_LT(result.h[0],
              result.h[jobs.job(JobId(1)).task_ids().front().value()]);
  }
}

// ------------------------------------------------------------- Algorithm 1 --

class HareSchedulerValidityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HareSchedulerValidityTest, ValidCompleteSchedules) {
  const Instance inst = make_random_instance(GetParam());
  for (Placement placement :
       {Placement::EarliestAvailable, Placement::EarliestFinish}) {
    for (SyncScheme sync : {SyncScheme::Relaxed, SyncScheme::Strict}) {
      HareConfig config;
      config.placement = placement;
      config.sync = sync;
      HareScheduler scheduler(config);
      const sim::Schedule schedule =
          scheduler.schedule({inst.cluster, inst.jobs, inst.times});
      EXPECT_EQ(schedule.task_count(), inst.jobs.task_count());
      EXPECT_NO_THROW(sim::validate_schedule(schedule, inst.jobs));
      const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
      const sim::SimResult result = simulator.run(schedule);
      EXPECT_GT(result.weighted_completion, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HareSchedulerValidityTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(HareScheduler, StrictSyncGangsOnDistinctGpus) {
  const Instance inst = make_random_instance(19);
  HareConfig config;
  config.sync = SyncScheme::Strict;
  HareScheduler scheduler(config);
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  std::vector<int> task_gpu(inst.jobs.task_count(), -1);
  for (std::size_t g = 0; g < schedule.sequences.size(); ++g) {
    for (TaskId id : schedule.sequences[g]) {
      task_gpu[static_cast<std::size_t>(id.value())] = static_cast<int>(g);
    }
  }
  for (const auto& job : inst.jobs.jobs()) {
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      std::set<int> gpus;
      for (TaskId id :
           inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
        gpus.insert(task_gpu[static_cast<std::size_t>(id.value())]);
      }
      EXPECT_EQ(gpus.size(), job.tasks_per_round());
    }
  }
}

TEST(HareScheduler, RelaxedSyncCanSerializeRoundOnFastGpu) {
  // Fig 4(b): 2-task rounds, one fast GPU (1s) and one very slow (10s):
  // relaxed Hare serializes both tasks on the fast GPU (2s/round) instead
  // of gang-waiting on the slow one (10s/round).
  const Instance inst = make_uniform_instance({1.0, 10.0}, 1, 3, 2, 0.05);
  HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.sequences[0].size(), 6u);  // everything on the fast GPU
  EXPECT_TRUE(schedule.sequences[1].empty());

  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  EXPECT_LT(result.jobs[0].completion, 8.0);  // vs ~30s ganged
}

TEST(HareScheduler, RelaxedNoWorseThanStrictOnAverage) {
  double relaxed_total = 0.0;
  double strict_total = 0.0;
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    const Instance inst = make_random_instance(seed);
    HareConfig relaxed_config;
    HareScheduler relaxed(relaxed_config);
    HareConfig strict_config;
    strict_config.sync = SyncScheme::Strict;
    HareScheduler strict(strict_config);
    relaxed_total += run_objective(inst, relaxed);
    strict_total += run_objective(inst, strict);
  }
  EXPECT_LE(relaxed_total, strict_total * 1.02);
}

TEST(HareScheduler, LpModeProducesComparableSchedules) {
  const Instance inst = make_random_instance(50, 6, 4);
  HareConfig fluid_config;
  HareScheduler fluid(fluid_config);
  HareConfig lp_config;
  lp_config.relaxation.mode = RelaxMode::LpCuts;
  HareScheduler lp(lp_config);
  const double fluid_obj = run_objective(inst, fluid);
  const double lp_obj = run_objective(inst, lp);
  // Both are heuristics; neither should be wildly worse than the other.
  EXPECT_LT(lp_obj, fluid_obj * 2.0);
  EXPECT_LT(fluid_obj, lp_obj * 2.0);
}

TEST(HareScheduler, RejectsOversizedSyncScale) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.tasks_per_round = 4;  // cluster has 1 GPU
  jobs.add_job(spec);
  profiler::TimeTable times(1, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);
  HareScheduler scheduler;
  EXPECT_THROW(scheduler.schedule({inst.cluster, jobs, times}),
               common::Error);
}

// ------------------------------------------------------------------ bounds --

class BoundsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsPropertyTest, LowerBoundsHoldForEveryScheduler) {
  const Instance inst = make_random_instance(GetParam());
  const double lb =
      combined_lower_bound(inst.cluster, inst.jobs, inst.times);
  EXPECT_GT(lb, 0.0);

  HareScheduler hare;
  sched::SchedHomoScheduler homo;
  sched::SchedAlloxScheduler allox;
  for (sched::Scheduler* scheduler :
       std::initializer_list<sched::Scheduler*>{&hare, &homo, &allox}) {
    const double objective = run_objective(inst, *scheduler);
    EXPECT_GE(objective + 1e-6, lb) << scheduler->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsPropertyTest,
                         ::testing::Values(60, 61, 62, 63, 64, 65));

class ApproximationRatioTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ApproximationRatioTest, HareWithinGuarantee) {
  // Theorem 4: Algorithm 1 is α(2+α)-approximate. Our lower bound is not
  // tight, so the measured ratio against it must in particular respect the
  // guarantee.
  const Instance inst = make_random_instance(GetParam());
  HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  const ApproximationReport report =
      check_approximation(inst.cluster, inst.jobs, inst.times, result);
  EXPECT_GE(report.alpha, 1.0);
  EXPECT_GT(report.ratio, 0.99);  // can't beat a valid lower bound
  EXPECT_TRUE(report.within_guarantee())
      << "ratio " << report.ratio << " vs guarantee " << report.guarantee;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationRatioTest,
                         ::testing::Values(70, 71, 72, 73, 74, 75, 76, 77, 78,
                                           79));

TEST(Bounds, CriticalPathExactOnSerialJob) {
  // One job, one GPU: the bound is exact.
  const Instance inst = make_uniform_instance({2.0}, 1, 3, 1, 0.5);
  const double lb = critical_path_lower_bound(inst.jobs, inst.times);
  EXPECT_DOUBLE_EQ(lb, 3 * 2.5);
  HareScheduler scheduler;
  EXPECT_NEAR(run_objective(inst, scheduler), lb, 0.2);
}

TEST(Bounds, VolumeBoundScalesWithLoad) {
  const Instance small = make_uniform_instance({1.0, 1.0}, 2, 2, 2);
  const Instance large = make_uniform_instance({1.0, 1.0}, 8, 2, 2);
  EXPECT_GT(volume_lower_bound(large.cluster, large.jobs, large.times),
            volume_lower_bound(small.cluster, small.jobs, small.times));
}

// --------------------------------------------------------- Fig 1 scenario --

TEST(Fig1Toy, HareBeatsJobLevelAndObliviousSchedulers) {
  // The Fig 1 structure: 3 heterogeneous GPUs; jobs with different GPU
  // affinities and a job that synchronizes every 2 tasks. Hare must beat
  // the Allox-style job-level scheduler (idle-slot reuse + intra-job
  // parallelism) and the heterogeneity-oblivious gang scheduler.
  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 1)
                                 .add_machine(cluster::GpuType::T4, 1)
                                 .add_machine(cluster::GpuType::K80, 1)
                                 .build();
  workload::JobSet jobs;
  workload::JobSpec j1;
  j1.rounds = 2;
  j1.tasks_per_round = 2;
  jobs.add_job(j1);
  workload::JobSpec j2;
  j2.rounds = 4;
  j2.tasks_per_round = 1;
  jobs.add_job(j2);
  workload::JobSpec j3;
  j3.rounds = 2;
  j3.tasks_per_round = 2;
  jobs.add_job(j3);

  profiler::TimeTable times(3, 3);
  // Per-GPU single-task seconds (Fig 1's table, same spirit): J2 strongly
  // prefers one GPU; J1/J3's flat profiles make their 2-task rounds
  // genuinely parallelizable — serializing them (AlloX) doubles the round.
  const double t[3][3] = {{1.0, 1.1, 1.2},   // J1
                          {1.0, 0.4, 2.0},   // J2
                          {1.1, 1.2, 1.0}};  // J3
  for (int j = 0; j < 3; ++j) {
    for (int g = 0; g < 3; ++g) {
      times.set(JobId(j), GpuId(g), t[j][g], 0.05);
    }
  }

  HareScheduler hare;
  sched::SchedAlloxScheduler allox;
  sched::SchedHomoScheduler homo;

  const sim::Simulator simulator(
      cluster, jobs,
      times);  // actual == profiled for the toy
  const double hare_jct =
      simulator.run(hare.schedule({cluster, jobs, times})).weighted_jct;
  const double allox_jct =
      simulator.run(allox.schedule({cluster, jobs, times})).weighted_jct;
  const double homo_jct =
      simulator.run(homo.schedule({cluster, jobs, times})).weighted_jct;

  EXPECT_LT(hare_jct, allox_jct);
  EXPECT_LT(hare_jct, homo_jct);
}

// ----------------------------------------------------------- system facade --

TEST(HareSystem, EndToEndRunAndComparison) {
  core::HareSystem system(cluster::make_testbed_cluster());
  for (int j = 0; j < 6; ++j) {
    workload::JobSpec spec;
    spec.model = static_cast<workload::ModelType>(j % 8);
    spec.rounds = 3;
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(j % 3);
    system.submit(spec);
  }
  const auto reports = system.run_comparison();
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_EQ(reports[0].scheduler, "Hare");
  for (const auto& report : reports) {
    EXPECT_GT(report.result.weighted_jct, 0.0);
    EXPECT_GE(report.approximation.ratio, 0.99);
  }
}

TEST(HareSystem, ProfileDbReusedAcrossRuns) {
  core::HareSystem system(cluster::make_testbed_cluster());
  workload::JobSpec spec;
  spec.model = workload::ModelType::ResNet50;
  spec.rounds = 2;
  system.submit(spec);
  (void)system.profiled_times();
  const std::size_t entries = system.profile_db().size();
  EXPECT_GT(entries, 0u);

  system.submit(spec);  // identical job: no new profiling keys needed
  (void)system.profiled_times();
  EXPECT_EQ(system.profile_db().size(), entries);
}

}  // namespace
}  // namespace hare::core
