// Unit tests for the optimization substrate: Hungarian assignment, the
// two-phase simplex LP solver, and Queyranne cut separation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "opt/hungarian.hpp"
#include "opt/queyranne.hpp"
#include "opt/simplex.hpp"

namespace hare::opt {
namespace {

// -------------------------------------------------------------- hungarian --

TEST(Hungarian, IdentityMatrix) {
  // Diagonal zeros: optimal is the identity assignment with cost 0.
  const std::size_t n = 4;
  std::vector<double> cost(n * n, 1.0);
  for (std::size_t i = 0; i < n; ++i) cost[i * n + i] = 0.0;
  const auto result = solve_assignment(cost, n, n);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.assignment[i], static_cast<int>(i));
  }
}

TEST(Hungarian, KnownThreeByThree) {
  // Classic example: optimum is 5 (1+3+1... verify by brute force below).
  const std::vector<double> cost = {4, 1, 3,  //
                                    2, 0, 5,  //
                                    3, 2, 2};
  const auto result = solve_assignment(cost, 3, 3);
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);  // 1 + 2 + 2
}

TEST(Hungarian, RectangularLeavesColumnsUnused) {
  const std::vector<double> cost = {10, 1, 10, 10,  //
                                    10, 10, 2, 10};
  const auto result = solve_assignment(cost, 2, 4);
  EXPECT_DOUBLE_EQ(result.total_cost, 3.0);
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_EQ(result.assignment[1], 2);
}

TEST(Hungarian, AssignmentIsPermutation) {
  common::Rng rng(1);
  const std::size_t n = 12;
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform(0.0, 100.0);
  const auto result = solve_assignment(cost, n, n);
  std::vector<int> seen(n, 0);
  for (int col : result.assignment) {
    ASSERT_GE(col, 0);
    ASSERT_LT(col, static_cast<int>(n));
    ++seen[static_cast<std::size_t>(col)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

/// Brute-force optimum for small matrices.
double brute_force_assignment(const std::vector<double>& cost, std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cost[i * n + perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  common::Rng rng(GetParam());
  const std::size_t n = 6;
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform(0.0, 10.0);
  const auto result = solve_assignment(cost, n, n);
  EXPECT_NEAR(result.total_cost, brute_force_assignment(cost, n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Hungarian, RejectsBadShapes) {
  EXPECT_THROW(solve_assignment({1.0}, 2, 1), common::Error);
  EXPECT_THROW(solve_assignment({1.0, 2.0}, 1, 3), common::Error);
}

// ---------------------------------------------------------------- simplex --

TEST(Simplex, SimpleMinimization) {
  // min -x - 2y  s.t. x + y <= 4, x <= 2  =>  x=2, y=2, obj=-6.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 4.0);
  lp.add_constraint({{x, 1.0}}, Relation::LessEqual, 2.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, -8.0, 1e-7);  // actually y=4, x=0: -8
  EXPECT_NEAR(solution.values[y], 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t. x + y = 3, x - y = 1  => x=2, y=1, obj=3.
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  const auto y = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 1.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.values[x], 2.0, 1e-7);
  EXPECT_NEAR(solution.values[y], 1.0, 1e-7);
  EXPECT_NEAR(solution.objective, 3.0, 1e-7);
}

TEST(Simplex, GreaterEqualWithMinimization) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2  =>  x=10? x cheaper: x=10, y=0.
  LinearProgram lp;
  const auto x = lp.add_variable(2.0);
  const auto y = lp.add_variable(3.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, 10.0);
  lp.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 20.0, 1e-7);
  EXPECT_NEAR(solution.values[x], 10.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, 1.0}}, Relation::LessEqual, 1.0);
  lp.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(lp.solve().status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);  // minimize -x, x unbounded above
  lp.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 0.0);
  EXPECT_EQ(lp.solve().status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -5  (i.e. x >= 5).
  LinearProgram lp;
  const auto x = lp.add_variable(1.0);
  lp.add_constraint({{x, -1.0}}, Relation::LessEqual, -5.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.values[x], 5.0, 1e-7);
}

TEST(Simplex, RepeatedTermsAccumulate) {
  // x + x <= 4  =>  x <= 2; min -x  => x = 2.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  lp.add_constraint({{x, 1.0}, {x, 1.0}}, Relation::LessEqual, 4.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.values[x], 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp;
  const auto x = lp.add_variable(-1.0);
  const auto y = lp.add_variable(-1.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 2.0);
  lp.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::LessEqual, 4.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, -2.0, 1e-7);
}

TEST(Simplex, SchedulingShapedLp) {
  // min C  s.t. C >= x + 3, x >= 2  =>  C = 5.
  LinearProgram lp;
  const auto x = lp.add_variable(0.0);
  const auto c = lp.add_variable(1.0);
  lp.add_constraint({{c, 1.0}, {x, -1.0}}, Relation::GreaterEqual, 3.0);
  lp.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
  const auto solution = lp.solve();
  ASSERT_TRUE(solution.optimal());
  EXPECT_NEAR(solution.objective, 5.0, 1e-7);
}

TEST(Simplex, UnknownVariableRejected) {
  LinearProgram lp;
  (void)lp.add_variable(1.0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::LessEqual, 1.0),
               common::Error);
}

class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, FeasibleBoundedProblemsSolve) {
  // Random box-bounded LPs are always feasible (origin) and bounded; the
  // solver must return Optimal with all constraints satisfied.
  common::Rng rng(GetParam());
  LinearProgram lp;
  const std::size_t n = 6;
  std::vector<std::size_t> vars;
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(lp.add_variable(rng.uniform(-1.0, 1.0)));
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  for (std::size_t i = 0; i < n; ++i) {
    lp.add_constraint({{vars[i], 1.0}}, Relation::LessEqual,
                      rng.uniform(1.0, 10.0));
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<std::pair<std::size_t, double>> terms;
    std::vector<double> coeffs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      coeffs[i] = rng.uniform(0.0, 1.0);
      terms.emplace_back(vars[i], coeffs[i]);
    }
    const double bound = rng.uniform(5.0, 20.0);
    lp.add_constraint(terms, Relation::LessEqual, bound);
    rows.push_back(coeffs);
    rhs.push_back(bound);
  }
  const auto solution = lp.solve();
  ASSERT_EQ(solution.status, LpStatus::Optimal);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double lhs = 0.0;
    for (std::size_t i = 0; i < n; ++i) lhs += rows[r][i] * solution.values[i];
    EXPECT_LE(lhs, rhs[r] + 1e-6);
  }
  for (double v : solution.values) EXPECT_GE(v, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// -------------------------------------------------------------- queyranne --

TEST(Queyranne, FeasiblePointHasNoCut) {
  // Sequential schedule x = (0, 2, 5) with t = (2, 3, 4) satisfies every
  // subset inequality (it is a real single-machine schedule).
  const std::vector<double> t = {2.0, 3.0, 4.0};
  const std::vector<double> x = {0.0, 2.0, 5.0};
  const auto cut = separate_queyranne_cut(t, x);
  EXPECT_TRUE(cut.subset.empty());
}

TEST(Queyranne, AllZeroStartsAreCut) {
  // Everything starting at 0 violates the pair/triple inequalities.
  const std::vector<double> t = {2.0, 3.0, 4.0};
  const std::vector<double> x = {0.0, 0.0, 0.0};
  const auto cut = separate_queyranne_cut(t, x);
  ASSERT_FALSE(cut.subset.empty());
  EXPECT_GT(cut.violation, 0.0);
  // The worst prefix is the full set here.
  EXPECT_EQ(cut.subset.size(), 3u);
}

TEST(Queyranne, PartialViolationFindsPrefix) {
  // Two tasks overlapping at the front, one legitimately late.
  const std::vector<double> t = {2.0, 2.0, 1.0};
  const std::vector<double> x = {0.0, 0.5, 100.0};
  const auto cut = separate_queyranne_cut(t, x);
  ASSERT_EQ(cut.subset.size(), 2u);
  EXPECT_TRUE((cut.subset[0] == 0 && cut.subset[1] == 1) ||
              (cut.subset[0] == 1 && cut.subset[1] == 0));
}

TEST(Queyranne, SingleTaskNeverCut) {
  const auto cut = separate_queyranne_cut({5.0}, {0.0});
  EXPECT_TRUE(cut.subset.empty());
}

TEST(Queyranne, FullSetBound) {
  // 1/2 [ (2+3)^2 + (4+9) ] = 1/2 [25 + 13] = 19.
  EXPECT_DOUBLE_EQ(queyranne_full_set_bound({2.0, 3.0}), 19.0);
  EXPECT_DOUBLE_EQ(queyranne_full_set_bound({}), 0.0);
}

TEST(Queyranne, SizeMismatchThrows) {
  EXPECT_THROW(separate_queyranne_cut({1.0, 2.0}, {0.0}), common::Error);
}

TEST(Queyranne, AnySingleMachineScheduleIsFeasible) {
  // Property: sequential schedules in any order satisfy all subsets.
  common::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    std::vector<double> t(n);
    for (auto& v : t) v = rng.uniform(0.5, 5.0);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_int(i + 1)]);
    }
    std::vector<double> x(n, 0.0);
    double clock = 0.0;
    for (std::size_t k : order) {
      x[k] = clock;
      clock += t[k];
    }
    EXPECT_TRUE(separate_queyranne_cut(t, x).subset.empty());
  }
}

}  // namespace
}  // namespace hare::opt
