// Hierarchical sharded planning.
//
// Pins the two contracts the shard module sells:
//  (a) fidelity — with one shard the hierarchical planner reproduces the
//      flat core::HareScheduler bit for bit (sequences, predicted starts,
//      objective), for both relaxation modes;
//  (b) determinism — the canonical-order merge makes the global schedule
//      independent of shard planning/completion order (shuffled-permutation
//      planning, parallel vs serial fan-out, nested invocation from a pool
//      worker all agree bit for bit).
// Plus partition structure (exact cover, domain alignment, determinism) and
// the incremental Queyranne separator (identical cut trajectories to the
// full per-round sort, with measured re-sort savings).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "core/hare.hpp"
#include "exp/engine.hpp"
#include "opt/queyranne.hpp"
#include "shard/hierarchical_planner.hpp"
#include "shard/shard_partition.hpp"
#include "test_util.hpp"
#include "workload/feasibility.hpp"

namespace hare {
namespace {

/// Multi-domain random instance: `gpus` GPUs on 4-GPU machines grouped into
/// network domains of `machines_per_domain`, plus a generated trace.
testing::Instance make_domain_instance(std::uint64_t seed,
                                       std::size_t job_count,
                                       std::size_t gpus,
                                       std::size_t machines_per_domain) {
  testing::Instance instance;
  instance.cluster =
      cluster::make_simulation_cluster(gpus, 25.0, 4, machines_per_domain);

  workload::TraceConfig config;
  config.job_count = job_count;
  config.base_arrival_rate = 0.2;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(seed);
  instance.jobs = generator.generate(config);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

void expect_same_schedule(const sim::Schedule& a, const sim::Schedule& b) {
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t g = 0; g < a.sequences.size(); ++g) {
    EXPECT_EQ(a.sequences[g], b.sequences[g]) << "gpu " << g;
  }
  // Bit-identical, not approximately equal: sharding and fan-out must never
  // change a number, only wall-clock.
  EXPECT_EQ(a.predicted_start, b.predicted_start);
  EXPECT_EQ(a.predicted_objective, b.predicted_objective);
}

// ---- Partition structure --------------------------------------------------

void expect_exact_cover(const cluster::Cluster& cluster,
                        const shard::ShardPartition& partition) {
  std::vector<int> gpu_seen(cluster.gpu_count(), 0);
  std::vector<int> machine_seen(cluster.machine_count(), 0);
  for (const auto& s : partition.shards) {
    EXPECT_FALSE(s.machines.empty()) << "shard " << s.index;
    EXPECT_EQ(s.sub.gpu_count(), s.gpus.size());
    EXPECT_EQ(s.sub.machine_count(), s.machines.size());
    for (const MachineId m : s.machines) {
      ++machine_seen[static_cast<std::size_t>(m.value())];
    }
    for (std::size_t lg = 0; lg < s.gpus.size(); ++lg) {
      const GpuId global = s.gpus[lg];
      ++gpu_seen[static_cast<std::size_t>(global.value())];
      // Positional re-indexing: local GPU lg is exactly gpus[lg] globally,
      // with the same type.
      EXPECT_EQ(s.sub.gpu(GpuId(static_cast<int>(lg))).type,
                cluster.gpu(global).type);
    }
  }
  for (const int c : gpu_seen) EXPECT_EQ(c, 1);
  for (const int c : machine_seen) EXPECT_EQ(c, 1);
}

TEST(ShardPartition, ExactCoverAcrossTargets) {
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(64, 25.0, 4, 4);
  ASSERT_GE(cluster.domain_count(), 2u);
  for (const std::size_t target : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 16u, 1000u}) {
    SCOPED_TRACE(target);
    const shard::ShardPartition partition =
        shard::partition_cluster(cluster, target);
    expect_exact_cover(cluster, partition);
    const std::size_t expected =
        target == 0
            ? cluster.domain_count()
            : std::clamp<std::size_t>(target, 1, cluster.machine_count());
    EXPECT_EQ(partition.size(), expected);
  }
}

TEST(ShardPartition, DefaultFollowsDomains) {
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(64, 25.0, 4, 4);
  const shard::ShardPartition partition = shard::partition_cluster(cluster, 0);
  ASSERT_EQ(partition.size(), cluster.domain_count());
  // One shard per domain: every machine of a shard shares one domain.
  for (const auto& s : partition.shards) {
    const std::size_t domain = cluster.machine(s.machines.front()).domain;
    for (const MachineId m : s.machines) {
      EXPECT_EQ(cluster.machine(m).domain, domain);
    }
  }
}

TEST(ShardPartition, SubSplitBalancesGpus) {
  // More shards than domains: domains split internally on machine
  // boundaries. Uniform 4-domain × 4-machine × 4-GPU cluster → 8 shards of
  // exactly 8 GPUs.
  cluster::ClusterBuilder builder;
  for (std::size_t m = 0; m < 16; ++m) {
    builder.add_machine(cluster::GpuType::V100, 4, 25.0, {}, m / 4);
  }
  const cluster::Cluster cluster = builder.build();
  const shard::ShardPartition partition = shard::partition_cluster(cluster, 8);
  ASSERT_EQ(partition.size(), 8u);
  expect_exact_cover(cluster, partition);
  for (const auto& s : partition.shards) {
    EXPECT_EQ(s.gpus.size(), 8u);
  }
}

TEST(ShardPartition, Deterministic) {
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(96, 25.0, 4, 3);
  for (const std::size_t target : {0u, 3u, 7u}) {
    const shard::ShardPartition a = shard::partition_cluster(cluster, target);
    const shard::ShardPartition b = shard::partition_cluster(cluster, target);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a.shards[s].machines, b.shards[s].machines);
      EXPECT_EQ(a.shards[s].gpus, b.shards[s].gpus);
    }
  }
}

// ---- Fidelity: one shard == flat planner ----------------------------------

TEST(HierarchicalPlanner, OneShardMatchesFlatPlanner) {
  for (const std::uint64_t seed : {3ull, 17ull, 77ull}) {
    for (const auto mode : {core::RelaxMode::Fluid, core::RelaxMode::LpCuts}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " mode=" << static_cast<int>(mode));
      // Single-domain cluster: target 0 → one shard covering everything.
      const testing::Instance instance =
          testing::make_random_instance(seed, 10, 8);
      const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                        instance.times};

      core::HareConfig hare;
      hare.relaxation.mode = mode;
      core::HareScheduler flat(hare);
      const sim::Schedule reference = flat.schedule(input);

      shard::ShardPlannerConfig config;
      config.shards = 1;
      config.hare = hare;
      shard::HierarchicalPlanner planner(config);
      expect_same_schedule(reference, planner.schedule(input));
      EXPECT_EQ(planner.last_plan().shard_count, 1u);
    }
  }
}

// ---- Determinism: merge is independent of planning order ------------------

TEST(HierarchicalPlanner, MergeIndependentOfShardPlanOrder) {
  const testing::Instance instance = make_domain_instance(21, 24, 64, 4);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  shard::ShardPlannerConfig config;
  config.shards = 4;
  shard::HierarchicalPlanner planner(config);
  const sim::Schedule reference = planner.schedule(input);
  ASSERT_EQ(planner.last_plan().shard_count, 4u);
  sim::validate_schedule(reference, instance.jobs);

  std::vector<std::size_t> order(4);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 6; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    SCOPED_TRACE(::testing::Message() << "order " << order[0] << order[1]
                                      << order[2] << order[3]);
    expect_same_schedule(reference, planner.schedule_with_order(input, order));
  }
  // Reversed order, explicitly.
  expect_same_schedule(reference,
                       planner.schedule_with_order(input, {3, 2, 1, 0}));
}

TEST(HierarchicalPlanner, ParallelMatchesSerialFanOut) {
  const testing::Instance instance = make_domain_instance(9, 20, 64, 4);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  shard::ShardPlannerConfig serial_config;
  serial_config.shards = 4;
  serial_config.serial = true;
  shard::HierarchicalPlanner serial_planner(serial_config);
  const sim::Schedule reference = serial_planner.schedule(input);

  shard::ShardPlannerConfig pooled_config;
  pooled_config.shards = 4;
  pooled_config.workers = 4;
  shard::HierarchicalPlanner pooled_planner(pooled_config);
  expect_same_schedule(reference, pooled_planner.schedule(input));
}

TEST(HierarchicalPlanner, LpMaxJobsSelectsModePerShard) {
  // Dense instance (24 jobs on ~16 GPUs) so the per-shard LP relaxations
  // actually have violated subset constraints to cut.
  const testing::Instance instance = make_domain_instance(30, 24, 16, 1);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  shard::ShardPlannerConfig config;
  config.shards = 4;
  config.lp_max_jobs = 1000;  // every shard small enough → LpCuts everywhere
  shard::HierarchicalPlanner planner(config);
  const sim::Schedule schedule = planner.schedule(input);
  sim::validate_schedule(schedule, instance.jobs);

  std::size_t cuts = 0;
  for (const auto& s : planner.last_plan().shards) cuts += s.cut_count;
  EXPECT_GE(cuts, 1u) << "LpCuts shards should report their cut counts";

  // Threshold 1 forces Fluid on every non-trivial shard: still a valid,
  // deterministic plan.
  config.lp_max_jobs = 1;
  shard::HierarchicalPlanner fluid_planner(config);
  sim::validate_schedule(fluid_planner.schedule(input), instance.jobs);
}

TEST(HierarchicalPlanner, NestedInvocationFromPoolWorkerAgrees) {
  const testing::Instance instance = make_domain_instance(5, 16, 64, 4);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  shard::ShardPlannerConfig config;
  config.shards = 4;
  shard::HierarchicalPlanner direct_planner(config);
  const sim::Schedule reference = direct_planner.schedule(input);

  // Plan from inside an exp fan-out cell: the planner must detect the pool
  // worker, degrade its own fan-out to inline serial (no second pool, no
  // deadlock), and still produce the identical schedule.
  exp::Engine engine(exp::Engine::Options{2, false});
  const auto schedules = engine.map(2, [&](std::size_t) {
    shard::HierarchicalPlanner nested(config);
    return nested.schedule(input);
  });
  for (const sim::Schedule& s : schedules) expect_same_schedule(reference, s);
}

// ---- Cross-shard migration ------------------------------------------------

/// Adversarial straddling mix. Shard 0 mixes one fast V100 with seven slow
/// K80s; shard 1 is 8 uniform T4s. The level-1 fluid estimate prices a
/// shard at its *best* fitting type's round time over *all* fitting GPUs,
/// so the mixed shard masquerades as 8 V100s while its honest capacity is
/// barely 3 V100-equivalents — every light job straddles the boundary
/// toward the mirage. The memory-heavy Transformer jobs (batch sized past
/// the K80's 12 GiB) cannot gang on the single V100, so they land on the
/// T4 shard and inflate its load estimate, luring still more lights onto
/// the mirage shard. The flat planner, placing on real per-GPU times,
/// spreads the lights across both pools. Migration must notice the
/// realized shard-0 horizon and walk the straddlers back to the T4 shard.
testing::Instance make_straddling_instance(std::size_t big_jobs,
                                           std::size_t light_jobs,
                                           std::uint64_t seed) {
  testing::Instance instance;
  cluster::ClusterBuilder builder;
  builder.add_machine(cluster::GpuType::V100, 1, 25.0, {}, 0);
  builder.add_machine(cluster::GpuType::K80, 7, 25.0, {}, 0);
  builder.add_machine(cluster::GpuType::T4, 4, 25.0, {}, 1);
  builder.add_machine(cluster::GpuType::T4, 4, 25.0, {}, 1);
  instance.cluster = builder.build();

  // Smallest Transformer batch whose footprint overflows a 12 GiB K80 (it
  // must still fit the 16 GiB V100s/T4s — asserted by the tests).
  const workload::ModelSpec& transformer =
      workload::model_spec(workload::ModelType::Transformer);
  std::uint32_t big_batch = transformer.default_batch_size;
  while (workload::task_memory_footprint(transformer, big_batch) <=
         cluster::gpu_spec(cluster::GpuType::K80).memory) {
    big_batch += transformer.default_batch_size;
  }
  for (std::size_t i = 0; i < light_jobs; ++i) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::ResNet50;
    spec.weight = 1.0;
    spec.rounds = 4;
    spec.tasks_per_round = 2;
    spec.name = "light";
    instance.jobs.add_job(spec);
  }
  for (std::size_t i = 0; i < big_jobs; ++i) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::Transformer;
    spec.batch_size = big_batch;
    spec.weight = 2.0;
    spec.rounds = 4;
    spec.tasks_per_round = 4;  // needs 4 fitting GPUs: infeasible on shard 0
    spec.name = "big";
    instance.jobs.add_job(spec);
  }

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

TEST(ShardMigration, ClosesStraddlingObjectiveGap) {
  // Pure movable mix: every job fits both shards, so the straddlers that
  // pile onto the mirage shard are exactly the jobs migration can rescue.
  const testing::Instance instance = make_straddling_instance(0, 16, 11);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};
  core::HareScheduler flat(core::HareConfig{});
  const double flat_objective =
      flat.schedule(input).predicted_objective;
  ASSERT_GT(flat_objective, 0.0);

  shard::ShardPlannerConfig off;
  off.shards = 2;
  off.migration_max_moves = 0;
  shard::HierarchicalPlanner frozen(off);
  const sim::Schedule pre = frozen.schedule(input);
  sim::validate_schedule(pre, instance.jobs);
  const double ratio_pre = pre.predicted_objective / flat_objective;
  EXPECT_EQ(frozen.last_plan().migrated_jobs, 0u);
  // The mirage shard really absorbed the bulk of the mix (13 of 16 jobs at
  // the recorded seed) while holding a fraction of the honest capacity.
  EXPECT_GT(frozen.last_plan().shards[0].jobs,
            2 * frozen.last_plan().shards[1].jobs);

  shard::ShardPlannerConfig on = off;
  on.migration_max_moves = 8;
  shard::HierarchicalPlanner mover(on);
  const sim::Schedule post = mover.schedule(input);
  sim::validate_schedule(post, instance.jobs);
  const double ratio_post = post.predicted_objective / flat_objective;

  // Locked-in regression: without migration the straddling mix leaves a
  // real objective gap over the flat planner; the migration pass moves
  // jobs and closes it below threshold.
  EXPECT_GT(mover.last_plan().migrated_jobs, 0u);
  EXPECT_GT(ratio_pre, 1.10) << "pre=" << ratio_pre << " post=" << ratio_post;
  EXPECT_LT(ratio_post, ratio_pre);
  EXPECT_LT(ratio_post, 1.05) << "pre=" << ratio_pre
                              << " post=" << ratio_post;
}

TEST(ShardMigration, DeterministicAcrossFanOutAndPlanOrder) {
  // Same pure movable mix as the gap test, so migration actually fires and
  // the determinism contracts cover the re-plan path, not a no-op.
  const testing::Instance instance = make_straddling_instance(0, 16, 11);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  shard::ShardPlannerConfig serial_config;
  serial_config.shards = 2;
  serial_config.serial = true;
  shard::HierarchicalPlanner serial_planner(serial_config);
  const sim::Schedule reference = serial_planner.schedule(input);
  ASSERT_GT(serial_planner.last_plan().migrated_jobs, 0u);

  shard::ShardPlannerConfig pooled_config = serial_config;
  pooled_config.serial = false;
  pooled_config.workers = 4;
  shard::HierarchicalPlanner pooled_planner(pooled_config);
  expect_same_schedule(reference, pooled_planner.schedule(input));
  EXPECT_EQ(pooled_planner.last_plan().migrated_jobs,
            serial_planner.last_plan().migrated_jobs);

  // The migration decisions derive from barriered outcomes, so shuffling
  // the shard planning order cannot change a bit either.
  expect_same_schedule(reference,
                       serial_planner.schedule_with_order(input, {1, 0}));
  expect_same_schedule(reference,
                       serial_planner.schedule_with_order(input, {0, 1}));
}

TEST(ShardMigration, InfeasibleReceiversAreSkipped) {
  // Memory-straddling mix: the big Transformer jobs overflow the K80 bulk
  // of shard 0 (and cannot gang on its single V100), so they are never
  // migration candidates toward it; the plan must stay valid and
  // fan-out-deterministic whether or not any light migrates.
  const testing::Instance instance = make_straddling_instance(2, 10, 11);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};
  const workload::Job& big = instance.jobs.job(JobId(10));  // first "big"
  ASSERT_FALSE(workload::task_fits(big, instance.cluster.gpu(GpuId(1))));
  ASSERT_TRUE(workload::task_fits(big, instance.cluster.gpu(GpuId(0))));
  ASSERT_TRUE(workload::task_fits(big, instance.cluster.gpu(GpuId(8))));

  shard::ShardPlannerConfig config;
  config.shards = 2;
  config.serial = true;
  shard::HierarchicalPlanner planner(config);
  const sim::Schedule reference = planner.schedule(input);
  sim::validate_schedule(reference, instance.jobs);

  // Big jobs stay on the T4 shard: no big task may land on GPUs 0..7.
  for (std::size_t g = 0; g < 8; ++g) {
    for (const TaskId t : reference.sequences[g]) {
      EXPECT_NE(instance.jobs.task(t).job.value(), 10);
      EXPECT_NE(instance.jobs.task(t).job.value(), 11);
    }
  }

  shard::ShardPlannerConfig pooled = config;
  pooled.serial = false;
  pooled.workers = 4;
  shard::HierarchicalPlanner pooled_planner(pooled);
  expect_same_schedule(reference, pooled_planner.schedule(input));
}

TEST(ShardMigration, FiresOnImbalancedStreamedTrace) {
  // Regression: the old receiver test demanded the fluid estimate land
  // inside the donor's *realized horizon*, which on arrival-dominated
  // streamed traces sits at the last arrival for every shard — no estimate
  // could ever beat it, and the six-figure bench reported migrated_jobs: 0
  // against an imbalance of 2.47. The delay-ranked candidates and
  // fluid-load-seeded receiver test must move jobs on exactly this kind of
  // instance (same trace family and shape as the bench's quick point).
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(256, 25.0, 8, 4);
  workload::TraceConfig trace_config;
  trace_config.job_count = 2000;
  trace_config.base_arrival_rate = 0.5;
  trace_config.rounds_scale_min = 0.02;
  trace_config.rounds_scale_max = 0.08;
  workload::TraceStream stream(8100, trace_config);
  workload::JobSet jobs;
  while (!stream.exhausted()) jobs.add_job(stream.next());
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 8100);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);
  const sched::SchedulerInput input{cluster, jobs, times};

  shard::ShardPlannerConfig config;
  config.shards = 8;
  config.serial = true;
  shard::HierarchicalPlanner planner(config);
  const sim::Schedule reference = planner.schedule(input);
  sim::validate_schedule(reference, jobs);
  EXPECT_GT(planner.last_plan().imbalance, 1.0);
  EXPECT_GT(planner.last_plan().migrated_jobs, 0u);

  // The migration decisions must not cost determinism: pooled fan-out
  // agrees bit for bit, including the moved jobs.
  shard::ShardPlannerConfig pooled = config;
  pooled.serial = false;
  pooled.workers = 4;
  shard::HierarchicalPlanner pooled_planner(pooled);
  expect_same_schedule(reference, pooled_planner.schedule(input));
  EXPECT_EQ(pooled_planner.last_plan().migrated_jobs,
            planner.last_plan().migrated_jobs);
}

// ---- Incremental Queyranne separation -------------------------------------

TEST(IncrementalSeparator, MatchesFullSortOnDriftingPoints) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> t_dist(0.2, 3.0);
  std::uniform_real_distribution<double> x_dist(0.0, 10.0);

  const std::size_t n = 40;
  std::vector<double> t(n);
  for (auto& v : t) v = t_dist(rng);
  std::vector<double> x(n);
  for (auto& v : x) v = x_dist(rng);

  opt::IncrementalSeparator separator(t);
  for (int round = 0; round < 30; ++round) {
    const opt::QueyranneCut full = opt::separate_queyranne_cut(t, x);
    const opt::QueyranneCut& inc = separator.separate(x);
    EXPECT_EQ(inc.subset, full.subset) << "round " << round;
    EXPECT_EQ(inc.violation, full.violation) << "round " << round;
    EXPECT_LE(separator.last_resorted(), n);

    if (round % 5 == 4) {
      // Unchanged point → cached cut, zero re-sorts.
      const opt::QueyranneCut& cached = separator.separate(x);
      EXPECT_EQ(cached.subset, full.subset);
      EXPECT_EQ(separator.last_resorted(), 0u);
    }

    // Drift a few coordinates, as consecutive LP vertices do.
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    const std::size_t moves = 1 + static_cast<std::size_t>(round) % 5;
    for (std::size_t m = 0; m < moves; ++m) x[pick(rng)] = x_dist(rng);
  }
}

TEST(IncrementalSeparation, IdenticalCutTrajectoryWithSavings) {
  std::size_t instances_with_cuts = 0;
  for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
    SCOPED_TRACE(seed);
    const testing::Instance instance =
        testing::make_random_instance(seed, 8, 4);

    auto solve = [&](bool incremental) {
      core::RelaxationConfig config;
      config.mode = core::RelaxMode::LpCuts;
      config.engine.incremental_separation = incremental;
      const core::HareRelaxation relaxation(config);
      return relaxation.solve(instance.cluster, instance.jobs, instance.times);
    };
    const core::RelaxationResult full = solve(false);
    const core::RelaxationResult inc = solve(true);

    // Identical trajectory: same cuts, same rounds, same vertex, same
    // objective — incremental separation is wall-clock only.
    EXPECT_EQ(inc.cut_count, full.cut_count);
    EXPECT_EQ(inc.lp_solves, full.lp_solves);
    EXPECT_EQ(inc.x_hat, full.x_hat);
    EXPECT_EQ(inc.objective, full.objective);

    // The savings metric: the full path re-sorts everything every round;
    // the incremental path only what the canonical vertex moved.
    EXPECT_EQ(full.sep_tasks_resorted, full.sep_tasks_total);
    EXPECT_EQ(inc.sep_tasks_total, full.sep_tasks_total);
    EXPECT_LE(inc.sep_tasks_resorted, inc.sep_tasks_total);
    if (full.cut_count > 0) {
      ++instances_with_cuts;
      // After the first round (full sort) later rounds touch only moved
      // coordinates, so some work must have been saved.
      if (inc.lp_solves > 1) {
        EXPECT_LT(inc.sep_tasks_resorted, inc.sep_tasks_total);
      }
    }
  }
  EXPECT_GE(instances_with_cuts, 1u);
}

}  // namespace
}  // namespace hare
