// hare::serve tests: pull-based trace streaming, arrival-spec parsing,
// the schedule_jobs_with_h core seam, admission-batch determinism across
// tick sizes, warm-vs-cold and sparse-vs-dense served-schedule parity,
// replan-budget exhaustion fallback, fault-event-driven replanning, and
// serial-vs-pooled bit-identity of the sharded serve path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "core/hare_scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "profiler/profiler.hpp"
#include "serve/serve_service.hpp"
#include "sim/schedule.hpp"
#include "workload/arrival_spec.hpp"
#include "workload/trace.hpp"

namespace hare {
namespace {

bool schedules_identical(const sim::Schedule& a, const sim::Schedule& b) {
  return a.sequences == b.sequences &&
         a.predicted_start == b.predicted_start &&
         a.predicted_objective == b.predicted_objective;
}

bool specs_identical(const workload::JobSpec& a, const workload::JobSpec& b) {
  return a.model == b.model && a.arrival == b.arrival &&
         a.weight == b.weight && a.rounds == b.rounds &&
         a.tasks_per_round == b.tasks_per_round &&
         a.batch_size == b.batch_size &&
         a.batches_per_task == b.batches_per_task && a.name == b.name;
}

/// Specs with controlled arrival times: one job every `gap` seconds.
std::vector<workload::JobSpec> spaced_arrivals(std::size_t count, Time gap,
                                               Time start = 0.0) {
  std::vector<workload::JobSpec> specs;
  const workload::ModelType models[] = {
      workload::ModelType::ResNet50, workload::ModelType::BertBase,
      workload::ModelType::DeepSpeech, workload::ModelType::FastGCN};
  for (std::size_t i = 0; i < count; ++i) {
    workload::JobSpec spec;
    spec.model = models[i % 4];
    spec.arrival = start + static_cast<double>(i) * gap;
    spec.rounds = 3 + static_cast<std::uint32_t>(i % 4);
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(i % 3);
    spec.weight = 1.0 + static_cast<double>(i % 2);
    spec.name = "job-" + std::to_string(i);
    specs.push_back(spec);
  }
  return specs;
}

// ------------------------------------------------------ trace streaming --

TEST(TraceStream, MatchesMaterializedGenerate) {
  workload::TraceConfig config;
  config.job_count = 64;
  config.base_arrival_rate = 0.4;
  const workload::JobSet jobs = workload::TraceGenerator(91).generate(config);
  workload::TraceStream stream(91, config);
  for (std::size_t i = 0; i < config.job_count; ++i) {
    ASSERT_FALSE(stream.exhausted());
    EXPECT_EQ(stream.drawn(), i);
    const workload::JobSpec spec = stream.next();
    EXPECT_TRUE(
        specs_identical(spec, jobs.job(JobId(static_cast<int>(i))).spec))
        << "job " << i;
  }
  EXPECT_TRUE(stream.exhausted());
  EXPECT_THROW((void)stream.next(), common::Error);
}

TEST(TraceStream, DutyCycleBurstsAreDeterministic) {
  workload::TraceConfig config;
  config.job_count = 48;
  config.base_arrival_rate = 0.5;
  config.burst_rate_multiplier = 8.0;
  config.burst_on_period = 20.0;
  config.burst_off_period = 60.0;
  const workload::JobSet jobs = workload::TraceGenerator(7).generate(config);
  workload::TraceStream stream(7, config);
  Time last = 0.0;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    const workload::JobSpec spec = stream.next();
    EXPECT_TRUE(
        specs_identical(spec, jobs.job(JobId(static_cast<int>(i))).spec));
    EXPECT_GE(spec.arrival, last);
    last = spec.arrival;
  }
  // The duty cycle replaces the stochastic burst draws, so the same seed
  // with the MMPP disabled draws a different (still monotone) sequence.
  workload::TraceConfig quiet = config;
  quiet.burst_on_period = 0.0;
  quiet.burst_off_period = 0.0;
  const workload::JobSet other = workload::TraceGenerator(7).generate(quiet);
  bool any_difference = false;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    const JobId id(static_cast<int>(i));
    any_difference |= jobs.job(id).spec.arrival != other.job(id).spec.arrival;
  }
  EXPECT_TRUE(any_difference);
}

// --------------------------------------------------------- arrival spec --

TEST(ArrivalSpec, ParsesEveryKey) {
  const workload::TraceConfig config = workload::parse_arrival_spec(
      "jobs=120,rate=1.5,burst=4,burst_prob=0.3,burst_len=6,"
      "on_period=15,off_period=45,rounds_min=0.2,rounds_max=0.6,"
      "batch_scale=2");
  EXPECT_EQ(config.job_count, 120u);
  EXPECT_DOUBLE_EQ(config.base_arrival_rate, 1.5);
  EXPECT_DOUBLE_EQ(config.burst_rate_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(config.burst_probability, 0.3);
  EXPECT_DOUBLE_EQ(config.mean_burst_length, 6.0);
  EXPECT_DOUBLE_EQ(config.burst_on_period, 15.0);
  EXPECT_DOUBLE_EQ(config.burst_off_period, 45.0);
  EXPECT_DOUBLE_EQ(config.rounds_scale_min, 0.2);
  EXPECT_DOUBLE_EQ(config.rounds_scale_max, 0.6);
  EXPECT_DOUBLE_EQ(config.batch_scale, 2.0);
}

TEST(ArrivalSpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)workload::parse_arrival_spec("jobz=10"), common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("rate=fast"), common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("jobs=0"), common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("rate"), common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("burst_prob=1.5"),
               common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("on_period=10"),
               common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec(
                   "rounds_min=0.8,rounds_max=0.4"),
               common::Error);
}

TEST(ArrivalSpec, EmptySpecThrows) {
  EXPECT_THROW((void)workload::parse_arrival_spec(""), common::Error);
}

TEST(ArrivalSpec, DuplicateKeyThrowsNamingTheKey) {
  try {
    (void)workload::parse_arrival_spec("jobs=10,rate=2,jobs=20");
    FAIL() << "duplicate key accepted";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("jobs"), std::string::npos);
  }
}

TEST(ArrivalSpec, OverflowValueThrowsNamingTheKey) {
  try {
    (void)workload::parse_arrival_spec("rate=1e9999");
    FAIL() << "overflowing value accepted";
  } catch (const common::Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rate"), std::string::npos);
  }
  // Counts reject integer-overflowing magnitudes before the integral cast.
  EXPECT_THROW((void)workload::parse_arrival_spec("jobs=1e30"),
               common::Error);
}

TEST(ArrivalSpec, TrailingSeparatorThrows) {
  EXPECT_THROW((void)workload::parse_arrival_spec("jobs=10,"), common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec("jobs=10,,rate=2"),
               common::Error);
  EXPECT_THROW((void)workload::parse_arrival_spec(",jobs=10"), common::Error);
}

// ----------------------------------------------------- core with-h seam --

TEST(ScheduleWithH, ReproducesScheduleJobsGivenItsH) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  workload::JobSet jobs;
  for (const auto& spec : spaced_arrivals(10, 5.0)) jobs.add_job(spec);
  const profiler::Profiler profiler({}, {}, 3);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);
  const sched::SchedulerInput input{cluster, jobs, times};
  const std::vector<char> mask(jobs.job_count(), 1);

  core::HareConfig config;
  config.relaxation.mode = core::RelaxMode::Fluid;
  core::HareScheduler planner(config);
  core::HareScheduler::IncrementalState state_a;
  sim::Schedule a;
  const double obj_a = planner.schedule_jobs(input, mask, state_a, a);

  core::HareScheduler replayer(config);
  core::HareScheduler::IncrementalState state_b;
  sim::Schedule b;
  const double obj_b = replayer.schedule_jobs_with_h(
      input, mask, planner.last_relaxation().h, state_b, b);

  EXPECT_EQ(obj_a, obj_b);
  EXPECT_TRUE(schedules_identical(a, b));
  EXPECT_EQ(state_a.phi, state_b.phi);
}

// ------------------------------------------------------- serve batching --

serve::ServeConfig small_lp_config() {
  serve::ServeConfig config;
  config.lp_max_batch_jobs = 64;
  return config;
}

TEST(Serve, TickSizesWithIdenticalCoalescingMatchBitForBit) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(12, 2.0);
  // Arrivals are 2 s apart, so every tick below 2 s yields singleton
  // batches: the partitions coincide and so must the served schedules.
  sim::Schedule reference;
  bool have_reference = false;
  for (const Time tick : {0.0, 0.5, 1.9}) {
    serve::ServeConfig config = small_lp_config();
    config.tick = tick;
    serve::ServeService service(cluster, workload::PerfModel{}, config);
    const serve::ServeReport report = service.run(arrivals);
    EXPECT_EQ(report.batches, arrivals.size()) << "tick " << tick;
    sim::validate_schedule(report.schedule, service.jobs());
    if (!have_reference) {
      reference = report.schedule;
      have_reference = true;
    } else {
      EXPECT_TRUE(schedules_identical(reference, report.schedule))
          << "tick " << tick;
    }
  }
  // A tick wide enough to merge everything batches differently (one joint
  // planning round) but still plans every job exactly once.
  serve::ServeConfig wide = small_lp_config();
  wide.tick = 1000.0;
  serve::ServeService service(cluster, workload::PerfModel{}, wide);
  const serve::ServeReport report = service.run(arrivals);
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.planned_jobs, arrivals.size());
  sim::validate_schedule(report.schedule, service.jobs());
}

TEST(Serve, WarmAndColdLpServeIdenticalSchedules) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(18, 1.0);
  serve::ServeConfig warm = small_lp_config();
  warm.tick = 3.0;
  serve::ServeConfig cold = warm;
  cold.warm_lp = false;

  serve::ServeService warm_service(cluster, workload::PerfModel{}, warm);
  const serve::ServeReport warm_report = warm_service.run(arrivals);
  serve::ServeService cold_service(cluster, workload::PerfModel{}, cold);
  const serve::ServeReport cold_report = cold_service.run(arrivals);

  EXPECT_GT(warm_report.lp_batches, 1u);
  EXPECT_GT(warm_report.lp.warm_solves, 0u);
  EXPECT_EQ(cold_report.lp.warm_solves, 0u);
  EXPECT_TRUE(
      schedules_identical(warm_report.schedule, cold_report.schedule));
  sim::validate_schedule(warm_report.schedule, warm_service.jobs());
}

TEST(Serve, LpBackendsServeIdenticalSchedules) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(10, 1.5);
  serve::ServeConfig sparse = small_lp_config();
  sparse.tick = 4.0;
  sparse.lp_backend = opt::LpBackend::Sparse;
  serve::ServeConfig dense = sparse;
  dense.lp_backend = opt::LpBackend::Dense;

  serve::ServeService sparse_service(cluster, workload::PerfModel{}, sparse);
  const serve::ServeReport sparse_report = sparse_service.run(arrivals);
  serve::ServeService dense_service(cluster, workload::PerfModel{}, dense);
  const serve::ServeReport dense_report = dense_service.run(arrivals);

  EXPECT_GT(sparse_report.lp_batches, 0u);
  EXPECT_EQ(sparse_report.lp_batches, dense_report.lp_batches);
  EXPECT_TRUE(
      schedules_identical(sparse_report.schedule, dense_report.schedule));
}

TEST(Serve, CompactionBoundForcesColdRebuildsButSameSchedule) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(16, 1.0);
  serve::ServeConfig roomy = small_lp_config();
  roomy.tick = 2.5;
  serve::ServeConfig tight = roomy;
  tight.lp_compact_rows = 8;  // force a rebuild nearly every batch

  serve::ServeService roomy_service(cluster, workload::PerfModel{}, roomy);
  const serve::ServeReport roomy_report = roomy_service.run(arrivals);
  serve::ServeService tight_service(cluster, workload::PerfModel{}, tight);
  const serve::ServeReport tight_report = tight_service.run(arrivals);

  EXPECT_GT(tight_report.lp.compactions, 0u);
  EXPECT_TRUE(
      schedules_identical(roomy_report.schedule, tight_report.schedule));
}

TEST(Serve, ReplanBudgetExhaustionFallsBackToGreedy) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(12, 2.0);
  serve::ServeConfig config = small_lp_config();
  config.replan_budget = 3;  // singleton batches: 12 replans wanted
  serve::ServeService service(cluster, workload::PerfModel{}, config);
  const serve::ServeReport report = service.run(arrivals);

  EXPECT_EQ(report.lp_batches + report.flat_batches, 3u);
  EXPECT_EQ(report.greedy_batches, report.batches - 3u);
  EXPECT_GT(report.greedy_batches, 0u);
  EXPECT_EQ(report.planned_jobs, arrivals.size());
  sim::validate_schedule(report.schedule, service.jobs());

  // The fallback is still deterministic.
  serve::ServeService again(cluster, workload::PerfModel{}, config);
  EXPECT_TRUE(
      schedules_identical(report.schedule, again.run(arrivals).schedule));
}

// ---------------------------------------------------------- fault events --

fault::FaultPlan gpu_blip(int gpu, Time fail, Time recover) {
  fault::FaultPlan plan;
  fault::FaultEvent down;
  down.time = fail;
  down.kind = fault::FaultKind::GpuFail;
  down.gpu = GpuId(gpu);
  plan.events.push_back(down);
  fault::FaultEvent up;
  up.time = recover;
  up.kind = fault::FaultKind::GpuRecover;
  up.gpu = GpuId(gpu);
  plan.events.push_back(up);
  return plan;
}

TEST(Serve, GpuFailureDisplacesAndSpawnsContinuations) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(14, 1.0);
  serve::ServeConfig config = small_lp_config();
  config.tick = 2.0;
  const fault::FaultPlan plan = gpu_blip(0, 6.0, 40.0);

  serve::ServeService service(cluster, workload::PerfModel{}, config);
  const serve::ServeReport report = service.run(arrivals, plan);

  EXPECT_EQ(report.fault_events, 2u);
  EXPECT_GT(report.displaced_tasks, 0u);
  EXPECT_GT(report.continuations, 0u);
  EXPECT_EQ(report.planned_jobs, arrivals.size() + report.continuations);
  // Originals keep their committed tasks and continuations are planned
  // once each, so the cumulative plan still covers every task exactly once.
  sim::validate_schedule(report.schedule, service.jobs());

  serve::ServeService again(cluster, workload::PerfModel{}, config);
  EXPECT_TRUE(schedules_identical(report.schedule,
                                  again.run(arrivals, plan).schedule));
}

TEST(Serve, CancelBeforePlanningSkipsTheJob) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  const auto arrivals = spaced_arrivals(8, 2.0);
  fault::FaultPlan plan;
  fault::FaultEvent cancel;
  cancel.kind = fault::FaultKind::JobCancel;
  cancel.job = JobId(5);
  cancel.time = 1.0;  // long before job 5 arrives at t = 10
  plan.events.push_back(cancel);

  serve::ServeConfig config = small_lp_config();
  serve::ServeService service(cluster, workload::PerfModel{}, config);
  const serve::ServeReport report = service.run(arrivals, plan);

  EXPECT_EQ(report.canceled, 1u);
  EXPECT_EQ(report.planned_jobs, arrivals.size() - 1);
  const workload::Job& dropped = service.jobs().job(JobId(5));
  for (const auto& sequence : report.schedule.sequences) {
    for (TaskId task : sequence) {
      EXPECT_NE(service.jobs().task(task).job, dropped.id);
    }
  }
}

TEST(Serve, JobCompleteReleasesHorizonForNextBatch) {
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  // One long job monopolizes every GPU's committed horizon, then a short
  // job arrives after the long job is reported complete at t = 5.
  std::vector<workload::JobSpec> arrivals(2);
  arrivals[0].model = workload::ModelType::ResNet50;
  arrivals[0].arrival = 0.0;
  arrivals[0].rounds = 40;
  arrivals[0].tasks_per_round = 15;  // one task per testbed GPU per round
  arrivals[0].name = "long";
  arrivals[1].model = workload::ModelType::BertBase;
  arrivals[1].arrival = 6.0;
  arrivals[1].rounds = 2;
  arrivals[1].tasks_per_round = 1;
  arrivals[1].name = "late";

  fault::FaultPlan plan;
  fault::FaultEvent done;
  done.kind = fault::FaultKind::JobComplete;
  done.job = JobId(0);
  done.time = 5.0;
  plan.events.push_back(done);

  const serve::ServeConfig config = small_lp_config();
  serve::ServeService with_completion(cluster, workload::PerfModel{}, config);
  const serve::ServeReport released = with_completion.run(arrivals, plan);
  serve::ServeService without(cluster, workload::PerfModel{}, config);
  const serve::ServeReport held = without.run(arrivals);

  EXPECT_EQ(released.completions, 1u);
  EXPECT_GT(released.released_tasks, 0u);
  EXPECT_EQ(held.released_tasks, 0u);
  // The completion freed the long job's unstarted committed tail, so the
  // late job plans onto rolled-back horizons: it reaches a fast GPU
  // immediately instead of queueing behind 40 rounds of committed work,
  // and the planned weighted-completion objective drops. The long job's
  // own contribution was fixed when its batch was planned, so the whole
  // difference is the late job finishing earlier.
  EXPECT_LT(released.objective, held.objective);

  serve::ServeService again(cluster, workload::PerfModel{}, config);
  EXPECT_TRUE(schedules_identical(released.schedule,
                                  again.run(arrivals, plan).schedule));
}

// ------------------------------------------------------------- sharding --

TEST(Serve, ShardedServeIsBitIdenticalSerialVsPooled) {
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(32, 25.0, 8, 2);
  const auto arrivals = spaced_arrivals(20, 0.5);

  const auto run_with = [&](bool serial) {
    serve::ServeConfig config;
    config.tick = 4.0;
    config.lp_max_batch_jobs = 0;  // force the sharded/flat paths
    config.shard_min_batch_jobs = 2;
    config.shard.serial = serial;
    config.shard.workers = serial ? 0 : 3;
    serve::ServeService service(cluster, workload::PerfModel{}, config);
    return service.run(arrivals);
  };
  const serve::ServeReport serial_report = run_with(true);
  const serve::ServeReport pooled_report = run_with(false);

  EXPECT_GT(serial_report.sharded_batches, 0u);
  EXPECT_EQ(serial_report.sharded_batches, pooled_report.sharded_batches);
  EXPECT_TRUE(schedules_identical(serial_report.schedule,
                                  pooled_report.schedule));
}

}  // namespace
}  // namespace hare
