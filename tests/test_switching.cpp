// Unit tests for fast task switching (§4): speculative memory manager,
// context pool, and the three-policy switch cost model (Table 3 shapes).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/perf_model.hpp"
#include "switching/context_pool.hpp"
#include "switching/memory_manager.hpp"
#include "switching/switch_model.hpp"

namespace hare::switching {
namespace {

using cluster::GpuType;
using workload::ModelType;

constexpr Bytes GB = 1024ull * 1024 * 1024;

// --------------------------------------------------------- memory manager --

TEST(MemoryManager, FirstStartIsMiss) {
  SpeculativeMemoryManager mm(16 * GB);
  const auto info = mm.on_task_start(JobId(0), 4 * GB, 1 * GB);
  EXPECT_FALSE(info.model_resident);
  EXPECT_EQ(info.bytes_to_load, 1 * GB);
  EXPECT_EQ(mm.used(), 4 * GB);
  EXPECT_TRUE(mm.has_active());
}

TEST(MemoryManager, KeepsStateAfterCompletion) {
  SpeculativeMemoryManager mm(16 * GB);
  mm.on_task_start(JobId(0), 4 * GB, 1 * GB);
  mm.on_task_complete(10.0);
  EXPECT_FALSE(mm.has_active());
  EXPECT_TRUE(mm.resident(JobId(0)));
  EXPECT_EQ(mm.kept_bytes(), 1 * GB);
}

TEST(MemoryManager, RevisitIsHit) {
  SpeculativeMemoryManager mm(16 * GB);
  mm.on_task_start(JobId(0), 4 * GB, 1 * GB);
  mm.on_task_complete(10.0);
  const auto info = mm.on_task_start(JobId(0), 4 * GB, 1 * GB);
  EXPECT_TRUE(info.model_resident);
  EXPECT_EQ(info.bytes_to_load, 0u);
  EXPECT_EQ(mm.hit_count(), 1u);
  EXPECT_EQ(mm.miss_count(), 1u);
}

TEST(MemoryManager, EvictsEarliestCompletedFirst) {
  SpeculativeMemoryManager mm(10 * GB);
  // Three jobs leave 3 GB of state each (9 GB kept).
  for (int j = 0; j < 3; ++j) {
    mm.on_task_start(JobId(j), 4 * GB, 3 * GB);
    mm.on_task_complete(static_cast<Time>(j));
  }
  EXPECT_EQ(mm.kept_count(), 3u);
  // A 7 GB task forces eviction of the two earliest states (jobs 0, 1).
  const auto info = mm.on_task_start(JobId(9), 7 * GB, 1 * GB);
  EXPECT_EQ(info.evicted_bytes, 6 * GB);
  EXPECT_FALSE(mm.resident(JobId(0)));
  EXPECT_FALSE(mm.resident(JobId(1)));
  EXPECT_TRUE(mm.resident(JobId(2)));  // latest completed survives
}

TEST(MemoryManager, NeverEvictsOwnState) {
  SpeculativeMemoryManager mm(10 * GB);
  mm.on_task_start(JobId(0), 8 * GB, 8 * GB);
  mm.on_task_complete(0.0);
  // Revisit with a bigger footprint: own kept state must be reused, not
  // evicted.
  const auto info = mm.on_task_start(JobId(0), 10 * GB, 8 * GB);
  EXPECT_TRUE(info.model_resident);
  EXPECT_EQ(mm.used(), 10 * GB);
}

TEST(MemoryManager, JobFinishDropsState) {
  SpeculativeMemoryManager mm(16 * GB);
  mm.on_task_start(JobId(0), 4 * GB, 1 * GB);
  mm.on_task_complete(1.0);
  mm.on_job_finished(JobId(0));
  EXPECT_FALSE(mm.resident(JobId(0)));
  EXPECT_EQ(mm.kept_bytes(), 0u);
}

TEST(MemoryManager, CapacityNeverExceeded) {
  SpeculativeMemoryManager mm(8 * GB);
  for (int j = 0; j < 10; ++j) {
    mm.on_task_start(JobId(j), 5 * GB, 2 * GB);
    EXPECT_LE(mm.used(), 8 * GB);
    mm.on_task_complete(static_cast<Time>(j));
    EXPECT_LE(mm.used(), 8 * GB);
  }
}

TEST(MemoryManager, RejectsInvalidUse) {
  SpeculativeMemoryManager mm(8 * GB);
  EXPECT_THROW(mm.on_task_complete(0.0), common::Error);  // nothing active
  EXPECT_THROW(mm.on_task_start(JobId(0), 9 * GB, 1 * GB), common::Error);
  EXPECT_THROW(mm.on_task_start(JobId(0), 2 * GB, 3 * GB), common::Error);
  mm.on_task_start(JobId(0), 2 * GB, 1 * GB);
  EXPECT_THROW(mm.on_task_start(JobId(1), 2 * GB, 1 * GB),
               common::Error);  // non-preemption: one active task
}

// ------------------------------------------------------------ context pool --

TEST(ContextPool, AcquireIsWarmWithStandby) {
  ContextPool pool(3);
  const auto a = pool.acquire(JobId(0));
  EXPECT_TRUE(a.warm);
  EXPECT_EQ(pool.busy_count(), 1u);
  pool.release(a.slot);
  EXPECT_EQ(pool.busy_count(), 0u);
}

TEST(ContextPool, PrefersSlotOfSameJob) {
  ContextPool pool(3);
  const auto first = pool.acquire(JobId(7));
  pool.release(first.slot);
  (void)pool.acquire(JobId(8));  // takes a different (LRU) slot
  const auto again = pool.acquire(JobId(7));
  EXPECT_EQ(again.slot, first.slot);
}

TEST(ContextPool, ColdWhenExhausted) {
  ContextPool pool(2);
  (void)pool.acquire(JobId(0));
  (void)pool.acquire(JobId(1));
  const auto overflow = pool.acquire(JobId(2));
  EXPECT_FALSE(overflow.warm);
  EXPECT_EQ(pool.cold_misses(), 1u);
}

TEST(ContextPool, ReleaseValidation) {
  ContextPool pool(2);
  EXPECT_THROW(pool.release(0), common::Error);  // idle slot
  EXPECT_THROW(pool.release(5), common::Error);  // out of range
}

// ------------------------------------------------------------ switch model --

class SwitchPolicyTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(SwitchPolicyTest, Table3Ordering) {
  // Table 3's shape: Default is seconds; PipeSwitch is milliseconds; Hare
  // is below PipeSwitch; each policy strictly improves on the previous.
  const ModelType model = GetParam();
  const auto cost = [&](SwitchPolicy policy) {
    SwitchModelConfig config;
    config.policy = policy;
    const SwitchCostModel scm(config);
    return scm
        .switch_cost(JobId(1), model, GpuType::V100, JobId(0), nullptr)
        .total();
  };
  const Time def = cost(SwitchPolicy::Default);
  const Time pipe = cost(SwitchPolicy::PipeSwitch);
  const Time hare = cost(SwitchPolicy::Hare);
  EXPECT_GT(def, 3.0) << "Default switches cost seconds";
  EXPECT_LT(pipe, 0.020) << "PipeSwitch switches cost milliseconds";
  EXPECT_LT(hare, pipe);
  EXPECT_LT(hare, 0.010) << "Hare stays under ~6ms (Table 3)";
}

INSTANTIATE_TEST_SUITE_P(
    Models, SwitchPolicyTest,
    ::testing::Values(ModelType::VGG19, ModelType::ResNet50,
                      ModelType::InceptionV3, ModelType::BertBase,
                      ModelType::Transformer, ModelType::DeepSpeech,
                      ModelType::FastGCN, ModelType::GraphSAGE));

TEST(SwitchModel, SameJobContinuationIsNearFree) {
  for (SwitchPolicy policy :
       {SwitchPolicy::Default, SwitchPolicy::PipeSwitch, SwitchPolicy::Hare}) {
    SwitchModelConfig config;
    config.policy = policy;
    const SwitchCostModel scm(config);
    const auto breakdown = scm.switch_cost(JobId(3), ModelType::BertBase,
                                           GpuType::V100, JobId(3), nullptr);
    EXPECT_LT(breakdown.total(), 0.001);
    EXPECT_TRUE(breakdown.model_resident);
  }
}

TEST(SwitchModel, HareResidentSkipsTransfer) {
  SpeculativeMemoryManager mm(16 * GB);
  const workload::ModelSpec& spec =
      workload::model_spec(ModelType::BertBase);
  mm.on_task_start(JobId(5), workload::task_memory_footprint(spec, 32),
                   workload::model_state_bytes(spec));
  mm.on_task_complete(1.0);

  SwitchModelConfig config;
  config.policy = SwitchPolicy::Hare;
  const SwitchCostModel scm(config);
  const auto hit = scm.switch_cost(JobId(5), ModelType::BertBase,
                                   GpuType::V100, JobId(4), &mm);
  const auto miss = scm.switch_cost(JobId(6), ModelType::BertBase,
                                    GpuType::V100, JobId(4), &mm);
  EXPECT_TRUE(hit.model_resident);
  EXPECT_DOUBLE_EQ(hit.transfer, 0.0);
  EXPECT_FALSE(miss.model_resident);
  EXPECT_GT(miss.transfer, 0.0);
  EXPECT_LT(hit.total(), miss.total());
}

TEST(SwitchModel, EarlyCleaningRemovesExposedCleanup) {
  SwitchModelConfig pipe_config;
  pipe_config.policy = SwitchPolicy::PipeSwitch;
  SwitchModelConfig hare_config;
  hare_config.policy = SwitchPolicy::Hare;
  const auto pipe = SwitchCostModel(pipe_config)
                        .switch_cost(JobId(1), ModelType::VGG19,
                                     GpuType::V100, JobId(0), nullptr);
  const auto hare = SwitchCostModel(hare_config)
                        .switch_cost(JobId(1), ModelType::VGG19,
                                     GpuType::V100, JobId(0), nullptr);
  EXPECT_GT(pipe.clean, 0.0);
  EXPECT_DOUBLE_EQ(hare.clean, 0.0);
}

TEST(SwitchModel, ColdGpuSkipsPredecessorCleanup) {
  SwitchModelConfig config;
  config.policy = SwitchPolicy::Default;
  const SwitchCostModel scm(config);
  const auto cold = scm.switch_cost(JobId(0), ModelType::ResNet50,
                                    GpuType::V100, std::nullopt, nullptr);
  const auto warm = scm.switch_cost(JobId(0), ModelType::ResNet50,
                                    GpuType::V100, JobId(9), nullptr);
  EXPECT_DOUBLE_EQ(cold.clean, 0.0);
  EXPECT_GT(warm.clean, 0.0);
  EXPECT_LT(cold.total(), warm.total());
}

TEST(SwitchModel, BreakdownComponentsNonNegative) {
  for (SwitchPolicy policy :
       {SwitchPolicy::Default, SwitchPolicy::PipeSwitch, SwitchPolicy::Hare}) {
    SwitchModelConfig config;
    config.policy = policy;
    const SwitchCostModel scm(config);
    for (ModelType model : workload::all_models()) {
      const auto b = scm.switch_cost(JobId(1), model, GpuType::K80, JobId(0),
                                     nullptr);
      EXPECT_GE(b.clean, 0.0);
      EXPECT_GE(b.context, 0.0);
      EXPECT_GE(b.init, 0.0);
      EXPECT_GE(b.alloc, 0.0);
      EXPECT_GE(b.transfer, 0.0);
      EXPECT_NEAR(b.total(),
                  b.clean + b.context + b.init + b.alloc + b.transfer, 1e-12);
    }
  }
}

TEST(SwitchModel, Fig7OverheadRatio) {
  // Fig 7: alternating GraphSAGE/ResNet50 single batches on a V100 makes
  // the default switch cost ~9x the combined batch time; Hare's is tiny.
  const workload::PerfModel perf;
  const Time batch_pair =
      perf.batch_time(ModelType::GraphSAGE, GpuType::V100, 16) +
      perf.batch_time(ModelType::ResNet50, GpuType::V100, 64);

  SwitchModelConfig def;
  def.policy = SwitchPolicy::Default;
  const Time default_switch =
      SwitchCostModel(def)
          .switch_cost(JobId(1), ModelType::ResNet50, GpuType::V100, JobId(0),
                       nullptr)
          .total() +
      SwitchCostModel(def)
          .switch_cost(JobId(0), ModelType::GraphSAGE, GpuType::V100, JobId(1),
                       nullptr)
          .total();
  EXPECT_GT(default_switch / batch_pair, 5.0);

  SwitchModelConfig hare;
  hare.policy = SwitchPolicy::Hare;
  const Time hare_switch =
      SwitchCostModel(hare)
          .switch_cost(JobId(1), ModelType::ResNet50, GpuType::V100, JobId(0),
                       nullptr)
          .total();
  EXPECT_LT(hare_switch / batch_pair, 0.05);
}

TEST(SwitchModel, PolicyNames) {
  EXPECT_EQ(switch_policy_name(SwitchPolicy::Default), "Default");
  EXPECT_EQ(switch_policy_name(SwitchPolicy::PipeSwitch), "PipeSwitch");
  EXPECT_EQ(switch_policy_name(SwitchPolicy::Hare), "Hare");
}

}  // namespace
}  // namespace hare::switching
