// Shared fixtures and random-instance builders for the test suite.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "profiler/profiler.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"
#include "workload/trace.hpp"

namespace hare::testing {

struct Instance {
  cluster::Cluster cluster;
  workload::JobSet jobs;
  profiler::TimeTable times;  ///< exact (noise-free) table
};

/// Random instance: a small heterogeneous cluster plus a generated trace;
/// the time table is the exact analytic one.
inline Instance make_random_instance(std::uint64_t seed,
                                     std::size_t job_count = 12,
                                     std::size_t gpu_count = 8) {
  Instance instance;
  instance.cluster = cluster::make_simulation_cluster(gpu_count, 25.0, 4);

  workload::TraceConfig config;
  config.job_count = job_count;
  config.base_arrival_rate = 0.2;
  // Keep sync scales within the small cluster.
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(seed);
  instance.jobs = generator.generate(config);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

/// Tiny hand-built instance: `gpu_speeds[m]` scales a base task time; every
/// job has `rounds` rounds of `tasks_per_round` tasks with identical times.
inline Instance make_uniform_instance(std::vector<double> gpu_task_seconds,
                                      std::size_t job_count,
                                      std::uint32_t rounds,
                                      std::uint32_t tasks_per_round,
                                      Time sync_seconds = 0.1) {
  Instance instance;
  cluster::ClusterBuilder builder;
  for (std::size_t g = 0; g < gpu_task_seconds.size(); ++g) {
    builder.add_machine(cluster::GpuType::V100, 1, 25.0);
  }
  instance.cluster = builder.build();

  for (std::size_t j = 0; j < job_count; ++j) {
    workload::JobSpec spec;
    spec.model = workload::ModelType::ResNet50;
    spec.rounds = rounds;
    spec.tasks_per_round = tasks_per_round;
    instance.jobs.add_job(spec);
  }

  instance.times =
      profiler::TimeTable(instance.jobs.job_count(), instance.cluster.gpu_count());
  for (const auto& job : instance.jobs.jobs()) {
    for (std::size_t g = 0; g < gpu_task_seconds.size(); ++g) {
      instance.times.set(job.id, GpuId(static_cast<int>(g)),
                         gpu_task_seconds[g], sync_seconds);
    }
  }
  return instance;
}

}  // namespace hare::testing
