// Unit tests for the profiler: time tables, measurement noise, and the
// historical profile database.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/profiler.hpp"
#include "profiler/time_table.hpp"
#include "workload/trace.hpp"

namespace hare::profiler {
namespace {

using cluster::GpuType;
using workload::ModelType;

workload::JobSet make_jobs(std::size_t count) {
  workload::TraceConfig config;
  config.job_count = count;
  workload::TraceGenerator generator(77);
  return generator.generate(config);
}

// ------------------------------------------------------------ time table --

TEST(TimeTable, SetAndGet) {
  TimeTable table(2, 3);
  table.set(JobId(1), GpuId(2), 5.0, 0.5);
  EXPECT_DOUBLE_EQ(table.tc(JobId(1), GpuId(2)), 5.0);
  EXPECT_DOUBLE_EQ(table.ts(JobId(1), GpuId(2)), 0.5);
  EXPECT_DOUBLE_EQ(table.total(JobId(1), GpuId(2)), 5.5);
  EXPECT_EQ(table.job_count(), 2u);
  EXPECT_EQ(table.gpu_count(), 3u);
}

TEST(TimeTable, MinMaxAndFastest) {
  TimeTable table(1, 3);
  table.set(JobId(0), GpuId(0), 4.0, 0.4);
  table.set(JobId(0), GpuId(1), 2.0, 0.2);
  table.set(JobId(0), GpuId(2), 8.0, 0.8);
  EXPECT_DOUBLE_EQ(table.min_tc(JobId(0)), 2.0);
  EXPECT_DOUBLE_EQ(table.max_tc(JobId(0)), 8.0);
  EXPECT_DOUBLE_EQ(table.min_ts(JobId(0)), 0.2);
  EXPECT_DOUBLE_EQ(table.max_ts(JobId(0)), 0.8);
  EXPECT_EQ(table.fastest_gpu(JobId(0)), GpuId(1));
}

TEST(TimeTable, AlphaIsMaxRatio) {
  TimeTable table(2, 2);
  table.set(JobId(0), GpuId(0), 1.0, 0.1);
  table.set(JobId(0), GpuId(1), 3.0, 0.1);   // tc ratio 3
  table.set(JobId(1), GpuId(0), 2.0, 0.10);
  table.set(JobId(1), GpuId(1), 2.0, 0.45);  // ts ratio 4.5
  EXPECT_DOUBLE_EQ(table.alpha(), 4.5);
}

TEST(TimeTable, AlphaHomogeneousIsOne) {
  TimeTable table(1, 3);
  for (int g = 0; g < 3; ++g) table.set(JobId(0), GpuId(g), 2.0, 0.2);
  EXPECT_DOUBLE_EQ(table.alpha(), 1.0);
}

// -------------------------------------------------------------- profiler --

TEST(Profiler, ExactMatchesPerfModel) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(5);
  const workload::PerfModel perf;
  Profiler profiler(perf, ProfilerConfig{}, 1);
  const TimeTable exact = profiler.exact(jobs, cluster);

  for (const auto& job : jobs.jobs()) {
    for (const auto& gpu : cluster.gpus()) {
      const Time expected = perf.task_compute_time(
          job.spec.model, gpu.type, job.effective_batch_size(),
          job.spec.batches_per_task);
      EXPECT_DOUBLE_EQ(exact.tc(job.id, gpu.id), expected);
      EXPECT_GT(exact.ts(job.id, gpu.id), 0.0);
    }
  }
}

TEST(Profiler, ProfiledCloseToExact) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(8);
  const workload::PerfModel perf;
  ProfilerConfig config;
  config.measurement_noise_cv = 0.03;
  config.sample_batches = 8;
  Profiler profiler(perf, config, 2);

  const TimeTable exact = profiler.exact(jobs, cluster);
  const TimeTable measured = profiler.profile(jobs, cluster);
  for (const auto& job : jobs.jobs()) {
    for (const auto& gpu : cluster.gpus()) {
      EXPECT_LT(common::relative_difference(measured.tc(job.id, gpu.id),
                                            exact.tc(job.id, gpu.id)),
                0.10);
    }
  }
}

TEST(Profiler, ProfilingCostAccumulates) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(3);
  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 3);
  (void)profiler.profile(jobs, cluster);
  EXPECT_GT(profiler.last_profiling_cost(), 0.0);
}

TEST(Profiler, DbSkipsRepeatedWork) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(6);
  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 4);
  ProfileDb db;

  (void)profiler.profile(jobs, cluster, &db);
  const Time first_cost = profiler.last_profiling_cost();
  EXPECT_GT(db.size(), 0u);

  db.reset_counters();
  const TimeTable again = profiler.profile(jobs, cluster, &db);
  EXPECT_EQ(db.misses(), 0u);
  EXPECT_GT(db.hits(), 0u);
  EXPECT_DOUBLE_EQ(profiler.last_profiling_cost(), 0.0);
  EXPECT_GT(first_cost, 0.0);
  EXPECT_GT(again.job_count(), 0u);
}

TEST(Profiler, DbKeyedByGpuTypeNotInstance) {
  // A cluster with 8 identical V100s must require only one profile entry
  // per (model, batch, uplink) combination.
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(GpuType::V100, 8, 25.0).build();
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.model = ModelType::ResNet50;
  jobs.add_job(spec);

  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 5);
  ProfileDb db;
  (void)profiler.profile(jobs, cluster, &db);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Profiler, MismatchedTableRejectedBySimUsers) {
  TimeTable table(1, 2);
  EXPECT_EQ(table.job_count(), 1u);
  EXPECT_EQ(table.gpu_count(), 2u);
}

// -------------------------------------------------------------- database --

TEST(ProfileDb, LookupMissThenHit) {
  ProfileDb db;
  ProfileKey key;
  key.model = ModelType::VGG19;
  key.gpu = GpuType::V100;
  key.batch_size = 128;
  key.batches_per_task = 20;
  key.network_mbps = 25000;

  EXPECT_FALSE(db.lookup(key).has_value());
  EXPECT_EQ(db.misses(), 1u);

  db.store(key, ProfileEntry{1.5, 0.3, 5});
  const auto hit = db.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->tc, 1.5);
  EXPECT_DOUBLE_EQ(hit->ts, 0.3);
  EXPECT_EQ(db.hits(), 1u);
}

TEST(ProfileDb, DistinguishesKeys) {
  ProfileDb db;
  ProfileKey a;
  a.model = ModelType::VGG19;
  a.gpu = GpuType::V100;
  a.batch_size = 128;
  ProfileKey b = a;
  b.batch_size = 64;
  db.store(a, ProfileEntry{1.0, 0.1, 1});
  EXPECT_FALSE(db.lookup(b).has_value());
}

TEST(ProfileDb, SaveLoadRoundTrip) {
  ProfileDb db;
  for (int i = 0; i < 10; ++i) {
    ProfileKey key;
    key.model = static_cast<ModelType>(i % 8);
    key.gpu = static_cast<GpuType>(i % 4);
    key.batch_size = 32 + static_cast<std::uint32_t>(i);
    key.batches_per_task = 20;
    key.network_mbps = 25000;
    db.store(key, ProfileEntry{1.0 + i, 0.1 * i, 5});
  }
  std::stringstream stream;
  db.save(stream);

  ProfileDb loaded;
  loaded.load(stream);
  EXPECT_EQ(loaded.size(), db.size());

  ProfileKey probe;
  probe.model = static_cast<ModelType>(3);
  probe.gpu = static_cast<GpuType>(3);
  probe.batch_size = 35;
  probe.batches_per_task = 20;
  probe.network_mbps = 25000;
  const auto entry = loaded.lookup(probe);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->tc, 4.0);
}

TEST(ProfileDb, RejectsCorruptStream) {
  std::stringstream stream("garbage 5");
  ProfileDb db;
  EXPECT_THROW(db.load(stream), common::Error);
}

TEST(ProfileDb, FileRoundTrip) {
  ProfileDb db;
  ProfileKey key;
  key.model = ModelType::BertBase;
  key.gpu = GpuType::T4;
  key.batch_size = 32;
  key.batches_per_task = 20;
  key.network_mbps = 25000;
  db.store(key, ProfileEntry{2.0, 0.2, 5});

  const std::string path = ::testing::TempDir() + "/hare_profile_db.txt";
  db.save_file(path);
  ProfileDb loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  EXPECT_THROW(loaded.load_file("/nonexistent/path/db.txt"), common::Error);
}

}  // namespace
}  // namespace hare::profiler
