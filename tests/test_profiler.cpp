// Unit tests for the profiler: time tables, measurement noise, and the
// historical profile database.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/profiler.hpp"
#include "profiler/time_table.hpp"
#include "workload/trace.hpp"

namespace hare::profiler {
namespace {

using cluster::GpuType;
using workload::ModelType;

workload::JobSet make_jobs(std::size_t count) {
  workload::TraceConfig config;
  config.job_count = count;
  workload::TraceGenerator generator(77);
  return generator.generate(config);
}

// ------------------------------------------------------------ time table --

TEST(TimeTable, SetAndGet) {
  TimeTable table(2, 3);
  table.set(JobId(1), GpuId(2), 5.0, 0.5);
  EXPECT_DOUBLE_EQ(table.tc(JobId(1), GpuId(2)), 5.0);
  EXPECT_DOUBLE_EQ(table.ts(JobId(1), GpuId(2)), 0.5);
  EXPECT_DOUBLE_EQ(table.total(JobId(1), GpuId(2)), 5.5);
  EXPECT_EQ(table.job_count(), 2u);
  EXPECT_EQ(table.gpu_count(), 3u);
}

TEST(TimeTable, MinMaxAndFastest) {
  TimeTable table(1, 3);
  table.set(JobId(0), GpuId(0), 4.0, 0.4);
  table.set(JobId(0), GpuId(1), 2.0, 0.2);
  table.set(JobId(0), GpuId(2), 8.0, 0.8);
  EXPECT_DOUBLE_EQ(table.min_tc(JobId(0)), 2.0);
  EXPECT_DOUBLE_EQ(table.max_tc(JobId(0)), 8.0);
  EXPECT_DOUBLE_EQ(table.min_ts(JobId(0)), 0.2);
  EXPECT_DOUBLE_EQ(table.max_ts(JobId(0)), 0.8);
  EXPECT_EQ(table.fastest_gpu(JobId(0)), GpuId(1));
}

TEST(TimeTable, AlphaIsMaxRatio) {
  TimeTable table(2, 2);
  table.set(JobId(0), GpuId(0), 1.0, 0.1);
  table.set(JobId(0), GpuId(1), 3.0, 0.1);   // tc ratio 3
  table.set(JobId(1), GpuId(0), 2.0, 0.10);
  table.set(JobId(1), GpuId(1), 2.0, 0.45);  // ts ratio 4.5
  EXPECT_DOUBLE_EQ(table.alpha(), 4.5);
}

TEST(TimeTable, AlphaHomogeneousIsOne) {
  TimeTable table(1, 3);
  for (int g = 0; g < 3; ++g) table.set(JobId(0), GpuId(g), 2.0, 0.2);
  EXPECT_DOUBLE_EQ(table.alpha(), 1.0);
}

// -------------------------------------------------------------- profiler --

TEST(TimeTable, InternedRowsShareStorageAndCopyOnWrite) {
  TimeTable table(3, 2);
  const Time tc[2] = {4.0, 2.0};
  const Time ts[2] = {0.4, 0.2};
  const TimeTable::RowId row = table.intern_row(tc, ts);
  table.bind_row(JobId(0), row);
  table.bind_row(JobId(1), row);
  // Two jobs, one physical row (plus the zero row job 2 still sits on).
  EXPECT_EQ(table.row_of(JobId(0)), table.row_of(JobId(1)));
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_DOUBLE_EQ(table.tc(JobId(0), GpuId(0)), 4.0);
  EXPECT_DOUBLE_EQ(table.ts(JobId(1), GpuId(1)), 0.2);
  EXPECT_DOUBLE_EQ(table.tc(JobId(2), GpuId(0)), 0.0);  // zero row

  // Writing through the classic mutator detaches the written job only.
  table.set(JobId(0), GpuId(0), 9.0, 0.9);
  EXPECT_DOUBLE_EQ(table.tc(JobId(0), GpuId(0)), 9.0);
  EXPECT_DOUBLE_EQ(table.tc(JobId(0), GpuId(1)), 2.0);  // copied, not zeroed
  EXPECT_DOUBLE_EQ(table.tc(JobId(1), GpuId(0)), 4.0);  // neighbour untouched
  EXPECT_NE(table.row_of(JobId(0)), table.row_of(JobId(1)));

  // Writing the zero row detaches too: job 2's write must not leak into
  // any job appended later (which starts on the shared zero row).
  table.set(JobId(2), GpuId(1), 7.0, 0.7);
  const std::size_t appended = table.append_job();
  EXPECT_EQ(appended, 3u);
  EXPECT_DOUBLE_EQ(table.tc(JobId(3), GpuId(1)), 0.0);
  EXPECT_DOUBLE_EQ(table.tc(JobId(2), GpuId(1)), 7.0);
}

TEST(TimeTable, ResetReusesCapacityAndRestoresZeroState) {
  TimeTable table(4, 3);
  for (int j = 0; j < 4; ++j) {
    for (int g = 0; g < 3; ++g) {
      table.set(JobId(j), GpuId(g), 1.0 + j, 0.1 * (g + 1));
    }
  }
  EXPECT_EQ(table.row_count(), 5u);  // zero row + one private row per job
  table.precompute();

  // Re-shape smaller: everything reads zero again, every job is back on
  // the canonical zero row, and the arena shrinks to just that row.
  table.reset(2, 3);
  EXPECT_EQ(table.job_count(), 2u);
  EXPECT_EQ(table.gpu_count(), 3u);
  EXPECT_EQ(table.row_count(), 1u);
  for (int j = 0; j < 2; ++j) {
    for (int g = 0; g < 3; ++g) {
      EXPECT_DOUBLE_EQ(table.tc(JobId(j), GpuId(g)), 0.0);
      EXPECT_DOUBLE_EQ(table.ts(JobId(j), GpuId(g)), 0.0);
    }
    EXPECT_EQ(table.row_of(JobId(j)), TimeTable::kZeroRow);
  }
  // Stale aggregates must not survive the reset.
  EXPECT_DOUBLE_EQ(table.min_tc(JobId(0)), 0.0);
  EXPECT_DOUBLE_EQ(table.alpha(), 1.0);

  // The reshaped table is fully writable again (grow the GPU axis too).
  table.reset(3, 5);
  table.set(JobId(2), GpuId(4), 3.0, 0.3);
  EXPECT_DOUBLE_EQ(table.tc(JobId(2), GpuId(4)), 3.0);
  EXPECT_DOUBLE_EQ(table.tc(JobId(0), GpuId(4)), 0.0);
}

TEST(TimeTable, RebindRecyclesOrphanedRows) {
  TimeTable table(2, 2);
  const Time a_tc[2] = {1.0, 2.0};
  const Time a_ts[2] = {0.1, 0.2};
  const Time b_tc[2] = {3.0, 4.0};
  const Time b_ts[2] = {0.3, 0.4};
  const TimeTable::RowId a = table.intern_row(a_tc, a_ts);
  table.bind_row(JobId(0), a);
  table.bind_row(JobId(1), a);
  const TimeTable::RowId b = table.intern_row(b_tc, b_ts);
  table.bind_row(JobId(0), b);
  table.bind_row(JobId(1), b);  // row `a` now has no owners
  const std::size_t rows_before = table.row_count();

  // The next intern must reuse `a`'s slot instead of growing the arena.
  const Time c_tc[2] = {5.0, 6.0};
  const Time c_ts[2] = {0.5, 0.6};
  const TimeTable::RowId c = table.intern_row(c_tc, c_ts);
  EXPECT_EQ(c, a);
  EXPECT_EQ(table.row_count(), rows_before);
  table.bind_row(JobId(0), c);
  EXPECT_DOUBLE_EQ(table.tc(JobId(0), GpuId(0)), 5.0);
  EXPECT_DOUBLE_EQ(table.tc(JobId(1), GpuId(1)), 4.0);
}

TEST(Profiler, ExactMatchesPerfModel) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(5);
  const workload::PerfModel perf;
  Profiler profiler(perf, ProfilerConfig{}, 1);
  const TimeTable exact = profiler.exact(jobs, cluster);

  for (const auto& job : jobs.jobs()) {
    for (const auto& gpu : cluster.gpus()) {
      const Time expected = perf.task_compute_time(
          job.spec.model, gpu.type, job.effective_batch_size(),
          job.spec.batches_per_task);
      EXPECT_DOUBLE_EQ(exact.tc(job.id, gpu.id), expected);
      EXPECT_GT(exact.ts(job.id, gpu.id), 0.0);
    }
  }
}

TEST(Profiler, ProfiledCloseToExact) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(8);
  const workload::PerfModel perf;
  ProfilerConfig config;
  config.measurement_noise_cv = 0.03;
  config.sample_batches = 8;
  Profiler profiler(perf, config, 2);

  const TimeTable exact = profiler.exact(jobs, cluster);
  const TimeTable measured = profiler.profile(jobs, cluster);
  for (const auto& job : jobs.jobs()) {
    for (const auto& gpu : cluster.gpus()) {
      EXPECT_LT(common::relative_difference(measured.tc(job.id, gpu.id),
                                            exact.tc(job.id, gpu.id)),
                0.10);
    }
  }
}

TEST(Profiler, ProfilingCostAccumulates) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(3);
  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 3);
  (void)profiler.profile(jobs, cluster);
  EXPECT_GT(profiler.last_profiling_cost(), 0.0);
}

TEST(Profiler, DbSkipsRepeatedWork) {
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = make_jobs(6);
  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 4);
  ProfileDb db;

  (void)profiler.profile(jobs, cluster, &db);
  const Time first_cost = profiler.last_profiling_cost();
  EXPECT_GT(db.size(), 0u);

  db.reset_counters();
  const TimeTable again = profiler.profile(jobs, cluster, &db);
  EXPECT_EQ(db.misses(), 0u);
  EXPECT_GT(db.hits(), 0u);
  EXPECT_DOUBLE_EQ(profiler.last_profiling_cost(), 0.0);
  EXPECT_GT(first_cost, 0.0);
  EXPECT_GT(again.job_count(), 0u);
}

TEST(Profiler, DbKeyedByGpuTypeNotInstance) {
  // A cluster with 8 identical V100s must require only one profile entry
  // per (model, batch, uplink) combination.
  const auto cluster =
      cluster::ClusterBuilder{}.add_machine(GpuType::V100, 8, 25.0).build();
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.model = ModelType::ResNet50;
  jobs.add_job(spec);

  Profiler profiler(workload::PerfModel{}, ProfilerConfig{}, 5);
  ProfileDb db;
  (void)profiler.profile(jobs, cluster, &db);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Profiler, ShapeMemoSharesRowsBitwise) {
  // Ten duplicates of three distinct shapes: the memo must measure each
  // (shape, GPU type) once, bind every duplicate onto one interned row,
  // and produce values bitwise equal to profiling the deduplicated job set
  // under the same seed (the per-key seeds are drawn in canonical
  // first-seen shape order, which the two sets share).
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(8, 25.0, 4);
  workload::JobSet unique_jobs;
  workload::JobSet dup_jobs;
  for (int rep = 0; rep < 10; ++rep) {
    for (int shape = 0; shape < 3; ++shape) {
      workload::JobSpec spec;
      spec.model = shape == 0   ? ModelType::ResNet50
                   : shape == 1 ? ModelType::VGG19
                                : ModelType::Transformer;
      spec.rounds = 2;
      spec.tasks_per_round = 2;
      spec.batches_per_task = 10 + shape;
      if (rep == 0) unique_jobs.add_job(spec);
      dup_jobs.add_job(spec);
    }
  }

  const workload::PerfModel perf;
  Profiler deduped(perf, ProfilerConfig{}, 999);
  const TimeTable reference = deduped.profile(unique_jobs, cluster);
  EXPECT_EQ(deduped.last_rows_computed(), 3u);

  Profiler duplicated(perf, ProfilerConfig{}, 999);
  const TimeTable table = duplicated.profile(dup_jobs, cluster);
  EXPECT_EQ(duplicated.last_rows_computed(), 3u);
  // Same measurement keys (shape × GPU type) → same misses; the 10x job
  // duplication shows up purely as extra memo hits.
  EXPECT_EQ(duplicated.last_memo_misses(), deduped.last_memo_misses());
  EXPECT_GT(duplicated.last_memo_hits(), deduped.last_memo_hits());
  // Duplicates of a shape share one physical row; the arena stays at the
  // deduplicated size (unique rows + the zero row).
  EXPECT_EQ(table.row_of(JobId(0)), table.row_of(JobId(3)));
  EXPECT_EQ(table.row_count(), reference.row_count());

  for (std::size_t j = 0; j < dup_jobs.job_count(); ++j) {
    const JobId ref_job(static_cast<int>(j % 3));
    for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
      const GpuId gpu(static_cast<int>(g));
      EXPECT_EQ(table.tc(JobId(static_cast<int>(j)), gpu),
                reference.tc(ref_job, gpu));
      EXPECT_EQ(table.ts(JobId(static_cast<int>(j)), gpu),
                reference.ts(ref_job, gpu));
    }
  }
  // Memoized cost: the duplicated set pays for 3 shapes, not 30 jobs.
  EXPECT_EQ(duplicated.last_profiling_cost(), deduped.last_profiling_cost());
}

TEST(Profiler, ParallelProfileBitIdenticalToSerial) {
  // The measurement fan-out draws every per-key seed serially before any
  // worker runs, so the parallel path must reproduce the serial path bit
  // for bit — for the noisy profile() and the exact() table alike.
  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(16, 25.0, 4);
  const workload::JobSet jobs = make_jobs(40);
  const workload::PerfModel perf;

  ProfilerConfig serial_config;
  serial_config.serial = true;
  Profiler serial(perf, serial_config, 4242);
  Profiler parallel(perf, ProfilerConfig{}, 4242);

  const TimeTable noisy_serial = serial.profile(jobs, cluster);
  const TimeTable noisy_parallel = parallel.profile(jobs, cluster);
  const TimeTable exact_serial = serial.exact(jobs, cluster);
  const TimeTable exact_parallel = parallel.exact(jobs, cluster);
  for (std::size_t j = 0; j < jobs.job_count(); ++j) {
    const JobId job(static_cast<int>(j));
    for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
      const GpuId gpu(static_cast<int>(g));
      EXPECT_EQ(noisy_serial.tc(job, gpu), noisy_parallel.tc(job, gpu));
      EXPECT_EQ(noisy_serial.ts(job, gpu), noisy_parallel.ts(job, gpu));
      EXPECT_EQ(exact_serial.tc(job, gpu), exact_parallel.tc(job, gpu));
      EXPECT_EQ(exact_serial.ts(job, gpu), exact_parallel.ts(job, gpu));
    }
  }
  EXPECT_EQ(serial.last_rows_computed(), parallel.last_rows_computed());
}

TEST(Profiler, MismatchedTableRejectedBySimUsers) {
  TimeTable table(1, 2);
  EXPECT_EQ(table.job_count(), 1u);
  EXPECT_EQ(table.gpu_count(), 2u);
}

// -------------------------------------------------------------- database --

TEST(ProfileDb, LookupMissThenHit) {
  ProfileDb db;
  ProfileKey key;
  key.model = ModelType::VGG19;
  key.gpu = GpuType::V100;
  key.batch_size = 128;
  key.batches_per_task = 20;
  key.network_mbps = 25000;

  EXPECT_FALSE(db.lookup(key).has_value());
  EXPECT_EQ(db.misses(), 1u);

  db.store(key, ProfileEntry{1.5, 0.3, 5});
  const auto hit = db.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->tc, 1.5);
  EXPECT_DOUBLE_EQ(hit->ts, 0.3);
  EXPECT_EQ(db.hits(), 1u);
}

TEST(ProfileDb, DistinguishesKeys) {
  ProfileDb db;
  ProfileKey a;
  a.model = ModelType::VGG19;
  a.gpu = GpuType::V100;
  a.batch_size = 128;
  ProfileKey b = a;
  b.batch_size = 64;
  db.store(a, ProfileEntry{1.0, 0.1, 1});
  EXPECT_FALSE(db.lookup(b).has_value());
}

TEST(ProfileDb, SaveLoadRoundTrip) {
  ProfileDb db;
  for (int i = 0; i < 10; ++i) {
    ProfileKey key;
    key.model = static_cast<ModelType>(i % 8);
    key.gpu = static_cast<GpuType>(i % 4);
    key.batch_size = 32 + static_cast<std::uint32_t>(i);
    key.batches_per_task = 20;
    key.network_mbps = 25000;
    db.store(key, ProfileEntry{1.0 + i, 0.1 * i, 5});
  }
  std::stringstream stream;
  db.save(stream);

  ProfileDb loaded;
  loaded.load(stream);
  EXPECT_EQ(loaded.size(), db.size());

  ProfileKey probe;
  probe.model = static_cast<ModelType>(3);
  probe.gpu = static_cast<GpuType>(3);
  probe.batch_size = 35;
  probe.batches_per_task = 20;
  probe.network_mbps = 25000;
  const auto entry = loaded.lookup(probe);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->tc, 4.0);
}

TEST(ProfileDb, RejectsCorruptStream) {
  std::stringstream stream("garbage 5");
  ProfileDb db;
  EXPECT_THROW(db.load(stream), common::Error);
}

TEST(ProfileDb, FileRoundTrip) {
  ProfileDb db;
  ProfileKey key;
  key.model = ModelType::BertBase;
  key.gpu = GpuType::T4;
  key.batch_size = 32;
  key.batches_per_task = 20;
  key.network_mbps = 25000;
  db.store(key, ProfileEntry{2.0, 0.2, 5});

  const std::string path = ::testing::TempDir() + "/hare_profile_db.txt";
  db.save_file(path);
  ProfileDb loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  EXPECT_THROW(loaded.load_file("/nonexistent/path/db.txt"), common::Error);
}

}  // namespace
}  // namespace hare::profiler
