// Tests for the exact Hare_Sched solver, and the empirical validation of
// Theorem 4 against the TRUE optimum (not merely a lower bound).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bounds.hpp"
#include "core/hare_scheduler.hpp"
#include "opt/exact_schedule.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::opt {
namespace {

using testing::Instance;
using testing::make_uniform_instance;

TEST(ExactSchedule, SingleTaskOnFastestGpu) {
  const Instance inst = make_uniform_instance({3.0, 1.0}, 1, 1, 1, 0.2);
  const auto result =
      solve_exact_schedule(inst.cluster, inst.jobs, inst.times);
  EXPECT_DOUBLE_EQ(result.objective, 1.2);  // fastest GPU: tc 1 + ts 0.2
  EXPECT_EQ(result.gpu[0], GpuId(1));
  EXPECT_DOUBLE_EQ(result.start[0], 0.0);
}

TEST(ExactSchedule, TwoJobsOneGpuIsSpt) {
  // Jobs of length 1 and 3 on one GPU (ts=0.2, which overlaps the next
  // task's compute): SPT order completes at 1.2 and 1.0+3.0+0.2=4.2,
  // total 5.4; the reverse order totals 3.2 + (3.0+1.0+0.2) = 7.4.
  workload::JobSet jobs;
  workload::JobSpec a;
  a.rounds = 1;
  jobs.add_job(a);  // job 0: long
  workload::JobSpec b;
  b.rounds = 1;
  jobs.add_job(b);  // job 1: short
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(2, 1);
  times.set(JobId(0), GpuId(0), 3.0, 0.2);
  times.set(JobId(1), GpuId(0), 1.0, 0.2);

  const auto result = solve_exact_schedule(shell.cluster, jobs, times);
  EXPECT_NEAR(result.objective, 1.2 + 4.2, 1e-9);
  EXPECT_DOUBLE_EQ(result.start[1], 0.0);  // short first
}

TEST(ExactSchedule, RoundBarrierRespected) {
  // One job, two rounds of one task, tc=2, ts=0.5: round 2 starts at 2.5,
  // completes at 5.0.
  const Instance inst = make_uniform_instance({2.0}, 1, 2, 1, 0.5);
  const auto result =
      solve_exact_schedule(inst.cluster, inst.jobs, inst.times);
  EXPECT_NEAR(result.objective, 5.0, 1e-9);
  EXPECT_NEAR(result.start[1], 2.5, 1e-9);
}

TEST(ExactSchedule, ExploitsRelaxedSyncWhenOptimal) {
  // A 2-task round on a fast (1s) and very slow (10s) GPU pair: the
  // optimum serializes both tasks on the fast GPU (round ends ~2.1) rather
  // than ganging (round ends ~10.1).
  const Instance inst = make_uniform_instance({1.0, 10.0}, 1, 1, 2, 0.1);
  const auto result =
      solve_exact_schedule(inst.cluster, inst.jobs, inst.times);
  EXPECT_LT(result.objective, 2.5);
  EXPECT_EQ(result.gpu[0], GpuId(0));
  EXPECT_EQ(result.gpu[1], GpuId(0));
}

TEST(ExactSchedule, ArrivalsDelayStarts) {
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.rounds = 1;
  spec.arrival = 5.0;
  jobs.add_job(spec);
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(1, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);
  const auto result = solve_exact_schedule(shell.cluster, jobs, times);
  EXPECT_NEAR(result.objective, 6.1, 1e-9);
  EXPECT_NEAR(result.start[0], 5.0, 1e-9);
}

TEST(ExactSchedule, GuardsAgainstLargeInstances) {
  const Instance inst = make_uniform_instance({1.0}, 6, 2, 1);
  EXPECT_THROW(
      (void)solve_exact_schedule(inst.cluster, inst.jobs, inst.times, 8),
      common::Error);
}

// ------------------- Theorem 4 against the true optimum -------------------

class OptimalityGapTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityGapTest, HareWithinGuaranteeOfTrueOptimum) {
  // Random tiny instances: 2-3 jobs, 1-2 rounds, up to ~8 tasks on 2-3
  // heterogeneous GPUs. Hare's realized objective must stay within
  // α(2+α) of the exact optimum, and typically lands much closer.
  common::Rng rng(GetParam());
  cluster::ClusterBuilder builder;
  const std::size_t gpu_count = 2 + rng.uniform_int(std::uint64_t{2});
  const cluster::GpuType types[] = {cluster::GpuType::V100,
                                    cluster::GpuType::T4,
                                    cluster::GpuType::K80};
  for (std::size_t g = 0; g < gpu_count; ++g) {
    builder.add_machine(types[g % 3], 1, 25.0);
  }
  const cluster::Cluster cluster = builder.build();

  workload::JobSet jobs;
  std::size_t total_tasks = 0;
  while (jobs.job_count() < 3 && total_tasks < 6) {
    workload::JobSpec spec;
    spec.rounds = 1 + static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{2}));
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(
                                   rng.uniform_int(std::uint64_t{2}));
    spec.weight = rng.bernoulli(0.3) ? 2.0 : 1.0;
    total_tasks += spec.rounds * spec.tasks_per_round;
    if (total_tasks > 8) break;
    jobs.add_job(spec);
  }

  profiler::TimeTable times(jobs.job_count(), cluster.gpu_count());
  for (const auto& job : jobs.jobs()) {
    const double base = rng.uniform(1.0, 4.0);
    for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
      const double speed =
          cluster.gpu(GpuId(static_cast<int>(g))).spec().fp32_tflops;
      times.set(job.id, GpuId(static_cast<int>(g)),
                base * 15.7 / speed * rng.uniform(0.9, 1.1), 0.1);
    }
  }

  const auto exact = solve_exact_schedule(cluster, jobs, times, 10);

  core::HareScheduler scheduler;
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
  const sim::Simulator simulator(cluster, jobs, times);
  const double hare_objective =
      simulator.run(schedule).weighted_completion;

  const double alpha = times.alpha();
  const double guarantee = alpha * (2.0 + alpha);
  EXPECT_GE(hare_objective + 1e-9, exact.objective);  // OPT is optimal
  EXPECT_LE(hare_objective, exact.objective * guarantee)
      << "Hare " << hare_objective << " vs OPT " << exact.objective
      << " (guarantee " << guarantee << "x)";
  // Empirically the gap is far smaller than the worst-case bound.
  EXPECT_LE(hare_objective, exact.objective * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGapTest,
                         ::testing::Values(501, 502, 503, 504, 505, 506, 507,
                                           508, 509, 510));

TEST(ExactSchedule, LowerBoundsNeverExceedOptimum) {
  // The certified lower bounds used by the approximation checker must
  // lower-bound the true optimum as well.
  for (std::uint64_t seed = 520; seed < 526; ++seed) {
    common::Rng rng(seed);
    const Instance shell = make_uniform_instance({1.0, 2.0}, 1, 1, 1);
    workload::JobSet jobs;
    for (int j = 0; j < 2; ++j) {
      workload::JobSpec spec;
      spec.rounds = 1 + static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{2}));
      spec.tasks_per_round = 1 + static_cast<std::uint32_t>(
                                     rng.uniform_int(std::uint64_t{1}));
      jobs.add_job(spec);
    }
    profiler::TimeTable times(jobs.job_count(), 2);
    for (const auto& job : jobs.jobs()) {
      times.set(job.id, GpuId(0), rng.uniform(1.0, 3.0), 0.1);
      times.set(job.id, GpuId(1), rng.uniform(1.0, 3.0), 0.1);
    }
    const auto exact =
        solve_exact_schedule(shell.cluster, jobs, times, 10);
    const double lb =
        core::combined_lower_bound(shell.cluster, jobs, times);
    EXPECT_LE(lb, exact.objective + 1e-9);
  }
}

}  // namespace
}  // namespace hare::opt
