// Unit tests for the workload substrate: model zoo, performance model
// (Fig 2/3 shapes), jobs/rounds/tasks, trace generation.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cluster/gpu.hpp"
#include "common/error.hpp"
#include "workload/job.hpp"
#include "workload/model_zoo.hpp"
#include "workload/perf_model.hpp"
#include "workload/trace.hpp"

namespace hare::workload {
namespace {

using cluster::GpuType;

// ------------------------------------------------------------- model zoo --

TEST(ModelZoo, SpecsAreConsistent) {
  for (ModelType type : all_models()) {
    const ModelSpec& spec = model_spec(type);
    EXPECT_EQ(spec.type, type);
    EXPECT_GT(spec.default_batch_size, 0u);
    EXPECT_GT(spec.train_gflops_per_sample, 0.0);
    EXPECT_GT(spec.parameter_bytes, 0u);
    EXPECT_GT(spec.layer_count, 0u);
    EXPECT_GT(spec.typical_rounds, 0u);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.dataset.empty());
  }
}

TEST(ModelZoo, Table2Membership) {
  // The workload mix has exactly the 8 Table 2 models; ResNet152 is only
  // for the motivation experiments.
  EXPECT_EQ(workload_models().size(), 8u);
  for (ModelType type : workload_models()) {
    EXPECT_NE(type, ModelType::ResNet152);
  }
}

TEST(ModelZoo, Table2BatchSizes) {
  EXPECT_EQ(model_spec(ModelType::VGG19).default_batch_size, 128u);
  EXPECT_EQ(model_spec(ModelType::ResNet50).default_batch_size, 64u);
  EXPECT_EQ(model_spec(ModelType::InceptionV3).default_batch_size, 32u);
  EXPECT_EQ(model_spec(ModelType::BertBase).default_batch_size, 32u);
  EXPECT_EQ(model_spec(ModelType::Transformer).default_batch_size, 128u);
  EXPECT_EQ(model_spec(ModelType::DeepSpeech).default_batch_size, 8u);
  EXPECT_EQ(model_spec(ModelType::FastGCN).default_batch_size, 128u);
  EXPECT_EQ(model_spec(ModelType::GraphSAGE).default_batch_size, 16u);
}

TEST(ModelZoo, CategoriesMatchTable2) {
  EXPECT_EQ(model_spec(ModelType::VGG19).category, JobCategory::CV);
  EXPECT_EQ(model_spec(ModelType::BertBase).category, JobCategory::NLP);
  EXPECT_EQ(model_spec(ModelType::DeepSpeech).category, JobCategory::Speech);
  EXPECT_EQ(model_spec(ModelType::GraphSAGE).category, JobCategory::Rec);
  EXPECT_EQ(job_category_name(JobCategory::Speech), "Speech");
}

TEST(ModelZoo, FootprintsFitTestbedGpus) {
  // Every Table 2 job at its default batch size must fit the smallest
  // testbed GPU memory (M60, 8 GiB) — the paper trains them all there.
  for (ModelType type : workload_models()) {
    const ModelSpec& spec = model_spec(type);
    const Bytes footprint =
        task_memory_footprint(spec, spec.default_batch_size);
    EXPECT_LT(footprint, cluster::gpu_spec(GpuType::M60).memory)
        << spec.name;
  }
}

TEST(ModelZoo, ModelStateSmallerThanFootprint) {
  for (ModelType type : all_models()) {
    const ModelSpec& spec = model_spec(type);
    EXPECT_LT(model_state_bytes(spec),
              task_memory_footprint(spec, spec.default_batch_size));
  }
}

// ------------------------------------------------------------ perf model --

TEST(PerfModel, Fig2ResNet50Speedups) {
  // Fig 2: ResNet50 ~2x on T4, ~7x on V100 (vs K80).
  const PerfModel perf;
  const auto batch = model_spec(ModelType::ResNet50).default_batch_size;
  EXPECT_NEAR(perf.speedup_vs_k80(ModelType::ResNet50, GpuType::T4, batch),
              2.0, 0.4);
  EXPECT_NEAR(perf.speedup_vs_k80(ModelType::ResNet50, GpuType::V100, batch),
              7.0, 0.8);
}

TEST(PerfModel, Fig2GraphSageCapped) {
  // Fig 2/3: GraphSAGE gains at most ~2x even on V100 (input-bound).
  const PerfModel perf;
  const auto batch = model_spec(ModelType::GraphSAGE).default_batch_size;
  const double speedup =
      perf.speedup_vs_k80(ModelType::GraphSAGE, GpuType::V100, batch);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 2.4);
}

TEST(PerfModel, Fig3GraphSageUtilizationLow) {
  // Fig 3: GraphSAGE keeps a V100 under ~30-40% busy.
  const PerfModel perf;
  const auto batch = model_spec(ModelType::GraphSAGE).default_batch_size;
  EXPECT_LT(perf.gpu_utilization(ModelType::GraphSAGE, GpuType::V100, batch),
            0.45);
  // A compute-bound model saturates the GPU.
  EXPECT_GT(perf.gpu_utilization(ModelType::ResNet50, GpuType::V100,
                                 model_spec(ModelType::ResNet50)
                                     .default_batch_size),
            0.95);
}

TEST(PerfModel, SpeedupOrderingAcrossGenerations) {
  const PerfModel perf;
  for (ModelType type : workload_models()) {
    const auto batch = model_spec(type).default_batch_size;
    // K80 is the baseline (speedup 1); nothing in the testbed is slower
    // than ~0.9x of it, and V100 is never slower than T4.
    EXPECT_DOUBLE_EQ(perf.speedup_vs_k80(type, GpuType::K80, batch), 1.0);
    EXPECT_GE(perf.speedup_vs_k80(type, GpuType::V100, batch),
              perf.speedup_vs_k80(type, GpuType::T4, batch) * 0.99)
        << model_name(type);
  }
}

TEST(PerfModel, BatchTimeScalesWithBatchForComputeBound) {
  const PerfModel perf;
  const Time t32 = perf.batch_time(ModelType::ResNet50, GpuType::V100, 32);
  const Time t64 = perf.batch_time(ModelType::ResNet50, GpuType::V100, 64);
  EXPECT_NEAR(t64 / t32, 2.0, 1e-9);
}

TEST(PerfModel, SyncFasterThanTrainingOnTestbed) {
  // §5.1 assumes training time exceeds sync time; verify for every Table 2
  // model on every testbed GPU at 25 Gbps with the default 20-batch task.
  const PerfModel perf;
  for (ModelType type : workload_models()) {
    const auto batch = model_spec(type).default_batch_size;
    const Time sync = perf.sync_time(type, 25.0);
    for (GpuType gpu : {GpuType::V100, GpuType::T4, GpuType::K80,
                        GpuType::M60}) {
      const Time train = perf.task_compute_time(type, gpu, batch, 20);
      EXPECT_GT(train, sync) << model_name(type) << " on "
                             << cluster::gpu_type_name(gpu);
    }
  }
}

TEST(PerfModel, SyncScalesInverselyWithBandwidth) {
  const PerfModel perf;
  const Time s10 = perf.sync_time(ModelType::BertBase, 10.0);
  const Time s25 = perf.sync_time(ModelType::BertBase, 25.0);
  EXPECT_GT(s10, s25);
  // Minus the fixed latency, volume/bandwidth is exactly inverse.
  const Time latency = perf.config().sync_latency_s;
  EXPECT_NEAR((s10 - latency) / (s25 - latency), 2.5, 1e-9);
}

TEST(PerfModel, EfficiencyTableBounds) {
  for (auto arch : {cluster::GpuArch::Kepler, cluster::GpuArch::Maxwell,
                    cluster::GpuArch::Pascal, cluster::GpuArch::Volta,
                    cluster::GpuArch::Turing, cluster::GpuArch::Ampere}) {
    for (auto family : {ModelFamily::ConvNet, ModelFamily::Transformer,
                        ModelFamily::Recurrent, ModelFamily::Graph}) {
      const double eff = PerfModel::efficiency(arch, family);
      EXPECT_GT(eff, 0.0);
      EXPECT_LT(eff, 1.0);
    }
  }
}

TEST(PerfModel, InvalidBandwidthThrows) {
  const PerfModel perf;
  EXPECT_THROW((void)perf.sync_time(ModelType::VGG19, 0.0), common::Error);
}

// ------------------------------------------------------------------ jobs --

TEST(JobSet, AddJobCreatesRoundMajorTasks) {
  JobSet jobs;
  JobSpec spec;
  spec.rounds = 3;
  spec.tasks_per_round = 2;
  const JobId id = jobs.add_job(spec);
  EXPECT_EQ(jobs.job_count(), 1u);
  EXPECT_EQ(jobs.task_count(), 6u);

  const Job& job = jobs.job(id);
  EXPECT_EQ(job.task_count(), 6u);
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto round = jobs.round_tasks(id, static_cast<RoundIndex>(r));
    ASSERT_EQ(round.size(), 2u);
    for (std::uint32_t k = 0; k < 2; ++k) {
      const Task& task = jobs.task(round[k]);
      EXPECT_EQ(task.job, id);
      EXPECT_EQ(task.round, static_cast<RoundIndex>(r));
      EXPECT_EQ(task.slot, k);
    }
  }
}

TEST(JobSet, TaskIdsAreGloballyDense) {
  JobSet jobs;
  JobSpec spec;
  spec.rounds = 2;
  spec.tasks_per_round = 2;
  jobs.add_job(spec);
  jobs.add_job(spec);
  for (std::size_t i = 0; i < jobs.task_count(); ++i) {
    EXPECT_EQ(jobs.task(TaskId(static_cast<int>(i))).id.value(),
              static_cast<int>(i));
  }
}

TEST(JobSet, EffectiveBatchSizeDefaults) {
  JobSet jobs;
  JobSpec spec;
  spec.model = ModelType::BertBase;
  const JobId a = jobs.add_job(spec);
  spec.batch_size = 64;
  const JobId b = jobs.add_job(spec);
  EXPECT_EQ(jobs.job(a).effective_batch_size(), 32u);
  EXPECT_EQ(jobs.job(b).effective_batch_size(), 64u);
}

TEST(JobSet, RejectsInvalidSpecs) {
  JobSet jobs;
  JobSpec spec;
  spec.rounds = 0;
  EXPECT_THROW(jobs.add_job(spec), common::Error);
  spec.rounds = 1;
  spec.tasks_per_round = 0;
  EXPECT_THROW(jobs.add_job(spec), common::Error);
  spec.tasks_per_round = 1;
  spec.weight = 0.0;
  EXPECT_THROW(jobs.add_job(spec), common::Error);
  spec.weight = 1.0;
  spec.arrival = -1.0;
  EXPECT_THROW(jobs.add_job(spec), common::Error);
  spec.arrival = 0.0;
  spec.batches_per_task = 0;
  EXPECT_THROW(jobs.add_job(spec), common::Error);
}

TEST(JobSet, RoundTasksOutOfRangeThrows) {
  JobSet jobs;
  JobSpec spec;
  spec.rounds = 2;
  const JobId id = jobs.add_job(spec);
  EXPECT_THROW((void)jobs.round_tasks(id, 2), common::Error);
  EXPECT_THROW((void)jobs.round_tasks(id, -1), common::Error);
}

TEST(JobSet, AggregateHelpers) {
  JobSet jobs;
  JobSpec spec;
  spec.arrival = 5.0;
  spec.weight = 2.0;
  jobs.add_job(spec);
  spec.arrival = 3.0;
  spec.weight = 1.0;
  jobs.add_job(spec);
  EXPECT_DOUBLE_EQ(jobs.earliest_arrival(), 3.0);
  EXPECT_DOUBLE_EQ(jobs.total_weight(), 3.0);
}

// ----------------------------------------------------------------- trace --

TEST(TraceGenerator, DeterministicForSeed) {
  TraceConfig config;
  config.job_count = 50;
  const JobSet a = TraceGenerator(99).generate(config);
  const JobSet b = TraceGenerator(99).generate(config);
  ASSERT_EQ(a.job_count(), b.job_count());
  for (std::size_t j = 0; j < a.job_count(); ++j) {
    const auto& sa = a.job(JobId(static_cast<int>(j))).spec;
    const auto& sb = b.job(JobId(static_cast<int>(j))).spec;
    EXPECT_EQ(sa.model, sb.model);
    EXPECT_DOUBLE_EQ(sa.arrival, sb.arrival);
    EXPECT_EQ(sa.rounds, sb.rounds);
    EXPECT_EQ(sa.tasks_per_round, sb.tasks_per_round);
  }
}

TEST(TraceGenerator, ArrivalsAreMonotonic) {
  TraceConfig config;
  config.job_count = 200;
  const JobSet jobs = TraceGenerator(5).generate(config);
  Time previous = 0.0;
  for (const auto& job : jobs.jobs()) {
    EXPECT_GE(job.spec.arrival, previous);
    previous = job.spec.arrival;
  }
}

TEST(TraceGenerator, UniformMixIsRoughlyBalanced) {
  TraceConfig config;
  config.job_count = 4000;
  const JobSet jobs = TraceGenerator(123).generate(config);
  std::map<JobCategory, std::size_t> counts;
  for (const auto& job : jobs.jobs()) {
    ++counts[model_spec(job.spec.model).category];
  }
  for (const auto& [category, count] : counts) {
    (void)category;
    EXPECT_NEAR(static_cast<double>(count) / 4000.0, 0.25, 0.05);
  }
}

class MixFavourTest : public ::testing::TestWithParam<JobCategory> {};

TEST_P(MixFavourTest, FavouredCategoryDominates) {
  TraceConfig config;
  config.job_count = 3000;
  config.mix = WorkloadMix::favour(GetParam(), 0.55);
  const JobSet jobs = TraceGenerator(321).generate(config);
  std::size_t favoured = 0;
  for (const auto& job : jobs.jobs()) {
    if (model_spec(job.spec.model).category == GetParam()) ++favoured;
  }
  EXPECT_NEAR(static_cast<double>(favoured) / 3000.0, 0.55, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Categories, MixFavourTest,
                         ::testing::Values(JobCategory::CV, JobCategory::NLP,
                                           JobCategory::Speech,
                                           JobCategory::Rec));

TEST(TraceGenerator, SyncScalesComeFromConfig) {
  TraceConfig config;
  config.job_count = 500;
  config.sync_scales = {2, 2, 2, 2};
  const JobSet jobs = TraceGenerator(7).generate(config);
  for (const auto& job : jobs.jobs()) {
    EXPECT_EQ(job.spec.tasks_per_round, 2u);
  }
}

TEST(TraceGenerator, BatchScaleApplies) {
  TraceConfig config;
  config.job_count = 100;
  config.batch_scale = 2.0;
  const JobSet jobs = TraceGenerator(9).generate(config);
  for (const auto& job : jobs.jobs()) {
    EXPECT_EQ(job.spec.batch_size,
              model_spec(job.spec.model).default_batch_size * 2);
  }
}

TEST(TraceGenerator, InvalidMixThrows) {
  EXPECT_THROW((void)WorkloadMix::favour(JobCategory::CV, 1.5), common::Error);
  TraceConfig config;
  config.mix.category_weight = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(TraceGenerator(1).generate(config), common::Error);
}

TEST(TraceSerialization, RoundTrips) {
  TraceConfig config;
  config.job_count = 30;
  const JobSet original = TraceGenerator(55).generate(config);

  std::stringstream stream;
  save_trace(original, stream);
  const JobSet loaded = load_trace(stream);

  ASSERT_EQ(loaded.job_count(), original.job_count());
  for (std::size_t j = 0; j < original.job_count(); ++j) {
    const auto& a = original.job(JobId(static_cast<int>(j))).spec;
    const auto& b = loaded.job(JobId(static_cast<int>(j))).spec;
    EXPECT_EQ(a.model, b.model);
    EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.tasks_per_round, b.tasks_per_round);
    EXPECT_EQ(a.batch_size, b.batch_size);
    EXPECT_EQ(a.batches_per_task, b.batches_per_task);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(TraceSerialization, RejectsCorruptHeader) {
  std::stringstream stream("not-a-trace 3");
  EXPECT_THROW(load_trace(stream), common::Error);
}

TEST(TraceSerialization, RejectsTruncatedBody) {
  TraceConfig config;
  config.job_count = 5;
  const JobSet original = TraceGenerator(55).generate(config);
  std::stringstream stream;
  save_trace(original, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream broken(text);
  EXPECT_THROW(load_trace(broken), common::Error);
}

}  // namespace
}  // namespace hare::workload
