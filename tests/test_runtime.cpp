// Tests for the multi-threaded executor runtime: agreement with the
// discrete-event simulator, structural constraints under real threads,
// and the message-queue primitive.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "core/hare_scheduler.hpp"
#include "runtime/message_queue.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::runtime {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

// ----------------------------------------------------------- message queue --

TEST(MessageQueue, FifoOrder) {
  MessageQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 3);
}

TEST(MessageQueue, CloseDrainsThenSignals) {
  MessageQueue<int> queue;
  queue.push(7);
  queue.close();
  EXPECT_FALSE(queue.push(8));  // rejected after close
  EXPECT_EQ(queue.pop().value(), 7);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MessageQueue, PopUntilTimesOut) {
  MessageQueue<int> queue;
  const auto start = std::chrono::steady_clock::now();
  const auto result = queue.pop_until(start + std::chrono::milliseconds(20));
  EXPECT_FALSE(result.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(MessageQueue, CrossThreadHandoff) {
  MessageQueue<int> queue;
  std::atomic<int> sum{0};
  std::thread consumer([&] {
    while (auto v = queue.pop()) sum += *v;
  });
  for (int i = 1; i <= 100; ++i) queue.push(i);
  queue.close();
  consumer.join();
  EXPECT_EQ(sum.load(), 5050);
}

// ----------------------------------------------------------------- runtime --

RuntimeConfig fast_clock() {
  RuntimeConfig config;
  config.microseconds_per_sim_second = 50.0;  // 1 sim-minute ~ 3 ms real
  return config;
}

TEST(Runtime, SingleJobMatchesAnalyticTime) {
  // One job, two rounds, one GPU: completion = 2 x (tc + ts) in virtual
  // time (plus negligible switch overhead), which the runtime must hit
  // within scheduling jitter.
  const Instance inst = make_uniform_instance({10.0}, 1, 2, 1, 1.0);
  sim::Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(1)}};

  ExecutorRuntime runtime(inst.cluster, inst.jobs, inst.times, fast_clock());
  const RuntimeResult result = runtime.run(schedule);
  EXPECT_NEAR(result.job_completion[0], 22.0, 4.0);
}

TEST(Runtime, AgreesWithSimulator) {
  const Instance inst = make_random_instance(301, 8, 4);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});

  sim::SimConfig sim_config;
  sim_config.switching = fast_clock().switching;
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times,
                                 sim_config);
  const sim::SimResult expected = simulator.run(schedule);

  ExecutorRuntime runtime(inst.cluster, inst.jobs, inst.times, fast_clock());
  const RuntimeResult actual = runtime.run(schedule);

  // Virtual-clock jitter (thread wakeups) shifts times slightly; aggregate
  // metrics must track the DES closely.
  EXPECT_LT(common::relative_difference(actual.weighted_jct,
                                        expected.weighted_jct),
            0.15);
  EXPECT_LT(common::relative_difference(actual.makespan, expected.makespan),
            0.15);
}

TEST(Runtime, RoundBarriersHold) {
  // Two parallel tasks per round on GPUs of very different speed: the
  // barrier forces lockstep; completion tracks the slow GPU.
  const Instance inst = make_uniform_instance({5.0, 1.0}, 1, 3, 2, 0.2);
  sim::Schedule schedule;
  schedule.sequences.resize(2);
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto round = inst.jobs.round_tasks(JobId(0), static_cast<int>(r));
    schedule.sequences[0].push_back(round[0]);
    schedule.sequences[1].push_back(round[1]);
  }
  ExecutorRuntime runtime(inst.cluster, inst.jobs, inst.times, fast_clock());
  const RuntimeResult result = runtime.run(schedule);
  // 3 rounds x (5.0 compute + 0.2 sync) = 15.6 virtual seconds.
  EXPECT_NEAR(result.job_completion[0], 15.6, 3.0);
}

TEST(Runtime, ArrivalsRespected) {
  Instance inst = make_uniform_instance({1.0}, 1, 1, 1, 0.1);
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.rounds = 1;
  spec.tasks_per_round = 1;
  spec.arrival = 20.0;
  jobs.add_job(spec);
  profiler::TimeTable times(1, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);

  sim::Schedule schedule;
  schedule.sequences = {{TaskId(0)}};
  ExecutorRuntime runtime(inst.cluster, jobs, times, fast_clock());
  const RuntimeResult result = runtime.run(schedule);
  EXPECT_GE(result.job_completion[0], 21.0);
}

TEST(Runtime, CountsSwitchesAndResidentHits) {
  // Two jobs alternating on one GPU under the Hare executor: the second
  // visit of each job hits its kept model state.
  const Instance inst = make_uniform_instance({1.0}, 2, 2, 1, 0.05);
  sim::Schedule schedule;
  schedule.sequences = {{TaskId(0), TaskId(2), TaskId(1), TaskId(3)}};
  ExecutorRuntime runtime(inst.cluster, inst.jobs, inst.times, fast_clock());
  const RuntimeResult result = runtime.run(schedule);
  EXPECT_EQ(result.switch_count, 3u);  // j0->j1, j1->j0, j0->j1
  EXPECT_GE(result.resident_hits, 2u);
}

class RuntimeStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeStressTest, ManyGpusManyJobsComplete) {
  const Instance inst = make_random_instance(GetParam(), 14, 8);
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  RuntimeConfig config = fast_clock();
  config.microseconds_per_sim_second = 20.0;
  ExecutorRuntime runtime(inst.cluster, inst.jobs, inst.times, config);
  const RuntimeResult result = runtime.run(schedule);
  EXPECT_EQ(result.job_completion.size(), inst.jobs.job_count());
  for (Time completion : result.job_completion) EXPECT_GT(completion, 0.0);
  EXPECT_GT(result.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeStressTest,
                         ::testing::Values(311, 312, 313));

TEST(Runtime, RejectsBadConfig) {
  const Instance inst = make_uniform_instance({1.0}, 1, 1, 1);
  RuntimeConfig config;
  config.microseconds_per_sim_second = 0.0;
  EXPECT_THROW(ExecutorRuntime(inst.cluster, inst.jobs, inst.times, config),
               common::Error);
}

}  // namespace
}  // namespace hare::runtime
