// Tests for the baseline schedulers: Gavel_FIFO, SRTF, Sched_Homo,
// Sched_Allox — structural validity plus each baseline's defining
// behavioural property.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/gavel_fifo.hpp"
#include "sched/sched_allox.hpp"
#include "sched/sched_homo.hpp"
#include "sched/srtf.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace hare::sched {
namespace {

using testing::Instance;
using testing::make_random_instance;
using testing::make_uniform_instance;

std::vector<std::unique_ptr<Scheduler>> make_baselines() {
  std::vector<std::unique_ptr<Scheduler>> v;
  v.push_back(std::make_unique<GavelFifoScheduler>());
  v.push_back(std::make_unique<SrtfScheduler>());
  v.push_back(std::make_unique<SchedHomoScheduler>());
  v.push_back(std::make_unique<SchedAlloxScheduler>());
  return v;
}

class BaselineValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineValidityTest, SchedulesExecuteToCompletion) {
  const Instance inst = make_random_instance(GetParam());
  for (const auto& scheduler : make_baselines()) {
    const sim::Schedule schedule =
        scheduler->schedule({inst.cluster, inst.jobs, inst.times});
    EXPECT_EQ(schedule.task_count(), inst.jobs.task_count())
        << scheduler->name();
    const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
    const sim::SimResult result = simulator.run(schedule);
    for (const auto& job : result.jobs) {
      EXPECT_GT(job.completion, 0.0) << scheduler->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineValidityTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// --------------------------------------------------------------- gang form --

TEST(GangPlanners, RoundTasksOnDistinctGpus) {
  // Gang baselines place each round's tasks on |D_r| distinct GPUs.
  const Instance inst = make_random_instance(55);
  for (const auto& scheduler : make_baselines()) {
    if (scheduler->name() == std::string_view("Sched_Allox")) continue;
    const sim::Schedule schedule =
        scheduler->schedule({inst.cluster, inst.jobs, inst.times});
    std::vector<GpuId> task_gpu(inst.jobs.task_count());
    for (std::size_t g = 0; g < schedule.sequences.size(); ++g) {
      for (TaskId id : schedule.sequences[g]) {
        task_gpu[static_cast<std::size_t>(id.value())] =
            GpuId(static_cast<int>(g));
      }
    }
    for (const auto& job : inst.jobs.jobs()) {
      for (std::uint32_t r = 0; r < job.rounds(); ++r) {
        std::set<GpuId> gpus;
        for (TaskId id :
             inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
          gpus.insert(task_gpu[static_cast<std::size_t>(id.value())]);
        }
        EXPECT_EQ(gpus.size(), job.tasks_per_round()) << scheduler->name();
      }
    }
  }
}

TEST(GangPlanners, JobStaysOnOneGangAcrossRounds) {
  // No GPU preemption during a job: every round uses the same GPU set.
  const Instance inst = make_random_instance(66);
  for (const auto& scheduler : make_baselines()) {
    if (scheduler->name() == std::string_view("Sched_Allox")) continue;
    const sim::Schedule schedule =
        scheduler->schedule({inst.cluster, inst.jobs, inst.times});
    std::vector<GpuId> task_gpu(inst.jobs.task_count());
    for (std::size_t g = 0; g < schedule.sequences.size(); ++g) {
      for (TaskId id : schedule.sequences[g]) {
        task_gpu[static_cast<std::size_t>(id.value())] =
            GpuId(static_cast<int>(g));
      }
    }
    for (const auto& job : inst.jobs.jobs()) {
      std::set<GpuId> first_round;
      for (TaskId id : inst.jobs.round_tasks(job.id, 0)) {
        first_round.insert(task_gpu[static_cast<std::size_t>(id.value())]);
      }
      for (std::uint32_t r = 1; r < job.rounds(); ++r) {
        for (TaskId id :
             inst.jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
          EXPECT_TRUE(first_round.count(
              task_gpu[static_cast<std::size_t>(id.value())]))
              << scheduler->name();
        }
      }
    }
  }
}

// -------------------------------------------------------------- Gavel_FIFO --

TEST(GavelFifo, DispatchOrderFollowsArrivals) {
  // Equal jobs arriving in sequence on a small cluster start in order.
  Instance inst = make_uniform_instance({1.0, 2.0}, 4, 2, 2);
  workload::JobSet jobs;
  for (int j = 0; j < 4; ++j) {
    workload::JobSpec spec;
    spec.rounds = 2;
    spec.tasks_per_round = 2;
    spec.arrival = static_cast<Time>(j);
    jobs.add_job(spec);
  }
  profiler::TimeTable times(4, 2);
  for (int j = 0; j < 4; ++j) {
    times.set(JobId(j), GpuId(0), 1.0, 0.1);
    times.set(JobId(j), GpuId(1), 2.0, 0.1);
  }
  GavelFifoScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, jobs, times});
  const sim::Simulator simulator(inst.cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  for (int j = 1; j < 4; ++j) {
    EXPECT_GE(result.jobs[j].completion, result.jobs[j - 1].completion);
  }
}

TEST(GavelFifo, PicksFastestGpusForHead) {
  // One job, gang of 1, two GPUs with 1s vs 5s: task must land on GPU 0.
  const Instance inst = make_uniform_instance({1.0, 5.0}, 1, 1, 1);
  GavelFifoScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.sequences[0].size(), 1u);
  EXPECT_TRUE(schedule.sequences[1].empty());
}

// --------------------------------------------------------------------- SRTF --

TEST(Srtf, ShorterJobRunsFirst) {
  // Two jobs arrive together; only one GPU. The shorter must finish first.
  workload::JobSet jobs;
  workload::JobSpec long_job;
  long_job.rounds = 10;
  jobs.add_job(long_job);  // job 0 (long)
  workload::JobSpec short_job;
  short_job.rounds = 2;
  jobs.add_job(short_job);  // job 1 (short)

  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(2, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);
  times.set(JobId(1), GpuId(0), 1.0, 0.1);

  SrtfScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({shell.cluster, jobs, times});
  const sim::Simulator simulator(shell.cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  EXPECT_LT(result.jobs[1].completion, result.jobs[0].completion);
  // Short first means the long job queues entirely behind it.
  EXPECT_GT(result.tasks[0].start, result.jobs[1].completion - 1.0);
}

TEST(Srtf, BeatsFifoOnSkewedLengths) {
  // A long job ahead of many short ones in the arrival queue (all arrive
  // together; FIFO breaks the tie by id and runs the long one first, SRTF
  // runs the shorts first): SRTF's total JCT must beat FIFO's.
  workload::JobSet jobs;
  workload::JobSpec long_job;
  long_job.rounds = 20;
  jobs.add_job(long_job);
  for (int j = 0; j < 4; ++j) {
    workload::JobSpec short_job;
    short_job.rounds = 1;
    jobs.add_job(short_job);
  }
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(5, 1);
  for (int j = 0; j < 5; ++j) times.set(JobId(j), GpuId(0), 1.0, 0.1);

  SrtfScheduler srtf;
  GavelFifoScheduler fifo;
  const sim::Simulator simulator(shell.cluster, jobs, times);
  const double srtf_jct =
      simulator.run(srtf.schedule({shell.cluster, jobs, times})).weighted_jct;
  const double fifo_jct =
      simulator.run(fifo.schedule({shell.cluster, jobs, times})).weighted_jct;
  EXPECT_LT(srtf_jct, fifo_jct);
}

// --------------------------------------------------------------- Sched_Homo --

TEST(SchedHomo, ObliviousToGpuSpeeds) {
  // With GPU 0 slow and GPU 1 fast, a 1-task job is still placed on the
  // first free GPU (index order), not the fast one.
  const Instance inst = make_uniform_instance({5.0, 1.0}, 1, 1, 1);
  SchedHomoScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.sequences[0].size(), 1u);  // slow GPU chosen blindly
}

TEST(SchedHomo, WeightsInfluenceOrder) {
  // Two identical jobs, one with 4x weight, one GPU: the heavy job first.
  workload::JobSet jobs;
  workload::JobSpec a;
  a.rounds = 3;
  jobs.add_job(a);
  workload::JobSpec b;
  b.rounds = 3;
  b.weight = 4.0;
  jobs.add_job(b);
  const Instance shell = make_uniform_instance({1.0}, 1, 1, 1);
  profiler::TimeTable times(2, 1);
  times.set(JobId(0), GpuId(0), 1.0, 0.1);
  times.set(JobId(1), GpuId(0), 1.0, 0.1);

  SchedHomoScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({shell.cluster, jobs, times});
  const sim::Simulator simulator(shell.cluster, jobs, times);
  const sim::SimResult result = simulator.run(schedule);
  EXPECT_LT(result.jobs[1].completion, result.jobs[0].completion);
}

// -------------------------------------------------------------- Sched_Allox --

TEST(SchedAllox, EachJobOnExactlyOneGpu) {
  const Instance inst = make_random_instance(77);
  SchedAlloxScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  std::vector<std::set<int>> job_gpus(inst.jobs.job_count());
  for (std::size_t g = 0; g < schedule.sequences.size(); ++g) {
    for (TaskId id : schedule.sequences[g]) {
      job_gpus[static_cast<std::size_t>(
                   inst.jobs.task(id).job.value())]
          .insert(static_cast<int>(g));
    }
  }
  for (const auto& gpus : job_gpus) EXPECT_EQ(gpus.size(), 1u);
}

TEST(SchedAllox, HeterogeneityAwareAssignment) {
  // One job, two GPUs (fast/slow): the whole job goes to the fast GPU.
  const Instance inst = make_uniform_instance({4.0, 1.0}, 1, 2, 2);
  SchedAlloxScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_TRUE(schedule.sequences[0].empty());
  EXPECT_EQ(schedule.sequences[1].size(), 4u);
}

TEST(SchedAllox, SpreadsJobsAcrossGpus) {
  // Four equal jobs, two equal GPUs: the matching balances two per GPU
  // rather than queueing all four on one.
  const Instance inst = make_uniform_instance({1.0, 1.0}, 4, 2, 1);
  SchedAlloxScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  EXPECT_EQ(schedule.sequences[0].size(), 4u);  // 2 jobs x 2 rounds
  EXPECT_EQ(schedule.sequences[1].size(), 4u);
}

TEST(SchedAllox, SerializesRoundTasksOnOneGpu) {
  // Intra-job parallelism is NOT exploited: a 2-task round serializes.
  const Instance inst = make_uniform_instance({1.0, 1.0}, 1, 1, 2, 0.1);
  SchedAlloxScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  const sim::SimResult result = simulator.run(schedule);
  // Round time ~ 2 x 1s + sync, not 1s + sync.
  EXPECT_GT(result.jobs[0].completion, 2.0);
}

}  // namespace
}  // namespace hare::sched
