// Tests for the hare::obs telemetry subsystem: span recording and nesting,
// thread-safety of per-thread rings under the shared pool, metric
// semantics (histogram bucket edges, counter wraparound), and the Chrome
// trace_event JSON exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hare::obs {
namespace {

/// Reset the global tracer and detach the log sink between tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

std::vector<TraceEvent> all_events() {
  std::vector<TraceEvent> events;
  for (const auto& ring : Tracer::instance().rings()) {
    auto batch = ring->snapshot();
    events.insert(events.end(), batch.begin(), batch.end());
  }
  return events;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    HARE_SPAN("test", "test.disabled");
    HARE_SPAN_ARG("test", "test.disabled_arg", "x", 42);
  }
  EXPECT_TRUE(all_events().empty());
}

TEST_F(ObsTest, SpansNestAndCarryArgs) {
  Tracer::instance().enable();
  {
    HARE_SPAN("test", "test.outer");
    {
      HARE_SPAN_ARG("test", "test.inner", "round", 3);
    }
  }
  Tracer::instance().disable();

  auto events = all_events();
  ASSERT_EQ(events.size(), 2u);
  // Rings record at scope exit, so the inner span lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_STREQ(inner.category, "test");
  ASSERT_NE(inner.arg_name, nullptr);
  EXPECT_STREQ(inner.arg_name, "round");
  EXPECT_DOUBLE_EQ(inner.arg_value, 3.0);
  // Containment: outer strictly encloses inner.
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.end_ns, inner.end_ns);
}

TEST_F(ObsTest, SpanEndIsIdempotent) {
  Tracer::instance().enable();
  {
    Span span("test", "test.early_end");
    span.end();
    span.end();  // second end must not record again
  }                // destructor must not record either
  Tracer::instance().disable();
  EXPECT_EQ(all_events().size(), 1u);
}

TEST_F(ObsTest, InstantEventsKeepDetailText) {
  Tracer::instance().enable();
  instant("test", "test.marker", "hello world");
  Tracer::instance().disable();

  auto events = all_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, Phase::Instant);
  EXPECT_EQ(events[0].detail, "hello world");
  EXPECT_EQ(events[0].start_ns, events[0].end_ns);
}

TEST_F(ObsTest, RingOverflowCountsDrops) {
  Tracer::instance().set_ring_capacity(8);
  Tracer::instance().enable();
  for (int i = 0; i < 20; ++i) {
    HARE_SPAN("test", "test.overflow");
  }
  Tracer::instance().disable();

  auto rings = Tracer::instance().rings();
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0]->snapshot().size(), 8u);
  EXPECT_EQ(rings[0]->dropped(), 12u);
  Tracer::instance().set_ring_capacity(1u << 16);
}

TEST_F(ObsTest, ConcurrentSpansUnderSharedPool) {
  Tracer::instance().enable();
  constexpr std::size_t kIterations = 256;
  std::atomic<std::size_t> ran{0};
  common::shared_pool().parallel_for_each(kIterations, [&](std::size_t i) {
    HARE_SPAN("test", "test.pool_outer");
    {
      HARE_SPAN_ARG("test", "test.pool_inner", "i", i);
    }
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  Tracer::instance().disable();

  EXPECT_EQ(ran.load(), kIterations);
  // Every iteration recorded exactly two spans; none dropped (rings are
  // far larger than the per-thread share of 512 events).
  std::size_t total = 0;
  for (const auto& ring : Tracer::instance().rings()) {
    EXPECT_EQ(ring->dropped(), 0u);
    auto events = ring->snapshot();
    total += events.size();
    for (const auto& event : events) {
      EXPECT_STREQ(event.category, "test");
      EXPECT_LE(event.start_ns, event.end_ns);
    }
  }
  EXPECT_EQ(total, 2 * kIterations);
  // Thread ids are unique across rings.
  std::vector<std::uint32_t> tids;
  for (const auto& ring : Tracer::instance().rings()) {
    tids.push_back(ring->tid());
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::adjacent_find(tids.begin(), tids.end()), tids.end());
}

TEST_F(ObsTest, CounterWrapsModulo64Bits) {
  Counter counter;
  counter.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(counter.value(), std::numeric_limits<std::uint64_t>::max());
  counter.add(2);  // wraps: max + 2 == 1 (mod 2^64)
  EXPECT_EQ(counter.value(), 1u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsTest, GaugeTracksAddAndSet) {
  Gauge gauge;
  gauge.add(3.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.set(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  Histogram histogram({1.0, 10.0});
  histogram.record(0.5);   // <= 1     -> bucket 0
  histogram.record(1.0);   // == bound -> bucket 0 (inclusive upper bound)
  histogram.record(1.5);   // <= 10    -> bucket 1
  histogram.record(10.0);  // == bound -> bucket 1
  histogram.record(11.0);  // > 10     -> overflow

  const auto counts = histogram.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);

  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  for (auto c : histogram.counts()) EXPECT_EQ(c, 0u);
}

TEST_F(ObsTest, LatencyBoundsAreStrictlyAscending) {
  const auto bounds = latency_bounds_us();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_EQ(std::adjacent_find(bounds.begin(), bounds.end()), bounds.end());
}

TEST_F(ObsTest, RegistryHandsOutStableReferences) {
  Counter& a = counter("test.stable_counter");
  Counter& b = counter("test.stable_counter");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);

  Histogram& h = histogram("test.stable_hist", {1.0, 2.0});
  // Second lookup ignores new bounds; the original instrument survives.
  Histogram& h2 = histogram("test.stable_hist", {99.0});
  EXPECT_EQ(&h, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);

  Registry::instance().reset();
  EXPECT_EQ(b.value(), 0u);  // cached refs survive reset
}

TEST_F(ObsTest, MetricsJsonSnapshotIsWellFormed) {
  counter("test.json_counter").add(3);
  gauge("test.json_gauge").set(1.5);
  histogram("test.json_hist", {1.0}).record(0.5);

  std::ostringstream out;
  Registry::instance().write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

// Golden-structure check on the Chrome trace exporter: a deterministic set
// of spans must produce metadata records, complete ("X") events with
// microsecond timestamps, and matched B/E phases (we emit none, so both
// counts are zero).
TEST_F(ObsTest, ChromeTraceExportGoldenStructure) {
  Tracer::instance().enable();
  Tracer::instance().set_thread_name("obs-test-main");
  {
    HARE_SPAN("planner", "planner.golden_outer");
    {
      HARE_SPAN_ARG("planner", "planner.golden_inner", "round", 1);
    }
  }
  instant("log", "log.info", "golden \"quoted\" text\n");
  Tracer::instance().disable();

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  // One M (thread_name) record, two X spans, one i instant.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"M\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 1u);
  // B/E pairs must be matched; this exporter emits complete events only.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
  EXPECT_NE(json.find("\"obs-test-main\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.golden_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"round\": 1"), std::string::npos);
  // The instant event's text is escaped, not emitted raw.
  EXPECT_NE(json.find("golden \\\"quoted\\\" text\\n"), std::string::npos);
  EXPECT_EQ(json.find("golden \"quoted\""), std::string::npos);
  // Every event carries ts/pid/tid; X events carry dur.
  const std::size_t events =
      count_occurrences(json, "\"ph\": \"M\"") +
      count_occurrences(json, "\"ph\": \"X\"") +
      count_occurrences(json, "\"ph\": \"i\"");
  EXPECT_EQ(count_occurrences(json, "\"pid\":"), events);
  EXPECT_EQ(count_occurrences(json, "\"tid\":"), events);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 2u);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

TEST_F(ObsTest, ParseLogLevelAcceptsNamesAndDigits) {
  using common::LogLevel;
  using common::parse_log_level;
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("3"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
}

TEST_F(ObsTest, LogRecordsMirrorIntoTraceWhenEnabled) {
  auto& logger = common::Logger::instance();
  const common::LogLevel saved = logger.level();
  logger.set_level(common::LogLevel::Info);

  common::log_info("before tracing");  // sink not installed yet
  Tracer::instance().enable();
  common::log_info("traced record ", 42);
  common::log_debug("below level, suppressed");
  Tracer::instance().disable();
  common::log_info("after tracing");  // sink removed again

  logger.set_level(saved);

  auto events = all_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, Phase::Instant);
  EXPECT_STREQ(events[0].name, "log.info");
  EXPECT_STREQ(events[0].category, "log");
  EXPECT_EQ(events[0].detail, "traced record 42");
}

TEST_F(ObsTest, FlameSummaryMergesCallPaths) {
  Tracer::instance().enable();
  for (int i = 0; i < 3; ++i) {
    HARE_SPAN("test", "test.flame_root");
    {
      HARE_SPAN("test", "test.flame_leaf");
    }
  }
  Tracer::instance().disable();

  const std::string summary = flame_summary();
  EXPECT_NE(summary.find("test.flame_root"), std::string::npos);
  EXPECT_NE(summary.find("test.flame_root;test.flame_leaf"),
            std::string::npos);
}

}  // namespace
}  // namespace hare::obs
