// Planner scaling bench + regression baseline generator.
//
// Sweeps (jobs x GPUs) grid points for both relaxation modes and times the
// Hare planner under four engine configurations:
//
//   naive        — the pre-optimization reference path: O(G) linear candidate
//                  scans, cold *dense-tableau* LP per cut round, no caches.
//   cold_indexed — indexed scans + cached aggregates, LP still cold dense.
//                  Must produce a bit-identical schedule to `naive`
//                  (asserted).
//   warm_serial  — full optimized path: warm-started *sparse revised
//                  simplex* LP + indexed scans. Bit-identical to `naive`
//                  (asserted: LpCuts rounds canonicalize the reported
//                  vertex, so the backend cannot change the schedule).
//   pooled       — warm_serial plus the shared thread pool for per-machine
//                  cut separation. Bit-identical to warm_serial (asserted).
//
// LpCuts grid points past the dense backend's practical range are marked
// sparse-only (`dense_ref = false`): only warm_serial/pooled run there, and
// the speedup columns are omitted.
//
// Emits machine-readable BENCH_planner.json (wall ms, LP solves, cuts,
// per-backend simplex pivots, LP shape, speedups, equality checks) which
// scripts/check_bench_regression.py gates in CI. `--quick` shrinks the grid
// for smoke runs; `--json <path>` overrides the output location.
//
// The timed grid always runs with hare::obs tracing *disabled* (the
// regression gate doubles as the "tracing compiled in but off costs <=1%"
// check). Afterwards one representative point per mode is re-run with the
// tracer enabled and exported as Chrome-trace JSON + metrics snapshot
// alongside the bench JSON (`--trace-out`/`--no-trace` to override/skip).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "core/hare_scheduler.hpp"
#include "obs/obs.hpp"
#include "opt/simplex.hpp"
#include "profiler/profiler.hpp"
#include "workload/trace.hpp"

namespace {

using namespace hare;

struct GridPoint {
  core::RelaxMode mode;
  std::size_t jobs;
  std::size_t gpus;
  /// Run the dense-backend naive/cold reference at this point. Off for the
  /// large LpCuts points where a cold dense solve per cut round is
  /// impractically slow; only the sparse engine is timed there.
  bool dense_ref = true;
};

struct Instance {
  cluster::Cluster cluster;
  workload::JobSet jobs;
  profiler::TimeTable times;
};

Instance make_instance(std::size_t job_count, std::size_t gpu_count,
                       std::uint64_t seed) {
  Instance instance;
  instance.cluster = cluster::make_simulation_cluster(gpu_count, 25.0, 4);

  workload::TraceConfig config;
  config.job_count = job_count;
  config.base_arrival_rate = 0.2;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.1;
  config.rounds_scale_max = 0.3;
  instance.jobs = workload::TraceGenerator(seed).generate(config);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

core::HareConfig engine_config(core::RelaxMode mode, bool naive,
                               bool warm_start, std::size_t threads,
                               opt::LpBackend backend) {
  core::HareConfig config;
  config.relaxation.mode = mode;
  config.relaxation.engine.naive = naive;
  config.relaxation.engine.warm_start_lp = warm_start;
  config.relaxation.engine.threads = threads;
  // Pinned per variant so HARE_LP_BACKEND cannot skew the comparison.
  config.relaxation.engine.lp_backend = backend;
  config.placement = core::Placement::EarliestFinish;
  return config;
}

struct VariantResult {
  double wall_ms = 0.0;  ///< best of `repeats` runs
  sim::Schedule schedule;
  core::RelaxationResult relaxation;
};

VariantResult run_variant(const sched::SchedulerInput& input,
                          const core::HareConfig& config, int repeats) {
  VariantResult result;
  result.wall_ms = 1e300;
  for (int r = 0; r < repeats; ++r) {
    core::HareScheduler scheduler(config);
    const auto start = std::chrono::steady_clock::now();
    auto schedule = scheduler.schedule(input);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < result.wall_ms) result.wall_ms = ms;
    if (r == 0) {
      result.schedule = std::move(schedule);
      result.relaxation = scheduler.last_relaxation();
    }
  }
  return result;
}

bool schedules_equal(const sim::Schedule& a, const sim::Schedule& b) {
  return a.sequences == b.sequences && a.predicted_start == b.predicted_start &&
         a.predicted_objective == b.predicted_objective;
}

struct PointResult {
  GridPoint point;
  std::size_t tasks = 0;
  double naive_ms = 0.0;
  double cold_indexed_ms = 0.0;
  double warm_serial_ms = 0.0;
  double pooled_ms = 0.0;
  double speedup_serial = 0.0;  ///< naive_ms / warm_serial_ms
  double speedup_pooled = 0.0;  ///< naive_ms / pooled_ms
  std::size_t lp_solves_naive = 0;
  std::size_t lp_solves_warm = 0;
  std::size_t cuts_naive = 0;
  std::size_t cuts_warm = 0;
  std::size_t pivots_naive = 0;  ///< dense-backend pivots (naive reference)
  std::size_t pivots_warm = 0;   ///< sparse-backend pivots (warm engine)
  // Final LP shape of the warm engine's relaxation (base rows + cuts).
  std::size_t lp_rows = 0;
  std::size_t lp_cols = 0;
  std::size_t lp_nonzeros = 0;
  std::size_t canonical_pivots = 0;  ///< vertex-canonicalization solves
  bool naive_matches_cold_indexed = false;
  bool warm_matches_pooled = false;
  bool dense_matches_sparse = false;  ///< naive (dense) vs warm (sparse)
};

const char* mode_name(core::RelaxMode mode) {
  return mode == core::RelaxMode::Fluid ? "fluid" : "lp_cuts";
}

PointResult run_point(const GridPoint& point, int repeats,
                      std::size_t pool_threads) {
  const Instance instance = make_instance(point.jobs, point.gpus, 9000 + point.jobs);
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};

  const auto warm_serial = run_variant(
      input, engine_config(point.mode, false, true, 1, opt::LpBackend::Sparse),
      repeats);
  const auto pooled = run_variant(
      input,
      engine_config(point.mode, false, true, pool_threads,
                    opt::LpBackend::Sparse),
      repeats);

  PointResult result;
  result.point = point;
  result.tasks = warm_serial.schedule.task_count();
  result.warm_serial_ms = warm_serial.wall_ms;
  result.pooled_ms = pooled.wall_ms;
  result.lp_solves_warm = warm_serial.relaxation.lp_solves;
  result.cuts_warm = warm_serial.relaxation.cut_count;
  result.pivots_warm = warm_serial.relaxation.simplex_pivots;
  result.lp_rows = warm_serial.relaxation.lp_rows;
  result.lp_cols = warm_serial.relaxation.lp_cols;
  result.lp_nonzeros = warm_serial.relaxation.lp_nonzeros;
  result.canonical_pivots = warm_serial.relaxation.canonical_pivots;
  result.warm_matches_pooled =
      schedules_equal(warm_serial.schedule, pooled.schedule);

  if (!point.dense_ref) return result;

  const auto naive = run_variant(
      input, engine_config(point.mode, true, false, 1, opt::LpBackend::Dense),
      repeats);
  const auto cold_indexed = run_variant(
      input, engine_config(point.mode, false, false, 1, opt::LpBackend::Dense),
      repeats);
  result.naive_ms = naive.wall_ms;
  result.cold_indexed_ms = cold_indexed.wall_ms;
  result.speedup_serial = naive.wall_ms / std::max(1e-6, warm_serial.wall_ms);
  result.speedup_pooled = naive.wall_ms / std::max(1e-6, pooled.wall_ms);
  result.lp_solves_naive = naive.relaxation.lp_solves;
  result.cuts_naive = naive.relaxation.cut_count;
  result.pivots_naive = naive.relaxation.simplex_pivots;
  result.naive_matches_cold_indexed =
      schedules_equal(naive.schedule, cold_indexed.schedule);
  result.dense_matches_sparse =
      schedules_equal(naive.schedule, warm_serial.schedule);
  return result;
}

[[nodiscard]] bool write_json(const std::string& path,
                              const std::vector<PointResult>& rows,
                              bool quick) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_planner_scale\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"mode\": \"" << mode_name(r.point.mode) << "\""
        << ", \"jobs\": " << r.point.jobs << ", \"gpus\": " << r.point.gpus
        << ", \"tasks\": " << r.tasks                       //
        << ", \"dense_ref\": " << (r.point.dense_ref ? "true" : "false")
        << ", \"naive_ms\": " << r.naive_ms                 //
        << ", \"cold_indexed_ms\": " << r.cold_indexed_ms   //
        << ", \"warm_serial_ms\": " << r.warm_serial_ms     //
        << ", \"pooled_ms\": " << r.pooled_ms               //
        << ", \"speedup_serial\": " << r.speedup_serial     //
        << ", \"speedup_pooled\": " << r.speedup_pooled     //
        << ", \"lp_solves_naive\": " << r.lp_solves_naive   //
        << ", \"lp_solves_warm\": " << r.lp_solves_warm     //
        << ", \"cuts_naive\": " << r.cuts_naive             //
        << ", \"cuts_warm\": " << r.cuts_warm               //
        << ", \"pivots_dense\": " << r.pivots_naive         //
        << ", \"pivots_sparse\": " << r.pivots_warm         //
        << ", \"canonical_pivots\": " << r.canonical_pivots  //
        << ", \"lp_rows\": " << r.lp_rows                   //
        << ", \"lp_cols\": " << r.lp_cols                   //
        << ", \"lp_nonzeros\": " << r.lp_nonzeros           //
        << ", \"naive_matches_cold_indexed\": "
        << (r.naive_matches_cold_indexed ? "true" : "false")
        << ", \"warm_matches_pooled\": "
        << (r.warm_matches_pooled ? "true" : "false")
        << ", \"dense_matches_sparse\": "
        << (r.dense_matches_sparse ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

/// Re-run one small point per relaxation mode with the tracer on and
/// export the telemetry next to the bench JSON. Runs after the timed
/// grid so span recording cannot perturb the regression numbers.
bool export_traced_run(const std::string& trace_path, bool quick) {
  obs::Tracer::instance().set_thread_name("bench_planner_scale");
  obs::Tracer::instance().enable();
  for (const core::RelaxMode mode :
       {core::RelaxMode::Fluid, core::RelaxMode::LpCuts}) {
    const std::size_t jobs = mode == core::RelaxMode::Fluid ? 30 : 6;
    const std::size_t gpus = mode == core::RelaxMode::Fluid ? 16 : 4;
    const Instance instance = make_instance(jobs, gpus, 9000 + jobs);
    const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                      instance.times};
    run_variant(input,
                engine_config(mode, false, true, quick ? 1 : 2,
                              opt::LpBackend::Sparse),
                1);
  }
  obs::Tracer::instance().disable();

  bool ok = obs::write_chrome_trace_file(trace_path);
  const std::string base = trace_path.size() > 5 &&
                                   trace_path.rfind(".json") ==
                                       trace_path.size() - 5
                               ? trace_path.substr(0, trace_path.size() - 5)
                               : trace_path;
  ok = obs::Registry::instance().write_json_file(base + "_metrics.json") && ok;
  ok = obs::write_flame_summary_file(base + "_spans.txt") && ok;
  if (ok) {
    std::cout << "wrote " << trace_path << " (+ _metrics.json, _spans.txt)\n";
  } else {
    std::cerr << "error: cannot write trace outputs at " << trace_path
              << "\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool trace = true;
  std::string json_path = "BENCH_planner.json";
  std::string trace_path = "BENCH_planner_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-trace") == 0) {
      trace = false;
    } else {
      std::cerr << "usage: bench_planner_scale [--quick] [--json <path>] "
                   "[--trace-out <path>] [--no-trace]\n";
      return 2;
    }
  }

  std::vector<GridPoint> grid;
  if (quick) {
    // The quick LpCuts point keeps the dense reference so CI can enforce
    // the sparse-backend speedup floor and dense/sparse schedule identity.
    grid = {{core::RelaxMode::Fluid, 30, 16},
            {core::RelaxMode::LpCuts, 16, 8}};
  } else {
    grid = {{core::RelaxMode::Fluid, 50, 16},
            {core::RelaxMode::Fluid, 100, 32},
            {core::RelaxMode::Fluid, 200, 64},
            {core::RelaxMode::Fluid, 400, 256},
            {core::RelaxMode::Fluid, 800, 512},
            {core::RelaxMode::LpCuts, 6, 4},
            {core::RelaxMode::LpCuts, 10, 6},
            {core::RelaxMode::LpCuts, 16, 8},
            // Sparse-only scale points: a cold dense tableau per cut round
            // is minutes-per-solve here, so no reference run.
            {core::RelaxMode::LpCuts, 24, 10, /*dense_ref=*/false},
            {core::RelaxMode::LpCuts, 32, 12, /*dense_ref=*/false},
            {core::RelaxMode::LpCuts, 40, 16, /*dense_ref=*/false}};
  }
  const int repeats = quick ? 1 : 3;
  const std::size_t pool_threads =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());

  std::cout << "=== planner scaling: naive vs optimized engine ===\n";
  std::vector<PointResult> rows;
  bool all_match = true;
  for (const auto& point : grid) {
    auto row = run_point(point, repeats, pool_threads);
    all_match = all_match && row.warm_matches_pooled;
    if (point.dense_ref) {
      all_match = all_match && row.naive_matches_cold_indexed &&
                  row.dense_matches_sparse;
    }
    rows.push_back(std::move(row));
  }

  common::Table table({"mode", "jobs", "gpus", "tasks", "dense ms",
                       "sparse ms", "pooled ms", "speedup", "pivots d/s",
                       "lp rxc (nnz)", "identical"});
  for (const auto& r : rows) {
    auto row = table.row();
    row.cell(mode_name(r.point.mode));
    row.cell(r.point.jobs);
    row.cell(r.point.gpus);
    row.cell(r.tasks);
    if (r.point.dense_ref) {
      row.cell(r.naive_ms, 2);
    } else {
      row.cell("-");
    }
    row.cell(r.warm_serial_ms, 2);
    row.cell(r.pooled_ms, 2);
    if (r.point.dense_ref) {
      row.cell(r.speedup_serial, 2);
      row.cell(std::to_string(r.pivots_naive) + "/" +
               std::to_string(r.pivots_warm));
    } else {
      row.cell("-");
      row.cell("-/" + std::to_string(r.pivots_warm));
    }
    row.cell(std::to_string(r.lp_rows) + "x" + std::to_string(r.lp_cols) +
             " (" + std::to_string(r.lp_nonzeros) + ")");
    const bool identical =
        r.warm_matches_pooled &&
        (!r.point.dense_ref ||
         (r.naive_matches_cold_indexed && r.dense_matches_sparse));
    row.cell(identical ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "(speedup = naive dense-tableau ms / warm sparse-simplex ms; "
               "schedules are asserted bit-identical across engines and "
               "backends)\n";

  bool wrote = write_json(json_path, rows, quick);
  if (trace) wrote = export_traced_run(trace_path, quick) && wrote;

  if (!all_match) {
    std::cerr << "FAIL: an optimized engine produced a different schedule "
                 "than its reference\n";
    return 1;
  }
  return wrote ? 0 : 1;
}
