// Fig 5: ResNet152 epoch time under different GPU combinations.
//
// Paper's shape: mixing faster GPUs into a K80 gang brings *no* speedup —
// the round barrier pins the epoch to the slowest member, so 2xK80+2xV100
// is no better than 4xK80, while a pure V100 gang is dramatically faster.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 5", "ResNet152 epoch time across GPU combinations");

  struct Combo {
    std::string name;
    std::vector<cluster::GpuType> gpus;
  };
  const std::vector<Combo> combos = {
      {"4xK80", {cluster::GpuType::K80, cluster::GpuType::K80,
                 cluster::GpuType::K80, cluster::GpuType::K80}},
      {"2xK80+2xT4", {cluster::GpuType::K80, cluster::GpuType::K80,
                      cluster::GpuType::T4, cluster::GpuType::T4}},
      {"2xK80+2xV100", {cluster::GpuType::K80, cluster::GpuType::K80,
                        cluster::GpuType::V100, cluster::GpuType::V100}},
      {"2xT4+2xV100", {cluster::GpuType::T4, cluster::GpuType::T4,
                       cluster::GpuType::V100, cluster::GpuType::V100}},
      {"4xV100", {cluster::GpuType::V100, cluster::GpuType::V100,
                  cluster::GpuType::V100, cluster::GpuType::V100}},
  };

  constexpr std::uint32_t kRoundsPerEpoch = 10;

  common::Table table({"combination", "epoch time (s)", "vs 4xK80",
                       "slowest-member bound (s)"});
  double k80_epoch = 0.0;
  for (const auto& combo : combos) {
    cluster::ClusterBuilder builder;
    for (auto type : combo.gpus) builder.add_machine(type, 1, 25.0);
    const cluster::Cluster cluster = builder.build();

    workload::JobSet jobs;
    workload::JobSpec spec;
    spec.model = workload::ModelType::ResNet152;
    spec.rounds = kRoundsPerEpoch;
    spec.tasks_per_round = 4;
    jobs.add_job(spec);

    const workload::PerfModel perf;
    profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
    const profiler::TimeTable times = profiler.exact(jobs, cluster);

    // Gang: slot k on GPU k every round (what PS data parallelism does).
    sim::Schedule schedule;
    schedule.sequences.resize(4);
    for (std::uint32_t r = 0; r < kRoundsPerEpoch; ++r) {
      const auto round =
          jobs.round_tasks(JobId(0), static_cast<RoundIndex>(r));
      for (int k = 0; k < 4; ++k) {
        schedule.sequences[static_cast<std::size_t>(k)].push_back(round[k]);
      }
    }
    const sim::Simulator simulator(cluster, jobs, times);
    const sim::SimResult result = simulator.run(schedule);

    Time slowest = 0.0;
    for (int g = 0; g < 4; ++g) {
      slowest = std::max(slowest, times.total(JobId(0), GpuId(g)));
    }
    if (combo.name == "4xK80") k80_epoch = result.makespan;
    table.row()
        .cell(combo.name)
        .cell(result.makespan, 1)
        .cell(k80_epoch > 0 ? result.makespan / k80_epoch : 1.0, 2)
        .cell(slowest * kRoundsPerEpoch, 1);
  }
  table.print(std::cout);
  std::cout << "paper: adding T4/V100 to a K80 gang brings no speedup (the "
               "barrier waits for the K80);\nonly replacing the slowest "
               "members helps.\n";
  return 0;
}
