// Shared helpers for the figure/table bench binaries.
//
// Each bench regenerates one paper table or figure: it builds the cluster
// and workload the paper describes, runs the five schemes, and prints the
// same rows/series the paper reports. Schedulers run under their natural
// executor: Hare gets the fast-task-switching executor with speculative
// memory (its §4 contribution), the baselines get the default executor —
// they switch GPUs only at job granularity, so the cold cost amortizes,
// exactly the status quo the paper compares against.
//
// All bench execution rides the hare::exp engine: a sweep fans its
// (scenario × scheme) cells across worker threads and merges results in
// canonical order, so output is bit-identical to a serial run. Set
// HARE_EXP_SERIAL=1 to force the serial path and HARE_JOBS=N to cap the
// worker count.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/hare.hpp"
#include "exp/engine.hpp"

namespace hare::bench {

using exp::ScenarioOptions;
using exp::SchemeResult;

/// Run Hare + the four baselines on one instance (one-scenario sweep;
/// schemes run as parallel cells). Every scheme sees the same jobs,
/// profiled times, and actual times.
[[nodiscard]] inline std::vector<SchemeResult> run_comparison(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const ScenarioOptions& options = {}) {
  exp::SweepSpec spec;
  spec.scenarios.push_back(exp::ScenarioSpec{"", cluster, jobs, options});
  exp::Engine engine;
  return engine.run(spec).comparison(0);
}

/// Default Table 2 workload on the given cluster scale.
[[nodiscard]] inline workload::JobSet make_default_workload(
    std::size_t job_count, std::uint64_t seed,
    workload::WorkloadMix mix = workload::WorkloadMix::uniform(),
    double batch_scale = 1.0) {
  workload::TraceConfig config;
  config.job_count = job_count;
  config.mix = mix;
  config.batch_scale = batch_scale;
  workload::TraceGenerator generator(seed);
  return generator.generate(config);
}

/// Evaluate `n` sweep points: make_scenario(i) builds point i's
/// ScenarioSpec, the engine fans all n×5 (scenario, scheme) cells across
/// its pool, and slot i of the result holds point i's scheme line-up —
/// the same shape (and bits) the old serial per-point loop produced.
template <typename MakeScenario>
[[nodiscard]] std::vector<std::vector<SchemeResult>> parallel_sweep(
    std::size_t n, MakeScenario&& make_scenario) {
  exp::SweepSpec spec;
  spec.scenarios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.scenarios.push_back(make_scenario(i));
  }
  exp::Engine engine;
  const exp::SweepResult result = engine.run(spec);
  std::vector<std::vector<SchemeResult>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(result.comparison(i));
  }
  return out;
}

inline void print_header(std::string_view id, std::string_view title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// Normalized-to-Hare column helper.
[[nodiscard]] inline double normalized(double value, double hare_value) {
  return hare_value > 0.0 ? value / hare_value : 0.0;
}

}  // namespace hare::bench
