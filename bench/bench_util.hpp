// Shared helpers for the figure/table bench binaries.
//
// Each bench regenerates one paper table or figure: it builds the cluster
// and workload the paper describes, runs the five schemes, and prints the
// same rows/series the paper reports. Schedulers run under their natural
// executor: Hare gets the fast-task-switching executor with speculative
// memory (its §4 contribution), the baselines get the default executor —
// they switch GPUs only at job granularity, so the cold cost amortizes,
// exactly the status quo the paper compares against.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/hare.hpp"

namespace hare::bench {

struct SchemeResult {
  std::string scheduler;
  double weighted_jct = 0.0;
  double weighted_completion = 0.0;
  double makespan = 0.0;
  double mean_utilization = 0.0;
  double scheduling_ms = 0.0;
  sim::SimResult sim;
};

struct ScenarioOptions {
  std::uint64_t seed = 42;
  /// Testbed mode: per-task runtime jitter (0 = exact simulator).
  double runtime_noise_cv = 0.0;
  core::HareConfig hare{};
  workload::PerfModelConfig perf{};
};

/// Run Hare + the four baselines on one instance. Every scheme sees the
/// same jobs, profiled times, and actual times.
[[nodiscard]] inline std::vector<SchemeResult> run_comparison(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const ScenarioOptions& options = {}) {
  std::vector<SchemeResult> results;
  for (const auto& scheduler : core::make_standard_schedulers(options.hare)) {
    core::HareSystem::Options sys_options;
    sys_options.seed = options.seed;
    sys_options.perf = options.perf;
    sys_options.sim.runtime_noise_cv = options.runtime_noise_cv;
    sys_options.sim.noise_seed = options.seed ^ 0x5eedull;
    const bool is_hare = scheduler->name() == std::string_view("Hare");
    sys_options.sim.switching.policy = is_hare
                                           ? switching::SwitchPolicy::Hare
                                           : switching::SwitchPolicy::Default;
    sys_options.sim.use_memory_manager = is_hare;

    core::HareSystem system(cluster, sys_options);
    system.submit_all(jobs);
    const core::RunReport report = system.run(*scheduler);

    SchemeResult entry;
    entry.scheduler = report.scheduler;
    entry.weighted_jct = report.result.weighted_jct;
    entry.weighted_completion = report.result.weighted_completion;
    entry.makespan = report.result.makespan;
    entry.mean_utilization = report.result.mean_gpu_utilization();
    entry.scheduling_ms = report.scheduling_ms;
    entry.sim = std::move(report.result);
    results.push_back(std::move(entry));
  }
  return results;
}

/// Default Table 2 workload on the given cluster scale.
[[nodiscard]] inline workload::JobSet make_default_workload(
    std::size_t job_count, std::uint64_t seed,
    workload::WorkloadMix mix = workload::WorkloadMix::uniform(),
    double batch_scale = 1.0) {
  workload::TraceConfig config;
  config.job_count = job_count;
  config.mix = mix;
  config.batch_scale = batch_scale;
  workload::TraceGenerator generator(seed);
  return generator.generate(config);
}

/// Evaluate `n` sweep points in parallel; fn(i) fills slot i of the result.
template <typename Fn>
std::vector<std::vector<SchemeResult>> parallel_sweep(std::size_t n, Fn&& fn) {
  std::vector<std::vector<SchemeResult>> out(n);
  common::ThreadPool pool;
  pool.parallel_for_each(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

inline void print_header(std::string_view id, std::string_view title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// Normalized-to-Hare column helper.
[[nodiscard]] inline double normalized(double value, double hare_value) {
  return hare_value > 0.0 ? value / hare_value : 0.0;
}

}  // namespace hare::bench
