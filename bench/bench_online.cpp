// Extension experiment: online Hare (plan at arrival, no hindsight) vs
// offline Hare and the baselines, across admission ticks.
//
// The paper leaves online scheduling as future work; this measures the
// price of not knowing future arrivals: the regret of arrival-time
// planning, and how much a small admission tick recovers by giving each
// replan more jobs to pack jointly. The online rows run through
// hare::serve — the same event loop, admission batcher, and incremental
// replanner the `hare serve` daemon uses — and the served schedule is
// replayed through the simulator: ServeService profiles each arrival with
// the exact performance model, so its internal time table is bit-identical
// to the simulator's ground truth over the same job set.
#include "bench_util.hpp"
#include "serve/serve_service.hpp"

int main() {
  using namespace hare;
  bench::print_header("Online", "online serving vs offline (testbed, 40 jobs)");

  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  workload::TraceConfig trace;
  trace.job_count = 40;
  trace.base_arrival_rate = 0.2;
  trace.rounds_scale_min = 0.15;
  trace.rounds_scale_max = 0.4;
  const workload::JobSet jobs = workload::TraceGenerator(99).generate(trace);
  std::vector<workload::JobSpec> arrivals;
  for (const workload::Job& job : jobs.jobs()) arrivals.push_back(job.spec);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 99);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);
  const sim::Simulator simulator(cluster, jobs, times);

  common::Table table({"scheduler", "weighted JCT (ks)", "vs offline Hare",
                       "planning rounds"});

  core::HareScheduler offline;
  const double offline_jct =
      simulator.run(offline.schedule({cluster, jobs, times})).weighted_jct;
  table.row()
      .cell("Hare (offline, full hindsight)")
      .cell(offline_jct / 1e3, 2)
      .cell(1.0, 2)
      .cell(std::size_t{1});

  for (double tick : {0.0, 30.0, 120.0, 600.0}) {
    serve::ServeConfig config;
    config.tick = tick;
    serve::ServeService service(cluster, perf, config);
    const serve::ServeReport report = service.run(arrivals);
    const double jct = simulator.run(report.schedule).weighted_jct;
    table.row()
        .cell("Hare_Serve (tick " + std::to_string(static_cast<int>(tick)) +
              "s)")
        .cell(jct / 1e3, 2)
        .cell(jct / offline_jct, 2)
        .cell(report.batches);
  }

  // Baselines for context (their planners are naturally arrival-driven).
  for (const auto& scheduler : core::make_standard_schedulers()) {
    if (scheduler->name() == std::string_view("Hare")) continue;
    const double jct =
        simulator.run(scheduler->schedule({cluster, jobs, times}))
            .weighted_jct;
    table.row()
        .cell(std::string(scheduler->name()))
        .cell(jct / 1e3, 2)
        .cell(jct / offline_jct, 2)
        .cell(std::string("-"));
  }
  table.print(std::cout);
  std::cout << "served Hare's regret vs full hindsight stays small, and "
               "every online variant still beats the offline baselines.\n";
  return 0;
}
