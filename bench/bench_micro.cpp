// Micro-benchmarks (google-benchmark): scheduling algorithm and substrate
// throughput — Algorithm 1 runtime vs task count, simulator event
// throughput, and the optimization kernels (Hungarian, simplex, Queyranne
// separation).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/hare.hpp"
#include "opt/hungarian.hpp"
#include "opt/queyranne.hpp"
#include "opt/simplex.hpp"

namespace {

using namespace hare;

struct MicroInstance {
  cluster::Cluster cluster;
  workload::JobSet jobs;
  profiler::TimeTable times;
};

MicroInstance make_instance(std::size_t job_count, std::size_t gpu_count) {
  MicroInstance inst;
  inst.cluster = cluster::make_simulation_cluster(gpu_count);
  workload::TraceConfig config;
  config.job_count = job_count;
  config.rounds_scale_min = 0.15;
  config.rounds_scale_max = 0.4;
  inst.jobs = workload::TraceGenerator(1).generate(config);
  profiler::Profiler profiler(workload::PerfModel{},
                              profiler::ProfilerConfig{}, 1);
  inst.times = profiler.exact(inst.jobs, inst.cluster);
  return inst;
}

void BM_HareSchedule(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  core::HareScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.schedule({inst.cluster, inst.jobs, inst.times}));
  }
  state.counters["tasks"] = static_cast<double>(inst.jobs.task_count());
}
BENCHMARK(BM_HareSchedule)
    ->Args({50, 40})
    ->Args({100, 80})
    ->Args({200, 160})
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorRun(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  core::HareScheduler scheduler;
  const sim::Schedule schedule =
      scheduler.schedule({inst.cluster, inst.jobs, inst.times});
  const sim::Simulator simulator(inst.cluster, inst.jobs, inst.times);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(schedule));
  }
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(inst.jobs.task_count()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimulatorRun)
    ->Args({50, 40})
    ->Args({200, 160})
    ->Unit(benchmark::kMillisecond);

void BM_BaselineSchedulers(benchmark::State& state) {
  const auto inst = make_instance(100, 80);
  const auto schedulers = core::make_standard_schedulers();
  auto& scheduler = *schedulers[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.schedule({inst.cluster, inst.jobs, inst.times}));
  }
  state.SetLabel(std::string(scheduler.name()));
}
BENCHMARK(BM_BaselineSchedulers)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::solve_assignment(cost, n, n));
  }
}
BENCHMARK(BM_Hungarian)->Arg(32)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_SimplexLp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    opt::LinearProgram lp;
    std::vector<std::size_t> vars;
    for (std::size_t i = 0; i < n; ++i) {
      vars.push_back(lp.add_variable(rng.uniform(-1.0, 0.0)));
      lp.add_constraint({{vars.back(), 1.0}}, opt::Relation::LessEqual,
                        rng.uniform(1.0, 5.0));
    }
    for (std::size_t c = 0; c < n; ++c) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t i = 0; i < n; ++i) {
        terms.emplace_back(vars[i], rng.uniform(0.0, 1.0));
      }
      lp.add_constraint(terms, opt::Relation::LessEqual,
                        rng.uniform(5.0, 20.0));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(lp.solve());
  }
}
BENCHMARK(BM_SimplexLp)->Arg(10)->Arg(30)->Unit(benchmark::kMicrosecond);

void BM_QueyranneSeparation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<double> t(n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = rng.uniform(0.5, 5.0);
    x[i] = rng.uniform(0.0, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::separate_queyranne_cut(t, x));
  }
}
BENCHMARK(BM_QueyranneSeparation)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_SwitchCost(benchmark::State& state) {
  switching::SwitchModelConfig config;
  config.policy = static_cast<switching::SwitchPolicy>(state.range(0));
  const switching::SwitchCostModel model(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.switch_cost(JobId(1), workload::ModelType::BertBase,
                          cluster::GpuType::V100, JobId(0), nullptr));
  }
  state.SetLabel(std::string(
      switching::switch_policy_name(config.policy)));
}
BENCHMARK(BM_SwitchCost)->DenseRange(0, 2);

}  // namespace

BENCHMARK_MAIN();
