// Fig 12: total weighted JCT of the five schemes on the 15-GPU testbed,
// measured both in "testbed" mode (per-task runtime jitter, like the real
// machines) and in exact-simulator mode, plus the testbed-vs-simulator gap
// the paper uses to validate its simulator (<5%).
//
// Paper's shape: Hare reduces total weighted JCT by 47.6%-75.3% vs the
// other schemes.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 12", "testbed weighted JCT, 5 schemes");

  const cluster::Cluster testbed = cluster::make_testbed_cluster();
  const workload::JobSet jobs = bench::make_default_workload(40, /*seed=*/7);

  bench::ScenarioOptions testbed_mode;
  testbed_mode.runtime_noise_cv = 0.05;  // measured batch-time jitter
  bench::ScenarioOptions sim_mode;  // exact times

  const auto testbed_results = bench::run_comparison(testbed, jobs, testbed_mode);
  const auto sim_results = bench::run_comparison(testbed, jobs, sim_mode);

  const double hare_jct = testbed_results.front().weighted_jct;

  common::Table table({"scheme", "testbed wJCT (s)", "simulator wJCT (s)",
                       "gap (%)", "vs Hare", "Hare reduction (%)",
                       "sched (ms)"});
  for (std::size_t i = 0; i < testbed_results.size(); ++i) {
    const auto& tb = testbed_results[i];
    const auto& sm = sim_results[i];
    const double gap =
        100.0 * common::relative_difference(tb.weighted_jct, sm.weighted_jct);
    table.row()
        .cell(tb.scheduler)
        .cell(tb.weighted_jct, 1)
        .cell(sm.weighted_jct, 1)
        .cell(gap, 2)
        .cell(bench::normalized(tb.weighted_jct, hare_jct), 2)
        .cell(100.0 * (1.0 - hare_jct / tb.weighted_jct), 1)
        .cell(tb.scheduling_ms, 1);
  }
  table.print(std::cout);

  std::cout << "paper: Hare reduces total weighted JCT by 47.6%-75.3% vs the "
               "other schemes;\n       testbed-vs-simulator gap below 5%.\n";
  return 0;
}
