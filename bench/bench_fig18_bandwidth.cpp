// Fig 18: influence of the network bandwidth connecting the machines.
//
// Paper's shape: faster networks shorten every scheme's weighted JCT, but
// sub-linearly — once sync shrinks, compute dominates (Hare gains only
// ~31% from 10→25 Gbps).
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 18", "weighted JCT vs network bandwidth");

  const double bandwidths[] = {10.0, 25.0, 40.0};
  const workload::JobSet jobs = [] {
    workload::TraceConfig config;
    config.job_count = 200;
    config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
    config.rounds_scale_max = 0.45;
    // Shorter tasks make synchronization a meaningful share of each round,
    // as in the paper's communication-sensitive setting.
    config.batches_per_task = 8;
    return workload::TraceGenerator(606).generate(config);
  }();

  const auto sweep =
      bench::parallel_sweep(std::size(bandwidths), [&](std::size_t i) {
        return exp::ScenarioSpec{
            std::to_string(static_cast<int>(bandwidths[i])) + " Gbps",
            cluster::make_simulation_cluster(160, bandwidths[i]), jobs};
      });

  common::Table table({"Gbps", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler});
  for (std::size_t i = 0; i < std::size(bandwidths); ++i) {
    auto row = table.row();
    row.cell(bandwidths[i], 0);
    for (const auto& scheme : sweep[i]) row.cell(scheme.weighted_jct / 1e3, 1);
  }
  table.print(std::cout);

  const double hare_gain =
      100.0 * (1.0 - sweep[1][0].weighted_jct / sweep[0][0].weighted_jct);
  std::cout << "(weighted JCT in kiloseconds)\nmeasured: Hare improves "
            << hare_gain
            << "% from 10 to 25 Gbps.\npaper: ~31.2% — sub-linear because "
               "training time, not sync, becomes the bottleneck.\n";
  return 0;
}
