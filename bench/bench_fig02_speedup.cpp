// Fig 2: per-model training speedup on each GPU relative to a K80.
//
// Paper's shape: ResNet50 gains ~2x on T4 and ~7x on V100; GraphSAGE is
// capped near 2x even on a V100 because its input pipeline, not the GPU,
// is the bottleneck.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 2", "training speedup vs K80 per model and GPU");

  const workload::PerfModel perf;
  const cluster::GpuType gpus[] = {cluster::GpuType::K80,
                                   cluster::GpuType::M60,
                                   cluster::GpuType::T4,
                                   cluster::GpuType::V100};

  common::Table table(
      {"model", "K80", "M60", "T4", "V100", "bottleneck on V100"});
  for (workload::ModelType model : workload::workload_models()) {
    const auto batch = workload::model_spec(model).default_batch_size;
    auto row = table.row();
    row.cell(std::string(workload::model_name(model)));
    for (cluster::GpuType gpu : gpus) {
      row.cell(perf.speedup_vs_k80(model, gpu, batch), 2);
    }
    const double util =
        perf.gpu_utilization(model, cluster::GpuType::V100, batch);
    row.cell(util > 0.95 ? "compute" : "input pipeline");
  }
  table.print(std::cout);
  std::cout << "paper: ResNet50 ~2x on T4 / ~7x on V100; GraphSAGE capped "
               "near 2x (input-bound).\n";
  return 0;
}
