// Serving-loop bench + regression baseline generator.
//
// Exercises the hare::serve daemon loop the way a deployment would: a
// pull-based TraceStream front-end pushes a bursty synthetic arrival
// stream through the event loop, the admission batcher coalesces arrivals
// per tick, and each flush replans incrementally. Three numbers are the
// contract:
//
//   * sustained admission throughput (arrivals/second through the full
//     admit -> profile -> batch -> replan path) — the 10k/s floor from the
//     serving design note, enforced in full mode;
//   * p99 replan latency, read back from the `serve.replan_latency`
//     histogram the service records per flush;
//   * warm-vs-cold LP pivot counts: the same stream served twice, once
//     with the retained-basis dual-simplex replanner and once cold —
//     warm must do strictly less pivot work (machine-independent, gated
//     in quick mode too).
//
// Determinism is the fourth, never-waived contract: the served schedule
// for a fixed event stream must be bit-identical across a serial re-run,
// four replicas fanned across the hare::exp pool, warm vs cold LP, and
// the sharded serve path serial vs pooled.
//
// Emits machine-readable BENCH_serve.json, gated by
// scripts/check_bench_regression.py.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_service.hpp"
#include "workload/arrival_spec.hpp"

namespace {

using namespace hare;

bool schedules_identical(const sim::Schedule& a, const sim::Schedule& b) {
  return a.sequences == b.sequences &&
         a.predicted_start == b.predicted_start &&
         a.predicted_objective == b.predicted_objective;
}

/// Serve one full stream from scratch (fresh stream, fresh service).
serve::ServeReport serve_stream(const cluster::Cluster& cluster,
                                const std::string& spec,
                                const serve::ServeConfig& config) {
  workload::TraceStream stream(4200, workload::parse_arrival_spec(spec));
  serve::ServeService service(cluster, workload::PerfModel{}, config);
  return service.run(stream);
}

/// p99 upper bound from a fixed-bucket histogram (the bound of the first
/// bucket whose cumulative count covers 99% of the samples).
double histogram_p99(const obs::Histogram& hist) {
  const std::vector<std::uint64_t> counts = hist.counts();
  const std::uint64_t total = hist.count();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(0.99 * static_cast<double>(total)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < hist.bounds().size() ? hist.bounds()[i]
                                      : hist.bounds().back();
    }
  }
  return hist.bounds().back();
}

struct ServeNumbers {
  std::size_t arrivals = 0;
  std::size_t batches = 0;
  std::size_t max_batch_jobs = 0;
  double throughput = 0.0;
  double p99_us = 0.0;
  serve::ReplannerStats warm;
  serve::ReplannerStats cold;
  bool warm_cold_identical = false;
  bool deterministic = false;
  bool sharded_identical = false;
};

[[nodiscard]] bool write_json(const std::string& path, const ServeNumbers& n,
                              double wall_ms, bool quick) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_serve\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"deterministic\": " << (n.deterministic ? "true" : "false")
      << ",\n";
  out << "  \"arrivals\": " << n.arrivals << ",\n";
  out << "  \"batches\": " << n.batches << ",\n";
  out << "  \"max_batch_jobs\": " << n.max_batch_jobs << ",\n";
  out << "  \"throughput_arrivals_per_s\": " << n.throughput << ",\n";
  out << "  \"replan_p99_us\": " << n.p99_us << ",\n";
  out << "  \"warm_solves\": " << n.warm.warm_solves << ",\n";
  out << "  \"cold_solves\": " << n.cold.cold_solves << ",\n";
  out << "  \"warm_pivots\": " << n.warm.warm_pivots + n.warm.cold_pivots
      << ",\n";
  out << "  \"cold_pivots\": " << n.cold.warm_pivots + n.cold.cold_pivots
      << ",\n";
  out << "  \"compactions\": " << n.warm.compactions << ",\n";
  out << "  \"wall_ms\": " << wall_ms << "\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--quick] [--json <path>]\n";
      return 2;
    }
  }

  std::cout << "=== serve: streaming admission, incremental warm replans ===\n";
  obs::Registry::instance().reset();
  const auto bench_start = std::chrono::steady_clock::now();
  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  ServeNumbers n;

  // --- Sustained throughput: a dense stream, batched per tick, through
  // the flat replan path (batches larger than the LP cap). -------------
  {
    const std::string spec =
        std::string("jobs=") + (quick ? "1200" : "4000") +
        ",rate=50,burst=4,on_period=10,off_period=30,"
        "rounds_min=0.05,rounds_max=0.15";
    serve::ServeConfig config;
    config.tick = 2.0;
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeReport report = serve_stream(cluster, spec, config);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    n.arrivals = report.arrivals;
    n.batches = report.batches;
    n.max_batch_jobs = report.max_batch_jobs;
    n.throughput = static_cast<double>(report.arrivals) / seconds;
  }

  // --- Warm vs cold incremental LP: the same moderate stream served
  // twice; the retained basis must do strictly less pivot work and land
  // on the bit-identical schedule. --------------------------------------
  const std::string lp_spec =
      std::string("jobs=") + (quick ? "48" : "96") +
      ",rate=2,rounds_min=0.08,rounds_max=0.2";
  serve::ServeConfig lp_config;
  lp_config.tick = 4.0;
  {
    serve::ServeConfig cold_config = lp_config;
    cold_config.warm_lp = false;
    const serve::ServeReport warm = serve_stream(cluster, lp_spec, lp_config);
    const serve::ServeReport cold =
        serve_stream(cluster, lp_spec, cold_config);
    n.warm = warm.lp;
    n.cold = cold.lp;
    n.warm_cold_identical =
        schedules_identical(warm.schedule, cold.schedule);

    // Determinism: a serial re-run and four pool replicas of the warm
    // config must all reproduce the first schedule bit for bit.
    bool identical = n.warm_cold_identical &&
                     schedules_identical(
                         warm.schedule,
                         serve_stream(cluster, lp_spec, lp_config).schedule);
    exp::Engine engine;
    const auto replicas = engine.map(4, [&](std::size_t) {
      return serve_stream(cluster, lp_spec, lp_config).schedule;
    });
    for (const auto& replica : replicas) {
      identical = identical && schedules_identical(warm.schedule, replica);
    }
    n.deterministic = identical;
  }

  // --- Sharded serve path: large batches fanned across shard workers
  // must merge to the serial sharded plan bit for bit. ------------------
  {
    const cluster::Cluster big =
        cluster::make_simulation_cluster(32, 25.0, 8, 2);
    const std::string spec = "jobs=48,rate=4,rounds_min=0.05,rounds_max=0.15";
    const auto sharded = [&](bool serial) {
      serve::ServeConfig config;
      config.tick = 4.0;
      config.lp_max_batch_jobs = 0;
      config.shard_min_batch_jobs = 2;
      config.shard.serial = serial;
      config.shard.workers = serial ? 0 : 3;
      return serve_stream(big, spec, config).schedule;
    };
    n.sharded_identical = schedules_identical(sharded(true), sharded(false));
    n.deterministic = n.deterministic && n.sharded_identical;
  }

  n.p99_us = histogram_p99(
      obs::histogram("serve.replan_latency", obs::latency_bounds_us()));
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - bench_start)
                             .count();

  const std::size_t warm_total = n.warm.warm_pivots + n.warm.cold_pivots;
  const std::size_t cold_total = n.cold.warm_pivots + n.cold.cold_pivots;
  common::Table table({"metric", "value"});
  table.row().cell("arrivals served").cell(n.arrivals);
  table.row().cell("batches (max jobs)").cell(
      std::to_string(n.batches) + " (" + std::to_string(n.max_batch_jobs) +
      ")");
  table.row().cell("throughput (arrivals/s)").cell(n.throughput, 0);
  table.row().cell("replan p99 (us, bucket bound)").cell(n.p99_us, 1);
  table.row().cell("LP pivots warm/cold").cell(
      std::to_string(warm_total) + "/" + std::to_string(cold_total));
  table.row().cell("LP solves warm-path/cold-path").cell(
      std::to_string(n.warm.warm_solves) + "/" +
      std::to_string(n.cold.cold_solves));
  table.row().cell("warm == cold schedule").cell(
      n.warm_cold_identical ? "yes" : "NO");
  table.row().cell("sharded serial == pooled").cell(
      n.sharded_identical ? "yes" : "NO");
  table.row().cell("bit-identical x7").cell(n.deterministic ? "yes" : "NO");
  table.print(std::cout);

  const bool wrote = write_json(json_path, n, wall_ms, quick);
  const bool pivots_ok =
      n.warm.warm_solves > 0 && warm_total < cold_total;
  if (!pivots_ok) {
    std::cerr << "error: warm replans did not beat cold pivot work\n";
  }
  const bool throughput_ok = quick || n.throughput >= 10000.0;
  if (!throughput_ok) {
    std::cerr << "error: sustained throughput " << n.throughput
              << " arrivals/s below the 10k/s floor\n";
  }
  return n.deterministic && pivots_ok && throughput_ok && wrote ? 0 : 1;
}
