// Six-figure scale grid: streamed trace -> sharded plan -> schedule, plus
// the hyper-sparse LP backend grid.
//
// Part 1 — end-to-end scale points. Each point streams its trace through
// workload::TraceStream (no materialized spec vector), profiles the exact
// time table, and plans the instance with the two-level hierarchical
// planner, serial and pooled. The serial and pooled plans must be
// bit-identical (canonical-order merge), the serial plan must validate
// structurally, and the bench reports per-stage wall-clock plus the
// process peak RSS so a regression that trades time for memory still
// shows up in the baseline. The full grid tops out at 100k jobs x 8192
// GPUs — the six-figure point the allocation-churn work targets; no flat
// plan is attempted there (the flat planner's masked rows alone would be
// Ω(J·G); bench_shard_scale measures the sharded-over-flat gap on sizes
// where flat is affordable).
//
// Part 2 — LP backend contracts. A small LpCuts instance is planned once
// with the dense tableau backend and once with the sparse revised simplex;
// the schedules must be bit-identical (the dense path is the retained
// cross-check for the sparse engine). Then a grid of wide synthetic LPs
// (few rows, thousands of columns, shard-blocked row structure — the
// shape where full pricing scans dominate and the basis stays genuinely
// sparse) is solved with SparseMode::Classic and SparseMode::Hyper; the
// objectives must agree and the classic-over-hyper speedup is recorded.
// The regression gate holds the wide points to a >= 1.5x hyper speedup in
// full mode.
//
// Emits machine-readable BENCH_scale.json which
// scripts/check_bench_regression.py gates in CI: merge bit-identity,
// schedule validity, dense/sparse backend identity, and Classic/Hyper
// objective agreement always; the hyper speedup floor and the six-figure
// completion check in full mode only. `--quick` shrinks the grid for
// smoke runs; `--json <path>` overrides the output location.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/resource.hpp"
#include "opt/revised_simplex.hpp"
#include "shard/hierarchical_planner.hpp"
#include "workload/trace.hpp"

namespace {

using namespace hare;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Part 1: end-to-end scale points.

struct ScalePoint {
  std::size_t jobs = 0;
  std::size_t gpus = 0;
  std::size_t shards = 0;
  std::size_t machines_per_domain = 0;  ///< 8-GPU machines per domain
};

struct ScaleRow {
  ScalePoint point;
  std::size_t workers = 1;
  std::size_t tasks = 0;
  double stream_ms = 0.0;         ///< trace streamed into the job set
  double profile_ms = 0.0;        ///< exact time table + aggregate cache
  std::size_t profile_rows = 0;   ///< distinct job shapes actually profiled
  double plan_serial_ms = 0.0;    ///< sharded plan, fan-out forced serial
  double plan_parallel_ms = 0.0;  ///< sharded plan over the worker pool
  double peak_rss_mb = 0.0;       ///< process peak RSS after this point
  std::size_t migrated_jobs = 0;
  double imbalance = 0.0;
  bool merge_identical = false;
  bool valid = false;
};

bool schedules_identical(const sim::Schedule& a, const sim::Schedule& b) {
  return a.sequences == b.sequences && a.predicted_start == b.predicted_start &&
         a.predicted_objective == b.predicted_objective;
}

ScaleRow run_scale_point(const ScalePoint& point) {
  ScaleRow row;
  row.point = point;
  row.workers = std::min(common::default_worker_count(), point.shards);
  const std::uint64_t seed = 6100 + point.jobs;

  std::cout << "scale " << point.jobs << " jobs x " << point.gpus
            << " gpus, " << point.shards << " shards ... " << std::flush;

  const cluster::Cluster cluster = cluster::make_simulation_cluster(
      point.gpus, 25.0, 8, point.machines_per_domain);

  workload::TraceConfig config;
  config.job_count = point.jobs;
  config.base_arrival_rate = 0.5;
  // Short training runs keep the task count proportional to the job count
  // (the bench scales the *instance*, not per-job round counts).
  config.rounds_scale_min = 0.02;
  config.rounds_scale_max = 0.08;

  auto start = Clock::now();
  workload::TraceStream stream(seed, config);
  workload::JobSet jobs;
  while (!stream.exhausted()) jobs.add_job(stream.next());
  row.stream_ms = ms_since(start);
  row.tasks = jobs.task_count();
  std::cout << row.tasks << " tasks\n";

  start = Clock::now();
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);
  times.precompute();  // charge the shared aggregate cache to profiling
  row.profile_ms = ms_since(start);
  row.profile_rows = profiler.last_rows_computed();

  const sched::SchedulerInput input{cluster, jobs, times};

  // Interleaved best-of-N plan timing: the serial and pooled plans
  // alternate inside one rep loop, so transient machine noise (page-cache
  // churn, a background task) hits both modes alike instead of biasing
  // whichever ran second; the minimum over reps is the reported number.
  // Reusing one planner object per mode across reps also exercises the
  // worker-scratch reuse path the planner is designed around.
  shard::ShardPlannerConfig serial_config;
  serial_config.shards = point.shards;
  serial_config.serial = true;
  shard::HierarchicalPlanner serial_planner(serial_config);
  shard::ShardPlannerConfig parallel_config;
  parallel_config.shards = point.shards;
  shard::HierarchicalPlanner parallel_planner(parallel_config);

  const int plan_reps = 3;
  sim::Schedule sharded_serial;
  sim::Schedule sharded_parallel;
  row.plan_serial_ms = 1e30;
  row.plan_parallel_ms = 1e30;
  for (int rep = 0; rep < plan_reps; ++rep) {
    start = Clock::now();
    sharded_serial = serial_planner.schedule(input);
    row.plan_serial_ms = std::min(row.plan_serial_ms, ms_since(start));

    start = Clock::now();
    sharded_parallel = parallel_planner.schedule(input);
    row.plan_parallel_ms = std::min(row.plan_parallel_ms, ms_since(start));
  }
  row.migrated_jobs = serial_planner.last_plan().migrated_jobs;
  row.imbalance = serial_planner.last_plan().imbalance;

  row.merge_identical = schedules_identical(sharded_serial, sharded_parallel);
  row.valid = true;
  try {
    sim::validate_schedule(sharded_serial, jobs);
  } catch (const common::Error& e) {
    std::cerr << "INVALID schedule: " << e.what() << "\n";
    row.valid = false;
  }
  row.peak_rss_mb =
      static_cast<double>(common::peak_rss_bytes()) / (1024.0 * 1024.0);
  return row;
}

// ---------------------------------------------------------------------------
// Part 2a: dense vs sparse LP backend, end to end through LpCuts planning.

struct BackendRow {
  std::size_t jobs = 0;
  std::size_t gpus = 0;
  bool identical = false;
};

BackendRow run_backend_cross_check() {
  BackendRow row;
  row.jobs = 48;
  row.gpus = 24;

  const cluster::Cluster cluster =
      cluster::make_simulation_cluster(row.gpus, 25.0, 4);
  workload::TraceConfig config;
  config.job_count = row.jobs;
  config.base_arrival_rate = 0.2;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(77);
  const workload::JobSet jobs = generator.generate(config);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 77);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);
  times.precompute();
  const sched::SchedulerInput input{cluster, jobs, times};

  auto plan = [&](opt::LpBackend backend) {
    shard::ShardPlannerConfig cfg;
    cfg.shards = 2;
    cfg.serial = true;
    cfg.lp_max_jobs = row.jobs;  // every shard plans with LpCuts
    cfg.hare.relaxation.engine.lp_backend = backend;
    shard::HierarchicalPlanner planner(cfg);
    return planner.schedule(input);
  };
  const sim::Schedule dense = plan(opt::LpBackend::Dense);
  const sim::Schedule sparse = plan(opt::LpBackend::Sparse);
  row.identical = schedules_identical(dense, sparse);
  return row;
}

// ---------------------------------------------------------------------------
// Part 2b: Classic vs Hyper sparse modes on wide synthetic LPs.

struct LpPoint {
  int rows = 0;
  int cols = 0;
  int blocks = 0;  ///< disjoint row blocks (shard-blocked structure)
  std::uint64_t seed = 0;
};

struct LpRow {
  LpPoint point;
  std::size_t nonzeros = 0;
  double classic_ms = 0.0;
  double hyper_ms = 0.0;
  double speedup = 0.0;
  std::size_t classic_pivots = 0;
  std::size_t hyper_pivots = 0;
  bool objectives_match = false;
};

/// Wide packing LP with shard-blocked capacity structure: the rows split
/// into disjoint blocks and every column's ~3 nonzeros land on distinct
/// rows of one block — the shape the planner's per-shard LPs produce
/// (placements only touch their shard's capacity rows) and the regime the
/// hyper-sparse path targets: block-confined bases keep the FTRAN/BTRAN
/// results genuinely sparse, so the row pass and candidate pricing skip
/// most of the matrix. Uniformly scattered nonzeros would fill the basis
/// in and the hyper bookkeeping would only add overhead. Every column has
/// a finite upper bound (bounded objective); rhs is sized so a meaningful
/// fraction of the columns go active, which makes phase 2 do real pivot
/// work.
opt::LinearProgram make_wide_lp(int rows, int cols, int blocks,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  opt::LinearProgram lp;
  std::vector<std::vector<std::pair<std::size_t, double>>> row_terms(
      static_cast<std::size_t>(rows));
  const int block_rows = rows / blocks;
  for (int j = 0; j < cols; ++j) {
    const std::size_t var = lp.add_variable(-rng.uniform(0.5, 2.0));
    lp.set_bounds(var, 0.0, rng.uniform(0.5, 2.0));
    const int base = (j % blocks) * block_rows;
    int picked[3] = {-1, -1, -1};
    for (int k = 0; k < 3; ++k) {
      int r;
      do {
        r = base + static_cast<int>(
                       rng.uniform_int(static_cast<std::uint64_t>(block_rows)));
      } while (r == picked[0] || r == picked[1]);
      picked[k] = r;
    }
    for (int r : picked) {
      row_terms[static_cast<std::size_t>(r)].push_back(
          {static_cast<std::size_t>(j), rng.uniform(0.2, 1.0)});
    }
  }
  const double rhs_scale = static_cast<double>(cols) /
                           static_cast<double>(rows) / 4.0;
  for (int i = 0; i < rows; ++i) {
    lp.add_constraint(row_terms[static_cast<std::size_t>(i)],
                      opt::Relation::LessEqual,
                      rng.uniform(2.0, 6.0) * rhs_scale);
  }
  return lp;
}

LpRow run_lp_point(const LpPoint& point, int reps) {
  LpRow row;
  row.point = point;
  std::cout << "lp " << point.rows << " rows x " << point.cols
            << " cols ... " << std::flush;
  const opt::LinearProgram lp =
      make_wide_lp(point.rows, point.cols, point.blocks, point.seed);

  struct ModeResult {
    double ms = 1e30;
    double objective = 0.0;
    bool optimal = false;
    std::size_t pivots = 0;
    std::size_t nonzeros = 0;
  };
  auto run = [&](opt::SparseMode mode) {
    ModeResult result;
    for (int rep = 0; rep < reps; ++rep) {
      opt::RevisedSimplex solver(lp);
      solver.set_sparse_mode(mode);
      opt::LpIterationStats stats;
      const auto start = Clock::now();
      const opt::LpSolution solution = solver.solve(2000000, &stats);
      result.ms = std::min(result.ms, ms_since(start));
      result.objective = solution.objective;
      result.optimal = solution.optimal();
      result.pivots = stats.phase1 + stats.phase2;
      result.nonzeros = solver.nonzeros();
    }
    return result;
  };

  const ModeResult classic = run(opt::SparseMode::Classic);
  const ModeResult hyper = run(opt::SparseMode::Hyper);
  row.nonzeros = classic.nonzeros;
  row.classic_ms = classic.ms;
  row.hyper_ms = hyper.ms;
  row.speedup = classic.ms / std::max(1e-6, hyper.ms);
  row.classic_pivots = classic.pivots;
  row.hyper_pivots = hyper.pivots;
  row.objectives_match =
      classic.optimal && hyper.optimal &&
      std::abs(classic.objective - hyper.objective) <=
          1e-6 * std::max(1.0, std::abs(classic.objective));
  std::cout << "classic " << classic.ms << " ms, hyper " << hyper.ms
            << " ms\n";
  return row;
}

// ---------------------------------------------------------------------------

[[nodiscard]] bool write_json(const std::string& path,
                              const std::vector<ScaleRow>& rows,
                              const BackendRow& backend,
                              const std::vector<LpRow>& lp_rows, bool quick) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_scale_100k\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"scale_points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    out << "    {\"jobs\": " << r.point.jobs << ", \"gpus\": " << r.point.gpus
        << ", \"shards\": " << r.point.shards
        << ", \"workers\": " << r.workers << ", \"tasks\": " << r.tasks
        << ",\n"
        << "     \"stream_ms\": " << r.stream_ms
        << ", \"profile_ms\": " << r.profile_ms
        << ", \"profile_rows\": " << r.profile_rows
        << ", \"plan_serial_ms\": " << r.plan_serial_ms
        << ", \"plan_parallel_ms\": " << r.plan_parallel_ms << ",\n"
        << "     \"peak_rss_mb\": " << r.peak_rss_mb
        << ", \"migrated_jobs\": " << r.migrated_jobs
        << ", \"imbalance\": " << r.imbalance << ",\n"
        << "     \"merge_identical\": "
        << (r.merge_identical ? "true" : "false")
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"backend_cross_check\": {\"jobs\": " << backend.jobs
      << ", \"gpus\": " << backend.gpus << ", \"identical\": "
      << (backend.identical ? "true" : "false") << "},\n";
  out << "  \"lp_points\": [\n";
  for (std::size_t i = 0; i < lp_rows.size(); ++i) {
    const LpRow& r = lp_rows[i];
    out << "    {\"rows\": " << r.point.rows << ", \"cols\": " << r.point.cols
        << ", \"blocks\": " << r.point.blocks
        << ", \"nonzeros\": " << r.nonzeros << ",\n"
        << "     \"classic_ms\": " << r.classic_ms
        << ", \"hyper_ms\": " << r.hyper_ms
        << ", \"speedup\": " << r.speedup << ",\n"
        << "     \"classic_pivots\": " << r.classic_pivots
        << ", \"hyper_pivots\": " << r.hyper_pivots
        << ", \"objectives_match\": "
        << (r.objectives_match ? "true" : "false") << "}"
        << (i + 1 < lp_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_scale_100k [--quick] [--json <path>]\n";
      return 2;
    }
  }

  std::cout << "=== six-figure scale grid: stream -> shard -> schedule ===\n";
  std::vector<ScalePoint> grid;
  if (quick) {
    // The 20k point rides in quick mode too (CI runs it): with the
    // interned tables and memoized profiling it costs about a second, and
    // it is large enough for the peak-RSS ceiling and the
    // pooled-vs-serial plan gate to mean something.
    grid.push_back(ScalePoint{2000, 256, 8, 4});
    grid.push_back(ScalePoint{20000, 2048, 16, 16});
  } else {
    grid.push_back(ScalePoint{20000, 2048, 16, 16});
    grid.push_back(ScalePoint{100000, 8192, 32, 32});
  }
  std::vector<ScaleRow> rows;
  for (const ScalePoint& point : grid) rows.push_back(run_scale_point(point));

  common::Table table({"jobs", "gpus", "shards", "tasks", "stream ms",
                       "profile ms", "rows", "plan ms", "pooled ms", "rss MB",
                       "migrated", "identical", "valid"});
  for (const ScaleRow& r : rows) {
    table.row()
        .cell(r.point.jobs)
        .cell(r.point.gpus)
        .cell(r.point.shards)
        .cell(r.tasks)
        .cell(r.stream_ms, 1)
        .cell(r.profile_ms, 1)
        .cell(r.profile_rows)
        .cell(r.plan_serial_ms, 1)
        .cell(r.plan_parallel_ms, 1)
        .cell(r.peak_rss_mb, 0)
        .cell(r.migrated_jobs)
        .cell(r.merge_identical ? "yes" : "NO")
        .cell(r.valid ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "(identical = serial and pooled sharded plans match bit for "
               "bit; rss = process peak after the point)\n";

  std::cout << "\n=== dense vs sparse LP backend: LpCuts plan identity ===\n";
  const BackendRow backend = run_backend_cross_check();
  std::cout << backend.jobs << " jobs x " << backend.gpus
            << " gpus, 2 LpCuts shards: "
            << (backend.identical ? "bit-identical" : "DIVERGED") << "\n";

  std::cout << "\n=== Classic vs Hyper sparse mode: wide LP grid ===\n";
  std::vector<LpPoint> lp_grid;
  int reps = 3;
  if (quick) {
    lp_grid.push_back(LpPoint{96, 4096, 12, 9001});
    reps = 1;
  } else {
    lp_grid.push_back(LpPoint{128, 8192, 16, 9001});
    lp_grid.push_back(LpPoint{192, 16384, 24, 9002});
  }
  std::vector<LpRow> lp_rows;
  for (const LpPoint& point : lp_grid) {
    lp_rows.push_back(run_lp_point(point, reps));
  }

  common::Table lp_table({"rows", "cols", "nnz", "classic ms", "hyper ms",
                          "speedup", "classic piv", "hyper piv", "match"});
  for (const LpRow& r : lp_rows) {
    lp_table.row()
        .cell(r.point.rows)
        .cell(r.point.cols)
        .cell(r.nonzeros)
        .cell(r.classic_ms, 1)
        .cell(r.hyper_ms, 1)
        .cell(r.speedup, 2)
        .cell(r.classic_pivots)
        .cell(r.hyper_pivots)
        .cell(r.objectives_match ? "yes" : "NO");
  }
  lp_table.print(std::cout);
  std::cout << "(speedup = classic over hyper wall-clock, best of " << reps
            << " rep" << (reps == 1 ? "" : "s") << ")\n";

  bool broken = !backend.identical;
  for (const ScaleRow& r : rows) {
    broken = broken || !r.merge_identical || !r.valid;
  }
  for (const LpRow& r : lp_rows) broken = broken || !r.objectives_match;
  if (broken) {
    std::cerr << "\nBROKEN CONTRACT: see table above\n";
    return 1;
  }
  return write_json(json_path, rows, backend, lp_rows, quick) ? 0 : 1;
}
