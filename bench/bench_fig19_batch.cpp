// Fig 19: influence of the batch size (multiples of the Table 2 default
// B0).
//
// Paper's shape: batch size barely moves any scheme except Sched_Homo,
// whose heterogeneity-oblivious gangs idle longer as rounds lengthen.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 19", "weighted JCT vs batch size");

  // 0.5x..2x of B0; beyond 2x the Transformer's activations no longer fit
  // a 16 GiB GPU (the memory model rejects infeasible tasks).
  const double scales[] = {0.5, 1.0, 1.5, 2.0};
  const auto cluster = cluster::make_simulation_cluster(160);

  const auto sweep = bench::parallel_sweep(std::size(scales), [&](std::size_t i) {
    workload::TraceConfig config;
    config.job_count = 200;
    config.batch_scale = scales[i];
    config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
    config.rounds_scale_max = 0.45;
    auto jobs = workload::TraceGenerator(51).generate(config);
    return exp::ScenarioSpec{"batch x" + std::to_string(scales[i]), cluster,
                             std::move(jobs)};
  });

  common::Table table({"batch", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler, "Homo/Hare"});
  for (std::size_t i = 0; i < std::size(scales); ++i) {
    auto row = table.row();
    row.cell(std::to_string(scales[i]).substr(0, 3) + " B0");
    for (const auto& scheme : sweep[i]) row.cell(scheme.weighted_jct / 1e3, 1);
    row.cell(sweep[i][3].weighted_jct / sweep[i][0].weighted_jct, 2);
  }
  table.print(std::cout);
  std::cout << "(weighted JCT in kiloseconds; rounds per job held fixed, so "
               "larger batches mean more total work for everyone)\n"
               "paper: relative standings are stable across batch sizes, "
               "with Sched_Homo penalized most as rounds lengthen.\n";
  return 0;
}
