// Fig 11: per-round training and synchronization time stability.
//
// The problem formulation drops the round subscript from T^c_{i,m,r}
// because measured round times barely move (Fig 11 shows flat curves for
// two models on 8 V100s). We reproduce the measurement: many profiled
// rounds with testbed jitter, reporting mean and coefficient of variation.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 11", "per-round time stability (8xV100, jittered)");

  const workload::PerfModel perf;
  common::Rng rng(2024);
  constexpr int kRounds = 200;
  constexpr double kJitterCv = 0.03;  // measured batch-time scatter
  const double sigma = std::sqrt(std::log(1.0 + kJitterCv * kJitterCv));

  common::Table table({"model", "mean T^c (s)", "cv T^c", "mean T^s (s)",
                       "cv T^s", "stable (cv < 5%)"});
  for (auto model :
       {workload::ModelType::ResNet50, workload::ModelType::BertBase}) {
    const auto batch = workload::model_spec(model).default_batch_size;
    const Time tc =
        perf.task_compute_time(model, cluster::GpuType::V100, batch, 20);
    const Time ts = perf.sync_time(model, 25.0);

    common::Summary tc_rounds;
    common::Summary ts_rounds;
    for (int r = 0; r < kRounds; ++r) {
      tc_rounds.add(tc * rng.log_normal(-sigma * sigma / 2.0, sigma));
      ts_rounds.add(ts * rng.log_normal(-sigma * sigma / 2.0, sigma));
    }
    table.row()
        .cell(std::string(workload::model_name(model)))
        .cell(tc_rounds.mean(), 3)
        .cell(tc_rounds.cv(), 4)
        .cell(ts_rounds.mean(), 3)
        .cell(ts_rounds.cv(), 4)
        .cell(tc_rounds.cv() < 0.05 && ts_rounds.cv() < 0.05 ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "paper: training and sync times are flat across rounds, "
               "which makes dropping the round subscript (and offline "
               "scheduling with profiled times) sound.\n";
  return 0;
}
