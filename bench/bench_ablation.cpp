// Ablation study of Hare's design choices (beyond the paper's figures):
//
//  1. Placement rule — Algorithm 1 line 12 literal (earliest-available
//     GPU) vs the speed-aware earliest-finish reading (our default).
//  2. Synchronization — relaxed scale-fixed vs strict gangs inside Hare.
//  3. Relaxation solver — fluid surrogate vs LP + Queyranne cuts (small
//     instance; also reports cut counts and the relaxation lower bound).
//  4. Executor — Hare's fast switching with/without speculative memory,
//     vs PipeSwitch and Default, under the identical Hare schedule.
#include "bench_util.hpp"

namespace {

using namespace hare;

workload::JobSet medium_workload(std::size_t jobs, std::uint64_t seed) {
  workload::TraceConfig config;
  config.job_count = jobs;
  config.rounds_scale_min = 0.15;
  config.rounds_scale_max = 0.4;
  return workload::TraceGenerator(seed).generate(config);
}

double run_hare_variant(const cluster::Cluster& cluster,
                        const workload::JobSet& jobs,
                        const profiler::TimeTable& times,
                        core::HareConfig config) {
  core::HareScheduler scheduler(config);
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
  sim::SimConfig sim_config;
  sim_config.switching.policy = switching::SwitchPolicy::Hare;
  const sim::Simulator simulator(cluster, jobs, times, sim_config);
  return simulator.run(schedule).weighted_jct;
}

void placement_and_sync() {
  bench::print_header("Ablation 1+2", "placement rule and sync scheme");
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = medium_workload(40, 7);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 7);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  common::Table table({"placement", "sync", "weighted JCT (ks)",
                       "vs default"});
  double baseline = 0.0;
  for (auto placement :
       {core::Placement::EarliestFinish, core::Placement::EarliestAvailable}) {
    for (auto sync : {core::SyncScheme::Relaxed, core::SyncScheme::Strict}) {
      core::HareConfig config;
      config.placement = placement;
      config.sync = sync;
      const double jct = run_hare_variant(cluster, jobs, times, config);
      if (baseline == 0.0) baseline = jct;
      table.row()
          .cell(placement == core::Placement::EarliestFinish
                    ? "earliest-finish (default)"
                    : "earliest-available (paper literal)")
          .cell(sync == core::SyncScheme::Relaxed ? "relaxed" : "strict")
          .cell(jct / 1e3, 1)
          .cell(jct / baseline, 2);
    }
  }
  table.print(std::cout);
  std::cout << "earliest-finish placement is what recovers the paper's "
               "reported wins on heterogeneous clusters; the literal "
               "argmin-phi rule lets slow GPUs onto round critical paths.\n";
}

void relaxation_modes() {
  bench::print_header("Ablation 3", "fluid vs LP+cuts relaxation (small)");
  // Few GPUs + simultaneous arrivals: machines carry parallel tasks of
  // several jobs, so the initial LP (without constraint (9)) overlaps them
  // and Queyranne separation has real cuts to add.
  const auto cluster =
      cluster::make_heterogeneity_cluster(cluster::HeterogeneityLevel::Mid, 3);
  workload::JobSet jobs;
  common::Rng rng(13);
  for (int j = 0; j < 8; ++j) {
    workload::JobSpec spec;
    spec.model = workload::workload_models()[static_cast<std::size_t>(
        rng.uniform_int(std::uint64_t{8}))];
    spec.rounds = 2 + static_cast<std::uint32_t>(rng.uniform_int(std::uint64_t{3}));
    spec.tasks_per_round = 1 + static_cast<std::uint32_t>(
                                   rng.uniform_int(std::uint64_t{2}));
    jobs.add_job(spec);
  }
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 13);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  common::Table table({"relaxation", "weighted JCT (s)", "relaxed objective",
                       "cuts", "LP solves", "sched (ms)"});
  for (auto mode : {core::RelaxMode::Fluid, core::RelaxMode::LpCuts}) {
    core::HareConfig config;
    config.relaxation.mode = mode;
    core::HareScheduler scheduler(config);
    const auto start = std::chrono::steady_clock::now();
    const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
    const auto end = std::chrono::steady_clock::now();
    const sim::Simulator simulator(cluster, jobs, times);
    const double jct = simulator.run(schedule).weighted_jct;
    const auto& relaxation = scheduler.last_relaxation();
    table.row()
        .cell(mode == core::RelaxMode::Fluid ? "fluid" : "LP + Queyranne cuts")
        .cell(jct, 1)
        .cell(relaxation.objective, 1)
        .cell(relaxation.cut_count)
        .cell(relaxation.lp_solves)
        .cell(std::chrono::duration<double, std::milli>(end - start).count(),
              1);
  }
  table.print(std::cout);
  std::cout << "the LP mode reproduces what the paper's Gurobi/CPLEX call "
               "computes; the fluid mode is the cluster-scale surrogate.\n";
}

void executor_variants() {
  bench::print_header("Ablation 4", "executor policies under a Hare schedule");
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = medium_workload(40, 21);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 21);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  core::HareScheduler scheduler;
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});

  common::Table table({"executor", "weighted JCT (ks)", "switch time (s)",
                       "resident hits"});
  struct Variant {
    std::string name;
    switching::SwitchPolicy policy;
    bool memory;
  };
  for (const Variant& v :
       {Variant{"Hare (speculative memory)", switching::SwitchPolicy::Hare,
                true},
        Variant{"Hare (no memory manager)", switching::SwitchPolicy::Hare,
                false},
        Variant{"PipeSwitch", switching::SwitchPolicy::PipeSwitch, false},
        Variant{"Default", switching::SwitchPolicy::Default, false}}) {
    sim::SimConfig config;
    config.switching.policy = v.policy;
    config.use_memory_manager = v.memory;
    const sim::Simulator simulator(cluster, jobs, times, config);
    const sim::SimResult result = simulator.run(schedule);
    std::size_t hits = 0;
    for (const auto& stat : result.switch_stats) hits += stat.resident_hits;
    table.row()
        .cell(v.name)
        .cell(result.weighted_jct / 1e3, 2)
        .cell(result.total_switch_time(), 1)
        .cell(hits);
  }
  table.print(std::cout);
  std::cout << "the preemptive Hare schedule is only viable with fast "
               "switching; the Default executor burns hours in context "
               "churn (the §4 motivation).\n";
}

void network_contention() {
  bench::print_header("Ablation 5",
                      "constant T^s vs processor-sharing uplinks");
  // The paper charges each sync its profiled constant; real uplinks are
  // shared. Re-executing the same plans under processor sharing shows how
  // much concurrent synchronization stretches each scheme.
  const auto cluster = cluster::make_testbed_cluster();
  const auto jobs = medium_workload(40, 31);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 31);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  common::Table table({"scheduler", "constant T^s wJCT (ks)",
                       "shared-uplink wJCT (ks)", "stretch"});
  for (const auto& scheduler : core::make_standard_schedulers()) {
    const sim::Schedule schedule =
        scheduler->schedule({cluster, jobs, times});
    sim::SimConfig exclusive;
    sim::SimConfig contended;
    contended.model_network_contention = true;
    const double a = sim::Simulator(cluster, jobs, times, exclusive)
                         .run(schedule)
                         .weighted_jct;
    const double b = sim::Simulator(cluster, jobs, times, contended)
                         .run(schedule)
                         .weighted_jct;
    table.row()
        .cell(std::string(scheduler->name()))
        .cell(a / 1e3, 2)
        .cell(b / 1e3, 2)
        .cell(b / a, 3);
  }
  table.print(std::cout);
  std::cout << "contention stretches everyone mildly on a 25 Gbps fabric; "
               "the relative standings are unchanged, supporting the "
               "paper's constant-T^s simplification.\n";
}

}  // namespace

int main() {
  placement_and_sync();
  relaxation_modes();
  executor_variants();
  network_contention();
  return 0;
}
