// Fig 1: the motivating toy example — 3 jobs on 3 heterogeneous GPUs.
//
// (a) heterogeneity-oblivious scheduling (Sched_Homo) wastes fast GPUs at
//     barriers; (b) job-level heterogeneity-aware scheduling (Sched_Allox)
//     forgoes intra-job parallelism; (c) Hare jointly exploits both and
//     fills idle slots before synchronization points.
//
// The paper's figure reports 10.5 s / 9 s / 8.5 s total JCT (and 4.5 s vs
// 3 s makespan); the exact per-GPU time table lives only in the figure
// image, so we use a table with the same structure and report the same
// qualitative ranking.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 1", "toy example: 3 jobs, 3 heterogeneous GPUs");

  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 1)
                                 .add_machine(cluster::GpuType::T4, 1)
                                 .add_machine(cluster::GpuType::K80, 1)
                                 .build();
  workload::JobSet jobs;
  workload::JobSpec j1;  // 2 rounds x 2 parallel tasks
  j1.rounds = 2;
  j1.tasks_per_round = 2;
  j1.name = "J1";
  jobs.add_job(j1);
  workload::JobSpec j2;  // sequential job, strong GPU preference
  j2.rounds = 4;
  j2.tasks_per_round = 1;
  j2.name = "J2";
  jobs.add_job(j2);
  workload::JobSpec j3;  // synchronizes every 2 tasks, like the paper's J3
  j3.rounds = 2;
  j3.tasks_per_round = 2;
  j3.name = "J3";
  jobs.add_job(j3);

  profiler::TimeTable times(3, 3);
  const double t[3][3] = {{1.0, 1.1, 1.2},
                          {1.0, 0.4, 2.0},
                          {1.1, 1.2, 1.0}};
  for (int j = 0; j < 3; ++j) {
    for (int g = 0; g < 3; ++g) {
      times.set(JobId(j), GpuId(g), t[j][g], 0.05);
    }
  }

  // Fig 1's three panels: (a) heterogeneity-oblivious, (b) job-level
  // heterogeneity-aware, (c) Hare.
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::SchedHomoScheduler>());
  schedulers.push_back(std::make_unique<sched::SchedAlloxScheduler>());
  schedulers.push_back(std::make_unique<core::HareScheduler>());

  common::Table table({"scheme (figure panel)", "total JCT (s)",
                       "makespan (s)", "mean util"});
  for (const auto& scheduler : schedulers) {
    const sim::Schedule schedule =
        scheduler->schedule({cluster, jobs, times});
    const sim::Simulator simulator(cluster, jobs, times);
    const sim::SimResult result = simulator.run(schedule);
    table.row()
        .cell(std::string(scheduler->name()))
        .cell(result.weighted_jct, 2)
        .cell(result.makespan, 2)
        .cell(result.mean_gpu_utilization(), 2);
  }
  table.print(std::cout);
  std::cout << "paper's ranking: Hare (8.5s) < job-level het-aware (9s) < "
               "het-oblivious (10.5s);\nthe per-GPU time table is only in "
               "the figure image, so absolute values differ.\n";
  return 0;
}
