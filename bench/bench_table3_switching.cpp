// Table 3: average task-switching time per model under the Default,
// PipeSwitch, and Hare executors, with the switching share of total task
// time in parentheses — measured over an actual Hare-scheduled testbed
// workload (cross-job switches only, as in the paper).
//
// Paper's shape: Default needs 3000-9000 ms per switch (>90% of task
// time); PipeSwitch lands at 2.4-12.6 ms; Hare stays under ~6 ms and
// within ~5% of task time for every model.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Table 3", "average task switching time per model");

  const cluster::Cluster cluster = cluster::make_testbed_cluster();
  // Single-batch tasks amplify switching exactly like the measurement in
  // the paper; a dense job set forces frequent cross-job switches.
  workload::TraceConfig trace_config;
  trace_config.job_count = 48;
  trace_config.rounds_scale_min = 0.2;
  trace_config.rounds_scale_max = 0.4;
  trace_config.batches_per_task = 1;  // single-batch tasks, as measured
  trace_config.base_arrival_rate = 2.0;
  workload::TraceGenerator generator(17);
  const workload::JobSet jobs = generator.generate(trace_config);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 17);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  core::HareScheduler scheduler;
  const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});

  const switching::SwitchPolicy policies[] = {switching::SwitchPolicy::Default,
                                              switching::SwitchPolicy::PipeSwitch,
                                              switching::SwitchPolicy::Hare};

  // stats[policy][model]
  std::vector<std::array<sim::SwitchStat, workload::kModelCount>> stats;
  for (auto policy : policies) {
    sim::SimConfig config;
    config.switching.policy = policy;
    config.use_memory_manager = policy == switching::SwitchPolicy::Hare;
    const sim::Simulator simulator(cluster, jobs, times, config);
    stats.push_back(simulator.run(schedule).switch_stats);
  }

  auto cell_for = [&](std::size_t policy, workload::ModelType model) {
    const auto& stat = stats[policy][static_cast<std::size_t>(model)];
    std::ostringstream os;
    if (stat.switch_count == 0) {
      os << "-";
    } else {
      os << std::fixed << std::setprecision(2) << stat.mean_switch() * 1e3
         << " ms (" << std::setprecision(1)
         << stat.overhead_fraction() * 100.0 << "%)";
    }
    return os.str();
  };

  common::Table table({"model", "Default", "PipeSwitch", "Hare",
                       "Hare resident hits"});
  for (workload::ModelType model : workload::workload_models()) {
    const auto& hare_stat = stats[2][static_cast<std::size_t>(model)];
    std::ostringstream hits;
    hits << hare_stat.resident_hits << "/" << hare_stat.switch_count;
    table.row()
        .cell(std::string(workload::model_name(model)))
        .cell(cell_for(0, model))
        .cell(cell_for(1, model))
        .cell(cell_for(2, model))
        .cell(hits.str());
  }
  table.print(std::cout);
  std::cout << "paper: Default 3288-9017 ms (94-98%); PipeSwitch 2.4-12.6 ms "
               "(1.6-8.6%); Hare 0.96-5.8 ms (<=4.5%).\n";
  return 0;
}
