// Figs 3, 6 and 8: GPU utilization under three motivating scenarios.
//
//  Fig 3 — training GraphSAGE alone on a V100: utilization stays under
//          ~30-40% because the input pipeline starves the GPU.
//  Fig 6 — gang-training ResNet152 on a V100+K80 pair: the K80 is always
//          busy while the V100 idles at every gradient barrier (<50%).
//  Fig 8 — alternating GraphSAGE and ResNet50 on one V100: with default
//          task switching the GPU spends most wall-clock time in CUDA
//          setup/teardown; with Hare's fast switching it stays busy.
#include "bench_util.hpp"

namespace {

using namespace hare;

void fig3_input_bound_utilization() {
  bench::print_header("Fig 3", "GraphSAGE utilization on a V100");
  const workload::PerfModel perf;
  common::Table table({"model", "GPU", "utilization while training"});
  for (auto [model, gpu] :
       {std::pair{workload::ModelType::GraphSAGE, cluster::GpuType::V100},
        std::pair{workload::ModelType::GraphSAGE, cluster::GpuType::K80},
        std::pair{workload::ModelType::ResNet50, cluster::GpuType::V100}}) {
    const auto batch = workload::model_spec(model).default_batch_size;
    table.row()
        .cell(std::string(workload::model_name(model)))
        .cell(std::string(cluster::gpu_type_name(gpu)))
        .cell(perf.gpu_utilization(model, gpu, batch), 2);
  }
  table.print(std::cout);
  std::cout << "paper: GraphSAGE keeps a V100 under ~30% busy.\n";
}

void fig6_gang_barrier_idle() {
  bench::print_header("Fig 6", "ResNet152 on V100+K80: busy fraction per GPU");
  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 1)
                                 .add_machine(cluster::GpuType::K80, 1)
                                 .build();
  workload::JobSet jobs;
  workload::JobSpec spec;
  spec.model = workload::ModelType::ResNet152;
  spec.rounds = 10;
  spec.tasks_per_round = 2;  // one task per GPU, gang style
  jobs.add_job(spec);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  // Gang schedule: slot k of every round on GPU k.
  sim::Schedule schedule;
  schedule.sequences.resize(2);
  for (std::uint32_t r = 0; r < spec.rounds; ++r) {
    const auto round = jobs.round_tasks(JobId(0), static_cast<RoundIndex>(r));
    schedule.sequences[0].push_back(round[0]);
    schedule.sequences[1].push_back(round[1]);
  }
  sim::SimConfig config;
  config.record_timeline = true;
  const sim::Simulator simulator(cluster, jobs, times, config);
  const sim::SimResult result = simulator.run(schedule);

  common::Table table({"GPU", "busy fraction over the job"});
  table.row().cell("V100").cell(
      result.busy_fraction(GpuId(0), 0.0, result.makespan), 2);
  table.row().cell("K80").cell(
      result.busy_fraction(GpuId(1), 0.0, result.makespan), 2);
  table.print(std::cout);
  std::cout << "paper: K80 always busy; V100 rarely above 50% — the sync "
               "barrier wastes the fast GPU.\n";
}

void fig8_switching_utilization() {
  bench::print_header("Fig 8",
                      "V100 utilization with and without fast switching");
  cluster::Cluster cluster =
      cluster::ClusterBuilder{}.add_machine(cluster::GpuType::V100, 1).build();

  // Two jobs alternate on the single GPU, batch-sized tasks like the
  // motivation experiment.
  workload::JobSet jobs;
  for (auto model :
       {workload::ModelType::GraphSAGE, workload::ModelType::ResNet50}) {
    workload::JobSpec spec;
    spec.model = model;
    spec.rounds = 20;
    spec.tasks_per_round = 1;
    spec.batches_per_task = 40;
    jobs.add_job(spec);
  }
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
  const profiler::TimeTable times = profiler.exact(jobs, cluster);

  sim::Schedule schedule;
  schedule.sequences.resize(1);
  for (std::uint32_t r = 0; r < 20; ++r) {
    schedule.sequences[0].push_back(jobs.round_tasks(JobId(0), r)[0]);
    schedule.sequences[0].push_back(jobs.round_tasks(JobId(1), r)[0]);
  }

  common::Table table(
      {"executor", "compute util", "switch share of wall-clock"});
  for (auto policy :
       {switching::SwitchPolicy::Default, switching::SwitchPolicy::Hare}) {
    sim::SimConfig config;
    config.switching.policy = policy;
    const sim::Simulator simulator(cluster, jobs, times, config);
    const sim::SimResult result = simulator.run(schedule);
    const auto& gpu = result.gpus[0];
    table.row()
        .cell(std::string(switching::switch_policy_name(policy)))
        .cell(gpu.busy_compute / gpu.last_busy_end, 2)
        .cell(gpu.busy_switch / gpu.last_busy_end, 2);
  }
  table.print(std::cout);
  std::cout << "paper: alternating tasks under default switching leaves the "
               "GPU below 50% busy;\nsingle-model training (or Hare's fast "
               "switching) keeps it nearly fully utilized.\n";
}

}  // namespace

int main() {
  fig3_input_bound_utilization();
  fig6_gang_barrier_idle();
  fig8_switching_utilization();
  return 0;
}
