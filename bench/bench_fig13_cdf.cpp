// Fig 13: CDF of job completion time on the testbed workload.
//
// Paper's shape: ~90.5% of jobs complete within 25 minutes under Hare vs
// 66.7% (Sched_Allox) and 56.5% (Sched_Homo).
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 13", "CDF of job completion time");

  const cluster::Cluster testbed = cluster::make_testbed_cluster();
  const workload::JobSet jobs = bench::make_default_workload(40, 7);
  const auto results = bench::run_comparison(testbed, jobs);

  // Evaluate every scheme's CDF at common absolute marks.
  std::vector<common::Distribution> dists;
  double max_jct = 0.0;
  for (const auto& r : results) {
    dists.push_back(r.sim.jct_distribution());
    max_jct = std::max(max_jct, dists.back().max());
  }

  common::Table table({"JCT (min)", results[0].scheduler, results[1].scheduler,
                       results[2].scheduler, results[3].scheduler,
                       results[4].scheduler});
  for (double minutes : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 45.0, 60.0, 90.0,
                         120.0}) {
    if (minutes * 60.0 > max_jct * 1.3) break;
    auto row = table.row();
    row.cell(minutes, 0);
    for (const auto& dist : dists) {
      row.cell(dist.cdf(minutes * 60.0), 3);
    }
  }
  // Tail quantiles.
  common::Table tail({"scheme", "median JCT (min)", "p90 (min)",
                      "p99 (min)", "max (min)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    tail.row()
        .cell(results[i].scheduler)
        .cell(dists[i].quantile(0.5) / 60.0, 1)
        .cell(dists[i].quantile(0.9) / 60.0, 1)
        .cell(dists[i].quantile(0.99) / 60.0, 1)
        .cell(dists[i].max() / 60.0, 1);
  }
  table.print(std::cout);
  tail.print(std::cout);
  std::cout << "paper: at the 25-minute mark Hare completes ~90.5% of jobs, "
               "Sched_Allox 66.7%, Sched_Homo 56.5%.\n";
  return 0;
}
