// Sweep-engine scaling bench + regression baseline generator.
//
// Builds one (scenario × seed × scheme) experiment grid and runs it twice
// through the hare::exp engine: once serial (the reference path) and once
// fanned across the worker pool. Asserts the two sweeps are
// **bit-identical** cell by cell — every task record, job record, and
// aggregate must match exactly — then reports the wall-clock speedup.
//
// A third sweep runs with exactly one worker: the engine must detect the
// single-worker shape and run the cells inline on the calling thread
// instead of paying pool dispatch per cell.
//
// Emits machine-readable BENCH_sweep.json (cells, workers, serial/parallel/
// 1-worker wall ms, speedups, determinism flags) which
// scripts/check_bench_regression.py gates in CI: determinism always; the
// >=3x speedup floor only when the recorded run had >= 4 workers (a
// single-core container cannot demonstrate scaling — the committed
// baseline records whatever grid machine regenerated it); the 1-worker
// sweep must stay within 5% of the serial reference (>= 0.95x) on any
// machine. `--quick` shrinks the grid for smoke runs; `--json <path>`
// overrides the output location.
//
// The timed sweeps run with hare::obs tracing disabled. Afterwards a small
// parallel sweep is re-run with the tracer on and exported as Chrome-trace
// JSON + metrics snapshot alongside the bench JSON, showing the whole
// fan-out on named per-worker tracks (`--trace-out`/`--no-trace`).
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/engine.hpp"
#include "obs/obs.hpp"

namespace {

using namespace hare;

exp::SweepSpec make_grid(bool quick) {
  exp::SweepSpec spec;
  const std::size_t job_counts[] = {20, 30, 40};
  const std::size_t scenario_count = quick ? 1 : std::size(job_counts);
  for (std::size_t i = 0; i < scenario_count; ++i) {
    workload::TraceConfig config;
    config.job_count = job_counts[i];
    config.base_arrival_rate = 0.2;
    config.rounds_scale_min = 0.1;
    config.rounds_scale_max = 0.3;
    auto jobs = workload::TraceGenerator(2200 + job_counts[i]).generate(config);
    spec.scenarios.push_back(
        exp::ScenarioSpec{std::to_string(job_counts[i]) + " jobs",
                          cluster::make_simulation_cluster(16),
                          std::move(jobs)});
  }
  spec.seeds = quick ? std::vector<std::uint64_t>{11}
                     : std::vector<std::uint64_t>{11, 23, 37, 53};
  return spec;
}

/// Exact (bitwise) equality of everything a cell computes — wall-clock
/// fields (scheduling_ms, cell_ms) are the only fields excluded.
bool cells_identical(const exp::CellResult& a, const exp::CellResult& b) {
  if (a.scenario != b.scenario || a.seed != b.seed || a.scheme != b.scheme ||
      a.result.scheduler != b.result.scheduler) {
    return false;
  }
  const sim::SimResult& ra = a.result.sim;
  const sim::SimResult& rb = b.result.sim;
  if (ra.makespan != rb.makespan ||
      ra.weighted_completion != rb.weighted_completion ||
      ra.weighted_jct != rb.weighted_jct ||
      ra.tasks.size() != rb.tasks.size() || ra.jobs.size() != rb.jobs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < ra.tasks.size(); ++i) {
    const sim::TaskRecord& ta = ra.tasks[i];
    const sim::TaskRecord& tb = rb.tasks[i];
    if (ta.gpu != tb.gpu || ta.ready != tb.ready || ta.start != tb.start ||
        ta.switch_time != tb.switch_time ||
        ta.compute_start != tb.compute_start ||
        ta.compute_end != tb.compute_end || ta.sync_end != tb.sync_end ||
        ta.model_resident != tb.model_resident) {
      return false;
    }
  }
  for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
    if (ra.jobs[i].completion != rb.jobs[i].completion) return false;
  }
  return true;
}

bool sweeps_identical(const exp::SweepResult& a, const exp::SweepResult& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!cells_identical(a.cells[i], b.cells[i])) return false;
  }
  return true;
}

[[nodiscard]] bool write_json(const std::string& path, std::size_t cells,
                              std::size_t workers, double serial_ms,
                              double parallel_ms, double speedup,
                              double one_worker_ms, double speedup_1worker,
                              bool deterministic, bool quick) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_sweep_scale\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"cells\": " << cells << ",\n";
  out << "  \"workers\": " << workers << ",\n";
  out << "  \"serial_ms\": " << serial_ms << ",\n";
  out << "  \"parallel_ms\": " << parallel_ms << ",\n";
  out << "  \"speedup\": " << speedup << ",\n";
  out << "  \"one_worker_ms\": " << one_worker_ms << ",\n";
  out << "  \"speedup_1worker\": " << speedup_1worker << ",\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

/// Re-run a small sweep with the tracer on and export the telemetry next
/// to the bench JSON. Runs after the timed sweeps so span recording
/// cannot perturb the regression numbers.
bool export_traced_run(const std::string& trace_path) {
  obs::Tracer::instance().set_thread_name("bench_sweep_scale");
  obs::Tracer::instance().enable();
  {
    exp::Engine engine;
    const exp::SweepResult traced = engine.run(make_grid(/*quick=*/true));
    static_cast<void>(traced);
  }
  obs::Tracer::instance().disable();

  bool ok = obs::write_chrome_trace_file(trace_path);
  const std::string base =
      trace_path.size() > 5 &&
              trace_path.rfind(".json") == trace_path.size() - 5
          ? trace_path.substr(0, trace_path.size() - 5)
          : trace_path;
  ok = obs::Registry::instance().write_json_file(base + "_metrics.json") && ok;
  ok = obs::write_flame_summary_file(base + "_spans.txt") && ok;
  if (ok) {
    std::cout << "wrote " << trace_path << " (+ _metrics.json, _spans.txt)\n";
  } else {
    std::cerr << "error: cannot write trace outputs at " << trace_path << "\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool trace = true;
  std::string json_path = "BENCH_sweep.json";
  std::string trace_path = "BENCH_sweep_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-trace") == 0) {
      trace = false;
    } else {
      std::cerr << "usage: bench_sweep_scale [--quick] [--json <path>] "
                   "[--trace-out <path>] [--no-trace]\n";
      return 2;
    }
  }

  std::cout << "=== sweep engine scaling: serial vs parallel fan-out ===\n";
  const exp::SweepSpec spec = make_grid(quick);

  // Every sweep is deterministic, so each path reruns nine times and
  // keeps its best wall clock — the standard noise-robust estimator; a
  // single ~20ms sample jitters past the 1-worker gate on a busy box. The
  // repetitions are *interleaved* (serial, parallel, 1-worker, serial, …)
  // so an OS noise burst degrades every path's pool equally instead of
  // landing on whichever path happened to be running.
  exp::Engine::Options serial_options;
  serial_options.serial = true;
  exp::Engine serial_engine(serial_options);
  exp::Engine parallel_engine;
  // One-worker engine: map() must run the cells inline on the calling
  // thread — before that fix, dispatching through a 1-thread pool cost
  // ~1.3x the serial loop (task allocation + queue wake-up per cell).
  // Gated machine-independently at >= 0.95x of the serial reference.
  exp::Engine one_worker_engine(exp::Engine::Options{1, false});

  const auto keep_best = [](exp::SweepResult& best, exp::SweepResult next) {
    if (best.cells.empty() || next.wall_ms < best.wall_ms) {
      best = std::move(next);
    }
  };
  exp::SweepResult serial;
  exp::SweepResult parallel;
  exp::SweepResult one_worker;
  static_cast<void>(serial_engine.run(spec));  // warm caches untimed
  for (int rep = 0; rep < 9; ++rep) {
    keep_best(serial, serial_engine.run(spec));
    keep_best(parallel, parallel_engine.run(spec));
    keep_best(one_worker, one_worker_engine.run(spec));
  }

  const bool deterministic = sweeps_identical(serial, parallel) &&
                             sweeps_identical(serial, one_worker);
  const double speedup =
      serial.wall_ms / std::max(1e-6, parallel.wall_ms);
  const double speedup_1worker =
      serial.wall_ms / std::max(1e-6, one_worker.wall_ms);

  common::Table table({"path", "cells", "workers", "wall ms", "speedup",
                       "identical"});
  table.row()
      .cell("serial")
      .cell(serial.cells.size())
      .cell(serial.workers)
      .cell(serial.wall_ms, 1)
      .cell(1.0, 2)
      .cell("ref");
  table.row()
      .cell("parallel")
      .cell(parallel.cells.size())
      .cell(parallel.workers)
      .cell(parallel.wall_ms, 1)
      .cell(speedup, 2)
      .cell(deterministic ? "yes" : "NO");
  table.row()
      .cell("1 worker")
      .cell(one_worker.cells.size())
      .cell(one_worker.workers)
      .cell(one_worker.wall_ms, 1)
      .cell(speedup_1worker, 2)
      .cell(deterministic ? "yes" : "NO");
  table.print(std::cout);
  std::cout << "(identical = every task/job record and aggregate matches the "
               "serial sweep bit for bit)\n";

  bool wrote = write_json(json_path, spec.cell_count(), parallel.workers,
                          serial.wall_ms, parallel.wall_ms, speedup,
                          one_worker.wall_ms, speedup_1worker, deterministic,
                          quick);
  if (trace) wrote = export_traced_run(trace_path) && wrote;

  if (!deterministic) {
    std::cerr << "FAIL: parallel sweep diverged from the serial reference\n";
    return 1;
  }
  return wrote ? 0 : 1;
}
