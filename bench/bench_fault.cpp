// Fault-injection scenario bench + regression baseline generator.
//
// Runs the acceptance fault scenario end to end through fault::FaultRunner:
// a seeded workload is planned, executed fault-free to fix the horizon,
// then re-executed under a scripted timeline holding (at least) one
// machine failure with recovery, one job cancellation, and one total
// outage that exhausts the single-retry budget — so checkpoint-restart,
// replan-on-failure, and the dead-letter path all fire in one run.
//
// The same scenario is executed three ways — twice back to back on the
// calling thread and once per cell fanned across the hare::exp pool — and
// every SimResult must be **bit-identical**: fault events ride the
// simulator's (time, sequence) event order, so fault runs keep the
// determinism contract the sweep engine relies on.
//
// Emits machine-readable BENCH_fault.json (outcome counts, degradation
// ratio, fragmentation, replan split, determinism flag), gated by
// scripts/check_bench_regression.py: bit-identity and scenario coverage
// always; all gates are machine-independent, so quick and full mode
// enforce the same contracts. A traced quick run is exported as
// Chrome-trace JSON so scripts/validate_trace.py covers the fault spans
// and instant events (`--trace-out`/`--no-trace`).
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault_spec.hpp"
#include "fault/runner.hpp"
#include "obs/obs.hpp"

namespace {

using namespace hare;

struct Instance {
  cluster::Cluster cluster;
  workload::JobSet jobs;
  profiler::TimeTable times;
};

Instance make_instance(bool quick) {
  Instance inst;
  inst.cluster = cluster::make_simulation_cluster(quick ? 8 : 16, 25.0, 4);
  workload::TraceConfig config;
  config.job_count = quick ? 8 : 14;
  config.base_arrival_rate = 0.2;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(3100);
  inst.jobs = generator.generate(config);
  profiler::Profiler profiler(workload::PerfModel{},
                              profiler::ProfilerConfig{}, 3100);
  inst.times = profiler.exact(inst.jobs, inst.cluster);
  return inst;
}

/// The acceptance scenario, scripted against the fault-free makespan H:
/// cancel a job early, fail machine 0 at 0.15H and recover it (forcing a
/// checkpoint-restart + replan), then take the whole cluster down at
/// 0.65H under max_retries=1 — any job already restarted once exhausts
/// its budget, everything else has no survivors to replan onto, so the
/// dead-letter path is exercised either way. The late recovery restores
/// capacity for whatever replans remain.
std::string scenario_spec(const Instance& inst, Time horizon) {
  std::ostringstream spec;
  spec << "max_retries=1,backoff_base=1,restart_overhead=0.2,events=(";
  spec << "cancel_job:1@" << 0.05 * horizon << ';';
  spec << "fail_machine:0@" << 0.15 * horizon << ';';
  spec << "recover_machine:0@" << 0.30 * horizon << ';';
  for (std::size_t m = 0; m < inst.cluster.machine_count(); ++m) {
    spec << "fail_machine:" << m << '@' << 0.65 * horizon << ';';
  }
  for (std::size_t m = 0; m < inst.cluster.machine_count(); ++m) {
    spec << "recover_machine:" << m << '@' << 0.80 * horizon << ';';
  }
  spec << "fail_machine:0@" << 1.50 * horizon;  // harmless tail event
  spec << ")";
  return spec.str();
}

fault::FaultRunReport run_scenario(const Instance& inst,
                                   const std::string& spec_text) {
  fault::FaultRunnerConfig config;
  config.spec = fault::parse_fault_spec(spec_text);
  fault::FaultRunner runner(inst.cluster, inst.jobs, inst.times, inst.times,
                            config);
  return runner.run();
}

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.tasks.size() != b.tasks.size() || a.jobs.size() != b.jobs.size() ||
      a.makespan != b.makespan || a.weighted_jct != b.weighted_jct ||
      a.weighted_completion != b.weighted_completion) {
    return false;
  }
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const sim::TaskRecord& x = a.tasks[i];
    const sim::TaskRecord& y = b.tasks[i];
    if (x.gpu != y.gpu || x.start != y.start || x.sync_end != y.sync_end ||
        x.compute_start != y.compute_start ||
        x.compute_end != y.compute_end || x.attempts != y.attempts) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const sim::JobRecord& x = a.jobs[i];
    const sim::JobRecord& y = b.jobs[i];
    if (x.completion != y.completion || x.outcome != y.outcome ||
        x.restarts != y.restarts) {
      return false;
    }
  }
  const sim::FaultStats& fa = a.faults;
  const sim::FaultStats& fb = b.faults;
  return fa.machine_failures == fb.machine_failures &&
         fa.gpu_failures == fb.gpu_failures &&
         fa.recoveries == fb.recoveries &&
         fa.cancellations == fb.cancellations &&
         fa.restarts == fb.restarts && fa.dead_letters == fb.dead_letters &&
         fa.replans == fb.replans && fa.tasks_killed == fb.tasks_killed &&
         fa.lost_compute == fb.lost_compute &&
         fa.recovery_latencies == fb.recovery_latencies;
}

[[nodiscard]] bool write_json(const std::string& path,
                              const fault::FaultRunReport& report,
                              bool deterministic, double wall_ms,
                              bool quick) {
  const sim::FaultStats& stats = report.faulted.faults;
  std::size_t completed = 0, cancelled = 0, dead = 0;
  for (const auto& job : report.faulted.jobs) {
    switch (job.outcome) {
      case sim::JobOutcome::Completed: ++completed; break;
      case sim::JobOutcome::Cancelled: ++cancelled; break;
      case sim::JobOutcome::DeadLettered: ++dead; break;
    }
  }
  double recovery_mean = 0.0;
  for (const Time latency : stats.recovery_latencies) {
    recovery_mean += latency;
  }
  if (!stats.recovery_latencies.empty()) {
    recovery_mean /= static_cast<double>(stats.recovery_latencies.size());
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_fault\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n";
  out << "  \"jobs\": " << report.faulted.jobs.size() << ",\n";
  out << "  \"jobs_completed\": " << completed << ",\n";
  out << "  \"jobs_cancelled\": " << cancelled << ",\n";
  out << "  \"jobs_dead\": " << dead << ",\n";
  out << "  \"machine_failures\": " << stats.machine_failures << ",\n";
  out << "  \"gpu_failures\": " << stats.gpu_failures << ",\n";
  out << "  \"recoveries\": " << stats.recoveries << ",\n";
  out << "  \"cancellations\": " << stats.cancellations << ",\n";
  out << "  \"restarts\": " << stats.restarts << ",\n";
  out << "  \"dead_letters\": " << stats.dead_letters << ",\n";
  out << "  \"tasks_killed\": " << stats.tasks_killed << ",\n";
  out << "  \"lost_compute_s\": " << stats.lost_compute << ",\n";
  out << "  \"replans_full\": " << report.replans_full << ",\n";
  out << "  \"replans_greedy\": " << report.replans_greedy << ",\n";
  out << "  \"recovery_latency_mean_s\": " << recovery_mean << ",\n";
  out << "  \"degradation_ratio\": " << report.degradation_ratio << ",\n";
  out << "  \"fragmentation\": " << report.fragmentation << ",\n";
  out << "  \"starvation\": " << report.starvation << ",\n";
  out << "  \"wall_ms\": " << wall_ms << "\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

/// Re-run the quick scenario with the tracer on and export the telemetry
/// next to the bench JSON, so the trace validator sees the fault spans
/// ("fault.replan") and instant events ("fault.event").
bool export_traced_run(const std::string& trace_path) {
  obs::Tracer::instance().set_thread_name("bench_fault");
  obs::Tracer::instance().enable();
  {
    const Instance inst = make_instance(/*quick=*/true);
    const fault::FaultRunReport probe = run_scenario(inst, "");
    const fault::FaultRunReport traced = run_scenario(
        inst, scenario_spec(inst, probe.fault_free.makespan));
    static_cast<void>(traced);
  }
  obs::Tracer::instance().disable();

  bool ok = obs::write_chrome_trace_file(trace_path);
  const std::string base =
      trace_path.size() > 5 &&
              trace_path.rfind(".json") == trace_path.size() - 5
          ? trace_path.substr(0, trace_path.size() - 5)
          : trace_path;
  ok = obs::Registry::instance().write_json_file(base + "_metrics.json") && ok;
  if (ok) {
    std::cout << "wrote " << trace_path << " (+ _metrics.json)\n";
  } else {
    std::cerr << "error: cannot write trace outputs at " << trace_path << "\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool trace = true;
  std::string json_path = "BENCH_fault.json";
  std::string trace_path = "BENCH_fault_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-trace") == 0) {
      trace = false;
    } else {
      std::cerr << "usage: bench_fault [--quick] [--json <path>] "
                   "[--trace-out <path>] [--no-trace]\n";
      return 2;
    }
  }

  std::cout << "=== fault injection: failure/recovery, cancellation, "
               "dead-letter ===\n";
  const Instance inst = make_instance(quick);

  // Fix the scenario timeline off the fault-free makespan, then run it.
  const fault::FaultRunReport probe = run_scenario(inst, "");
  const std::string spec_text =
      scenario_spec(inst, probe.fault_free.makespan);
  std::cout << "scenario: " << spec_text << "\n";

  const auto start = std::chrono::steady_clock::now();
  const fault::FaultRunReport report = run_scenario(inst, spec_text);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  // Determinism: an immediate serial re-run and a pooled fan-out of four
  // replicas must all be bit-identical to the first run.
  bool deterministic =
      results_identical(report.faulted,
                        run_scenario(inst, spec_text).faulted);
  exp::Engine engine;
  const auto replicas = engine.map(4, [&](std::size_t) {
    return run_scenario(inst, spec_text).faulted;
  });
  for (const auto& replica : replicas) {
    deterministic = deterministic && results_identical(report.faulted, replica);
  }

  const sim::FaultStats& stats = report.faulted.faults;
  common::Table table({"metric", "value"});
  table.row().cell("machine failures").cell(stats.machine_failures);
  table.row().cell("recoveries").cell(stats.recoveries);
  table.row().cell("cancellations").cell(stats.cancellations);
  table.row().cell("restarts").cell(stats.restarts);
  table.row().cell("dead-letters").cell(stats.dead_letters);
  table.row().cell("replans (planner/greedy)").cell(
      std::to_string(report.replans_full) + "/" +
      std::to_string(report.replans_greedy));
  table.row().cell("degradation ratio").cell(report.degradation_ratio, 3);
  table.row().cell("fragmentation").cell(report.fragmentation, 3);
  table.row().cell("starvation").cell(report.starvation, 3);
  table.row().cell("bit-identical x6").cell(deterministic ? "yes" : "NO");
  table.print(std::cout);

  const bool wrote = write_json(json_path, report, deterministic, wall_ms,
                                quick);
  bool traced = true;
  if (trace) traced = export_traced_run(trace_path);

  const bool coverage = stats.machine_failures >= 1 &&
                        stats.recoveries >= 1 && stats.cancellations >= 1 &&
                        stats.dead_letters >= 1;
  if (!coverage) {
    std::cerr << "error: scenario lost coverage (failure/recovery/"
                 "cancellation/dead-letter)\n";
  }
  return deterministic && coverage && wrote && traced ? 0 : 1;
}
