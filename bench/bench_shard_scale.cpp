// Hierarchical sharded planning at cluster scale + regression baseline
// generator.
//
// Part 1 — shard grid. For each (jobs × GPUs × shards) point the bench
// plans the same instance three ways: the flat core::HareScheduler (fluid
// relaxation over the whole cluster — the Ω(J·G) reference), the
// hierarchical planner with its shard fan-out forced serial, and the
// hierarchical planner fanned across the worker pool. The serial and
// parallel sharded plans must be **bit-identical** (canonical-order merge:
// parallelism changes wall-clock only), every plan must validate
// structurally, and the sharded-over-flat speedups are reported. Even the
// serial sharded plan beats flat super-linearly in S: each sub-instance
// pays ~(J/S)·(G/S) where flat pays J·G.
//
// Part 2 — incremental Queyranne separation. LpCuts relaxations run twice
// (full per-round re-sort vs incremental separator); the cut trajectories
// must match exactly (same cuts, same rounds, same x̂, same objective) and
// the re-sorted-task counter measures the separation sort work actually
// saved.
//
// Emits machine-readable BENCH_shard.json which
// scripts/check_bench_regression.py gates in CI: merge bit-identity,
// schedule validity, and cut-trajectory identity always; the >= 3x
// sharded-over-flat speedup floor only when the recorded run had >= 4
// workers; the >= 50% separation re-sort savings floor in full mode.
// `--quick` shrinks the grid for smoke runs; `--json <path>` overrides the
// output location.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "shard/hierarchical_planner.hpp"

namespace {

using namespace hare;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ShardPoint {
  std::size_t jobs = 0;
  std::size_t gpus = 0;
  std::size_t shards = 0;
  std::size_t machines_per_domain = 0;  ///< 8-GPU machines per domain
};

struct ShardRow {
  ShardPoint point;
  std::size_t workers = 1;
  double flat_ms = 0.0;
  double sharded_serial_ms = 0.0;
  double sharded_parallel_ms = 0.0;
  double speedup_serial = 0.0;
  double speedup_parallel = 0.0;
  double objective_ratio = 0.0;  ///< sharded / flat planned Σ w C
  double imbalance = 0.0;
  bool merge_identical = false;
  bool valid = false;
};

struct SepRow {
  std::size_t jobs = 0;
  std::size_t gpus = 0;
  bool trajectory_identical = false;
  std::size_t sep_tasks_total = 0;
  std::size_t sep_tasks_resorted = 0;
};

struct Instance {
  cluster::Cluster cluster;
  workload::JobSet jobs;
  profiler::TimeTable times{0, 0};
};

Instance make_instance(const ShardPoint& point, std::uint64_t seed) {
  Instance instance;
  instance.cluster = cluster::make_simulation_cluster(
      point.gpus, 25.0, 8, point.machines_per_domain);

  workload::TraceConfig config;
  config.job_count = point.jobs;
  config.base_arrival_rate = 0.5;
  // Short training runs keep the task count proportional to the job count
  // (the bench scales the *instance*, not per-job round counts).
  config.rounds_scale_min = 0.02;
  config.rounds_scale_max = 0.08;
  workload::TraceGenerator generator(seed);
  instance.jobs = generator.generate(config);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);
  return instance;
}

bool schedules_identical(const sim::Schedule& a, const sim::Schedule& b) {
  return a.sequences == b.sequences && a.predicted_start == b.predicted_start &&
         a.predicted_objective == b.predicted_objective;
}

ShardRow run_point(const ShardPoint& point) {
  ShardRow row;
  row.point = point;
  row.workers = std::min(common::default_worker_count(), point.shards);

  std::cout << "instance " << point.jobs << " jobs x " << point.gpus
            << " gpus, " << point.shards << " shards ... " << std::flush;
  const Instance instance = make_instance(point, 4400 + point.jobs);
  instance.times.precompute();  // charge the shared aggregate cache to no one
  const sched::SchedulerInput input{instance.cluster, instance.jobs,
                                    instance.times};
  std::cout << instance.jobs.task_count() << " tasks\n";

  core::HareScheduler flat;  // fluid relaxation over the whole cluster
  auto start = Clock::now();
  const sim::Schedule flat_schedule = flat.schedule(input);
  row.flat_ms = ms_since(start);

  shard::ShardPlannerConfig serial_config;
  serial_config.shards = point.shards;
  serial_config.serial = true;
  shard::HierarchicalPlanner serial_planner(serial_config);
  start = Clock::now();
  const sim::Schedule sharded_serial = serial_planner.schedule(input);
  row.sharded_serial_ms = ms_since(start);
  row.imbalance = serial_planner.last_plan().imbalance;

  shard::ShardPlannerConfig parallel_config;
  parallel_config.shards = point.shards;
  shard::HierarchicalPlanner parallel_planner(parallel_config);
  start = Clock::now();
  const sim::Schedule sharded_parallel = parallel_planner.schedule(input);
  row.sharded_parallel_ms = ms_since(start);

  row.merge_identical = schedules_identical(sharded_serial, sharded_parallel);
  row.valid = true;
  try {
    sim::validate_schedule(flat_schedule, instance.jobs);
    sim::validate_schedule(sharded_serial, instance.jobs);
  } catch (const common::Error& e) {
    std::cerr << "INVALID schedule: " << e.what() << "\n";
    row.valid = false;
  }
  row.speedup_serial = row.flat_ms / std::max(1e-6, row.sharded_serial_ms);
  row.speedup_parallel = row.flat_ms / std::max(1e-6, row.sharded_parallel_ms);
  row.objective_ratio =
      flat_schedule.predicted_objective > 0.0
          ? sharded_serial.predicted_objective /
                flat_schedule.predicted_objective
          : 1.0;
  return row;
}

SepRow run_separation_point(std::uint64_t seed, std::size_t jobs,
                            std::size_t gpus) {
  SepRow row;
  row.jobs = jobs;
  row.gpus = gpus;

  Instance instance;
  instance.cluster = cluster::make_simulation_cluster(gpus, 25.0, 4);
  workload::TraceConfig config;
  config.job_count = jobs;
  config.base_arrival_rate = 0.2;
  config.sync_scales = {1, 2, 2, 4};
  config.rounds_scale_min = 0.05;
  config.rounds_scale_max = 0.2;
  workload::TraceGenerator generator(seed);
  instance.jobs = generator.generate(config);
  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, seed);
  instance.times = profiler.exact(instance.jobs, instance.cluster);

  auto solve = [&](bool incremental) {
    core::RelaxationConfig relax;
    relax.mode = core::RelaxMode::LpCuts;
    relax.engine.incremental_separation = incremental;
    const core::HareRelaxation relaxation(relax);
    return relaxation.solve(instance.cluster, instance.jobs, instance.times);
  };
  const core::RelaxationResult full = solve(false);
  const core::RelaxationResult inc = solve(true);

  row.trajectory_identical =
      inc.cut_count == full.cut_count && inc.lp_solves == full.lp_solves &&
      inc.x_hat == full.x_hat && inc.objective == full.objective;
  row.sep_tasks_total = inc.sep_tasks_total;
  row.sep_tasks_resorted = inc.sep_tasks_resorted;
  return row;
}

[[nodiscard]] bool write_json(const std::string& path,
                              const std::vector<ShardRow>& rows,
                              const std::vector<SepRow>& sep_rows,
                              bool quick) {
  std::size_t sep_total = 0;
  std::size_t sep_resorted = 0;
  bool sep_identical = true;
  for (const SepRow& r : sep_rows) {
    sep_total += r.sep_tasks_total;
    sep_resorted += r.sep_tasks_resorted;
    sep_identical = sep_identical && r.trajectory_identical;
  }
  const double savings =
      sep_total > 0
          ? 1.0 - static_cast<double>(sep_resorted) /
                      static_cast<double>(sep_total)
          : 0.0;

  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_shard_scale\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    out << "    {\"jobs\": " << r.point.jobs << ", \"gpus\": " << r.point.gpus
        << ", \"shards\": " << r.point.shards
        << ", \"workers\": " << r.workers << ",\n"
        << "     \"flat_ms\": " << r.flat_ms
        << ", \"sharded_serial_ms\": " << r.sharded_serial_ms
        << ", \"sharded_parallel_ms\": " << r.sharded_parallel_ms << ",\n"
        << "     \"speedup_serial\": " << r.speedup_serial
        << ", \"speedup_parallel\": " << r.speedup_parallel << ",\n"
        << "     \"objective_ratio\": " << r.objective_ratio
        << ", \"imbalance\": " << r.imbalance << ",\n"
        << "     \"merge_identical\": " << (r.merge_identical ? "true" : "false")
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"separation\": {\n";
  out << "    \"trajectory_identical\": "
      << (sep_identical ? "true" : "false") << ",\n";
  out << "    \"sep_tasks_total\": " << sep_total << ",\n";
  out << "    \"sep_tasks_resorted\": " << sep_resorted << ",\n";
  out << "    \"resort_savings\": " << savings << ",\n";
  out << "    \"points\": [\n";
  for (std::size_t i = 0; i < sep_rows.size(); ++i) {
    const SepRow& r = sep_rows[i];
    out << "      {\"jobs\": " << r.jobs << ", \"gpus\": " << r.gpus
        << ", \"trajectory_identical\": "
        << (r.trajectory_identical ? "true" : "false")
        << ", \"sep_tasks_total\": " << r.sep_tasks_total
        << ", \"sep_tasks_resorted\": " << r.sep_tasks_resorted << "}"
        << (i + 1 < sep_rows.size() ? "," : "") << "\n";
  }
  out << "    ]\n";
  out << "  }\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  std::cout << "\nwrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_shard_scale [--quick] [--json <path>]\n";
      return 2;
    }
  }

  std::cout << "=== hierarchical sharded planning: flat vs two-level ===\n";
  std::vector<ShardPoint> grid;
  if (quick) {
    grid.push_back(ShardPoint{1000, 256, 8, 4});
  } else {
    grid.push_back(ShardPoint{2000, 512, 8, 8});
    grid.push_back(ShardPoint{10000, 2048, 16, 16});
  }

  std::vector<ShardRow> rows;
  for (const ShardPoint& point : grid) rows.push_back(run_point(point));

  common::Table table({"jobs", "gpus", "shards", "workers", "flat ms",
                       "sharded ms", "parallel ms", "speedup", "obj ratio",
                       "identical", "valid"});
  for (const ShardRow& r : rows) {
    table.row()
        .cell(r.point.jobs)
        .cell(r.point.gpus)
        .cell(r.point.shards)
        .cell(r.workers)
        .cell(r.flat_ms, 1)
        .cell(r.sharded_serial_ms, 1)
        .cell(r.sharded_parallel_ms, 1)
        .cell(r.speedup_parallel, 2)
        .cell(r.objective_ratio, 3)
        .cell(r.merge_identical ? "yes" : "NO")
        .cell(r.valid ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "(speedup = flat fluid over parallel sharded; identical = "
               "serial and parallel sharded plans match bit for bit)\n";

  std::cout << "\n=== incremental Queyranne separation: lp_cuts grid ===\n";
  std::vector<SepRow> sep_rows;
  if (quick) {
    sep_rows.push_back(run_separation_point(7, 8, 4));
  } else {
    sep_rows.push_back(run_separation_point(7, 8, 4));
    sep_rows.push_back(run_separation_point(21, 12, 4));
    sep_rows.push_back(run_separation_point(99, 12, 6));
    sep_rows.push_back(run_separation_point(55, 16, 6));
  }
  common::Table sep_table(
      {"jobs", "gpus", "identical", "sort work", "resorted", "savings"});
  for (const SepRow& r : sep_rows) {
    sep_table.row()
        .cell(r.jobs)
        .cell(r.gpus)
        .cell(r.trajectory_identical ? "yes" : "NO")
        .cell(r.sep_tasks_total)
        .cell(r.sep_tasks_resorted)
        .cell(r.sep_tasks_total > 0
                  ? 1.0 - static_cast<double>(r.sep_tasks_resorted) /
                              static_cast<double>(r.sep_tasks_total)
                  : 0.0,
              3);
  }
  sep_table.print(std::cout);

  const bool wrote = write_json(json_path, rows, sep_rows, quick);

  for (const ShardRow& r : rows) {
    if (!r.merge_identical || !r.valid) {
      std::cerr << "FAIL: sharded plan broke a correctness contract\n";
      return 1;
    }
  }
  for (const SepRow& r : sep_rows) {
    if (!r.trajectory_identical) {
      std::cerr << "FAIL: incremental separation diverged from full sorts\n";
      return 1;
    }
  }
  return wrote ? 0 : 1;
}
