// Fig 15: total weighted JCT vs number of jobs (160 GPUs, 100→300 jobs).
//
// Paper's shape: weighted JCT grows with load for every scheme and the gap
// between Hare and the others widens — 54.6%-80.5% reduction at 300 jobs.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 15", "weighted JCT vs number of jobs (160 GPUs)");

  const std::size_t job_counts[] = {100, 150, 200, 250, 300};
  const auto cluster = cluster::make_simulation_cluster(160);

  const auto sweep =
      bench::parallel_sweep(std::size(job_counts), [&](std::size_t i) {
        workload::TraceConfig config;
        config.job_count = job_counts[i];
        config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
        config.rounds_scale_max = 0.45;
        auto jobs = workload::TraceGenerator(777).generate(config);
        return exp::ScenarioSpec{std::to_string(job_counts[i]) + " jobs",
                                 cluster, std::move(jobs)};
      });

  common::Table table({"jobs", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler, "best-baseline reduction %",
                       "worst-baseline reduction %"});
  for (std::size_t i = 0; i < std::size(job_counts); ++i) {
    const double hare = sweep[i][0].weighted_jct;
    double best_baseline = sweep[i][1].weighted_jct;
    double worst_baseline = best_baseline;
    for (std::size_t s = 2; s < sweep[i].size(); ++s) {
      best_baseline = std::min(best_baseline, sweep[i][s].weighted_jct);
      worst_baseline = std::max(worst_baseline, sweep[i][s].weighted_jct);
    }
    auto row = table.row();
    row.cell(job_counts[i]);
    for (const auto& scheme : sweep[i]) row.cell(scheme.weighted_jct / 1e3, 1);
    row.cell(100.0 * (1.0 - hare / best_baseline), 1);
    row.cell(100.0 * (1.0 - hare / worst_baseline), 1);
  }
  table.print(std::cout);
  std::cout << "(weighted JCT in kiloseconds)\npaper: Hare's reduction "
               "reaches 54.6%-80.5% at 300 jobs and widens with load.\n";
  return 0;
}
