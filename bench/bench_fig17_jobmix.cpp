// Fig 17: influence of the job-type mix (raise one class's share).
//
// Paper's shape: more NLP jobs (heavier: more rounds, longer rounds) raise
// every scheme's weighted JCT; more recognition jobs (lightest) lower it;
// Hare stays best under every mix.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 17", "weighted JCT vs job-type mix (160 GPUs)");

  struct MixPoint {
    std::string name;
    workload::WorkloadMix mix;
  };
  const std::vector<MixPoint> points = {
      {"uniform 25%", workload::WorkloadMix::uniform()},
      {"CV 55%", workload::WorkloadMix::favour(workload::JobCategory::CV, 0.55)},
      {"NLP 55%",
       workload::WorkloadMix::favour(workload::JobCategory::NLP, 0.55)},
      {"Speech 55%",
       workload::WorkloadMix::favour(workload::JobCategory::Speech, 0.55)},
      {"Rec 55%",
       workload::WorkloadMix::favour(workload::JobCategory::Rec, 0.55)},
  };

  const auto cluster = cluster::make_simulation_cluster(160);
  const auto sweep = bench::parallel_sweep(points.size(), [&](std::size_t i) {
    workload::TraceConfig config;
    config.job_count = 200;
    config.mix = points[i].mix;
    config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
    config.rounds_scale_max = 0.45;
    auto jobs = workload::TraceGenerator(31337).generate(config);
    return exp::ScenarioSpec{points[i].name, cluster, std::move(jobs)};
  });

  common::Table table({"mix", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler, "Hare best?"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto row = table.row();
    row.cell(points[i].name);
    bool hare_best = true;
    for (std::size_t s = 0; s < sweep[i].size(); ++s) {
      row.cell(sweep[i][s].weighted_jct / 1e3, 1);
      if (s > 0 && sweep[i][s].weighted_jct < sweep[i][0].weighted_jct) {
        hare_best = false;
      }
    }
    row.cell(hare_best ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "(weighted JCT in kiloseconds)\npaper: NLP-heavy mixes raise "
               "all curves, Rec-heavy mixes lower them; Hare leads under "
               "every mix.\n";
  return 0;
}
