// Fig 16: influence of GPU heterogeneity level (160 GPUs, 200 jobs).
//
// Paper's shape: the gaps between Hare and the baselines widen as
// heterogeneity rises; Sched_Allox is only mildly affected but still ~2x
// behind; Hare and Sched_Homo converge at the homogeneous (low) level,
// where intra-job parallelism is all that matters.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 16", "weighted JCT vs heterogeneity level");

  const cluster::HeterogeneityLevel levels[] = {
      cluster::HeterogeneityLevel::Low, cluster::HeterogeneityLevel::Mid,
      cluster::HeterogeneityLevel::High};

  const workload::JobSet jobs = [] {
    workload::TraceConfig config;
    config.job_count = 200;
    config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
    config.rounds_scale_max = 0.45;
    return workload::TraceGenerator(999).generate(config);
  }();

  const auto sweep = bench::parallel_sweep(std::size(levels), [&](std::size_t i) {
    return exp::ScenarioSpec{
        "level " + std::to_string(i),
        cluster::make_heterogeneity_cluster(levels[i], 160), jobs};
  });

  common::Table table({"level", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler, "Homo/Hare", "Allox/Hare"});
  for (std::size_t i = 0; i < std::size(levels); ++i) {
    auto row = table.row();
    row.cell(std::string(cluster::heterogeneity_level_name(levels[i])));
    const double hare = sweep[i][0].weighted_jct;
    for (const auto& scheme : sweep[i]) row.cell(scheme.weighted_jct / 1e3, 1);
    row.cell(sweep[i][3].weighted_jct / hare, 2);
    row.cell(sweep[i][4].weighted_jct / hare, 2);
  }
  table.print(std::cout);
  std::cout << "(weighted JCT in kiloseconds)\npaper: gaps grow with "
               "heterogeneity; Hare ~= Sched_Homo at the homogeneous level; "
               "Sched_Allox stays ~2x behind throughout.\n";
  return 0;
}
