// Fig 14: total weighted JCT vs cluster size (200 jobs, 40→160 GPUs).
//
// Paper's shape: every scheme improves with more GPUs; Hare always wins;
// Sched_Allox trails Hare by ~2x but beats the remaining schemes;
// Gavel_FIFO is the slowest throughout.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 14", "weighted JCT vs number of GPUs (200 jobs)");

  const std::size_t gpu_counts[] = {40, 80, 120, 160};
  const workload::JobSet jobs = [] {
    workload::TraceConfig config;
    config.job_count = 200;
    config.base_arrival_rate = 0.5;  // congested regime, as in the paper
    config.rounds_scale_min = 0.15;
    config.rounds_scale_max = 0.45;
    return workload::TraceGenerator(4242).generate(config);
  }();

  const auto sweep = bench::parallel_sweep(std::size(gpu_counts), [&](std::size_t i) {
    return exp::ScenarioSpec{std::to_string(gpu_counts[i]) + " GPUs",
                             cluster::make_simulation_cluster(gpu_counts[i]),
                             jobs};
  });

  common::Table table({"GPUs", sweep[0][0].scheduler, sweep[0][1].scheduler,
                       sweep[0][2].scheduler, sweep[0][3].scheduler,
                       sweep[0][4].scheduler, "Allox/Hare"});
  for (std::size_t i = 0; i < std::size(gpu_counts); ++i) {
    auto row = table.row();
    row.cell(gpu_counts[i]);
    for (const auto& scheme : sweep[i]) {
      row.cell(scheme.weighted_jct / 1e3, 1);
    }
    row.cell(sweep[i][4].weighted_jct / sweep[i][0].weighted_jct, 2);
  }
  table.print(std::cout);
  std::cout << "(weighted JCT in kiloseconds)\npaper: all schemes improve "
               "with more GPUs; Hare always best; Sched_Allox ~2x behind "
               "Hare yet ahead of the rest; Gavel_FIFO worst.\n";
  return 0;
}
