// Fig 4: relaxed scale-fixed synchronization vs the traditional strict
// scheme.
//
// Three tasks i1..i3 are finishing on 3 GPUs at staggered times when a new
// 3-task job n arrives. Strict scale-fixed waits for 3 simultaneously free
// GPUs (the slowest of i1..i3 gates everything); Hare's relaxed scheme
// keeps the synchronization scale at 3 but lets two of n's tasks run
// sequentially on the early-free GPU, completing the round sooner.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 4", "strict vs relaxed scale-fixed sync");

  cluster::Cluster cluster = cluster::ClusterBuilder{}
                                 .add_machine(cluster::GpuType::V100, 3)
                                 .build();
  workload::JobSet jobs;
  // Residual tasks i1..i3: single-task jobs of staggered lengths.
  const double residual[3] = {1.0, 4.0, 8.0};
  for (int j = 0; j < 3; ++j) {
    workload::JobSpec spec;
    spec.rounds = 1;
    spec.tasks_per_round = 1;
    spec.name = "i" + std::to_string(j + 1);
    jobs.add_job(spec);
  }
  // Arriving job n with synchronization scale 3.
  workload::JobSpec n;
  n.rounds = 2;
  n.tasks_per_round = 3;
  n.arrival = 0.5;
  n.name = "n";
  const JobId n_id = jobs.add_job(n);

  profiler::TimeTable times(4, 3);
  for (int g = 0; g < 3; ++g) {
    for (int j = 0; j < 3; ++j) {
      times.set(JobId(j), GpuId(g), residual[j], 0.05);
    }
    times.set(n_id, GpuId(g), 2.0, 0.05);
  }

  common::Table table({"sync scheme", "job n completion (s)",
                       "total JCT (s)", "makespan (s)"});
  for (core::SyncScheme sync :
       {core::SyncScheme::Strict, core::SyncScheme::Relaxed}) {
    core::HareConfig config;
    config.sync = sync;
    core::HareScheduler scheduler(config);
    const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
    const sim::Simulator simulator(cluster, jobs, times);
    const sim::SimResult result = simulator.run(schedule);
    table.row()
        .cell(sync == core::SyncScheme::Strict ? "strict scale-fixed"
                                               : "relaxed scale-fixed (Hare)")
        .cell(result.jobs[static_cast<std::size_t>(n_id.value())].completion,
              2)
        .cell(result.weighted_jct, 2)
        .cell(result.makespan, 2);
  }
  table.print(std::cout);
  std::cout << "paper: the relaxed scheme starts job n before the slowest "
               "residual task frees its GPU,\nserializing two of n's tasks "
               "on an early-free GPU and finishing earlier at the same "
               "parallelism scale.\n";
  return 0;
}
