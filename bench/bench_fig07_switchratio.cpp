// Fig 7: ratio Ω of task-switching time to batch-training time under three
// alternating-pair settings on a V100.
//
// Ω = t_switch / (t_batch_A + t_batch_B). Paper: the default executor's
// switching costs ~9x the training itself for GraphSAGE+ResNet50; the other
// two pairs are similarly dominated by switching.
#include "bench_util.hpp"

int main() {
  using namespace hare;
  bench::print_header("Fig 7", "switching-cost ratio under 3 settings (V100)");

  using workload::ModelType;
  const std::pair<ModelType, ModelType> settings[] = {
      {ModelType::GraphSAGE, ModelType::ResNet50},
      {ModelType::BertBase, ModelType::Transformer},
      {ModelType::FastGCN, ModelType::VGG19},
  };

  const workload::PerfModel perf;
  common::Table table({"setting", "batch pair (ms)", "Omega Default",
                       "Omega PipeSwitch", "Omega Hare"});
  for (const auto& [a, b] : settings) {
    const double pair_time =
        perf.batch_time(a, cluster::GpuType::V100,
                        workload::model_spec(a).default_batch_size) +
        perf.batch_time(b, cluster::GpuType::V100,
                        workload::model_spec(b).default_batch_size);
    auto omega = [&](switching::SwitchPolicy policy) {
      switching::SwitchModelConfig config;
      config.policy = policy;
      const switching::SwitchCostModel model(config);
      // One A->B plus one B->A switch per alternation cycle.
      const Time sw =
          model.switch_cost(JobId(1), b, cluster::GpuType::V100, JobId(0),
                            nullptr)
              .total() +
          model.switch_cost(JobId(0), a, cluster::GpuType::V100, JobId(1),
                            nullptr)
              .total();
      return sw / (2.0 * pair_time);
    };
    table.row()
        .cell(std::string(workload::model_name(a)) + " + " +
              std::string(workload::model_name(b)))
        .cell(pair_time * 1e3, 1)
        .cell(omega(switching::SwitchPolicy::Default), 2)
        .cell(omega(switching::SwitchPolicy::PipeSwitch), 4)
        .cell(omega(switching::SwitchPolicy::Hare), 4);
  }
  table.print(std::cout);
  std::cout << "paper: default switching costs ~9x the training time for "
               "GraphSAGE+ResNet50;\nfast switching reduces it to a few "
               "percent or less.\n";
  return 0;
}
