// Extension experiments beyond the paper's figures:
//  1. FIFO + EASY backfill as a fifth baseline (does fixing head-of-line
//     blocking alone close the gap to Hare? — no).
//  2. Fairness: Jain's index and max slowdown per scheme (Hare's weighted
//     objective also *spreads* slowdowns more evenly).
//  3. Speculative memory: the paper's greedy keep heuristic vs the exact
//     optimal keep plan on realistic per-GPU task sequences.
#include "bench_util.hpp"
#include "sched/backfill.hpp"
#include "sched/themis_fair.hpp"
#include "sim/fairness.hpp"
#include "switching/memory_planner.hpp"

namespace {

using namespace hare;

void backfill_and_fairness() {
  bench::print_header("Ext 1+2", "backfill baseline and fairness metrics");
  const cluster::Cluster testbed = cluster::make_testbed_cluster();
  const workload::JobSet jobs = bench::make_default_workload(40, 7);

  const workload::PerfModel perf;
  profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 7);
  const profiler::TimeTable times = profiler.exact(jobs, testbed);
  const sim::Simulator simulator(testbed, jobs, times);

  std::vector<std::unique_ptr<sched::Scheduler>> schedulers =
      core::make_standard_schedulers();
  schedulers.push_back(std::make_unique<sched::BackfillScheduler>());
  schedulers.push_back(std::make_unique<sched::ThemisFairScheduler>());

  common::Table table({"scheduler", "weighted JCT (ks)", "Jain's index",
                       "max slowdown", "median slowdown"});
  for (const auto& scheduler : schedulers) {
    const sim::SimResult result =
        simulator.run(scheduler->schedule({testbed, jobs, times}));
    const auto slowdowns = sim::job_slowdowns(jobs, times, result);
    common::Distribution dist;
    for (double s : slowdowns) dist.add(s);
    table.row()
        .cell(std::string(scheduler->name()))
        .cell(result.weighted_jct / 1e3, 2)
        .cell(sim::jains_index(slowdowns), 3)
        .cell(sim::max_slowdown(slowdowns), 1)
        .cell(dist.median(), 1);
  }
  table.print(std::cout);
  std::cout << "EASY backfill repairs FIFO's head-of-line blocking but "
               "cannot reach Hare, which\nreshapes placement and intra-job "
               "parallelism too; Hare also yields the most even "
               "slowdowns.\n";
}

void memory_plan_quality() {
  bench::print_header("Ext 3", "greedy vs optimal speculative memory plans");
  // Random per-GPU task sequences at several memory pressures.
  common::Rng rng(99);
  constexpr Bytes GB = 1024ull * 1024 * 1024;

  common::Table table({"capacity (GiB)", "sequences", "greedy transfer (GiB)",
                       "optimal transfer (GiB)", "greedy/optimal",
                       "greedy hits", "optimal hits"});
  for (Bytes capacity : {6ull * GB, 8ull * GB, 12ull * GB}) {
    double greedy_bytes = 0.0;
    double optimal_bytes = 0.0;
    std::size_t greedy_hits = 0;
    std::size_t optimal_hits = 0;
    const int trials = 24;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<switching::PlannedTask> sequence;
      std::vector<std::pair<Bytes, Bytes>> sizes;  // per job
      const int job_count = 3 + static_cast<int>(rng.uniform_int(std::uint64_t{3}));
      for (int j = 0; j < job_count; ++j) {
        const Bytes state = (1 + rng.uniform_int(std::uint64_t{4})) * GB / 2;
        const Bytes workspace = (2 + rng.uniform_int(std::uint64_t{5})) * GB / 2;
        sizes.emplace_back(state + workspace, state);
      }
      for (int i = 0; i < 14; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(job_count)));
        sequence.push_back(
            {JobId(static_cast<int>(j)), sizes[j].first, sizes[j].second});
      }
      const auto greedy = switching::plan_greedy(sequence, capacity);
      const auto optimal = switching::plan_optimal(sequence, capacity);
      greedy_bytes += static_cast<double>(greedy.transferred_bytes);
      optimal_bytes += static_cast<double>(optimal.transferred_bytes);
      greedy_hits += greedy.resident_hits;
      optimal_hits += optimal.resident_hits;
    }
    table.row()
        .cell(static_cast<double>(capacity) / GB, 0)
        .cell(trials)
        .cell(greedy_bytes / GB, 1)
        .cell(optimal_bytes / GB, 1)
        .cell(optimal_bytes > 0 ? greedy_bytes / optimal_bytes : 1.0, 3)
        .cell(greedy_hits)
        .cell(optimal_hits);
  }
  table.print(std::cout);
  std::cout << "the paper's greedy keep-latest heuristic stays within a few "
               "percent of the exact optimum\nexcept under severe memory "
               "pressure — its \"works sufficiently well in practice\" "
               "claim, quantified.\n";
}

}  // namespace

int main() {
  backfill_and_fairness();
  memory_plan_quality();
  return 0;
}
