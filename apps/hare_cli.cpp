// hare — command-line front end to the library.
//
//   hare generate  --jobs 50 --seed 7 --out trace.txt [--rate 0.2]
//                  [--favour cv|nlp|speech|rec --share 0.55] [--batch 1.0]
//   hare schedule  --trace trace.txt [--gpus 16 | --testbed]
//                  [--scheduler hare|online|fifo|srtf|homo|allox]
//                  [--gantt] [--csv] [--bandwidth 25] [--seed 42]
//   hare compare   --trace trace.txt [--gpus 16 | --testbed] [--csv]
//   hare profile   --trace trace.txt [--gpus 16 | --testbed] [--db db.txt]
//   hare sweep     [--trace trace.txt | --jobs 40,80] [--seeds 1,2,3]
//                  [--gpus 16 | --testbed] [--serial] [--workers N] [--csv]
//   hare plan      --trace trace.txt [--gpus 16 | --testbed] [--racks M]
//                  [--shards N] [--workers N] [--serial] [--lp-max-jobs N]
//   hare faults    --trace trace.txt [--gpus 16 | --testbed] [--racks M]
//                  [--fault-spec SPEC] [--sharded] [--shards N] [--seed S]
//
// `generate` synthesizes a workload trace; `schedule` runs one scheduler
// and reports metrics (optionally an ASCII Gantt chart); `compare` runs
// Hare and every baseline; `profile` shows the profiled time table and can
// persist the historical profile database; `sweep` fans a
// (scenario × seed × scheme) grid across the hare::exp engine — results
// are bit-identical to `--serial`, which runs the same cells one by one;
// `plan` runs the two-level hierarchical planner (shard the cluster by
// network domain, plan shards in parallel, merge in canonical order) and
// reports the per-shard breakdown next to the merged plan's objective;
// `faults` replays a seeded fault-injection scenario (machine/GPU
// failures, recoveries, cancellations, stragglers) against the planned
// schedule with checkpoint-restart and replan-on-failure, reporting the
// degradation against the fault-free run.
//
// Every command accepts `--trace-out FILE` (Chrome trace_event JSON for
// chrome://tracing), `--metrics-out FILE` (hare::obs counters/gauges/
// histograms as JSON), and `--flame-out FILE` (plain-text span summary).
// With `--trace-out`, `schedule` also replays the plan on the threaded
// executor runtime so the trace covers all four instrumented layers.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/hare.hpp"
#include "exp/engine.hpp"
#include "fault/runner.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "serve/serve_service.hpp"
#include "shard/hierarchical_planner.hpp"
#include "sim/gantt.hpp"
#include "workload/arrival_spec.hpp"

namespace {

using namespace hare;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      R"(usage:
  hare generate --jobs N --out FILE [--seed S] [--rate R]
                [--favour cv|nlp|speech|rec --share F] [--batch SCALE]
  hare schedule --trace FILE [--gpus N | --testbed]
                [--scheduler hare|online|fifo|srtf|homo|allox|backfill]
                [--gantt] [--csv] [--export PREFIX]
                [--bandwidth GBPS] [--seed S]
  hare compare  --trace FILE [--gpus N | --testbed] [--csv] [--seed S]
  hare profile  --trace FILE [--gpus N | --testbed] [--db FILE] [--seed S]
  hare advise   --model NAME [--rounds N] [--gpus N | --testbed]
  hare sweep    [--trace FILE | --jobs N1,N2,...] [--seeds S1,S2,...]
                [--gpus N | --testbed] [--serial] [--workers N] [--csv]
  hare plan     --trace FILE [--gpus N | --testbed] [--racks M]
                [--shards N] [--workers N] [--serial] [--lp-max-jobs N]
                [--save-plan FILE] [--csv]
  hare faults   --trace FILE [--gpus N | --testbed] [--racks M]
                [--fault-spec SPEC] [--sharded] [--shards N]
                [--seed S] [--csv]
  hare serve    --arrival-spec SPEC [--gpus N | --testbed] [--seed S]
                [--tick T] [--lp-max-batch N] [--compact-rows N] [--cold]
                [--replan-budget N] [--fault-spec SPEC]
                [--sharded --shard-min N [--shards N]] [--csv]

fault specs are comma-separated key=value strings (see docs/ROBUSTNESS.md):
  seed, machine_failures, gpu_failures, mttf, mttr, cancellations,
  stragglers, straggler_factor, straggler_duration, max_retries,
  backoff_base, backoff_factor, backoff_cap, restart_overhead,
  replan_budget, horizon, events=(fail_machine:0@30;recover_machine:0@90;...)

arrival specs (hare serve) use the same key=value grammar:
  jobs, rate, burst, burst_prob, burst_len, on_period, off_period,
  rounds_min, rounds_max, batch_scale

telemetry (any command):
  --trace-out FILE    write Chrome trace_event JSON (chrome://tracing)
  --metrics-out FILE  write counters/gauges/histograms as JSON
  --flame-out FILE    write a flamegraph-style span summary
)";
  std::exit(2);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stod(it->second) : fallback;
  }
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const {
    const auto it = options.find(key);
    return it != options.end()
               ? static_cast<std::size_t>(std::stoull(it->second))
               : fallback;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return flags.count(key) > 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) usage("unexpected argument: " + token);
    token = token.substr(2);
    const bool boolean_flag = token == "gantt" || token == "csv" ||
                              token == "testbed" || token == "serial" ||
                              token == "sharded" || token == "cold";
    if (boolean_flag) {
      args.flags[token] = true;
    } else {
      if (i + 1 >= argc) usage("missing value for --" + token);
      args.options[token] = argv[++i];
    }
  }
  return args;
}

cluster::Cluster make_cluster(const Args& args) {
  const double bandwidth = args.get_double("bandwidth", 25.0);
  if (args.flag("testbed")) return cluster::make_testbed_cluster(bandwidth);
  const std::size_t gpus = args.get_size("gpus", 16);
  // `--racks M` groups consecutive machines into network domains of M
  // machines (the shard boundaries `hare plan` partitions along).
  return cluster::make_simulation_cluster(gpus, bandwidth, 8,
                                          args.get_size("racks", 0));
}

workload::JobSet load_jobs(const Args& args) {
  const std::string path = args.get("trace");
  if (path.empty()) usage("--trace is required");
  return workload::load_trace_file(path);
}

int cmd_generate(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) usage("--out is required");

  workload::TraceConfig config;
  config.job_count = args.get_size("jobs", 50);
  config.base_arrival_rate = args.get_double("rate", 0.1);
  config.batch_scale = args.get_double("batch", 1.0);
  const std::string favour = args.get("favour");
  if (!favour.empty()) {
    const double share = args.get_double("share", 0.55);
    const std::map<std::string, workload::JobCategory> categories = {
        {"cv", workload::JobCategory::CV},
        {"nlp", workload::JobCategory::NLP},
        {"speech", workload::JobCategory::Speech},
        {"rec", workload::JobCategory::Rec}};
    const auto it = categories.find(favour);
    if (it == categories.end()) usage("unknown category: " + favour);
    config.mix = workload::WorkloadMix::favour(it->second, share);
  }
  workload::TraceGenerator generator(
      static_cast<std::uint64_t>(args.get_size("seed", 42)));
  const workload::JobSet jobs = generator.generate(config);
  workload::save_trace_file(jobs, out);
  std::cout << "wrote " << jobs.job_count() << " jobs (" << jobs.task_count()
            << " tasks) to " << out << '\n';
  return 0;
}

std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name) {
  if (name == "hare" || name.empty()) {
    return std::make_unique<core::HareScheduler>();
  }
  if (name == "online") return std::make_unique<core::OnlineHareScheduler>();
  if (name == "fifo") return std::make_unique<sched::GavelFifoScheduler>();
  if (name == "srtf") return std::make_unique<sched::SrtfScheduler>();
  if (name == "homo") return std::make_unique<sched::SchedHomoScheduler>();
  if (name == "allox") return std::make_unique<sched::SchedAlloxScheduler>();
  if (name == "backfill") return std::make_unique<sched::BackfillScheduler>();
  usage("unknown scheduler: " + name);
}

core::RunReport run_one(const Args& args, const cluster::Cluster& cluster,
                        const workload::JobSet& jobs,
                        sched::Scheduler& scheduler) {
  core::HareSystem::Options options;
  options.seed = static_cast<std::uint64_t>(args.get_size("seed", 42));
  const bool hare_like = scheduler.name() == std::string_view("Hare") ||
                         scheduler.name() == std::string_view("Hare_Online");
  options.sim.switching.policy = hare_like ? switching::SwitchPolicy::Hare
                                           : switching::SwitchPolicy::Default;
  options.sim.use_memory_manager = hare_like;
  core::HareSystem system(cluster, options);
  system.submit_all(jobs);
  return system.run(scheduler);
}

int cmd_advise(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const std::string model_name = args.get("model", "ResNet50");
  workload::JobSpec spec;
  bool found = false;
  for (workload::ModelType type : workload::all_models()) {
    if (workload::model_name(type) == model_name) {
      spec.model = type;
      found = true;
    }
  }
  if (!found) usage("unknown model: " + model_name);
  spec.rounds = static_cast<std::uint32_t>(args.get_size("rounds", 32));

  const auto advice =
      core::advise_sync_scale(cluster, spec, workload::PerfModel{});
  common::Table table({"sync scale", "completion (s)", "speedup",
                       "parallel efficiency"});
  for (const auto& entry : advice) {
    table.row()
        .cell(static_cast<std::size_t>(entry.scale))
        .cell(entry.completion, 1)
        .cell(entry.speedup, 2)
        .cell(entry.efficiency, 2);
  }
  table.print(std::cout);
  std::cout << "recommended scale (efficiency >= 0.5): "
            << core::recommend_sync_scale(cluster, spec,
                                          workload::PerfModel{})
            << '\n';
  return 0;
}

int cmd_schedule(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::JobSet jobs = load_jobs(args);
  auto scheduler = make_scheduler(args.get("scheduler", "hare"));
  const core::RunReport report = run_one(args, cluster, jobs, *scheduler);

  const std::string plan_path = args.get("save-plan");
  if (!plan_path.empty()) {
    core::HareSystem system(cluster);
    system.submit_all(jobs);
    const sim::Schedule plan =
        scheduler->schedule({cluster, jobs, system.profiled_times()});
    sim::save_schedule_file(plan, plan_path);
    std::cout << "saved plan to " << plan_path << '\n';
  }

  common::Table table({"metric", "value"});
  table.row().cell("scheduler").cell(report.scheduler);
  table.row().cell("jobs").cell(jobs.job_count());
  table.row().cell("GPUs").cell(cluster.gpu_count());
  table.row().cell("weighted JCT (s)").cell(report.result.weighted_jct, 1);
  table.row().cell("makespan (s)").cell(report.result.makespan, 1);
  table.row().cell("mean GPU util").cell(
      report.result.mean_gpu_utilization(), 3);
  table.row().cell("scheduling (ms)").cell(report.scheduling_ms, 2);
  table.row().cell("approx ratio").cell(report.approximation.ratio, 2);
  table.row().cell("guarantee a(2+a)").cell(report.approximation.guarantee,
                                            2);
  if (args.flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const std::string export_prefix = args.get("export");
  if (!export_prefix.empty()) {
    sim::export_result_files(cluster, jobs, report.result, export_prefix);
    std::cout << "exported " << export_prefix << "_tasks.csv and "
              << export_prefix << "_jobs.csv\n";
  }

  if (args.flag("gantt")) {
    // Re-run with timeline recording for the chart.
    core::HareSystem::Options options;
    options.sim.record_timeline = true;
    core::HareSystem system(cluster, options);
    system.submit_all(jobs);
    const core::RunReport charted = system.run(*scheduler);
    std::cout << '\n'
              << sim::render_gantt(cluster, jobs, charted.result,
                                   {std::min<std::size_t>(100, 100), true});
  }

  if (obs::Tracer::enabled()) {
    // Replay the plan on the threaded executor runtime (fast virtual
    // clock) so the exported trace covers the runtime layer too.
    core::HareSystem system(cluster);
    system.submit_all(jobs);
    const sim::Schedule plan =
        scheduler->schedule({cluster, jobs, system.profiled_times()});
    runtime::RuntimeConfig runtime_config;
    runtime_config.microseconds_per_sim_second = 5.0;
    runtime::ExecutorRuntime executors(cluster, jobs, system.profiled_times(),
                                       runtime_config);
    const runtime::RuntimeResult replay = executors.run(plan);
    std::cout << "traced runtime replay: makespan " << replay.makespan
              << " s, " << replay.switch_count << " cross-job switches\n";
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::JobSet jobs = load_jobs(args);

  common::Table table({"scheduler", "weighted JCT (s)", "makespan (s)",
                       "mean util", "sched (ms)"});
  for (const auto& scheduler : core::make_standard_schedulers()) {
    const core::RunReport report = run_one(args, cluster, jobs, *scheduler);
    table.row()
        .cell(report.scheduler)
        .cell(report.result.weighted_jct, 1)
        .cell(report.result.makespan, 1)
        .cell(report.result.mean_gpu_utilization(), 3)
        .cell(report.scheduling_ms, 2);
  }
  if (args.flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_profile(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::JobSet jobs = load_jobs(args);

  core::HareSystem::Options options;
  options.seed = static_cast<std::uint64_t>(args.get_size("seed", 42));
  core::HareSystem system(cluster, options);
  system.submit_all(jobs);

  const std::string db_path = args.get("db");
  if (!db_path.empty()) {
    // Warm-start from an existing database when present.
    std::ifstream probe(db_path);
    if (probe.good()) {
      profiler::ProfileDb db;
      db.load_file(db_path);
      std::cout << "loaded " << db.size() << " profile entries from "
                << db_path << '\n';
    }
  }

  const profiler::TimeTable& times = system.profiled_times();
  common::Table table({"job", "model", "fastest GPU", "T^c there (s)",
                       "T^s there (s)", "T^c max/min"});
  const std::size_t shown = std::min<std::size_t>(jobs.job_count(), 20);
  for (std::size_t j = 0; j < shown; ++j) {
    const JobId id(static_cast<int>(j));
    const auto& job = jobs.job(id);
    const GpuId fastest = times.fastest_gpu(id);
    table.row()
        .cell(j)
        .cell(std::string(workload::model_name(job.spec.model)))
        .cell(std::string(cluster.gpu(fastest).spec().name))
        .cell(times.tc(id, fastest), 3)
        .cell(times.ts(id, fastest), 3)
        .cell(times.max_tc(id) / times.min_tc(id), 2);
  }
  table.print(std::cout);
  std::cout << "alpha (heterogeneity ratio) = " << times.alpha() << '\n';
  if (jobs.job_count() > shown) {
    std::cout << "(showing first " << shown << " of " << jobs.job_count()
              << " jobs)\n";
  }
  if (!db_path.empty()) {
    system.profile_db().save_file(db_path);
    std::cout << "saved " << system.profile_db().size()
              << " profile entries to " << db_path << '\n';
  }
  return 0;
}

std::vector<std::uint64_t> parse_u64_list(const std::string& text) {
  std::vector<std::uint64_t> out;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(std::stoull(token));
  }
  return out;
}

int cmd_sweep(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);

  exp::SweepSpec spec;
  const std::string trace = args.get("trace");
  if (!trace.empty()) {
    spec.scenarios.push_back(
        exp::ScenarioSpec{trace, cluster, workload::load_trace_file(trace)});
  } else {
    const std::uint64_t gen_seed =
        static_cast<std::uint64_t>(args.get_size("seed", 42));
    for (const std::uint64_t count : parse_u64_list(args.get("jobs", "40"))) {
      workload::TraceConfig config;
      config.job_count = static_cast<std::size_t>(count);
      workload::TraceGenerator generator(gen_seed);
      spec.scenarios.push_back(
          exp::ScenarioSpec{std::to_string(count) + " jobs", cluster,
                            generator.generate(config)});
    }
  }
  spec.seeds = parse_u64_list(args.get("seeds", ""));
  if (spec.scenarios.empty()) usage("sweep: empty scenario grid");

  exp::Engine::Options engine_options;
  engine_options.workers = args.get_size("workers", 0);
  engine_options.serial = args.flag("serial");
  exp::Engine engine(engine_options);
  const exp::SweepResult result = engine.run(spec);

  common::Table table({"scenario", "seed", "scheme", "weighted JCT (s)",
                       "makespan (s)", "mean util", "sched (ms)"});
  for (const auto& cell : result.cells) {
    table.row()
        .cell(spec.scenarios[cell.scenario].label)
        .cell(static_cast<std::size_t>(cell.seed))
        .cell(cell.result.scheduler)
        .cell(cell.result.weighted_jct, 1)
        .cell(cell.result.makespan, 1)
        .cell(cell.result.mean_utilization, 3)
        .cell(cell.result.scheduling_ms, 2);
  }
  if (args.flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << result.cells.size() << " cells ("
            << spec.scenarios.size() << " scenarios x "
            << result.seeds_per_scenario << " seeds x "
            << exp::scheme_count() << " schemes) on " << result.workers
            << (result.workers == 1 ? " worker" : " workers") << " in "
            << static_cast<long long>(result.wall_ms) << " ms\n";
  return 0;
}

int cmd_plan(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::JobSet jobs = load_jobs(args);

  core::HareSystem system(cluster);
  system.submit_all(jobs);
  const profiler::TimeTable& times = system.profiled_times();

  shard::ShardPlannerConfig config;
  config.shards = args.get_size("shards", 0);
  config.workers = args.get_size("workers", 0);
  config.serial = args.flag("serial");
  config.lp_max_jobs = args.get_size("lp-max-jobs", 0);
  shard::HierarchicalPlanner planner(config);

  const auto start = std::chrono::steady_clock::now();
  const sim::Schedule plan = planner.schedule({cluster, jobs, times});
  const double plan_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  const shard::HierarchicalPlanInfo& info = planner.last_plan();

  common::Table shards_table(
      {"shard", "jobs", "GPUs", "est load (s)", "objective", "cuts"});
  for (std::size_t s = 0; s < info.shards.size(); ++s) {
    const shard::ShardStats& stats = info.shards[s];
    shards_table.row()
        .cell(s)
        .cell(stats.jobs)
        .cell(stats.gpus)
        .cell(stats.est_load, 1)
        .cell(stats.objective, 1)
        .cell(stats.cut_count);
  }
  common::Table summary({"metric", "value"});
  summary.row().cell("shards").cell(info.shard_count);
  summary.row().cell("load imbalance (max/mean)").cell(info.imbalance, 3);
  summary.row().cell("predicted objective (s)").cell(plan.predicted_objective,
                                                     1);
  summary.row().cell("planning (ms)").cell(plan_ms, 2);
  if (info.sep_tasks_total > 0) {
    summary.row().cell("separation resort savings").cell(
        1.0 - static_cast<double>(info.sep_tasks_resorted) /
                  static_cast<double>(info.sep_tasks_total),
        3);
  }
  if (args.flag("csv")) {
    shards_table.print_csv(std::cout);
    summary.print_csv(std::cout);
  } else {
    shards_table.print(std::cout);
    summary.print(std::cout);
  }

  const std::string plan_path = args.get("save-plan");
  if (!plan_path.empty()) {
    sim::save_schedule_file(plan, plan_path);
    std::cout << "saved plan to " << plan_path << '\n';
  }
  return 0;
}

int cmd_faults(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::JobSet jobs = load_jobs(args);

  core::HareSystem system(cluster);
  system.submit_all(jobs);

  fault::FaultRunnerConfig config;
  const std::string spec_text =
      args.get("fault-spec", "machine_failures=1,cancellations=1,mttr=120");
  config.spec = fault::parse_fault_spec(spec_text);
  if (args.options.count("seed")) {
    config.spec.seed = static_cast<std::uint64_t>(args.get_size("seed", 1));
  }
  config.sharded = args.flag("sharded");
  config.shard.shards = args.get_size("shards", 0);

  fault::FaultRunner runner(cluster, jobs, system.profiled_times(),
                            system.actual_times(), config);
  const fault::FaultRunReport report = runner.run();

  common::Table events({"t (s)", "event"});
  for (const auto& event : report.plan.events) {
    events.row().cell(event.time, 1).cell(fault::describe(event));
  }

  const sim::FaultStats& stats = report.faulted.faults;
  std::size_t completed = 0, cancelled = 0, dead = 0;
  for (const auto& job : report.faulted.jobs) {
    switch (job.outcome) {
      case sim::JobOutcome::Completed: ++completed; break;
      case sim::JobOutcome::Cancelled: ++cancelled; break;
      case sim::JobOutcome::DeadLettered: ++dead; break;
    }
  }
  double recovery_mean = 0.0;
  for (const Time latency : stats.recovery_latencies) recovery_mean += latency;
  if (!stats.recovery_latencies.empty()) {
    recovery_mean /= static_cast<double>(stats.recovery_latencies.size());
  }

  common::Table summary({"metric", "value"});
  summary.row().cell("jobs (completed/cancelled/dead)").cell(
      std::to_string(completed) + "/" + std::to_string(cancelled) + "/" +
      std::to_string(dead));
  summary.row().cell("machine failures").cell(stats.machine_failures);
  summary.row().cell("GPU failures").cell(stats.gpu_failures);
  summary.row().cell("recoveries").cell(stats.recoveries);
  summary.row().cell("cancellations").cell(stats.cancellations);
  summary.row().cell("restarts").cell(stats.restarts);
  summary.row().cell("dead-letters").cell(stats.dead_letters);
  summary.row().cell("tasks killed").cell(stats.tasks_killed);
  summary.row().cell("lost compute (s)").cell(stats.lost_compute, 1);
  summary.row().cell("replans (planner/greedy)").cell(
      std::to_string(report.replans_full) + "/" +
      std::to_string(report.replans_greedy));
  if (config.sharded && report.replan_shards_total > 0) {
    summary.row().cell("replan shards planned/offered").cell(
        std::to_string(report.replan_shards_planned) + "/" +
        std::to_string(report.replan_shards_total));
  }
  summary.row().cell("mean recovery latency (s)").cell(recovery_mean, 1);
  summary.row().cell("fault-free weighted JCT (s)").cell(
      report.fault_free.weighted_jct, 1);
  summary.row().cell("faulted weighted JCT (s)").cell(
      report.faulted.weighted_jct, 1);
  summary.row().cell("degradation ratio").cell(report.degradation_ratio, 3);
  summary.row().cell("fragmentation").cell(report.fragmentation, 3);
  summary.row().cell("starvation (worst inflation)").cell(report.starvation,
                                                          3);
  if (args.flag("csv")) {
    events.print_csv(std::cout);
    summary.print_csv(std::cout);
  } else {
    events.print(std::cout);
    summary.print(std::cout);
  }
  return 0;
}

int cmd_serve(const Args& args) {
  const cluster::Cluster cluster = make_cluster(args);
  const workload::TraceConfig trace =
      workload::parse_arrival_spec(args.get("arrival-spec", "jobs=200,rate=2"));
  const auto seed = static_cast<std::uint64_t>(args.get_size("seed", 42));
  workload::TraceStream stream(seed, trace);

  serve::ServeConfig config;
  config.tick = args.get_double("tick", 0.0);
  config.lp_max_batch_jobs = args.get_size("lp-max-batch", 32);
  config.lp_compact_rows = args.get_size("compact-rows", 2048);
  config.warm_lp = !args.flag("cold");
  config.replan_budget = args.get_size("replan-budget", 0);
  if (args.flag("sharded")) {
    config.shard_min_batch_jobs = args.get_size("shard-min", 1);
    config.shard.shards = args.get_size("shards", 0);
  }

  fault::FaultPlan faults;
  const std::string fault_text = args.get("fault-spec");
  if (!fault_text.empty()) {
    // The stochastic knobs need an instance shape; materialize the same
    // trace the stream will draw (bit-identical by construction).
    const workload::JobSet shape = workload::TraceGenerator(seed).generate(trace);
    fault::FaultSpec spec = fault::parse_fault_spec(fault_text);
    const Time horizon =
        2.0 * static_cast<double>(trace.job_count) / trace.base_arrival_rate;
    faults = fault::generate_fault_plan(spec, cluster, shape, horizon);
  }

  serve::ServeService service(cluster, workload::PerfModel{}, config);
  const auto start = std::chrono::steady_clock::now();
  const serve::ServeReport report = service.run(stream, faults);
  const double serve_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();

  common::Table summary({"metric", "value"});
  summary.row().cell("arrivals").cell(report.arrivals);
  summary.row().cell("planned jobs").cell(report.planned_jobs);
  summary.row().cell("batches (max jobs)").cell(
      std::to_string(report.batches) + " (" +
      std::to_string(report.max_batch_jobs) + ")");
  summary.row().cell("batches lp/flat/sharded/greedy").cell(
      std::to_string(report.lp_batches) + "/" +
      std::to_string(report.flat_batches) + "/" +
      std::to_string(report.sharded_batches) + "/" +
      std::to_string(report.greedy_batches));
  summary.row().cell("LP solves warm/cold").cell(
      std::to_string(report.lp.warm_solves) + "/" +
      std::to_string(report.lp.cold_solves));
  summary.row().cell("LP pivots warm/cold").cell(
      std::to_string(report.lp.warm_pivots) + "/" +
      std::to_string(report.lp.cold_pivots));
  summary.row().cell("LP compactions").cell(report.lp.compactions);
  summary.row().cell("fault events").cell(report.fault_events);
  summary.row().cell("displaced tasks").cell(report.displaced_tasks);
  summary.row().cell("continuations").cell(report.continuations);
  summary.row().cell("cancels early/late").cell(
      std::to_string(report.canceled) + "/" +
      std::to_string(report.late_cancels));
  summary.row().cell("planned objective (s)").cell(report.objective, 1);
  summary.row().cell("serving (ms)").cell(serve_ms, 2);
  summary.row().cell("arrivals/s served").cell(
      serve_ms > 0.0 ? 1e3 * static_cast<double>(report.arrivals) / serve_ms
                     : 0.0,
      0);
  if (args.flag("csv")) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout);
  }
  return 0;
}

}  // namespace

int run_command(const Args& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "schedule") return cmd_schedule(args);
  if (args.command == "compare") return cmd_compare(args);
  if (args.command == "profile") return cmd_profile(args);
  if (args.command == "advise") return cmd_advise(args);
  if (args.command == "sweep") return cmd_sweep(args);
  if (args.command == "plan") return cmd_plan(args);
  if (args.command == "faults") return cmd_faults(args);
  if (args.command == "serve") return cmd_serve(args);
  usage("unknown command: " + args.command);
}

/// Flush telemetry files after the command ran (even a partial trace of a
/// failed run is worth keeping).
int write_telemetry(const Args& args) {
  const std::string trace_out = args.get("trace-out");
  const std::string metrics_out = args.get("metrics-out");
  const std::string flame_out = args.get("flame-out");
  int status = 0;
  if (!trace_out.empty()) {
    if (obs::write_chrome_trace_file(trace_out)) {
      std::cout << "wrote trace to " << trace_out
                << " (open in chrome://tracing)\n";
    } else {
      std::cerr << "error: cannot write " << trace_out << '\n';
      status = 1;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::Registry::instance().write_json_file(metrics_out)) {
      std::cout << "wrote metrics to " << metrics_out << '\n';
    } else {
      std::cerr << "error: cannot write " << metrics_out << '\n';
      status = 1;
    }
  }
  if (!flame_out.empty()) {
    if (obs::write_flame_summary_file(flame_out)) {
      std::cout << "wrote span summary to " << flame_out << '\n';
    } else {
      std::cerr << "error: cannot write " << flame_out << '\n';
      status = 1;
    }
  }
  return status;
}

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    const bool tracing = !args.get("trace-out").empty() ||
                         !args.get("flame-out").empty();
    if (tracing) obs::Tracer::instance().enable();
    int status = 1;
    try {
      status = run_command(args);
    } catch (...) {
      write_telemetry(args);
      throw;
    }
    const int telemetry_status = write_telemetry(args);
    return status != 0 ? status : telemetry_status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
