file(REMOVE_RECURSE
  "CMakeFiles/live_executor.dir/live_executor.cpp.o"
  "CMakeFiles/live_executor.dir/live_executor.cpp.o.d"
  "live_executor"
  "live_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
