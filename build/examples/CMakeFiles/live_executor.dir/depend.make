# Empty dependencies file for live_executor.
# This may be replaced when dependencies are built.
