file(REMOVE_RECURSE
  "CMakeFiles/switching_demo.dir/switching_demo.cpp.o"
  "CMakeFiles/switching_demo.dir/switching_demo.cpp.o.d"
  "switching_demo"
  "switching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
