# Empty dependencies file for switching_demo.
# This may be replaced when dependencies are built.
