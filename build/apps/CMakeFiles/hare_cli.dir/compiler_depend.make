# Empty compiler generated dependencies file for hare_cli.
# This may be replaced when dependencies are built.
