file(REMOVE_RECURSE
  "CMakeFiles/hare_cli.dir/hare_cli.cpp.o"
  "CMakeFiles/hare_cli.dir/hare_cli.cpp.o.d"
  "hare"
  "hare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
