# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/apps/hare" "generate" "--jobs" "8" "--seed" "5" "--out" "/root/repo/build/cli_trace.txt")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;7;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/apps/hare" "schedule" "--trace" "/root/repo/build/cli_trace.txt" "--gpus" "16" "--gantt" "--export" "/root/repo/build/cli_run")
set_tests_properties(cli_schedule PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;9;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_schedule_online "/root/repo/build/apps/hare" "schedule" "--trace" "/root/repo/build/cli_trace.txt" "--gpus" "16" "--scheduler" "online" "--csv")
set_tests_properties(cli_schedule_online PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;12;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/apps/hare" "compare" "--trace" "/root/repo/build/cli_trace.txt" "--testbed")
set_tests_properties(cli_compare PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;15;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/apps/hare" "profile" "--trace" "/root/repo/build/cli_trace.txt" "--testbed" "--db" "/root/repo/build/cli_db.txt")
set_tests_properties(cli_profile PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;17;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_rejects_bad_usage "/root/repo/build/apps/hare" "bogus-command")
set_tests_properties(cli_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;20;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_advise "/root/repo/build/apps/hare" "advise" "--model" "GraphSAGE" "--testbed")
set_tests_properties(cli_advise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;26;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_save_plan "/root/repo/build/apps/hare" "schedule" "--trace" "/root/repo/build/cli_trace.txt" "--gpus" "16" "--save-plan" "/root/repo/build/cli_plan.txt")
set_tests_properties(cli_save_plan PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;27;add_test;/root/repo/apps/CMakeLists.txt;0;")
