# Empty dependencies file for hare_sched.
# This may be replaced when dependencies are built.
