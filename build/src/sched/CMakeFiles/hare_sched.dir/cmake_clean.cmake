file(REMOVE_RECURSE
  "CMakeFiles/hare_sched.dir/backfill.cpp.o"
  "CMakeFiles/hare_sched.dir/backfill.cpp.o.d"
  "CMakeFiles/hare_sched.dir/gang_planner.cpp.o"
  "CMakeFiles/hare_sched.dir/gang_planner.cpp.o.d"
  "CMakeFiles/hare_sched.dir/gavel_fifo.cpp.o"
  "CMakeFiles/hare_sched.dir/gavel_fifo.cpp.o.d"
  "CMakeFiles/hare_sched.dir/sched_allox.cpp.o"
  "CMakeFiles/hare_sched.dir/sched_allox.cpp.o.d"
  "CMakeFiles/hare_sched.dir/sched_homo.cpp.o"
  "CMakeFiles/hare_sched.dir/sched_homo.cpp.o.d"
  "CMakeFiles/hare_sched.dir/srtf.cpp.o"
  "CMakeFiles/hare_sched.dir/srtf.cpp.o.d"
  "CMakeFiles/hare_sched.dir/themis_fair.cpp.o"
  "CMakeFiles/hare_sched.dir/themis_fair.cpp.o.d"
  "libhare_sched.a"
  "libhare_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
