
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backfill.cpp" "src/sched/CMakeFiles/hare_sched.dir/backfill.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/backfill.cpp.o.d"
  "/root/repo/src/sched/gang_planner.cpp" "src/sched/CMakeFiles/hare_sched.dir/gang_planner.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/gang_planner.cpp.o.d"
  "/root/repo/src/sched/gavel_fifo.cpp" "src/sched/CMakeFiles/hare_sched.dir/gavel_fifo.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/gavel_fifo.cpp.o.d"
  "/root/repo/src/sched/sched_allox.cpp" "src/sched/CMakeFiles/hare_sched.dir/sched_allox.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/sched_allox.cpp.o.d"
  "/root/repo/src/sched/sched_homo.cpp" "src/sched/CMakeFiles/hare_sched.dir/sched_homo.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/sched_homo.cpp.o.d"
  "/root/repo/src/sched/srtf.cpp" "src/sched/CMakeFiles/hare_sched.dir/srtf.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/srtf.cpp.o.d"
  "/root/repo/src/sched/themis_fair.cpp" "src/sched/CMakeFiles/hare_sched.dir/themis_fair.cpp.o" "gcc" "src/sched/CMakeFiles/hare_sched.dir/themis_fair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/hare_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/hare_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/switching/CMakeFiles/hare_switching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
