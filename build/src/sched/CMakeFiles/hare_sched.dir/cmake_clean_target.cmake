file(REMOVE_RECURSE
  "libhare_sched.a"
)
