file(REMOVE_RECURSE
  "CMakeFiles/hare_opt.dir/exact_schedule.cpp.o"
  "CMakeFiles/hare_opt.dir/exact_schedule.cpp.o.d"
  "CMakeFiles/hare_opt.dir/hungarian.cpp.o"
  "CMakeFiles/hare_opt.dir/hungarian.cpp.o.d"
  "CMakeFiles/hare_opt.dir/queyranne.cpp.o"
  "CMakeFiles/hare_opt.dir/queyranne.cpp.o.d"
  "CMakeFiles/hare_opt.dir/simplex.cpp.o"
  "CMakeFiles/hare_opt.dir/simplex.cpp.o.d"
  "libhare_opt.a"
  "libhare_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
