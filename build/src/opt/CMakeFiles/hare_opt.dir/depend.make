# Empty dependencies file for hare_opt.
# This may be replaced when dependencies are built.
