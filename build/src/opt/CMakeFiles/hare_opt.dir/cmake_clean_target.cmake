file(REMOVE_RECURSE
  "libhare_opt.a"
)
