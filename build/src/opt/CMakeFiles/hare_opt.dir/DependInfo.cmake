
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/exact_schedule.cpp" "src/opt/CMakeFiles/hare_opt.dir/exact_schedule.cpp.o" "gcc" "src/opt/CMakeFiles/hare_opt.dir/exact_schedule.cpp.o.d"
  "/root/repo/src/opt/hungarian.cpp" "src/opt/CMakeFiles/hare_opt.dir/hungarian.cpp.o" "gcc" "src/opt/CMakeFiles/hare_opt.dir/hungarian.cpp.o.d"
  "/root/repo/src/opt/queyranne.cpp" "src/opt/CMakeFiles/hare_opt.dir/queyranne.cpp.o" "gcc" "src/opt/CMakeFiles/hare_opt.dir/queyranne.cpp.o.d"
  "/root/repo/src/opt/simplex.cpp" "src/opt/CMakeFiles/hare_opt.dir/simplex.cpp.o" "gcc" "src/opt/CMakeFiles/hare_opt.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/hare_profiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
