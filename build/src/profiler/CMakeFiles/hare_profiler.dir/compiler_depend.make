# Empty compiler generated dependencies file for hare_profiler.
# This may be replaced when dependencies are built.
