file(REMOVE_RECURSE
  "libhare_profiler.a"
)
