
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/profile_db.cpp" "src/profiler/CMakeFiles/hare_profiler.dir/profile_db.cpp.o" "gcc" "src/profiler/CMakeFiles/hare_profiler.dir/profile_db.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/profiler/CMakeFiles/hare_profiler.dir/profiler.cpp.o" "gcc" "src/profiler/CMakeFiles/hare_profiler.dir/profiler.cpp.o.d"
  "/root/repo/src/profiler/time_table.cpp" "src/profiler/CMakeFiles/hare_profiler.dir/time_table.cpp.o" "gcc" "src/profiler/CMakeFiles/hare_profiler.dir/time_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
