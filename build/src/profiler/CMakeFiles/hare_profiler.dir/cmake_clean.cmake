file(REMOVE_RECURSE
  "CMakeFiles/hare_profiler.dir/profile_db.cpp.o"
  "CMakeFiles/hare_profiler.dir/profile_db.cpp.o.d"
  "CMakeFiles/hare_profiler.dir/profiler.cpp.o"
  "CMakeFiles/hare_profiler.dir/profiler.cpp.o.d"
  "CMakeFiles/hare_profiler.dir/time_table.cpp.o"
  "CMakeFiles/hare_profiler.dir/time_table.cpp.o.d"
  "libhare_profiler.a"
  "libhare_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
