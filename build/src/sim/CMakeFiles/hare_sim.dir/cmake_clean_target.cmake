file(REMOVE_RECURSE
  "libhare_sim.a"
)
