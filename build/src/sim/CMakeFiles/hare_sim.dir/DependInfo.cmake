
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/export.cpp" "src/sim/CMakeFiles/hare_sim.dir/export.cpp.o" "gcc" "src/sim/CMakeFiles/hare_sim.dir/export.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/hare_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/hare_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/hare_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/hare_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/hare_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/hare_sim.dir/schedule.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/hare_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hare_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/hare_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/switching/CMakeFiles/hare_switching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
