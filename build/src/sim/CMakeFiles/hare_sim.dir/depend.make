# Empty dependencies file for hare_sim.
# This may be replaced when dependencies are built.
