file(REMOVE_RECURSE
  "CMakeFiles/hare_sim.dir/export.cpp.o"
  "CMakeFiles/hare_sim.dir/export.cpp.o.d"
  "CMakeFiles/hare_sim.dir/gantt.cpp.o"
  "CMakeFiles/hare_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/hare_sim.dir/network.cpp.o"
  "CMakeFiles/hare_sim.dir/network.cpp.o.d"
  "CMakeFiles/hare_sim.dir/schedule.cpp.o"
  "CMakeFiles/hare_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/hare_sim.dir/simulator.cpp.o"
  "CMakeFiles/hare_sim.dir/simulator.cpp.o.d"
  "libhare_sim.a"
  "libhare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
