# Empty dependencies file for hare_core.
# This may be replaced when dependencies are built.
