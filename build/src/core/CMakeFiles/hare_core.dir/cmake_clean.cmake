file(REMOVE_RECURSE
  "CMakeFiles/hare_core.dir/advisor.cpp.o"
  "CMakeFiles/hare_core.dir/advisor.cpp.o.d"
  "CMakeFiles/hare_core.dir/bounds.cpp.o"
  "CMakeFiles/hare_core.dir/bounds.cpp.o.d"
  "CMakeFiles/hare_core.dir/hare_scheduler.cpp.o"
  "CMakeFiles/hare_core.dir/hare_scheduler.cpp.o.d"
  "CMakeFiles/hare_core.dir/hare_system.cpp.o"
  "CMakeFiles/hare_core.dir/hare_system.cpp.o.d"
  "CMakeFiles/hare_core.dir/online_hare.cpp.o"
  "CMakeFiles/hare_core.dir/online_hare.cpp.o.d"
  "CMakeFiles/hare_core.dir/relaxation.cpp.o"
  "CMakeFiles/hare_core.dir/relaxation.cpp.o.d"
  "libhare_core.a"
  "libhare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
