file(REMOVE_RECURSE
  "libhare_core.a"
)
