file(REMOVE_RECURSE
  "libhare_switching.a"
)
