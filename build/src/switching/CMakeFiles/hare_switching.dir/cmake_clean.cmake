file(REMOVE_RECURSE
  "CMakeFiles/hare_switching.dir/context_pool.cpp.o"
  "CMakeFiles/hare_switching.dir/context_pool.cpp.o.d"
  "CMakeFiles/hare_switching.dir/memory_manager.cpp.o"
  "CMakeFiles/hare_switching.dir/memory_manager.cpp.o.d"
  "CMakeFiles/hare_switching.dir/memory_planner.cpp.o"
  "CMakeFiles/hare_switching.dir/memory_planner.cpp.o.d"
  "CMakeFiles/hare_switching.dir/switch_model.cpp.o"
  "CMakeFiles/hare_switching.dir/switch_model.cpp.o.d"
  "libhare_switching.a"
  "libhare_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
