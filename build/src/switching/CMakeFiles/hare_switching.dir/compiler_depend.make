# Empty compiler generated dependencies file for hare_switching.
# This may be replaced when dependencies are built.
