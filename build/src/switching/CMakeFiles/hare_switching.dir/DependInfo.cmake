
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switching/context_pool.cpp" "src/switching/CMakeFiles/hare_switching.dir/context_pool.cpp.o" "gcc" "src/switching/CMakeFiles/hare_switching.dir/context_pool.cpp.o.d"
  "/root/repo/src/switching/memory_manager.cpp" "src/switching/CMakeFiles/hare_switching.dir/memory_manager.cpp.o" "gcc" "src/switching/CMakeFiles/hare_switching.dir/memory_manager.cpp.o.d"
  "/root/repo/src/switching/memory_planner.cpp" "src/switching/CMakeFiles/hare_switching.dir/memory_planner.cpp.o" "gcc" "src/switching/CMakeFiles/hare_switching.dir/memory_planner.cpp.o.d"
  "/root/repo/src/switching/switch_model.cpp" "src/switching/CMakeFiles/hare_switching.dir/switch_model.cpp.o" "gcc" "src/switching/CMakeFiles/hare_switching.dir/switch_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
