# Empty compiler generated dependencies file for hare_workload.
# This may be replaced when dependencies are built.
