file(REMOVE_RECURSE
  "CMakeFiles/hare_workload.dir/job.cpp.o"
  "CMakeFiles/hare_workload.dir/job.cpp.o.d"
  "CMakeFiles/hare_workload.dir/model_zoo.cpp.o"
  "CMakeFiles/hare_workload.dir/model_zoo.cpp.o.d"
  "CMakeFiles/hare_workload.dir/perf_model.cpp.o"
  "CMakeFiles/hare_workload.dir/perf_model.cpp.o.d"
  "CMakeFiles/hare_workload.dir/trace.cpp.o"
  "CMakeFiles/hare_workload.dir/trace.cpp.o.d"
  "libhare_workload.a"
  "libhare_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
