file(REMOVE_RECURSE
  "libhare_workload.a"
)
