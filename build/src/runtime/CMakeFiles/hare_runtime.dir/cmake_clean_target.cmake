file(REMOVE_RECURSE
  "libhare_runtime.a"
)
