file(REMOVE_RECURSE
  "CMakeFiles/hare_runtime.dir/runtime.cpp.o"
  "CMakeFiles/hare_runtime.dir/runtime.cpp.o.d"
  "libhare_runtime.a"
  "libhare_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
