# Empty dependencies file for hare_runtime.
# This may be replaced when dependencies are built.
