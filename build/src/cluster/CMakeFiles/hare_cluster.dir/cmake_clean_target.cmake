file(REMOVE_RECURSE
  "libhare_cluster.a"
)
