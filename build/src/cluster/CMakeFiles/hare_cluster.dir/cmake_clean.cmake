file(REMOVE_RECURSE
  "CMakeFiles/hare_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hare_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/hare_cluster.dir/gpu.cpp.o"
  "CMakeFiles/hare_cluster.dir/gpu.cpp.o.d"
  "libhare_cluster.a"
  "libhare_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hare_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
