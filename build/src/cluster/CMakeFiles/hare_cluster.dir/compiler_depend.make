# Empty compiler generated dependencies file for hare_cluster.
# This may be replaced when dependencies are built.
