# Empty compiler generated dependencies file for test_advisor_plan.
# This may be replaced when dependencies are built.
