file(REMOVE_RECURSE
  "CMakeFiles/test_advisor_plan.dir/test_advisor_plan.cpp.o"
  "CMakeFiles/test_advisor_plan.dir/test_advisor_plan.cpp.o.d"
  "test_advisor_plan"
  "test_advisor_plan.pdb"
  "test_advisor_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advisor_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
