# Empty compiler generated dependencies file for test_themis_gantt.
# This may be replaced when dependencies are built.
