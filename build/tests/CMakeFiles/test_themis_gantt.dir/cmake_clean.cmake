file(REMOVE_RECURSE
  "CMakeFiles/test_themis_gantt.dir/test_themis_gantt.cpp.o"
  "CMakeFiles/test_themis_gantt.dir/test_themis_gantt.cpp.o.d"
  "test_themis_gantt"
  "test_themis_gantt.pdb"
  "test_themis_gantt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_themis_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
