# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_switching[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_memory_planner[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_exact[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_themis_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_advisor_plan[1]_include.cmake")
