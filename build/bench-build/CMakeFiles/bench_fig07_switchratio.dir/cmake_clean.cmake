file(REMOVE_RECURSE
  "../bench/bench_fig07_switchratio"
  "../bench/bench_fig07_switchratio.pdb"
  "CMakeFiles/bench_fig07_switchratio.dir/bench_fig07_switchratio.cpp.o"
  "CMakeFiles/bench_fig07_switchratio.dir/bench_fig07_switchratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_switchratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
