file(REMOVE_RECURSE
  "../bench/bench_table3_switching"
  "../bench/bench_table3_switching.pdb"
  "CMakeFiles/bench_table3_switching.dir/bench_table3_switching.cpp.o"
  "CMakeFiles/bench_table3_switching.dir/bench_table3_switching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
