# Empty dependencies file for bench_table3_switching.
# This may be replaced when dependencies are built.
