# Empty dependencies file for bench_fig19_batch.
# This may be replaced when dependencies are built.
