file(REMOVE_RECURSE
  "../bench/bench_fig19_batch"
  "../bench/bench_fig19_batch.pdb"
  "CMakeFiles/bench_fig19_batch.dir/bench_fig19_batch.cpp.o"
  "CMakeFiles/bench_fig19_batch.dir/bench_fig19_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
