file(REMOVE_RECURSE
  "../bench/bench_fig17_jobmix"
  "../bench/bench_fig17_jobmix.pdb"
  "CMakeFiles/bench_fig17_jobmix.dir/bench_fig17_jobmix.cpp.o"
  "CMakeFiles/bench_fig17_jobmix.dir/bench_fig17_jobmix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_jobmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
