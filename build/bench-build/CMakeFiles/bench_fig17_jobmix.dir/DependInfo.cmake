
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig17_jobmix.cpp" "bench-build/CMakeFiles/bench_fig17_jobmix.dir/bench_fig17_jobmix.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig17_jobmix.dir/bench_fig17_jobmix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hare_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/hare_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hare_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/hare_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/switching/CMakeFiles/hare_switching.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hare_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
