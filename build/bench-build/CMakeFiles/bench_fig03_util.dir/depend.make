# Empty dependencies file for bench_fig03_util.
# This may be replaced when dependencies are built.
