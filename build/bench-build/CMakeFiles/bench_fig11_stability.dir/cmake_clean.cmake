file(REMOVE_RECURSE
  "../bench/bench_fig11_stability"
  "../bench/bench_fig11_stability.pdb"
  "CMakeFiles/bench_fig11_stability.dir/bench_fig11_stability.cpp.o"
  "CMakeFiles/bench_fig11_stability.dir/bench_fig11_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
