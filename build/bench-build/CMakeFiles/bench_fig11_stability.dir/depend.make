# Empty dependencies file for bench_fig11_stability.
# This may be replaced when dependencies are built.
