file(REMOVE_RECURSE
  "../bench/bench_fig05_epoch"
  "../bench/bench_fig05_epoch.pdb"
  "CMakeFiles/bench_fig05_epoch.dir/bench_fig05_epoch.cpp.o"
  "CMakeFiles/bench_fig05_epoch.dir/bench_fig05_epoch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
