# Empty dependencies file for bench_fig05_epoch.
# This may be replaced when dependencies are built.
