file(REMOVE_RECURSE
  "../bench/bench_fig16_hetero"
  "../bench/bench_fig16_hetero.pdb"
  "CMakeFiles/bench_fig16_hetero.dir/bench_fig16_hetero.cpp.o"
  "CMakeFiles/bench_fig16_hetero.dir/bench_fig16_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
