file(REMOVE_RECURSE
  "../bench/bench_fig15_jobs"
  "../bench/bench_fig15_jobs.pdb"
  "CMakeFiles/bench_fig15_jobs.dir/bench_fig15_jobs.cpp.o"
  "CMakeFiles/bench_fig15_jobs.dir/bench_fig15_jobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
