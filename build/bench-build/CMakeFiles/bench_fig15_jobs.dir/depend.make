# Empty dependencies file for bench_fig15_jobs.
# This may be replaced when dependencies are built.
