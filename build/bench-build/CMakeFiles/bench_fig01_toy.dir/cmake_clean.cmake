file(REMOVE_RECURSE
  "../bench/bench_fig01_toy"
  "../bench/bench_fig01_toy.pdb"
  "CMakeFiles/bench_fig01_toy.dir/bench_fig01_toy.cpp.o"
  "CMakeFiles/bench_fig01_toy.dir/bench_fig01_toy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
