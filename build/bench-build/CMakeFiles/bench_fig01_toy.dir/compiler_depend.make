# Empty compiler generated dependencies file for bench_fig01_toy.
# This may be replaced when dependencies are built.
