# Empty dependencies file for bench_fig12_testbed.
# This may be replaced when dependencies are built.
