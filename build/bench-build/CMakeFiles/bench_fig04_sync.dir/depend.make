# Empty dependencies file for bench_fig04_sync.
# This may be replaced when dependencies are built.
