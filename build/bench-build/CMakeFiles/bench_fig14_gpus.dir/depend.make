# Empty dependencies file for bench_fig14_gpus.
# This may be replaced when dependencies are built.
