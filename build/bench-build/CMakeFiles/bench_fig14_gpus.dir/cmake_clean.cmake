file(REMOVE_RECURSE
  "../bench/bench_fig14_gpus"
  "../bench/bench_fig14_gpus.pdb"
  "CMakeFiles/bench_fig14_gpus.dir/bench_fig14_gpus.cpp.o"
  "CMakeFiles/bench_fig14_gpus.dir/bench_fig14_gpus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
