#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by hare::obs.

Checks that the file parses as JSON, that every event carries a known
phase with the fields chrome://tracing needs, and that duration events
are well formed:

  * "X" (complete) events need numeric ts and dur >= 0, plus pid/tid;
  * "B"/"E" (begin/end) events must stack-match per (pid, tid) track
    (hare::obs emits only "X" spans, so both counts are normally zero);
  * "i" (instant) and "M" (metadata) and "C" (counter) events are
    accepted; any other phase fails validation.

With --require-cats, the union of event categories must cover every
requested category — CI uses this to prove the trace contains spans from
all instrumented layers (planner, sim, switching, runtime; fault runs add
the "fault" category for replan spans and failure/recovery/cancellation
instant events).

With --require-names, the union of event names must cover every requested
name — CI's fault smoke uses this to prove the "fault.event" instants and
"fault.replan" spans actually landed in the trace, not just the category.

Usage: scripts/validate_trace.py TRACE.json [--require-cats a,b,c]
                                            [--require-names n1,n2]
Exit status: 0 when valid, 1 otherwise.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"X", "B", "E", "i", "M", "C"}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def validate(events, require_cats, require_names):
    errors = 0
    phase_counts = {}
    categories = set()
    names = set()
    open_stacks = {}  # (pid, tid) -> [names of open B events]

    for index, event in enumerate(events):
        where = f"event #{index}"
        if not isinstance(event, dict):
            errors += fail(f"{where} is not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors += fail(f"{where} has unknown phase {phase!r}")
            continue
        phase_counts[phase] = phase_counts.get(phase, 0) + 1
        if "cat" in event:
            for cat in str(event["cat"]).split(","):
                categories.add(cat)
        if "name" in event:
            names.add(str(event["name"]))

        if "pid" not in event or "tid" not in event:
            errors += fail(f"{where} ({phase}) is missing pid/tid")
            continue
        track = (event["pid"], event["tid"])

        if phase == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors += fail(f"{where} ({phase}) has non-numeric ts {ts!r}")
            continue

        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors += fail(f"{where} (X) has bad dur {dur!r}")
        elif phase == "B":
            open_stacks.setdefault(track, []).append(event.get("name"))
        elif phase == "E":
            stack = open_stacks.get(track, [])
            if not stack:
                errors += fail(f"{where} (E) closes nothing on track {track}")
            else:
                stack.pop()

    for track, stack in open_stacks.items():
        if stack:
            errors += fail(
                f"track {track} has {len(stack)} unclosed B event(s): {stack}"
            )

    missing = set(require_cats) - categories
    if missing:
        errors += fail(
            f"required categories missing from trace: {sorted(missing)} "
            f"(present: {sorted(categories)})"
        )
    missing_names = set(require_names) - names
    if missing_names:
        errors += fail(
            f"required event names missing from trace: "
            f"{sorted(missing_names)}"
        )

    summary = ", ".join(f"{k}={v}" for k, v in sorted(phase_counts.items()))
    print(
        f"validate_trace: {len(events)} events ({summary}); "
        f"categories: {sorted(categories)}"
    )
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--require-cats",
        default="",
        help="comma-separated categories that must appear in the trace",
    )
    parser.add_argument(
        "--require-names",
        default="",
        help="comma-separated event names that must appear in the trace",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot load {args.trace}: {error}")

    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return fail("top-level object has no traceEvents array")
    elif isinstance(data, list):
        events = data
    else:
        return fail("top level must be an object or an event array")

    if not events:
        return fail("trace contains no events")

    require_cats = [c for c in args.require_cats.split(",") if c]
    require_names = [n for n in args.require_names.split(",") if n]
    errors = validate(events, require_cats, require_names)
    if errors:
        print(f"validate_trace: {errors} error(s)", file=sys.stderr)
        return 1
    print("validate_trace: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
