#!/usr/bin/env python3
"""Gate performance results from the perf benches.

Reads the machine-readable JSON a perf bench emits and fails (exit 1) on a
regression. Two bench formats are understood, dispatched on the "bench"
field:

bench_planner_scale (BENCH_planner.json):
  * any engine configuration produced a schedule that differs from its
    reference (naive vs cold-indexed, warm-serial vs pooled, dense backend
    vs sparse backend) — determinism is a correctness contract, never
    waived, including in quick mode;
  * the warm sparse LP needed more simplex pivots than the cold dense
    reference on any LpCuts grid point where the reference ran;
  * an LpCuts point with >= 10 jobs and a dense reference fell below the
    sparse-backend speedup floor (enforced in quick mode too — the quick
    grid keeps the 16-job dense reference exactly for this);
  * the measured speedups fall below the thresholds. Thresholds are ratios
    (optimized vs the in-process naive baseline measured in the same run),
    so they hold across machines; absolute milliseconds are never compared.

bench_sweep_scale (BENCH_sweep.json):
  * the parallel sweep diverged from the serial reference (bit-identity is
    a correctness contract, never waived);
  * the parallel-over-serial speedup fell below the floor — enforced only
    when the recorded run had >= 4 workers, since a 1-2 core container
    cannot demonstrate fan-out scaling (the ratio is measured in-process,
    so it holds across grid machines);
  * the 1-worker sweep fell below 0.95x of the serial reference — a
    1-worker engine must run inline on the calling thread, so this gate is
    machine-independent and enforced in full mode on any core count.

bench_shard_scale (BENCH_shard.json):
  * the parallel sharded plan is not bit-identical to the serial sharded
    plan, or a plan failed structural validation — correctness contracts,
    never waived, including in quick mode;
  * the incremental Queyranne separation produced a different cut
    trajectory than the full per-round re-sort — never waived;
  * full mode: the incremental separator saved < 50% of the separation
    sort work across the lp_cuts grid;
  * full mode: the largest point's sharded-over-flat speedup fell below
    the floor — enforced only when the recorded run had >= 4 workers
    (same rationale as the sweep gate).

bench_fault (BENCH_fault.json):
  * the scripted fault scenario is bit-identical across repeated and
    pooled executions — a correctness contract, never waived;
  * scenario coverage: at least one machine failure, one recovery, one
    cancellation, and one exhausted-retry dead-letter actually happened;
  * every job is accounted for by exactly one outcome, the degradation
    ratio is positive and finite, and fragmentation lies in [0, 1].

bench_serve (BENCH_serve.json):
  * the served schedule is bit-identical across a serial re-run, pooled
    replicas, warm vs cold LP, and sharded serial vs pooled — a
    correctness contract, never waived;
  * the warm (retained-basis) replanner did strictly less total simplex
    pivot work than the cold re-solve on the same stream, and at least
    one warm solve actually happened — pivot counts are deterministic,
    so this is machine-independent and enforced in quick mode too;
  * full mode: sustained admission throughput stayed at or above the
    10k arrivals/s serving floor (the only machine-dependent serve
    gate; quick grids are fixed-cost dominated, so it is skipped
    there).

bench_scale_100k (BENCH_scale.json):
  * the pooled sharded plan diverged from the serial one, a plan failed
    structural validation, the sparse-backend LpCuts plan differs from the
    dense tableau reference, or Classic and Hyper sparse modes disagree on
    an LP objective — correctness contracts, never waived, including in
    quick mode;
  * any point's process peak RSS exceeded the memory ceiling, or the
    pooled sharded plan lost to the forced-serial plan by more than the
    slack — both enforced in quick mode too (the ceiling catches a return
    to dense per-job time storage; the plan-time ratio is in-process);
  * a six-figure point recorded zero cross-shard migrations — the
    delay-ranked move bundles are deterministic, so the count is
    machine-independent;
  * full mode: the hyper-sparse mode fell below the 1.5x speedup floor
    over the classic sparse path on any wide (>= 4096 column) LP point —
    an in-process ratio, so it holds across machines;
  * full mode: the grid never reached the six-figure (100k-job) point.

A baseline JSON missing an expected key fails with a clear message naming
the key(s) and the gate(s) that had to be skipped — never a bare KeyError
traceback. Numeric-floor failures print the observed value against the
floor key by key (see fail_floor), so the CI log names the exact number
that moved.

Quick mode (--quick, or a JSON produced with --quick) runs tiny grids
where fixed costs dominate, so only the determinism contracts and the
LpCuts sparse-vs-dense floor (a 50x-headroom ratio, safe on any machine)
are enforced there.

Usage: scripts/check_bench_regression.py [JSON...] [--quick]
       (default: BENCH_planner.json)
"""

import json
import sys

# Full-run thresholds: the largest fluid grid is the headline number the
# optimization work is gated on; smaller grids only need to not regress
# past the naive engine by more than measurement noise.
LARGE_FLUID_MIN_SPEEDUP = 3.0
# Sparse revised simplex vs the dense-tableau reference, end to end through
# the whole planner. Enforced at every LpCuts point with >= 10 jobs where
# the dense reference ran — in quick mode too.
LP_CUTS_MIN_SPEEDUP = 5.0
LP_CUTS_MIN_JOBS = 10
ANY_POINT_MIN_SPEEDUP = 0.7  # noise floor for tiny grids

# Sweep-engine thresholds: the parallel fan-out must beat the serial
# reference by this much on a machine with enough cores to show it.
SWEEP_MIN_SPEEDUP = 3.0
SWEEP_MIN_WORKERS = 4  # below this, fan-out speedup is not demonstrable
# A 1-worker engine runs the cells inline on the calling thread, so it must
# track the serial loop within noise on any machine.
SWEEP_MIN_1WORKER_SPEEDUP = 0.95

# Sharded-planner thresholds: the two-level plan over the largest grid
# point must beat the flat fluid plan by this much (>= 4 workers), and the
# incremental separator must save at least half the separation sort work.
SHARD_MIN_SPEEDUP = 3.0
SHARD_MIN_WORKERS = 4
SHARD_MIN_RESORT_SAVINGS = 0.5

# Serving-loop floor: sustained arrivals/second through the full
# admit -> profile -> batch -> replan path. The bench workload clears this
# by an order of magnitude on a single core, so the floor holds on 1-2
# core CI runners; it is still skipped in quick mode, where the tiny
# stream is dominated by fixed costs.
SERVE_MIN_THROUGHPUT = 10000.0

# Scale-bench thresholds: the full grid must actually reach the six-figure
# point, and the hyper-sparse LP mode must beat the classic sparse path on
# the wide (>= SCALE_LP_WIDE_COLS columns) LP points. The speedup is an
# in-process ratio measured in the same run, so it holds across machines;
# the quick grid's LP is small and single-rep, so the floor is full-mode
# only there.
SCALE_SIX_FIGURE_JOBS = 100000
SCALE_LP_MIN_SPEEDUP = 1.5
SCALE_LP_WIDE_COLS = 4096
# Memory ceiling for any scale point (process peak RSS in MB). The interned
# time-table layout holds the six-figure point to a few hundred MB; the
# ceiling catches a silent return to dense per-job storage (13.8 GB at
# 100k x 8192 before the rework) long before the runner OOMs.
SCALE_MAX_RSS_MB = 5000.0
# The pooled sharded plan must not lose to the forced-serial plan. Both are
# best-of-N and interleaved in one process, so the ratio is stable across
# machines; 1.1x absorbs scheduler jitter on single-core runners where both
# paths execute the identical inline code.
SCALE_PARALLEL_SLACK = 1.1


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def fail_floor(tag, key, observed, floor, note=""):
    """Threshold failure that spells out the observed value against its
    floor, key by key, so a CI log names the exact number that moved
    instead of burying it in prose."""
    suffix = f" — {note}" if note else ""
    return fail(
        f"{tag}: {key} = {observed:.3f} vs floor {floor:.3f}{suffix}"
    )


def fail_ceiling(tag, key, observed, ceiling, note=""):
    """Threshold failure for values that must stay *under* a bound, printed
    observed-vs-ceiling just like fail_floor prints observed-vs-floor."""
    suffix = f" — {note}" if note else ""
    return fail(
        f"{tag}: {key} = {observed:.3f} vs ceiling {ceiling:.3f}{suffix}"
    )


def missing_keys(mapping, keys):
    """Expected keys absent from a baseline JSON object."""
    return [k for k in keys if k not in mapping]


def skip_missing(tag, absent, gates):
    """A truncated or hand-edited baseline must fail loudly with the exact
    keys at fault and the gates that could not run — never a bare
    KeyError traceback, and never a silent pass."""
    return fail(
        f"{tag}: baseline JSON missing expected key(s) "
        f"{', '.join(repr(k) for k in absent)} — skipped: {gates}"
    )


def check_planner(data, quick, path):
    points = data.get("points", [])
    if not points:
        return fail(f"{path} contains no grid points")

    errors = 0
    for i, p in enumerate(points):
        absent = missing_keys(p, ("mode", "jobs", "gpus"))
        if absent:
            errors += skip_missing(
                f"{path} point {i}", absent, "all gates for this point"
            )
            continue
        tag = f"{p['mode']} {p['jobs']}x{p['gpus']}"
        dense_ref = p.get("dense_ref", True)
        if not p.get("warm_matches_pooled", False):
            errors += fail(f"{tag}: pooled schedule differs from warm-serial")
        if not dense_ref:
            continue
        if not p.get("naive_matches_cold_indexed", False):
            errors += fail(f"{tag}: cold-indexed schedule differs from naive")
        if not p.get("dense_matches_sparse", False):
            errors += fail(
                f"{tag}: sparse-backend schedule differs from the dense "
                "reference"
            )
        if p["mode"] == "lp_cuts":
            absent = missing_keys(
                p, ("pivots_sparse", "pivots_dense", "speedup_serial")
            )
            if absent:
                errors += skip_missing(
                    tag, absent, "pivot and LP-speedup gates"
                )
                continue
            if p["pivots_sparse"] > p["pivots_dense"]:
                errors += fail(
                    f"{tag}: warm sparse simplex used more pivots than the "
                    f"cold dense reference "
                    f"({p['pivots_sparse']} > {p['pivots_dense']})"
                )
            if p["jobs"] >= LP_CUTS_MIN_JOBS and (
                p["speedup_serial"] < LP_CUTS_MIN_SPEEDUP
            ):
                errors += fail_floor(
                    tag, "speedup_serial", p["speedup_serial"],
                    LP_CUTS_MIN_SPEEDUP,
                    "sparse backend vs the dense reference",
                )

    if not quick:
        for i, p in enumerate(points):
            absent = missing_keys(p, ("mode", "jobs", "gpus"))
            if absent:
                continue  # already reported above
            tag = f"{p['mode']} {p['jobs']}x{p['gpus']}"
            if not p.get("dense_ref", True):
                continue
            if "speedup_serial" not in p:
                errors += skip_missing(
                    tag, ["speedup_serial"], "naive-floor speedup gate"
                )
                continue
            if p["speedup_serial"] < ANY_POINT_MIN_SPEEDUP:
                errors += fail_floor(
                    tag, "speedup_serial", p["speedup_serial"],
                    ANY_POINT_MIN_SPEEDUP,
                    "optimized engine slower than naive",
                )
        fluid = [
            p
            for p in points
            if p.get("mode") == "fluid" and "jobs" in p and "gpus" in p
        ]
        if fluid:
            largest = max(fluid, key=lambda p: p["jobs"] * p["gpus"])
            if "speedup_serial" not in largest:
                errors += skip_missing(
                    f"large fluid grid {largest['jobs']}x{largest['gpus']}",
                    ["speedup_serial"],
                    "large-fluid speedup gate",
                )
            elif largest["speedup_serial"] < LARGE_FLUID_MIN_SPEEDUP:
                errors += fail_floor(
                    f"large fluid grid {largest['jobs']}x{largest['gpus']}",
                    "speedup_serial", largest["speedup_serial"],
                    LARGE_FLUID_MIN_SPEEDUP,
                )

    if errors:
        return errors
    mode = "quick (determinism/pivots/LP-backend floor)" if quick else "full"
    print(f"OK: {len(points)} grid points pass the {mode} planner gate in {path}")
    return 0


def check_sweep(data, quick, path):
    errors = 0
    if not data.get("deterministic", False):
        errors += fail(
            f"{path}: parallel sweep diverged from the serial reference"
        )
    if data.get("cells", 0) <= 0:
        errors += fail(f"{path}: sweep ran no cells")

    if not quick and "speedup_1worker" in data:
        one_worker = data["speedup_1worker"]
        if one_worker < SWEEP_MIN_1WORKER_SPEEDUP:
            errors += fail_floor(
                path, "speedup_1worker", one_worker,
                SWEEP_MIN_1WORKER_SPEEDUP,
                "the inline single-worker path regressed",
            )

    workers = data.get("workers", 1)
    if not quick and workers >= SWEEP_MIN_WORKERS:
        speedup = data.get("speedup", 0.0)
        if speedup < SWEEP_MIN_SPEEDUP:
            errors += fail_floor(
                path, "speedup", speedup, SWEEP_MIN_SPEEDUP,
                f"on {workers} workers",
            )
    elif not quick:
        print(
            f"note: {path} recorded {workers} worker(s); the "
            f"{SWEEP_MIN_SPEEDUP:.0f}x floor needs >= {SWEEP_MIN_WORKERS} "
            "(determinism still enforced)"
        )

    if errors:
        return errors
    mode = "quick (determinism only)" if quick else "full"
    print(
        f"OK: {data.get('cells', '?')} cells on {workers} worker(s) pass "
        f"the {mode} sweep gate in {path}"
    )
    return 0


def check_shard(data, quick, path):
    points = data.get("points", [])
    if not points:
        return fail(f"{path} contains no shard grid points")

    errors = 0
    for i, p in enumerate(points):
        absent = missing_keys(p, ("jobs", "gpus", "shards"))
        if absent:
            errors += skip_missing(
                f"{path} shard point {i}", absent, "all gates for this point"
            )
            continue
        tag = f"{p['jobs']}x{p['gpus']} ({p['shards']} shards)"
        if not p.get("merge_identical", False):
            errors += fail(
                f"{tag}: parallel sharded plan differs from the serial "
                "sharded plan (canonical-order merge broke)"
            )
        if not p.get("valid", False):
            errors += fail(f"{tag}: a plan failed structural validation")

    sep = data.get("separation", {})
    if not sep.get("trajectory_identical", False):
        errors += fail(
            f"{path}: incremental separation produced a different cut "
            "trajectory than the full per-round re-sort"
        )
    if not quick:
        savings = sep.get("resort_savings", 0.0)
        if savings < SHARD_MIN_RESORT_SAVINGS:
            errors += fail_floor(
                path, "resort_savings", savings, SHARD_MIN_RESORT_SAVINGS,
                "incremental separation saved too little sort work",
            )
        sized = [p for p in points if "jobs" in p and "gpus" in p]
        largest = max(sized, key=lambda p: p["jobs"] * p["gpus"]) if sized else {}
        tag = f"{largest.get('jobs', '?')}x{largest.get('gpus', '?')}"
        if largest.get("workers", 1) >= SHARD_MIN_WORKERS:
            if "speedup_parallel" not in largest:
                errors += skip_missing(
                    tag, ["speedup_parallel"], "sharded-over-flat speedup gate"
                )
            elif largest["speedup_parallel"] < SHARD_MIN_SPEEDUP:
                errors += fail_floor(
                    tag, "speedup_parallel", largest["speedup_parallel"],
                    SHARD_MIN_SPEEDUP,
                    f"sharded-over-flat on {largest['workers']} workers",
                )
        else:
            print(
                f"note: {path} recorded {largest.get('workers', 1)} "
                f"worker(s); the {SHARD_MIN_SPEEDUP:.0f}x floor needs >= "
                f"{SHARD_MIN_WORKERS} (bit-identity and separation gates "
                "still enforced)"
            )

    if errors:
        return errors
    mode = "quick (determinism/validity/trajectory)" if quick else "full"
    print(
        f"OK: {len(points)} shard points pass the {mode} shard gate in {path}"
    )
    return 0


def check_fault(data, quick, path):
    absent = missing_keys(
        data,
        (
            "deterministic",
            "machine_failures",
            "recoveries",
            "cancellations",
            "dead_letters",
            "jobs",
            "jobs_completed",
            "jobs_cancelled",
            "jobs_dead",
            "degradation_ratio",
            "fragmentation",
        ),
    )
    if absent:
        return skip_missing(path, absent, "all fault-scenario gates")

    errors = 0
    if not data["deterministic"]:
        errors += fail(
            f"{path}: fault run diverged across repeated/pooled executions "
            "(bit-identity is a correctness contract, never waived)"
        )
    # Scenario coverage: the bench scripts one failure+recovery, one
    # cancellation, and one exhausted-retry dead-letter; a run that lost
    # any of them is testing nothing.
    for key in ("machine_failures", "recoveries", "cancellations",
                "dead_letters"):
        if data[key] < 1:
            errors += fail(f"{path}: scenario recorded no {key}")
    accounted = (
        data["jobs_completed"] + data["jobs_cancelled"] + data["jobs_dead"]
    )
    if accounted != data["jobs"]:
        errors += fail(
            f"{path}: job outcomes do not account for every job "
            f"({accounted} of {data['jobs']})"
        )
    ratio = data["degradation_ratio"]
    if not (ratio > 0.0 and ratio == ratio and ratio != float("inf")):
        errors += fail(f"{path}: degradation ratio {ratio} is not a "
                       "positive finite number")
    if not 0.0 <= data["fragmentation"] <= 1.0:
        errors += fail(
            f"{path}: fragmentation {data['fragmentation']} outside [0, 1]"
        )

    if errors:
        return errors
    mode = "quick" if quick else "full"
    print(
        f"OK: fault scenario ({data['jobs_completed']} completed / "
        f"{data['jobs_cancelled']} cancelled / {data['jobs_dead']} dead, "
        f"degradation {ratio:.3f}) passes the {mode} fault gate in {path}"
    )
    return 0


def check_serve(data, quick, path):
    absent = missing_keys(
        data,
        (
            "deterministic",
            "arrivals",
            "batches",
            "throughput_arrivals_per_s",
            "warm_solves",
            "warm_pivots",
            "cold_pivots",
        ),
    )
    if absent:
        return skip_missing(path, absent, "all serve gates")

    errors = 0
    if not data["deterministic"]:
        errors += fail(
            f"{path}: served schedule diverged across serial/pooled/"
            "warm-cold/sharded executions (bit-identity is a correctness "
            "contract, never waived)"
        )
    if data["arrivals"] < 1 or data["batches"] < 1:
        errors += fail(f"{path}: serve run admitted or planned nothing")
    if data["warm_solves"] < 1:
        errors += fail(
            f"{path}: the warm replanner never reused a basis "
            "(no warm solve happened)"
        )
    if data["warm_pivots"] >= data["cold_pivots"]:
        errors += fail(
            f"{path}: warm replans did not beat cold re-solves "
            f"({data['warm_pivots']} >= {data['cold_pivots']} pivots)"
        )
    throughput = data["throughput_arrivals_per_s"]
    if not quick and throughput < SERVE_MIN_THROUGHPUT:
        errors += fail_floor(
            path, "throughput_arrivals_per_s", throughput,
            SERVE_MIN_THROUGHPUT, "sustained serving throughput",
        )

    if errors:
        return errors
    mode = "quick (determinism/pivot)" if quick else "full"
    print(
        f"OK: {data['arrivals']} arrivals in {data['batches']} batches "
        f"({throughput:.0f}/s, warm {data['warm_pivots']} vs cold "
        f"{data['cold_pivots']} pivots) pass the {mode} serve gate in {path}"
    )
    return 0


def check_scale(data, quick, path):
    points = data.get("scale_points", [])
    if not points:
        return fail(f"{path} contains no scale points")

    errors = 0
    for i, p in enumerate(points):
        absent = missing_keys(p, ("jobs", "gpus", "shards"))
        if absent:
            errors += skip_missing(
                f"{path} scale point {i}", absent, "all gates for this point"
            )
            continue
        tag = f"{p['jobs']}x{p['gpus']} ({p['shards']} shards)"
        if not p.get("merge_identical", False):
            errors += fail(
                f"{tag}: pooled sharded plan differs from the serial "
                "sharded plan (canonical-order merge broke)"
            )
        if not p.get("valid", False):
            errors += fail(f"{tag}: the plan failed structural validation")
        if p.get("tasks", 0) < 1:
            errors += fail(f"{tag}: the streamed trace produced no tasks")
        if "peak_rss_mb" not in p:
            errors += skip_missing(tag, ["peak_rss_mb"], "peak RSS ceiling")
        elif p["peak_rss_mb"] > SCALE_MAX_RSS_MB:
            errors += fail_ceiling(
                tag, "peak_rss_mb", p["peak_rss_mb"], SCALE_MAX_RSS_MB,
                "dense per-job time storage is back?",
            )
        if p.get("jobs", 0) >= SCALE_SIX_FIGURE_JOBS:
            if "migrated_jobs" not in p:
                errors += skip_missing(
                    tag, ["migrated_jobs"], "six-figure migration gate"
                )
            elif p["migrated_jobs"] < 1:
                errors += fail_floor(
                    tag, "migrated_jobs", float(p["migrated_jobs"]), 1.0,
                    "cross-shard migration fired zero moves at the "
                    "six-figure point (the objective-gate regression is "
                    "back?)",
                )
        plan_keys = missing_keys(p, ("plan_serial_ms", "plan_parallel_ms"))
        if plan_keys:
            errors += skip_missing(tag, plan_keys, "pooled-vs-serial gate")
        elif (
            p["plan_parallel_ms"]
            > p["plan_serial_ms"] * SCALE_PARALLEL_SLACK
        ):
            errors += fail_ceiling(
                tag, "plan_parallel_ms", p["plan_parallel_ms"],
                p["plan_serial_ms"] * SCALE_PARALLEL_SLACK,
                "the pooled sharded plan lost to the forced-serial plan",
            )

    backend = data.get("backend_cross_check", {})
    if not backend.get("identical", False):
        errors += fail(
            f"{path}: sparse-backend LpCuts plan differs from the dense "
            "tableau reference (bit-identity is a correctness contract, "
            "never waived)"
        )

    lp_points = data.get("lp_points", [])
    if not lp_points:
        errors += fail(f"{path} contains no LP backend points")
    for p in lp_points:
        absent = missing_keys(p, ("rows", "cols"))
        if absent:
            errors += skip_missing(
                f"{path} lp point", absent, "all gates for this point"
            )
            continue
        tag = f"lp {p['rows']}x{p['cols']}"
        if not p.get("objectives_match", False):
            errors += fail(
                f"{tag}: Classic and Hyper sparse modes disagree on the "
                "optimal objective"
            )
        if not quick and p["cols"] >= SCALE_LP_WIDE_COLS:
            if "speedup" not in p:
                errors += skip_missing(tag, ["speedup"], "hyper speedup gate")
            elif p["speedup"] < SCALE_LP_MIN_SPEEDUP:
                errors += fail_floor(
                    tag, "speedup", p["speedup"], SCALE_LP_MIN_SPEEDUP,
                    "hyper-sparse over classic sparse",
                )

    if not quick:
        sized = [p for p in points if "jobs" in p]
        largest_jobs = max((p["jobs"] for p in sized), default=0)
        if largest_jobs < SCALE_SIX_FIGURE_JOBS:
            errors += fail_floor(
                path, "largest jobs", largest_jobs, SCALE_SIX_FIGURE_JOBS,
                "the full grid never reached the six-figure point",
            )

    if errors:
        return errors
    mode = "quick (identity/validity/objective)" if quick else "full"
    print(
        f"OK: {len(points)} scale points and {len(lp_points)} LP points "
        f"pass the {mode} scale gate in {path}"
    )
    return 0


def check_file(path, quick):
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"cannot read {path}: {exc}")
    quick = quick or bool(data.get("quick", False))
    bench = data.get("bench", "bench_planner_scale")
    if bench == "bench_sweep_scale":
        return check_sweep(data, quick, path)
    if bench == "bench_shard_scale":
        return check_shard(data, quick, path)
    if bench == "bench_fault":
        return check_fault(data, quick, path)
    if bench == "bench_serve":
        return check_serve(data, quick, path)
    if bench == "bench_scale_100k":
        return check_scale(data, quick, path)
    return check_planner(data, quick, path)


def main(argv):
    paths = []
    quick = False
    for arg in argv[1:]:
        if arg == "--quick":
            quick = True
        elif arg.startswith("-"):
            print(__doc__)
            return 2
        else:
            paths.append(arg)
    if not paths:
        paths = ["BENCH_planner.json"]

    errors = sum(check_file(path, quick) for path in paths)
    if errors:
        print(f"{errors} regression(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
