#!/usr/bin/env python3
"""Gate planner-performance results from bench_planner_scale.

Reads the BENCH_planner.json the bench emits and fails (exit 1) when the
optimized planning engine regresses:

  * any engine configuration produced a schedule that differs from its
    reference (naive vs cold-indexed, warm-serial vs pooled) — determinism
    is a correctness contract, never waived;
  * the warm-started LP needed more simplex pivots than the cold baseline
    on any LpCuts grid point;
  * the measured speedups fall below the thresholds. Thresholds are ratios
    (optimized vs the in-process naive baseline measured in the same run),
    so they hold across machines; absolute milliseconds are never compared.

Quick mode (--quick, or a JSON produced by `bench_planner_scale --quick`)
runs tiny grids where fixed costs dominate, so only determinism and pivot
counts are enforced there.

Usage: scripts/check_bench_regression.py [BENCH_planner.json] [--quick]
"""

import json
import sys

# Full-run thresholds: the largest fluid grid is the headline number the
# optimization work is gated on; smaller grids only need to not regress
# past the naive engine by more than measurement noise.
LARGE_FLUID_MIN_SPEEDUP = 3.0
LP_CUTS_MIN_SPEEDUP = 2.0
ANY_POINT_MIN_SPEEDUP = 0.7  # noise floor for tiny grids


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def main(argv):
    path = "BENCH_planner.json"
    quick = False
    for arg in argv[1:]:
        if arg == "--quick":
            quick = True
        elif arg.startswith("-"):
            print(__doc__)
            return 2
        else:
            path = arg

    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"cannot read {path}: {exc}")
    points = data.get("points", [])
    if not points:
        return fail(f"{path} contains no grid points")
    quick = quick or bool(data.get("quick", False))

    errors = 0
    for p in points:
        tag = f"{p['mode']} {p['jobs']}x{p['gpus']}"
        if not p.get("naive_matches_cold_indexed", False):
            errors += fail(f"{tag}: cold-indexed schedule differs from naive")
        if not p.get("warm_matches_pooled", False):
            errors += fail(f"{tag}: pooled schedule differs from warm-serial")
        if p["mode"] == "lp_cuts" and p["pivots_warm"] > p["pivots_naive"]:
            errors += fail(
                f"{tag}: warm start used more simplex pivots than cold "
                f"({p['pivots_warm']} > {p['pivots_naive']})"
            )

    if not quick:
        for p in points:
            tag = f"{p['mode']} {p['jobs']}x{p['gpus']}"
            if p["speedup_serial"] < ANY_POINT_MIN_SPEEDUP:
                errors += fail(
                    f"{tag}: optimized engine slower than naive "
                    f"(speedup {p['speedup_serial']:.2f})"
                )
        fluid = [p for p in points if p["mode"] == "fluid"]
        lp = [p for p in points if p["mode"] == "lp_cuts"]
        if fluid:
            largest = max(fluid, key=lambda p: p["jobs"] * p["gpus"])
            if largest["speedup_serial"] < LARGE_FLUID_MIN_SPEEDUP:
                errors += fail(
                    f"large fluid grid {largest['jobs']}x{largest['gpus']}: "
                    f"speedup {largest['speedup_serial']:.2f} < "
                    f"{LARGE_FLUID_MIN_SPEEDUP:.1f}"
                )
        if lp:
            best = max(p["speedup_serial"] for p in lp)
            if best < LP_CUTS_MIN_SPEEDUP:
                errors += fail(
                    f"no LpCuts grid reached {LP_CUTS_MIN_SPEEDUP:.1f}x "
                    f"(best {best:.2f})"
                )

    if errors:
        print(f"{errors} regression(s) in {path}")
        return 1
    mode = "quick (determinism/pivots only)" if quick else "full"
    print(f"OK: {len(points)} grid points pass the {mode} gate in {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
