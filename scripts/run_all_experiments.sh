#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablations and extensions.
#
# Usage: scripts/run_all_experiments.sh [build_dir] [results_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "building into $BUILD_DIR ..."
  cmake -B "$BUILD_DIR" -G Ninja
  cmake --build "$BUILD_DIR"
fi

mkdir -p "$RESULTS_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure \
  | tee "$RESULTS_DIR/tests.txt" | tail -3

echo "== experiments =="
for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  # The planner scale sweep gets its own invocation below (it needs --json
  # and is followed by the regression gate).
  [ "$name" = "bench_planner_scale" ] && continue
  echo "-- $name"
  "$bench" | tee "$RESULTS_DIR/$name.txt"
done

echo "== planner scale sweep =="
"$BUILD_DIR/bench/bench_planner_scale" --json "$RESULTS_DIR/BENCH_planner.json" \
  | tee "$RESULTS_DIR/bench_planner_scale.txt"
python3 "$(dirname "$0")/check_bench_regression.py" "$RESULTS_DIR/BENCH_planner.json"

echo
echo "done — outputs in $RESULTS_DIR/"
