#include "shard/hierarchical_planner.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "exp/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/feasibility.hpp"

namespace hare::shard {

namespace {

/// One distinct GPU type inside a shard: a representative global GPU (for
/// memory-fit and time lookups) plus how many GPUs of the type the shard
/// holds. Assignment estimates are type-granular — exact for memory fit
/// (footprint depends on the type alone) and a faithful estimate for times.
struct ShardTypeSummary {
  GpuId representative;
  cluster::GpuType type{};
  std::size_t count = 0;
};

std::vector<ShardTypeSummary> summarize_types(const cluster::Cluster& cluster,
                                              const ShardSpec& shard) {
  std::vector<ShardTypeSummary> types;
  for (const GpuId g : shard.gpus) {
    const cluster::GpuType type = cluster.gpu(g).type;
    ShardTypeSummary* entry = nullptr;
    for (auto& t : types) {
      if (t.type == type) {
        entry = &t;
        break;
      }
    }
    if (entry == nullptr) {
      types.push_back(ShardTypeSummary{g, type, 0});
      entry = &types.back();
    }
    ++entry->count;
  }
  return types;
}

/// Everything one shard's plan hands back to the merge, already translated
/// to global task ids (the local JobSet dies with the planning call).
/// Cache-line aligned: outcome slots are written concurrently by different
/// pool workers during the fan-out, and sharing a line across slots would
/// bounce it between cores on every append.
struct alignas(64) ShardOutcome {
  /// [local gpu] → ordered global TaskIds.
  std::vector<std::vector<TaskId>> sequences;
  /// (global task id value, predicted start) for every planned task.
  std::vector<std::pair<std::size_t, Time>> starts;
  double objective = 0.0;
  ShardStats stats;
};

/// Sentinel for "global row not yet gathered into the local table".
constexpr std::uint32_t kNoLocalRow = 0xFFFFFFFFu;

}  // namespace

HierarchicalPlanner::WorkerScratch& HierarchicalPlanner::scratch_slot() {
  // Slot 0 belongs to the non-worker caller (serial plans, the order-hook
  // test path); pool workers use 1 + their index within the pool. The
  // vector is pre-sized before every fan-out, so no slot is ever created
  // concurrently.
  const std::size_t slot =
      static_cast<std::size_t>(common::ThreadPool::current_worker_index() + 1);
  HARE_CHECK_MSG(slot < worker_scratch_.size(),
                 "worker scratch not pre-sized for slot " << slot);
  return worker_scratch_[slot];
}

/// Build `local_times` (a shard-local sub-table over `spec.gpus`) from the
/// global `times` for the jobs in `shard_jobs`, deduplicating through the
/// global table's row interning: each distinct *global* row is gathered
/// (global GPU order → local GPU order) and interned exactly once, then
/// every job binds its local row by id. With J jobs sharing U unique rows
/// this is O(U·G_local + J) instead of the old per-cell O(J·G_local) set()
/// loop — at 100k jobs over a handful of profiles the rebuild cost drops by
/// orders of magnitude, and the local table shares rows exactly like the
/// global one (memory stays flat). Values are copied verbatim, so the
/// resulting table reads bit-identically to the legacy per-cell fill.
namespace {
void gather_local_times(const profiler::TimeTable& times,
                        const std::vector<JobId>& shard_jobs,
                        const std::vector<GpuId>& shard_gpus,
                        std::vector<Time>& tc_gather,
                        std::vector<Time>& ts_gather,
                        std::vector<std::uint32_t>& row_map,
                        profiler::TimeTable& local_times) {
  const std::size_t local_gpus = shard_gpus.size();
  local_times.reset(shard_jobs.size(), local_gpus);
  row_map.assign(times.row_count(), kNoLocalRow);
  tc_gather.resize(local_gpus);
  ts_gather.resize(local_gpus);
  for (std::size_t lj = 0; lj < shard_jobs.size(); ++lj) {
    const JobId global = shard_jobs[lj];
    std::uint32_t& local_row = row_map[times.row_of(global)];
    if (local_row == kNoLocalRow) {
      const Time* gtc = times.tc_row(global);
      const Time* gts = times.ts_row(global);
      for (std::size_t lg = 0; lg < local_gpus; ++lg) {
        const std::size_t gg =
            static_cast<std::size_t>(shard_gpus[lg].value());
        tc_gather[lg] = gtc[gg];
        ts_gather[lg] = gts[gg];
      }
      local_row = local_times.intern_row(tc_gather.data(), ts_gather.data());
    }
    local_times.bind_row(JobId(static_cast<int>(lj)), local_row);
  }
}
}  // namespace

sim::Schedule HierarchicalPlanner::schedule(
    const sched::SchedulerInput& input) {
  return plan(input, nullptr);
}

sim::Schedule HierarchicalPlanner::schedule_with_order(
    const sched::SchedulerInput& input,
    const std::vector<std::size_t>& plan_order) {
  return plan(input, &plan_order);
}

double HierarchicalPlanner::schedule_online(const sched::SchedulerInput& input,
                                            const std::vector<char>& job_mask,
                                            std::vector<Time>& phi,
                                            sim::Schedule& schedule) {
  HARE_SPAN("shard", "shard.replan_online");
  static obs::Counter& replans_counter = obs::counter("shard.online_replans");
  static obs::Counter& planned_counter =
      obs::counter("shard.online_shards_planned");

  const cluster::Cluster& cluster = input.cluster;
  const workload::JobSet& jobs = input.jobs;
  const profiler::TimeTable& times = input.times;
  const std::size_t gpu_count = cluster.gpu_count();
  HARE_CHECK_MSG(gpu_count > 0, "cluster has no GPUs");
  HARE_CHECK_MSG(job_mask.size() == jobs.job_count(), "job mask size mismatch");
  HARE_CHECK_MSG(phi.size() == gpu_count, "phi size mismatch");
  HARE_CHECK_MSG(schedule.sequences.size() == gpu_count,
                 "schedule does not span the cluster");
  HARE_CHECK_MSG(schedule.predicted_start.size() >= jobs.task_count(),
                 "predicted_start does not span the instance");
  times.precompute();

  const ShardPartition partition = partition_cluster(cluster, config_.shards);
  const std::size_t shard_count = partition.size();

  // One engine for the whole call (nested fan-out guard: already on a pool
  // worker → plan inline rather than oversubscribing with a second pool),
  // and scratch slots pre-sized for every thread that may plan a shard.
  const bool nested = common::ThreadPool::current() != nullptr;
  exp::Engine engine(
      exp::Engine::Options{config_.workers, config_.serial || nested});
  const std::size_t scratch_slots =
      1 + (nested ? common::ThreadPool::current()->size() : engine.workers());
  if (worker_scratch_.size() < scratch_slots) {
    worker_scratch_.resize(scratch_slots);
  }

  // ---- Level 1: assign the batch's jobs, loads seeded from φ -------------
  std::vector<std::vector<JobId>> shard_jobs(shard_count);
  {
    HARE_SPAN("shard", "shard.assign");
    std::vector<std::vector<ShardTypeSummary>> shard_types(shard_count);
    std::vector<double> load(shard_count, 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shard_types[s] = summarize_types(cluster, partition.shards[s]);
      // The horizon a new arrival queues behind: the shard's worst standing
      // commitment.
      for (const GpuId g : partition.shards[s].gpus) {
        load[s] = std::max(load[s], phi[static_cast<std::size_t>(g.value())]);
      }
    }

    std::vector<JobId> wspt;
    std::vector<double> key(jobs.job_count(), 0.0);
    for (const auto& job : jobs.jobs()) {
      if (!job_mask[static_cast<std::size_t>(job.id.value())]) continue;
      key[static_cast<std::size_t>(job.id.value())] =
          job.spec.arrival + static_cast<double>(job.rounds()) *
                                 static_cast<double>(job.tasks_per_round()) *
                                 times.min_total(job.id) / job.spec.weight;
      wspt.push_back(job.id);
    }
    std::sort(wspt.begin(), wspt.end(), [&](JobId a, JobId b) {
      const double ka = key[static_cast<std::size_t>(a.value())];
      const double kb = key[static_cast<std::size_t>(b.value())];
      if (ka != kb) return ka < kb;
      return a < b;
    });

    for (const JobId job_id : wspt) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        for (const ShardTypeSummary& t : shard_types[s]) {
          if (!workload::task_fits(job, cluster.gpu(t.representative))) {
            continue;
          }
          fitting += t.count;
          best_round =
              std::min(best_round, times.total(job_id, t.representative));
        }
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, load[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      HARE_CHECK_MSG(best < shard_count,
                     "job " << job_id << " fits no shard (sync scale "
                            << job.tasks_per_round()
                            << " too large — use fewer shards)");
      load[best] = best_est;
      shard_jobs[best].push_back(job_id);
    }
    for (auto& list : shard_jobs) std::sort(list.begin(), list.end());
  }

  // ---- Level 2: plan only the shards that received batch jobs ------------
  struct alignas(64) OnlineOutcome {
    bool planned = false;
    std::vector<std::vector<TaskId>> sequences;  ///< per local gpu, global ids
    std::vector<std::pair<std::size_t, Time>> starts;
    std::vector<Time> phi;  ///< per local gpu, advanced horizons
    double objective = 0.0;
  };
  auto plan_shard = [&](std::size_t s) -> OnlineOutcome {
    OnlineOutcome outcome;
    if (shard_jobs[s].empty()) return outcome;
    HARE_SPAN_ARG("shard", "shard.replan_one", "shard",
                  static_cast<double>(s));
    const ShardSpec& spec = partition.shards[s];
    const std::size_t local_gpus = spec.gpus.size();

    // Batch-local sub-jobset / sub-table in the *calling thread's* scratch
    // slot: the serve loop replans shards every admission batch, so each
    // worker reuses its own storage across batches instead of malloc'ing
    // fresh per replan (and no two workers share a slot).
    WorkerScratch& scratch = scratch_slot();
    workload::JobSet& local_jobs = scratch.jobs;
    local_jobs.clear();
    for (const JobId global : shard_jobs[s]) {
      local_jobs.add_job(jobs.job(global).spec);
    }
    profiler::TimeTable& local_times = scratch.times;
    gather_local_times(times, shard_jobs[s], spec.gpus, scratch.tc_gather,
                       scratch.ts_gather, scratch.row_map, local_times);

    core::HareConfig hare = config_.hare;
    hare.relaxation.mode = core::RelaxMode::Fluid;
    hare.sync = core::SyncScheme::Relaxed;
    core::HareScheduler planner(hare);
    core::HareScheduler::IncrementalState state;
    state.phi.resize(local_gpus);
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      state.phi[lg] =
          phi[static_cast<std::size_t>(spec.gpus[lg].value())];
    }
    const std::vector<char> all(local_jobs.job_count(), 1);
    sim::Schedule local;
    const sched::SchedulerInput local_input{spec.sub, local_jobs, local_times};
    outcome.objective = planner.schedule_jobs(local_input, all, state, local);
    outcome.planned = true;
    outcome.phi = std::move(state.phi);

    auto global_task = [&](TaskId local_task) {
      const workload::Task& t = local_jobs.task(local_task);
      const workload::Job& g =
          jobs.job(shard_jobs[s][static_cast<std::size_t>(t.job.value())]);
      return g.task_at(static_cast<std::uint32_t>(t.round), t.slot);
    };
    outcome.sequences.resize(local_gpus);
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      outcome.sequences[lg].reserve(local.sequences[lg].size());
      for (const TaskId lt : local.sequences[lg]) {
        outcome.sequences[lg].push_back(global_task(lt));
      }
    }
    outcome.starts.reserve(local_jobs.task_count());
    for (const auto& task : local_jobs.tasks()) {
      outcome.starts.emplace_back(
          static_cast<std::size_t>(global_task(task.id).value()),
          local.predicted_start[static_cast<std::size_t>(task.id.value())]);
    }
    return outcome;
  };

  std::vector<OnlineOutcome> outcomes(shard_count);
  {
    HARE_SPAN("shard", "shard.plan_shards");
    outcomes = engine.map(shard_count, plan_shard);
  }

  // ---- Merge (canonical ascending-shard order, append-only) --------------
  double total = 0.0;
  std::size_t shards_planned = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    OnlineOutcome& outcome = outcomes[s];
    if (!outcome.planned) continue;
    ++shards_planned;
    const ShardSpec& spec = partition.shards[s];
    for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
      const std::size_t g = static_cast<std::size_t>(spec.gpus[lg].value());
      auto& target = schedule.sequences[g];
      target.insert(target.end(), outcome.sequences[lg].begin(),
                    outcome.sequences[lg].end());
      phi[g] = outcome.phi[lg];
    }
    for (const auto& [task_value, start] : outcome.starts) {
      schedule.predicted_start[task_value] = start;
    }
    total += outcome.objective;
  }
  schedule.predicted_objective += total;
  replans_counter.add();
  planned_counter.add(static_cast<double>(shards_planned));
  return total;
}

sim::Schedule HierarchicalPlanner::plan(
    const sched::SchedulerInput& input,
    const std::vector<std::size_t>* order) {
  HARE_SPAN("shard", "shard.plan");
  static obs::Gauge& count_gauge = obs::gauge("shard.count");
  static obs::Gauge& imbalance_gauge = obs::gauge("shard.imbalance");
  static obs::Gauge& savings_gauge = obs::gauge("shard.sep_resort_savings");
  static obs::Counter& plans_counter = obs::counter("shard.plans");
  static obs::Counter& migrations_counter = obs::counter("shard.migrations");

  const cluster::Cluster& cluster = input.cluster;
  const workload::JobSet& jobs = input.jobs;
  const profiler::TimeTable& times = input.times;
  HARE_CHECK_MSG(cluster.gpu_count() > 0, "cluster has no GPUs");
  HARE_CHECK_MSG(times.job_count() == jobs.job_count() &&
                     times.gpu_count() == cluster.gpu_count(),
                 "time table does not match instance");
  times.precompute();

  ShardPartition partition;
  {
    HARE_SPAN("shard", "shard.partition");
    partition = partition_cluster(cluster, config_.shards);
  }
  const std::size_t shard_count = partition.size();

  last_plan_ = HierarchicalPlanInfo{};
  last_plan_.shard_count = shard_count;
  last_plan_.shards.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    last_plan_.shards[s].gpus = partition.shards[s].gpus.size();
  }

  // One engine for the whole plan — the shard fan-out *and* the migration
  // re-plan share it, so the pool spins up once per call. Nested fan-out
  // guard: already on a pool worker (e.g. inside an exp sweep cell) → plan
  // inline rather than oversubscribing with a second pool. Worker scratch
  // is pre-sized here for every thread that may plan a shard (slot 0 = the
  // non-worker caller, used by the serial and order-hook paths).
  const bool nested = common::ThreadPool::current() != nullptr;
  exp::Engine engine(
      exp::Engine::Options{config_.workers, config_.serial || nested});
  const std::size_t scratch_slots =
      1 + (nested ? common::ThreadPool::current()->size() : engine.workers());
  if (worker_scratch_.size() < scratch_slots) {
    worker_scratch_.resize(scratch_slots);
  }

  // Type summaries outlive level 1: the migration pass re-evaluates fluid
  // estimates against them after the per-shard plans land.
  std::vector<std::vector<ShardTypeSummary>> shard_types(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_types[s] = summarize_types(cluster, partition.shards[s]);
  }
  // Fluid-fit pieces of (job, shard): GPUs that can host one task, and the
  // cheapest per-round task time among the fitting types. Shared verbatim
  // between the level-1 assignment and the migration pass so both judge
  // shards with the same arithmetic.
  auto shard_fit = [&](const workload::Job& job, std::size_t s,
                       std::size_t& fitting, Time& best_round) {
    fitting = 0;
    best_round = kTimeInfinity;
    for (const ShardTypeSummary& t : shard_types[s]) {
      if (!workload::task_fits(job, cluster.gpu(t.representative))) continue;
      fitting += t.count;
      best_round = std::min(best_round, times.total(job.id, t.representative));
    }
  };

  // ---- Level 1: fluid inter-shard assignment -----------------------------
  std::vector<std::vector<JobId>> shard_jobs(shard_count);
  {
    HARE_SPAN("shard", "shard.assign");

    // Same arrival-adjusted WSPT order as the fluid relaxation pass: the
    // level-1 assignment sees jobs in the sequence level 2 will favour.
    std::vector<JobId> wspt;
    wspt.reserve(jobs.job_count());
    std::vector<double> key(jobs.job_count(), 0.0);
    for (const auto& job : jobs.jobs()) {
      key[static_cast<std::size_t>(job.id.value())] =
          job.spec.arrival + static_cast<double>(job.rounds()) *
                                 static_cast<double>(job.tasks_per_round()) *
                                 times.min_total(job.id) / job.spec.weight;
      wspt.push_back(job.id);
    }
    std::sort(wspt.begin(), wspt.end(), [&](JobId a, JobId b) {
      const double ka = key[static_cast<std::size_t>(a.value())];
      const double kb = key[static_cast<std::size_t>(b.value())];
      if (ka != kb) return ka < kb;
      return a < b;
    });

    std::vector<double> load(shard_count, 0.0);
    for (const JobId job_id : wspt) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        // Feasibility: enough memory-fitting GPUs for one full round, and
        // the cheapest fitting type estimates the round time.
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        shard_fit(job, s, fitting, best_round);
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, load[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      HARE_CHECK_MSG(best < shard_count,
                     "job " << job_id << " fits no shard (sync scale "
                            << job.tasks_per_round()
                            << " too large — use fewer shards)");
      load[best] = best_est;
      shard_jobs[best].push_back(job_id);
    }

    double max_load = 0.0;
    double load_sum = 0.0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      // Canonical ascending-id order for the shard's sub-jobset.
      std::sort(shard_jobs[s].begin(), shard_jobs[s].end());
      last_plan_.shards[s].jobs = shard_jobs[s].size();
      last_plan_.shards[s].est_load = load[s];
      max_load = std::max(max_load, load[s]);
      load_sum += load[s];
    }
    const double mean_load = load_sum / static_cast<double>(shard_count);
    last_plan_.imbalance = mean_load > 0.0 ? max_load / mean_load : 1.0;
  }

  // ---- Level 2: plan every shard independently ---------------------------
  auto plan_shard = [&](std::size_t s) -> ShardOutcome {
    HARE_SPAN_ARG("shard", "shard.plan_one", "shard", static_cast<double>(s));
    const ShardSpec& spec = partition.shards[s];
    ShardOutcome outcome;
    outcome.stats.jobs = shard_jobs[s].size();
    outcome.stats.gpus = spec.gpus.size();
    outcome.sequences.resize(spec.gpus.size());
    if (shard_jobs[s].empty()) return outcome;

    // Re-index the shard's jobs and times: local JobId = position in the
    // ascending global-id list, local tasks map positionally (task ids are
    // round-major on both sides). The sub-jobset and sub-table live in the
    // planning thread's scratch slot, so their storage is reused across
    // every shard that thread plans, across plan calls, and across
    // migration re-plans.
    WorkerScratch& scratch = scratch_slot();
    workload::JobSet& local_jobs = scratch.jobs;
    local_jobs.clear();
    for (const JobId global : shard_jobs[s]) {
      local_jobs.add_job(jobs.job(global).spec);
    }
    const std::size_t local_gpus = spec.gpus.size();
    profiler::TimeTable& local_times = scratch.times;
    gather_local_times(times, shard_jobs[s], spec.gpus, scratch.tc_gather,
                       scratch.ts_gather, scratch.row_map, local_times);

    core::HareConfig hare = config_.hare;
    if (config_.lp_max_jobs > 0) {
      hare.relaxation.mode = local_jobs.job_count() <= config_.lp_max_jobs
                                 ? core::RelaxMode::LpCuts
                                 : core::RelaxMode::Fluid;
    }
    core::HareScheduler planner(hare);
    const sched::SchedulerInput local_input{spec.sub, local_jobs, local_times};
    const sim::Schedule local = planner.schedule(local_input);

    outcome.objective = local.predicted_objective;
    outcome.stats.objective = local.predicted_objective;
    outcome.stats.cut_count = planner.last_relaxation().cut_count;
    outcome.stats.sep_tasks_total = planner.last_relaxation().sep_tasks_total;
    outcome.stats.sep_tasks_resorted =
        planner.last_relaxation().sep_tasks_resorted;

    // Translate to global ids while the local JobSet is still alive.
    auto global_task = [&](TaskId local_task) {
      const workload::Task& t = local_jobs.task(local_task);
      const workload::Job& g =
          jobs.job(shard_jobs[s][static_cast<std::size_t>(t.job.value())]);
      return g.task_at(static_cast<std::uint32_t>(t.round), t.slot);
    };
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      outcome.sequences[lg].reserve(local.sequences[lg].size());
      for (const TaskId lt : local.sequences[lg]) {
        outcome.sequences[lg].push_back(global_task(lt));
      }
    }
    outcome.starts.reserve(local_jobs.task_count());
    for (const auto& task : local_jobs.tasks()) {
      outcome.starts.emplace_back(
          static_cast<std::size_t>(global_task(task.id).value()),
          local.predicted_start[static_cast<std::size_t>(task.id.value())]);
    }
    return outcome;
  };

  std::vector<ShardOutcome> outcomes(shard_count);
  {
    HARE_SPAN("shard", "shard.plan_shards");
    if (order != nullptr) {
      // Test hook: serial planning in an arbitrary completion order; slots
      // are indexed by shard, so the merge below cannot see the order.
      HARE_CHECK_MSG(order->size() == shard_count,
                     "plan order must permute the shards");
      for (const std::size_t s : *order) outcomes[s] = plan_shard(s);
    } else {
      outcomes = engine.map(shard_count, plan_shard);
    }
  }

  // ---- Bounded cross-shard migration -------------------------------------
  // Jobs that straddled a shard boundary at assignment time (the donor
  // looked marginally better by the fluid estimate) can end up queued
  // behind the donor's real plan. Move a bounded number of them from the
  // max-horizon donor into receivers with fluid headroom, re-plan only the
  // affected shards, and keep the result only when the summed planned
  // objective strictly improves. All decisions derive from the barriered
  // outcomes in ascending-shard order, so serial, pooled, and
  // order-shuffled runs migrate identically.
  if (config_.migration_max_moves > 0 && shard_count > 1 &&
      jobs.job_count() > 0) {
    HARE_SPAN("shard", "shard.migrate");
    std::vector<Time> start_of(jobs.task_count(), 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      for (const auto& [task_value, start] : outcomes[s].starts) {
        start_of[task_value] = start;
      }
    }
    // Realized horizon per shard and realized completion per job: the
    // latest compute finish of any planned task (sync overlaps the
    // successor, matching the φ commitment rule).
    std::vector<double> horizon(shard_count, 0.0);
    std::vector<double> completion(jobs.job_count(), 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const ShardSpec& spec = partition.shards[s];
      for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
        const GpuId gg = spec.gpus[lg];
        for (const TaskId t : outcomes[s].sequences[lg]) {
          const JobId owner = jobs.task(t).job;
          const double finish =
              start_of[static_cast<std::size_t>(t.value())] +
              times.tc(owner, gg);
          horizon[s] = std::max(horizon[s], finish);
          completion[static_cast<std::size_t>(owner.value())] = std::max(
              completion[static_cast<std::size_t>(owner.value())], finish);
        }
      }
    }
    std::size_t donor = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (horizon[s] > horizon[donor]) donor = s;  // ties stay low
    }

    // Candidate ranking: queueing delay — how far the realized plan pushed
    // the job past its own fluid best case on the donor (arrival + work
    // over fitting GPUs). Jobs with no delay are not queued and never
    // candidates; the most-delayed jobs are exactly the straddlers the
    // level-1 mirage stranded, so they go first.
    struct Candidate {
      JobId job;
      double delay = 0.0;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(shard_jobs[donor].size());
    for (const JobId job_id : shard_jobs[donor]) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t fitting = 0;
      Time best_round = kTimeInfinity;
      shard_fit(job, donor, fitting, best_round);
      const double work = static_cast<double>(job.rounds()) *
                          static_cast<double>(job.tasks_per_round()) *
                          best_round;
      const double fluid_best =
          job.spec.arrival + work / static_cast<double>(fitting);
      const double delay =
          completion[static_cast<std::size_t>(job_id.value())] - fluid_best;
      if (delay <= 0.0) continue;
      candidates.push_back(Candidate{job_id, delay});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.delay != b.delay) return a.delay > b.delay;
                return a.job < b.job;
              });

    // Receiver test: the job must complete — by the fluid estimate,
    // appended on the receiver's assignment-time fluid load — strictly
    // before its *own realized completion* on the donor. Seeding `head`
    // from the level-1 fluid loads (not the realized horizons) is what
    // lets migration engage on arrival-dominated streamed instances, where
    // every realized horizon sits at the last arrival and the old
    // horizon-based test never fired. `head` advances with each tentative
    // move so one receiver cannot absorb unbounded work.
    struct Move {
      JobId job;
      std::size_t to = 0;
    };
    std::vector<Move> moves;
    std::vector<double> head(shard_count, 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      head[s] = last_plan_.shards[s].est_load;
    }
    for (const Candidate& c : candidates) {
      if (moves.size() >= config_.migration_max_moves) break;
      const workload::Job& job = jobs.job(c.job);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (s == donor) continue;
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        shard_fit(job, s, fitting, best_round);
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, head[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      if (best == shard_count ||
          best_est >= completion[static_cast<std::size_t>(c.job.value())]) {
        continue;
      }
      head[best] = best_est;
      moves.push_back(Move{c.job, best});
    }
    common::log_debug("shard.migrate: donor ", donor, " horizon ",
                      horizon[donor], ", ", candidates.size(),
                      " delayed candidates, ", moves.size(),
                      " moves proposed");

    // An all-or-nothing bundle can overshoot: the fluid receiver estimate
    // underprices realized queueing, so moving every accepted candidate at
    // once may cost more than it frees and the objective gate rejects the
    // lot. Halving backoff keeps the highest-delay prefix — the jobs with
    // the most to gain — and retries until a bundle pays for itself (or
    // the single best move doesn't, and migration stays a no-op). The
    // extra re-plans are bounded by log2(migration_max_moves) and touch
    // only the affected shards; every attempt is deterministic, so the
    // fan-out/order bit-identity contract is untouched.
    std::size_t bundle = moves.size();
    while (bundle > 0) {
      std::vector<std::size_t> replan{donor};
      for (std::size_t m = 0; m < bundle; ++m) {
        if (std::find(replan.begin(), replan.end(), moves[m].to) ==
            replan.end()) {
          replan.push_back(moves[m].to);
        }
      }
      std::sort(replan.begin(), replan.end());

      std::vector<std::vector<JobId>> saved_jobs(replan.size());
      std::vector<ShardOutcome> saved_outcomes(replan.size());
      for (std::size_t i = 0; i < replan.size(); ++i) {
        saved_jobs[i] = shard_jobs[replan[i]];
        saved_outcomes[i] = std::move(outcomes[replan[i]]);
      }
      for (std::size_t m = 0; m < bundle; ++m) {
        auto& from = shard_jobs[donor];
        from.erase(std::find(from.begin(), from.end(), moves[m].job));
        shard_jobs[moves[m].to].push_back(moves[m].job);
      }
      for (const std::size_t s : replan) {
        std::sort(shard_jobs[s].begin(), shard_jobs[s].end());
      }

      {
        HARE_SPAN("shard", "shard.replan_pairs");
        if (order != nullptr) {
          for (const std::size_t s : replan) outcomes[s] = plan_shard(s);
        } else {
          std::vector<ShardOutcome> fresh = engine.map(
              replan.size(),
              [&](std::size_t i) { return plan_shard(replan[i]); });
          for (std::size_t i = 0; i < replan.size(); ++i) {
            outcomes[replan[i]] = std::move(fresh[i]);
          }
        }
      }

      double before = 0.0;
      double after = 0.0;
      for (const ShardOutcome& o : saved_outcomes) before += o.objective;
      for (const std::size_t s : replan) after += outcomes[s].objective;
      common::log_debug("shard.migrate: bundle of ", bundle, " across ",
                        replan.size(), " shards, objective ", before,
                        " -> ", after,
                        after < before ? " (accepted)" : " (rejected)");
      if (after < before) {
        last_plan_.migrated_jobs = bundle;
        for (const std::size_t s : replan) {
          last_plan_.shards[s].jobs = shard_jobs[s].size();
        }
        migrations_counter.add(static_cast<double>(bundle));
        break;
      }
      // The re-plan did not pay for this bundle: restore the original
      // assignment and outcomes untouched, then try the smaller prefix.
      for (std::size_t i = 0; i < replan.size(); ++i) {
        shard_jobs[replan[i]] = std::move(saved_jobs[i]);
        outcomes[replan[i]] = std::move(saved_outcomes[i]);
      }
      bundle /= 2;
    }
  }

  // ---- Merge in canonical ascending-shard order --------------------------
  sim::Schedule merged;
  {
    HARE_SPAN("shard", "shard.merge");
    merged.sequences.resize(cluster.gpu_count());
    merged.predicted_start.assign(jobs.task_count(), 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      ShardOutcome& outcome = outcomes[s];
      const ShardSpec& spec = partition.shards[s];
      for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
        // Each global GPU lives in exactly one shard: plain scatter.
        merged.sequences[static_cast<std::size_t>(spec.gpus[lg].value())] =
            std::move(outcome.sequences[lg]);
      }
      for (const auto& [task_value, start] : outcome.starts) {
        merged.predicted_start[task_value] = start;
      }
      merged.predicted_objective += outcome.objective;
      last_plan_.shards[s].objective = outcome.stats.objective;
      last_plan_.shards[s].cut_count = outcome.stats.cut_count;
      last_plan_.shards[s].sep_tasks_total = outcome.stats.sep_tasks_total;
      last_plan_.shards[s].sep_tasks_resorted =
          outcome.stats.sep_tasks_resorted;
      last_plan_.sep_tasks_total += outcome.stats.sep_tasks_total;
      last_plan_.sep_tasks_resorted += outcome.stats.sep_tasks_resorted;
    }
  }

  plans_counter.add();
  count_gauge.set(static_cast<double>(shard_count));
  imbalance_gauge.set(last_plan_.imbalance);
  if (last_plan_.sep_tasks_total > 0) {
    savings_gauge.set(1.0 -
                      static_cast<double>(last_plan_.sep_tasks_resorted) /
                          static_cast<double>(last_plan_.sep_tasks_total));
  }
  common::log_debug("shard: planned ", jobs.job_count(), " jobs over ",
                    shard_count, " shards, imbalance ", last_plan_.imbalance);
  return merged;
}

}  // namespace hare::shard
