#include "shard/hierarchical_planner.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "exp/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/feasibility.hpp"

namespace hare::shard {

namespace {

/// One distinct GPU type inside a shard: a representative global GPU (for
/// memory-fit and time lookups) plus how many GPUs of the type the shard
/// holds. Assignment estimates are type-granular — exact for memory fit
/// (footprint depends on the type alone) and a faithful estimate for times.
struct ShardTypeSummary {
  GpuId representative;
  cluster::GpuType type{};
  std::size_t count = 0;
};

std::vector<ShardTypeSummary> summarize_types(const cluster::Cluster& cluster,
                                              const ShardSpec& shard) {
  std::vector<ShardTypeSummary> types;
  for (const GpuId g : shard.gpus) {
    const cluster::GpuType type = cluster.gpu(g).type;
    ShardTypeSummary* entry = nullptr;
    for (auto& t : types) {
      if (t.type == type) {
        entry = &t;
        break;
      }
    }
    if (entry == nullptr) {
      types.push_back(ShardTypeSummary{g, type, 0});
      entry = &types.back();
    }
    ++entry->count;
  }
  return types;
}

/// Everything one shard's plan hands back to the merge, already translated
/// to global task ids (the local JobSet dies with the planning call).
struct ShardOutcome {
  /// [local gpu] → ordered global TaskIds.
  std::vector<std::vector<TaskId>> sequences;
  /// (global task id value, predicted start) for every planned task.
  std::vector<std::pair<std::size_t, Time>> starts;
  double objective = 0.0;
  ShardStats stats;
};

}  // namespace

sim::Schedule HierarchicalPlanner::schedule(
    const sched::SchedulerInput& input) {
  return plan(input, nullptr);
}

sim::Schedule HierarchicalPlanner::schedule_with_order(
    const sched::SchedulerInput& input,
    const std::vector<std::size_t>& plan_order) {
  return plan(input, &plan_order);
}

double HierarchicalPlanner::schedule_online(const sched::SchedulerInput& input,
                                            const std::vector<char>& job_mask,
                                            std::vector<Time>& phi,
                                            sim::Schedule& schedule) {
  HARE_SPAN("shard", "shard.replan_online");
  static obs::Counter& replans_counter = obs::counter("shard.online_replans");
  static obs::Counter& planned_counter =
      obs::counter("shard.online_shards_planned");

  const cluster::Cluster& cluster = input.cluster;
  const workload::JobSet& jobs = input.jobs;
  const profiler::TimeTable& times = input.times;
  const std::size_t gpu_count = cluster.gpu_count();
  HARE_CHECK_MSG(gpu_count > 0, "cluster has no GPUs");
  HARE_CHECK_MSG(job_mask.size() == jobs.job_count(), "job mask size mismatch");
  HARE_CHECK_MSG(phi.size() == gpu_count, "phi size mismatch");
  HARE_CHECK_MSG(schedule.sequences.size() == gpu_count,
                 "schedule does not span the cluster");
  HARE_CHECK_MSG(schedule.predicted_start.size() >= jobs.task_count(),
                 "predicted_start does not span the instance");
  times.precompute();

  const ShardPartition partition = partition_cluster(cluster, config_.shards);
  const std::size_t shard_count = partition.size();
  if (shard_scratch_.size() < shard_count) shard_scratch_.resize(shard_count);

  // ---- Level 1: assign the batch's jobs, loads seeded from φ -------------
  std::vector<std::vector<JobId>> shard_jobs(shard_count);
  {
    HARE_SPAN("shard", "shard.assign");
    std::vector<std::vector<ShardTypeSummary>> shard_types(shard_count);
    std::vector<double> load(shard_count, 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shard_types[s] = summarize_types(cluster, partition.shards[s]);
      // The horizon a new arrival queues behind: the shard's worst standing
      // commitment.
      for (const GpuId g : partition.shards[s].gpus) {
        load[s] = std::max(load[s], phi[static_cast<std::size_t>(g.value())]);
      }
    }

    std::vector<JobId> wspt;
    std::vector<double> key(jobs.job_count(), 0.0);
    for (const auto& job : jobs.jobs()) {
      if (!job_mask[static_cast<std::size_t>(job.id.value())]) continue;
      key[static_cast<std::size_t>(job.id.value())] =
          job.spec.arrival + static_cast<double>(job.rounds()) *
                                 static_cast<double>(job.tasks_per_round()) *
                                 times.min_total(job.id) / job.spec.weight;
      wspt.push_back(job.id);
    }
    std::sort(wspt.begin(), wspt.end(), [&](JobId a, JobId b) {
      const double ka = key[static_cast<std::size_t>(a.value())];
      const double kb = key[static_cast<std::size_t>(b.value())];
      if (ka != kb) return ka < kb;
      return a < b;
    });

    for (const JobId job_id : wspt) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        for (const ShardTypeSummary& t : shard_types[s]) {
          if (!workload::task_fits(job, cluster.gpu(t.representative))) {
            continue;
          }
          fitting += t.count;
          best_round =
              std::min(best_round, times.total(job_id, t.representative));
        }
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, load[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      HARE_CHECK_MSG(best < shard_count,
                     "job " << job_id << " fits no shard (sync scale "
                            << job.tasks_per_round()
                            << " too large — use fewer shards)");
      load[best] = best_est;
      shard_jobs[best].push_back(job_id);
    }
    for (auto& list : shard_jobs) std::sort(list.begin(), list.end());
  }

  // ---- Level 2: plan only the shards that received batch jobs ------------
  struct OnlineOutcome {
    bool planned = false;
    std::vector<std::vector<TaskId>> sequences;  ///< per local gpu, global ids
    std::vector<std::pair<std::size_t, Time>> starts;
    std::vector<Time> phi;  ///< per local gpu, advanced horizons
    double objective = 0.0;
  };
  auto plan_shard = [&](std::size_t s) -> OnlineOutcome {
    OnlineOutcome outcome;
    if (shard_jobs[s].empty()) return outcome;
    HARE_SPAN_ARG("shard", "shard.replan_one", "shard",
                  static_cast<double>(s));
    const ShardSpec& spec = partition.shards[s];
    const std::size_t local_gpus = spec.gpus.size();

    // Batch-local sub-jobset / sub-table in the shard's scratch slot: the
    // serve loop replans shards every admission batch, so the storage is
    // reused across batches instead of being malloc'd fresh per replan.
    workload::JobSet& local_jobs = shard_scratch_[s].jobs;
    local_jobs.clear();
    for (const JobId global : shard_jobs[s]) {
      local_jobs.add_job(jobs.job(global).spec);
    }
    profiler::TimeTable& local_times = shard_scratch_[s].times;
    local_times.reset(local_jobs.job_count(), local_gpus);
    for (std::size_t lj = 0; lj < shard_jobs[s].size(); ++lj) {
      const JobId global = shard_jobs[s][lj];
      const JobId local(static_cast<int>(lj));
      for (std::size_t lg = 0; lg < local_gpus; ++lg) {
        const GpuId gg = spec.gpus[lg];
        local_times.set(local, GpuId(static_cast<int>(lg)),
                        times.tc(global, gg), times.ts(global, gg));
      }
    }

    core::HareConfig hare = config_.hare;
    hare.relaxation.mode = core::RelaxMode::Fluid;
    hare.sync = core::SyncScheme::Relaxed;
    core::HareScheduler planner(hare);
    core::HareScheduler::IncrementalState state;
    state.phi.resize(local_gpus);
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      state.phi[lg] =
          phi[static_cast<std::size_t>(spec.gpus[lg].value())];
    }
    const std::vector<char> all(local_jobs.job_count(), 1);
    sim::Schedule local;
    const sched::SchedulerInput local_input{spec.sub, local_jobs, local_times};
    outcome.objective = planner.schedule_jobs(local_input, all, state, local);
    outcome.planned = true;
    outcome.phi = std::move(state.phi);

    auto global_task = [&](TaskId local_task) {
      const workload::Task& t = local_jobs.task(local_task);
      const workload::Job& g =
          jobs.job(shard_jobs[s][static_cast<std::size_t>(t.job.value())]);
      return g.tasks[static_cast<std::size_t>(t.round) * g.tasks_per_round() +
                     t.slot];
    };
    outcome.sequences.resize(local_gpus);
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      outcome.sequences[lg].reserve(local.sequences[lg].size());
      for (const TaskId lt : local.sequences[lg]) {
        outcome.sequences[lg].push_back(global_task(lt));
      }
    }
    outcome.starts.reserve(local_jobs.task_count());
    for (const auto& task : local_jobs.tasks()) {
      outcome.starts.emplace_back(
          static_cast<std::size_t>(global_task(task.id).value()),
          local.predicted_start[static_cast<std::size_t>(task.id.value())]);
    }
    return outcome;
  };

  std::vector<OnlineOutcome> outcomes(shard_count);
  {
    HARE_SPAN("shard", "shard.plan_shards");
    const bool nested = common::ThreadPool::current() != nullptr;
    exp::Engine engine(
        exp::Engine::Options{config_.workers, config_.serial || nested});
    outcomes = engine.map(shard_count, plan_shard);
  }

  // ---- Merge (canonical ascending-shard order, append-only) --------------
  double total = 0.0;
  std::size_t shards_planned = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    OnlineOutcome& outcome = outcomes[s];
    if (!outcome.planned) continue;
    ++shards_planned;
    const ShardSpec& spec = partition.shards[s];
    for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
      const std::size_t g = static_cast<std::size_t>(spec.gpus[lg].value());
      auto& target = schedule.sequences[g];
      target.insert(target.end(), outcome.sequences[lg].begin(),
                    outcome.sequences[lg].end());
      phi[g] = outcome.phi[lg];
    }
    for (const auto& [task_value, start] : outcome.starts) {
      schedule.predicted_start[task_value] = start;
    }
    total += outcome.objective;
  }
  schedule.predicted_objective += total;
  replans_counter.add();
  planned_counter.add(static_cast<double>(shards_planned));
  return total;
}

sim::Schedule HierarchicalPlanner::plan(
    const sched::SchedulerInput& input,
    const std::vector<std::size_t>* order) {
  HARE_SPAN("shard", "shard.plan");
  static obs::Gauge& count_gauge = obs::gauge("shard.count");
  static obs::Gauge& imbalance_gauge = obs::gauge("shard.imbalance");
  static obs::Gauge& savings_gauge = obs::gauge("shard.sep_resort_savings");
  static obs::Counter& plans_counter = obs::counter("shard.plans");
  static obs::Counter& migrations_counter = obs::counter("shard.migrations");

  const cluster::Cluster& cluster = input.cluster;
  const workload::JobSet& jobs = input.jobs;
  const profiler::TimeTable& times = input.times;
  HARE_CHECK_MSG(cluster.gpu_count() > 0, "cluster has no GPUs");
  HARE_CHECK_MSG(times.job_count() == jobs.job_count() &&
                     times.gpu_count() == cluster.gpu_count(),
                 "time table does not match instance");
  times.precompute();

  ShardPartition partition;
  {
    HARE_SPAN("shard", "shard.partition");
    partition = partition_cluster(cluster, config_.shards);
  }
  const std::size_t shard_count = partition.size();

  last_plan_ = HierarchicalPlanInfo{};
  last_plan_.shard_count = shard_count;
  last_plan_.shards.resize(shard_count);
  if (shard_scratch_.size() < shard_count) shard_scratch_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    last_plan_.shards[s].gpus = partition.shards[s].gpus.size();
  }

  // Type summaries outlive level 1: the migration pass re-evaluates fluid
  // estimates against them after the per-shard plans land.
  std::vector<std::vector<ShardTypeSummary>> shard_types(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_types[s] = summarize_types(cluster, partition.shards[s]);
  }
  // Fluid-fit pieces of (job, shard): GPUs that can host one task, and the
  // cheapest per-round task time among the fitting types. Shared verbatim
  // between the level-1 assignment and the migration pass so both judge
  // shards with the same arithmetic.
  auto shard_fit = [&](const workload::Job& job, std::size_t s,
                       std::size_t& fitting, Time& best_round) {
    fitting = 0;
    best_round = kTimeInfinity;
    for (const ShardTypeSummary& t : shard_types[s]) {
      if (!workload::task_fits(job, cluster.gpu(t.representative))) continue;
      fitting += t.count;
      best_round = std::min(best_round, times.total(job.id, t.representative));
    }
  };

  // ---- Level 1: fluid inter-shard assignment -----------------------------
  std::vector<std::vector<JobId>> shard_jobs(shard_count);
  {
    HARE_SPAN("shard", "shard.assign");

    // Same arrival-adjusted WSPT order as the fluid relaxation pass: the
    // level-1 assignment sees jobs in the sequence level 2 will favour.
    std::vector<JobId> wspt;
    wspt.reserve(jobs.job_count());
    std::vector<double> key(jobs.job_count(), 0.0);
    for (const auto& job : jobs.jobs()) {
      key[static_cast<std::size_t>(job.id.value())] =
          job.spec.arrival + static_cast<double>(job.rounds()) *
                                 static_cast<double>(job.tasks_per_round()) *
                                 times.min_total(job.id) / job.spec.weight;
      wspt.push_back(job.id);
    }
    std::sort(wspt.begin(), wspt.end(), [&](JobId a, JobId b) {
      const double ka = key[static_cast<std::size_t>(a.value())];
      const double kb = key[static_cast<std::size_t>(b.value())];
      if (ka != kb) return ka < kb;
      return a < b;
    });

    std::vector<double> load(shard_count, 0.0);
    for (const JobId job_id : wspt) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        // Feasibility: enough memory-fitting GPUs for one full round, and
        // the cheapest fitting type estimates the round time.
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        shard_fit(job, s, fitting, best_round);
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, load[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      HARE_CHECK_MSG(best < shard_count,
                     "job " << job_id << " fits no shard (sync scale "
                            << job.tasks_per_round()
                            << " too large — use fewer shards)");
      load[best] = best_est;
      shard_jobs[best].push_back(job_id);
    }

    double max_load = 0.0;
    double load_sum = 0.0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      // Canonical ascending-id order for the shard's sub-jobset.
      std::sort(shard_jobs[s].begin(), shard_jobs[s].end());
      last_plan_.shards[s].jobs = shard_jobs[s].size();
      last_plan_.shards[s].est_load = load[s];
      max_load = std::max(max_load, load[s]);
      load_sum += load[s];
    }
    const double mean_load = load_sum / static_cast<double>(shard_count);
    last_plan_.imbalance = mean_load > 0.0 ? max_load / mean_load : 1.0;
  }

  // ---- Level 2: plan every shard independently ---------------------------
  auto plan_shard = [&](std::size_t s) -> ShardOutcome {
    HARE_SPAN_ARG("shard", "shard.plan_one", "shard", static_cast<double>(s));
    const ShardSpec& spec = partition.shards[s];
    ShardOutcome outcome;
    outcome.stats.jobs = shard_jobs[s].size();
    outcome.stats.gpus = spec.gpus.size();
    outcome.sequences.resize(spec.gpus.size());
    if (shard_jobs[s].empty()) return outcome;

    // Re-index the shard's jobs and times: local JobId = position in the
    // ascending global-id list, local tasks map positionally through
    // Job::tasks (both are round-major). The sub-jobset and sub-table live
    // in the shard's scratch slot, so their storage is reused across plan
    // calls and migration re-plans.
    workload::JobSet& local_jobs = shard_scratch_[s].jobs;
    local_jobs.clear();
    for (const JobId global : shard_jobs[s]) {
      local_jobs.add_job(jobs.job(global).spec);
    }
    const std::size_t local_gpus = spec.gpus.size();
    profiler::TimeTable& local_times = shard_scratch_[s].times;
    local_times.reset(local_jobs.job_count(), local_gpus);
    for (std::size_t lj = 0; lj < shard_jobs[s].size(); ++lj) {
      const JobId global = shard_jobs[s][lj];
      const JobId local(static_cast<int>(lj));
      for (std::size_t lg = 0; lg < local_gpus; ++lg) {
        const GpuId gg = spec.gpus[lg];
        const GpuId lgpu(static_cast<int>(lg));
        local_times.set(local, lgpu, times.tc(global, gg),
                        times.ts(global, gg));
      }
    }

    core::HareConfig hare = config_.hare;
    if (config_.lp_max_jobs > 0) {
      hare.relaxation.mode = local_jobs.job_count() <= config_.lp_max_jobs
                                 ? core::RelaxMode::LpCuts
                                 : core::RelaxMode::Fluid;
    }
    core::HareScheduler planner(hare);
    const sched::SchedulerInput local_input{spec.sub, local_jobs, local_times};
    const sim::Schedule local = planner.schedule(local_input);

    outcome.objective = local.predicted_objective;
    outcome.stats.objective = local.predicted_objective;
    outcome.stats.cut_count = planner.last_relaxation().cut_count;
    outcome.stats.sep_tasks_total = planner.last_relaxation().sep_tasks_total;
    outcome.stats.sep_tasks_resorted =
        planner.last_relaxation().sep_tasks_resorted;

    // Translate to global ids while the local JobSet is still alive.
    auto global_task = [&](TaskId local_task) {
      const workload::Task& t = local_jobs.task(local_task);
      const workload::Job& g =
          jobs.job(shard_jobs[s][static_cast<std::size_t>(t.job.value())]);
      return g.tasks[static_cast<std::size_t>(t.round) * g.tasks_per_round() +
                     t.slot];
    };
    for (std::size_t lg = 0; lg < local_gpus; ++lg) {
      outcome.sequences[lg].reserve(local.sequences[lg].size());
      for (const TaskId lt : local.sequences[lg]) {
        outcome.sequences[lg].push_back(global_task(lt));
      }
    }
    outcome.starts.reserve(local_jobs.task_count());
    for (const auto& task : local_jobs.tasks()) {
      outcome.starts.emplace_back(
          static_cast<std::size_t>(global_task(task.id).value()),
          local.predicted_start[static_cast<std::size_t>(task.id.value())]);
    }
    return outcome;
  };

  std::vector<ShardOutcome> outcomes(shard_count);
  {
    HARE_SPAN("shard", "shard.plan_shards");
    if (order != nullptr) {
      // Test hook: serial planning in an arbitrary completion order; slots
      // are indexed by shard, so the merge below cannot see the order.
      HARE_CHECK_MSG(order->size() == shard_count,
                     "plan order must permute the shards");
      for (const std::size_t s : *order) outcomes[s] = plan_shard(s);
    } else {
      // Nested fan-out guard: already on a pool worker (e.g. inside an exp
      // sweep cell) → plan inline rather than oversubscribing with a
      // second pool.
      const bool nested = common::ThreadPool::current() != nullptr;
      exp::Engine engine(exp::Engine::Options{
          config_.workers, config_.serial || nested});
      outcomes = engine.map(shard_count, plan_shard);
    }
  }

  // ---- Bounded cross-shard migration -------------------------------------
  // Jobs that straddled a shard boundary at assignment time (the donor
  // looked marginally better by the fluid estimate) can end up queued
  // behind the donor's real plan. Move a bounded number of them from the
  // max-horizon donor into receivers with fluid headroom, re-plan only the
  // affected shards, and keep the result only when the summed planned
  // objective strictly improves. All decisions derive from the barriered
  // outcomes in ascending-shard order, so serial, pooled, and
  // order-shuffled runs migrate identically.
  if (config_.migration_max_moves > 0 && shard_count > 1 &&
      jobs.job_count() > 0) {
    HARE_SPAN("shard", "shard.migrate");
    std::vector<Time> start_of(jobs.task_count(), 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      for (const auto& [task_value, start] : outcomes[s].starts) {
        start_of[task_value] = start;
      }
    }
    // Realized horizon per shard: the latest compute finish of any planned
    // task (sync overlaps the successor, matching the φ commitment rule).
    std::vector<double> horizon(shard_count, 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const ShardSpec& spec = partition.shards[s];
      for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
        const GpuId gg = spec.gpus[lg];
        for (const TaskId t : outcomes[s].sequences[lg]) {
          const double finish =
              start_of[static_cast<std::size_t>(t.value())] +
              times.tc(jobs.task(t).job, gg);
          horizon[s] = std::max(horizon[s], finish);
        }
      }
    }
    std::size_t donor = 0;
    for (std::size_t s = 1; s < shard_count; ++s) {
      if (horizon[s] > horizon[donor]) donor = s;  // ties stay low
    }

    // Donor marginal value: rank the donor's jobs by the fluid capacity a
    // move would free (work over fitting GPUs), largest first.
    struct Candidate {
      JobId job;
      double freed = 0.0;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(shard_jobs[donor].size());
    for (const JobId job_id : shard_jobs[donor]) {
      const workload::Job& job = jobs.job(job_id);
      std::size_t fitting = 0;
      Time best_round = kTimeInfinity;
      shard_fit(job, donor, fitting, best_round);
      const double work = static_cast<double>(job.rounds()) *
                          static_cast<double>(job.tasks_per_round()) *
                          best_round;
      candidates.push_back(
          Candidate{job_id, work / static_cast<double>(fitting)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.freed != b.freed) return a.freed > b.freed;
                return a.job < b.job;
              });

    // Receiver headroom test: the job must complete — by the fluid
    // estimate, appended after the receiver's standing horizon — before
    // the donor horizon it is escaping. `head` advances with each
    // tentative move so one receiver cannot absorb unbounded work.
    struct Move {
      JobId job;
      std::size_t to = 0;
    };
    std::vector<Move> moves;
    std::vector<double> head = horizon;
    for (const Candidate& c : candidates) {
      if (moves.size() >= config_.migration_max_moves) break;
      const workload::Job& job = jobs.job(c.job);
      std::size_t best = shard_count;
      double best_est = kTimeInfinity;
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (s == donor) continue;
        std::size_t fitting = 0;
        Time best_round = kTimeInfinity;
        shard_fit(job, s, fitting, best_round);
        if (fitting < job.tasks_per_round()) continue;
        const double work = static_cast<double>(job.rounds()) *
                            static_cast<double>(job.tasks_per_round()) *
                            best_round;
        const double est = std::max(job.spec.arrival, head[s]) +
                           work / static_cast<double>(fitting);
        if (est < best_est) {  // strict <: ties stay with the lower shard
          best_est = est;
          best = s;
        }
      }
      if (best == shard_count || best_est >= horizon[donor]) continue;
      head[best] = best_est;
      moves.push_back(Move{c.job, best});
    }

    if (!moves.empty()) {
      std::vector<std::size_t> replan{donor};
      for (const Move& m : moves) {
        if (std::find(replan.begin(), replan.end(), m.to) == replan.end()) {
          replan.push_back(m.to);
        }
      }
      std::sort(replan.begin(), replan.end());

      std::vector<std::vector<JobId>> saved_jobs(replan.size());
      std::vector<ShardOutcome> saved_outcomes(replan.size());
      for (std::size_t i = 0; i < replan.size(); ++i) {
        saved_jobs[i] = shard_jobs[replan[i]];
        saved_outcomes[i] = std::move(outcomes[replan[i]]);
      }
      for (const Move& m : moves) {
        auto& from = shard_jobs[donor];
        from.erase(std::find(from.begin(), from.end(), m.job));
        shard_jobs[m.to].push_back(m.job);
      }
      for (const std::size_t s : replan) {
        std::sort(shard_jobs[s].begin(), shard_jobs[s].end());
      }

      {
        HARE_SPAN("shard", "shard.replan_pairs");
        if (order != nullptr) {
          for (const std::size_t s : replan) outcomes[s] = plan_shard(s);
        } else {
          const bool nested = common::ThreadPool::current() != nullptr;
          exp::Engine engine(exp::Engine::Options{
              config_.workers, config_.serial || nested});
          std::vector<ShardOutcome> fresh = engine.map(
              replan.size(),
              [&](std::size_t i) { return plan_shard(replan[i]); });
          for (std::size_t i = 0; i < replan.size(); ++i) {
            outcomes[replan[i]] = std::move(fresh[i]);
          }
        }
      }

      double before = 0.0;
      double after = 0.0;
      for (const ShardOutcome& o : saved_outcomes) before += o.objective;
      for (const std::size_t s : replan) after += outcomes[s].objective;
      if (after < before) {
        last_plan_.migrated_jobs = moves.size();
        for (const std::size_t s : replan) {
          last_plan_.shards[s].jobs = shard_jobs[s].size();
        }
        migrations_counter.add(static_cast<double>(moves.size()));
      } else {
        // The re-plan did not pay for the moves: restore the original
        // assignment and outcomes untouched.
        for (std::size_t i = 0; i < replan.size(); ++i) {
          shard_jobs[replan[i]] = std::move(saved_jobs[i]);
          outcomes[replan[i]] = std::move(saved_outcomes[i]);
        }
      }
    }
  }

  // ---- Merge in canonical ascending-shard order --------------------------
  sim::Schedule merged;
  {
    HARE_SPAN("shard", "shard.merge");
    merged.sequences.resize(cluster.gpu_count());
    merged.predicted_start.assign(jobs.task_count(), 0.0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      ShardOutcome& outcome = outcomes[s];
      const ShardSpec& spec = partition.shards[s];
      for (std::size_t lg = 0; lg < spec.gpus.size(); ++lg) {
        // Each global GPU lives in exactly one shard: plain scatter.
        merged.sequences[static_cast<std::size_t>(spec.gpus[lg].value())] =
            std::move(outcome.sequences[lg]);
      }
      for (const auto& [task_value, start] : outcome.starts) {
        merged.predicted_start[task_value] = start;
      }
      merged.predicted_objective += outcome.objective;
      last_plan_.shards[s].objective = outcome.stats.objective;
      last_plan_.shards[s].cut_count = outcome.stats.cut_count;
      last_plan_.shards[s].sep_tasks_total = outcome.stats.sep_tasks_total;
      last_plan_.shards[s].sep_tasks_resorted =
          outcome.stats.sep_tasks_resorted;
      last_plan_.sep_tasks_total += outcome.stats.sep_tasks_total;
      last_plan_.sep_tasks_resorted += outcome.stats.sep_tasks_resorted;
    }
  }

  plans_counter.add();
  count_gauge.set(static_cast<double>(shard_count));
  imbalance_gauge.set(last_plan_.imbalance);
  if (last_plan_.sep_tasks_total > 0) {
    savings_gauge.set(1.0 -
                      static_cast<double>(last_plan_.sep_tasks_resorted) /
                          static_cast<double>(last_plan_.sep_tasks_total));
  }
  common::log_debug("shard: planned ", jobs.job_count(), " jobs over ",
                    shard_count, " shards, imbalance ", last_plan_.imbalance);
  return merged;
}

}  // namespace hare::shard
