// Two-level hierarchical planner: fluid inter-shard assignment, parallel
// intra-shard planning, deterministic merge.
//
// Level 1 (assignment) walks the jobs in the same arrival-adjusted WSPT
// order the fluid relaxation uses and assigns each job to the feasible
// shard with the earliest estimated completion horizon — a fluid estimate
// (work / feasible-GPU-count on top of the shard's current load), not a
// schedule. Level 2 plans every shard independently with the flat
// core::HareScheduler over the shard's re-indexed sub-cluster / sub-jobset
// / sub-timetable: LP-with-cuts when the shard's job count is small enough
// to afford it (`lp_max_jobs`), the fluid relaxation otherwise. Shard plans
// fan out over the hare::exp engine machinery and land in slots indexed by
// shard; the merge then walks shards in ascending index regardless of
// completion order, so the global schedule is **bit-identical** to planning
// the shards serially — parallelism changes wall-clock only, never a
// number.
//
// Between planning and merging, offline plans run a bounded cross-shard
// migration pass. The level-1 fluid estimate can strand jobs that straddled
// a shard boundary (the donor looked marginally better at assignment time,
// but the realized plan queues them): the pass finds the max-horizon donor
// shard, ranks its jobs by realized queueing delay (planned completion
// minus the job's own fluid best case on the donor), offers each to the
// receiver with the earliest fluid completion estimate — seeded from the
// assignment-time fluid loads, so the test engages even on
// arrival-dominated streamed instances where every realized horizon sits at
// the last arrival — provided that estimate strictly beats the job's
// realized completion. It then re-plans only the affected shards and keeps
// the result only when the summed planned objective strictly improves,
// halving the move bundle down to its highest-delay prefix when a larger
// bundle overshoots that gate.
// Every decision is computed serially from the barriered outcomes, so
// serial, pooled, and order-shuffled runs still agree bit for bit.
//
// Planning cost: a flat plan is Ω(J·G) in the fitting matrix and masked
// T^c rows alone; with S shards each sub-instance is ~(J/S)·(G/S), so even
// the *serial* sharded plan does ~1/S of the flat work, and workers stack
// on top. The price is fidelity — jobs cannot span shards, so the planned
// objective is an approximation of the flat planner's (tests bound the
// gap; with one shard the planner reproduces the flat plan bit for bit).
//
// Nested fan-out: when shard planning is itself invoked from inside a
// thread-pool worker (e.g. one cell of an exp sweep), the planner detects
// it via common::ThreadPool::current() and plans shards inline on that
// worker instead of spinning up a second pool (oversubscription guard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/hare_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "shard/shard_partition.hpp"

namespace hare::shard {

struct ShardPlannerConfig {
  /// Shard count handed to partition_cluster; 0 = one per network domain.
  std::size_t shards = 0;
  /// Worker threads for the shard fan-out; 0 = HARE_JOBS-aware default.
  std::size_t workers = 0;
  /// Plan shards serially on the calling thread (also forced when already
  /// running on a thread-pool worker, or by HARE_EXP_SERIAL).
  bool serial = false;
  /// Shards with at most this many jobs plan with the LpCuts relaxation;
  /// larger shards use Fluid. 0 = always use `hare.relaxation.mode` as-is.
  std::size_t lp_max_jobs = 0;
  /// Bounded cross-shard migration (offline plans only). After the
  /// per-shard plans land, up to this many jobs may leave the worst
  /// (max-horizon) shard for shards with fluid headroom; only the affected
  /// shards are re-planned, and the migration is kept only when the summed
  /// planned objective strictly improves. 0 disables the pass.
  std::size_t migration_max_moves = 8;
  /// Per-shard planner configuration (placement rule, engine knobs, ...).
  core::HareConfig hare{};
};

struct ShardStats {
  std::size_t jobs = 0;
  std::size_t gpus = 0;
  double objective = 0.0;       ///< planned Σ w C of the shard's jobs
  double est_load = 0.0;        ///< assignment-time completion horizon
  std::size_t cut_count = 0;    ///< Queyranne cuts (LpCuts shards)
  std::size_t sep_tasks_total = 0;
  std::size_t sep_tasks_resorted = 0;
};

/// Diagnostics of the last HierarchicalPlanner::schedule call.
struct HierarchicalPlanInfo {
  std::size_t shard_count = 0;
  /// max / mean of the shards' estimated load horizons (1.0 = perfectly
  /// balanced assignment).
  double imbalance = 1.0;
  std::vector<ShardStats> shards;
  std::size_t sep_tasks_total = 0;
  std::size_t sep_tasks_resorted = 0;
  /// Jobs moved out of the bottleneck shard by the accepted migration pass
  /// (0 when migration was disabled, found no candidates, or was rejected
  /// for not improving the planned objective).
  std::size_t migrated_jobs = 0;
};

class HierarchicalPlanner final : public sched::Scheduler {
 public:
  explicit HierarchicalPlanner(ShardPlannerConfig config = {})
      : config_(config) {}

  [[nodiscard]] std::string_view name() const override {
    return "Hare_Sharded";
  }
  [[nodiscard]] sim::Schedule schedule(
      const sched::SchedulerInput& input) override;

  /// Test/diagnostic hook: plan the shards serially in `plan_order` (any
  /// permutation of [0, shard_count)). The merge is canonical-order, so
  /// the result must be bit-identical to schedule() for every permutation —
  /// the determinism tests shuffle completion order through this.
  [[nodiscard]] sim::Schedule schedule_with_order(
      const sched::SchedulerInput& input,
      const std::vector<std::size_t>& plan_order);

  /// Online entry point (shard-local replans — ROADMAP item 2 married to
  /// the serving loop): plan only the jobs with `job_mask[id] != 0` on top
  /// of the standing per-GPU commitment horizons `phi`, appending the batch
  /// onto `schedule`, whose sequences must already span the cluster and
  /// whose predicted_start must span the instance. Level 1 seeds each
  /// shard's load with its worst commitment horizon; level 2 plans **only**
  /// the shards that received a batch job (an arrival replans its shard,
  /// not the cluster) through the flat incremental contract
  /// (HareScheduler::schedule_jobs), so the Fluid relaxation is used
  /// regardless of `lp_max_jobs`. Commitments are never revised and `phi`
  /// advances in place. Returns the batch's planned weighted-completion
  /// contribution. Bit-identical across serial and pooled shard fan-out.
  double schedule_online(const sched::SchedulerInput& input,
                         const std::vector<char>& job_mask,
                         std::vector<Time>& phi, sim::Schedule& schedule);

  [[nodiscard]] const HierarchicalPlanInfo& last_plan() const {
    return last_plan_;
  }

 private:
  /// Per-*worker* planning buffers — the local sub-jobset, sub-timetable,
  /// and row-gather staging a shard plan is built from. Slots are keyed by
  /// ThreadPool::current_worker_index() (slot 0 = the non-worker caller),
  /// so each pool worker reuses **its own** buffers across every shard it
  /// plans: capacity survives across shards, plan calls, migration
  /// re-plans, and the serve loop's repeated online batches, and no two
  /// threads ever touch the same slot. Cache-line alignment keeps one
  /// worker's vector headers out of its neighbours' lines (false-sharing
  /// guard for the pooled fan-out's hot rebuild loop).
  struct alignas(64) WorkerScratch {
    workload::JobSet jobs;
    profiler::TimeTable times;
    std::vector<Time> tc_gather;   ///< one local row being gathered
    std::vector<Time> ts_gather;   ///< one local row being gathered
    std::vector<std::uint32_t> row_map;  ///< global row id → local row id
  };

  /// The calling thread's scratch slot (grown on demand; see WorkerScratch).
  [[nodiscard]] WorkerScratch& scratch_slot();

  [[nodiscard]] sim::Schedule plan(const sched::SchedulerInput& input,
                                   const std::vector<std::size_t>* order);

  ShardPlannerConfig config_;
  HierarchicalPlanInfo last_plan_;
  std::vector<WorkerScratch> worker_scratch_;
};

}  // namespace hare::shard
