// Network-domain cluster partitioning for two-level hierarchical planning.
//
// A 10k-GPU cluster cannot be planned as one flat instance: every per-task
// placement argmin, fitting-matrix row, and masked T^c row scales with the
// global GPU count, and the LP relaxation is dense in the task count. The
// hierarchical planner instead slices the cluster into *shards* along its
// network-domain boundaries (machines in one rack/pod share a domain and a
// cheap fabric; PS sync traffic stays local when a job's tasks stay inside
// one shard) and plans each shard as an independent sub-instance.
//
// partition_cluster produces the shard list deterministically from the
// cluster alone:
//  * target 0 → one shard per network domain (the natural topology cut);
//  * target ≤ #domains → whole domains are packed into `target` contiguous
//    groups, balancing GPU counts (a domain never splits before it has to);
//  * target > #domains → domains split internally on machine boundaries,
//    each domain receiving a sub-shard quota proportional to its GPU count.
//
// Every shard re-indexes its machines into a standalone cluster::Cluster
// whose local GPU g is exactly `gpus[g]` globally — local↔global id
// translation is positional, so the merged global schedule is a pure
// scatter.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace hare::shard {

struct ShardSpec {
  std::size_t index = 0;
  /// Global machine ids, in sub-cluster machine order.
  std::vector<MachineId> machines;
  /// Global GPU ids, machine-major: local GpuId g ↔ gpus[g].
  std::vector<GpuId> gpus;
  /// Re-indexed standalone cluster over exactly these machines.
  cluster::Cluster sub;
};

struct ShardPartition {
  std::vector<ShardSpec> shards;

  [[nodiscard]] std::size_t size() const { return shards.size(); }
};

/// Deterministically partition `cluster` into ~`target_shards` shards along
/// network-domain boundaries (see file comment). `target_shards` is clamped
/// to [1, machine_count]; 0 means one shard per domain. Every shard is
/// non-empty.
[[nodiscard]] ShardPartition partition_cluster(const cluster::Cluster& cluster,
                                               std::size_t target_shards);

}  // namespace hare::shard
