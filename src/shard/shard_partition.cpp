#include "shard/shard_partition.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hare::shard {

namespace {

/// Machines of one network domain, in ascending machine-id order.
struct DomainGroup {
  std::size_t domain = 0;
  std::vector<MachineId> machines;
  std::size_t gpu_count = 0;
};

std::vector<DomainGroup> group_by_domain(const cluster::Cluster& cluster) {
  std::vector<DomainGroup> groups;
  for (const auto& machine : cluster.machines()) {
    DomainGroup* group = nullptr;
    for (auto& g : groups) {
      if (g.domain == machine.domain) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(DomainGroup{machine.domain, {}, 0});
      group = &groups.back();
    }
    group->machines.push_back(machine.id);
    group->gpu_count += machine.gpus.size();
  }
  return groups;
}

/// Split `items` (with per-item weights) into exactly `parts` contiguous
/// non-empty runs with balanced weight: close a run once its cumulative
/// weight crosses the next total/parts quantile, unless the remaining items
/// are needed one-per-remaining-run. Deterministic.
template <typename T, typename WeightFn>
std::vector<std::vector<T>> split_contiguous(const std::vector<T>& items,
                                             std::size_t parts,
                                             WeightFn&& weight_of) {
  std::size_t total = 0;
  for (const auto& item : items) total += weight_of(item);

  std::vector<std::vector<T>> runs(parts);
  std::size_t s = 0;
  std::size_t cum = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    runs[s].push_back(items[i]);
    cum += weight_of(items[i]);
    const std::size_t remaining_items = items.size() - i - 1;
    const std::size_t remaining_runs = parts - s - 1;
    if (s + 1 < parts &&
        (cum * parts >= (s + 1) * total || remaining_items == remaining_runs)) {
      ++s;
    }
  }
  return runs;
}

ShardSpec build_shard(const cluster::Cluster& cluster, std::size_t index,
                      std::vector<MachineId> machines) {
  ShardSpec shard;
  shard.index = index;
  shard.machines = std::move(machines);
  cluster::ClusterBuilder builder;
  for (const MachineId m : shard.machines) {
    const cluster::Machine& machine = cluster.machine(m);
    // Machines are single-type by ClusterBuilder construction; GPU ids
    // within a machine are contiguous ascending, so appending machines in
    // order makes the local GPU numbering exactly `shard.gpus` positional.
    builder.add_machine(cluster.gpu(machine.gpus.front()).type,
                        machine.gpus.size(), machine.network_gbps,
                        machine.name, machine.domain);
    shard.gpus.insert(shard.gpus.end(), machine.gpus.begin(),
                      machine.gpus.end());
  }
  shard.sub = builder.build();
  return shard;
}

}  // namespace

ShardPartition partition_cluster(const cluster::Cluster& cluster,
                                 std::size_t target_shards) {
  HARE_CHECK_MSG(cluster.machine_count() > 0, "cannot shard an empty cluster");
  const std::vector<DomainGroup> groups = group_by_domain(cluster);

  std::size_t target = target_shards == 0 ? groups.size() : target_shards;
  target = std::clamp<std::size_t>(target, 1, cluster.machine_count());

  ShardPartition partition;
  if (target <= groups.size()) {
    // Pack whole domains into `target` contiguous, GPU-balanced groups.
    std::vector<std::size_t> group_index(groups.size());
    std::iota(group_index.begin(), group_index.end(), 0);
    const auto runs =
        split_contiguous(group_index, target,
                         [&](std::size_t g) { return groups[g].gpu_count; });
    for (const auto& run : runs) {
      std::vector<MachineId> machines;
      for (const std::size_t g : run) {
        machines.insert(machines.end(), groups[g].machines.begin(),
                        groups[g].machines.end());
      }
      partition.shards.push_back(
          build_shard(cluster, partition.shards.size(), std::move(machines)));
    }
    return partition;
  }

  // More shards than domains: give each domain a sub-shard quota
  // proportional to its GPU share (at least 1, at most its machine count),
  // then split its machines contiguously into that many GPU-balanced runs.
  std::vector<std::size_t> quota(groups.size(), 1);
  std::size_t extra = target - groups.size();
  while (extra > 0) {
    // Most GPUs per already-planned sub-shard wins the next slot; ties to
    // the lower domain index. Saturated domains (quota == machines) skip.
    std::size_t best = groups.size();
    double best_key = -1.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (quota[g] >= groups[g].machines.size()) continue;
      const double key = static_cast<double>(groups[g].gpu_count) /
                         static_cast<double>(quota[g]);
      if (key > best_key) {
        best_key = key;
        best = g;
      }
    }
    HARE_CHECK_MSG(best < groups.size(),
                   "shard quota exhausted every machine");  // unreachable:
    // target ≤ machine_count guarantees an unsaturated domain exists.
    ++quota[best];
    --extra;
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto runs = split_contiguous(
        groups[g].machines, quota[g], [&](MachineId m) {
          return cluster.machine(m).gpus.size();
        });
    for (const auto& run : runs) {
      partition.shards.push_back(
          build_shard(cluster, partition.shards.size(), run));
    }
  }
  return partition;
}

}  // namespace hare::shard
