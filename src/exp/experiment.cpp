#include "exp/experiment.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/hare_system.hpp"

namespace hare::exp {

std::size_t scheme_count() { return 5; }

std::string scheme_name(std::size_t scheme) {
  switch (scheme) {
    case 0: return "Hare";
    case 1: return "Gavel_FIFO";
    case 2: return "SRTF";
    case 3: return "Sched_Homo";
    case 4: return "Sched_Allox";
    default: break;
  }
  HARE_CHECK_MSG(false, "scheme index " << scheme << " out of range");
  return {};
}

SchemeResult run_cell(const ScenarioSpec& scenario, std::uint64_t seed,
                      std::size_t scheme, sim::SimScratch* scratch) {
  HARE_CHECK_MSG(scheme < scheme_count(),
                 "scheme index " << scheme << " out of range");
  auto schedulers = core::make_standard_schedulers(scenario.options.hare);
  sched::Scheduler& scheduler = *schedulers[scheme];

  core::HareSystem::Options sys_options;
  sys_options.seed = seed;
  sys_options.perf = scenario.options.perf;
  sys_options.sim.runtime_noise_cv = scenario.options.runtime_noise_cv;
  sys_options.sim.noise_seed = seed ^ 0x5eedull;
  const bool is_hare = scheduler.name() == std::string_view("Hare");
  sys_options.sim.switching.policy = is_hare ? switching::SwitchPolicy::Hare
                                             : switching::SwitchPolicy::Default;
  sys_options.sim.use_memory_manager = is_hare;

  core::HareSystem system(scenario.cluster, sys_options);
  system.submit_all(scenario.jobs);
  core::RunReport report = scratch != nullptr
                               ? system.run(scheduler, *scratch)
                               : system.run(scheduler);

  SchemeResult entry;
  entry.scheduler = std::move(report.scheduler);
  entry.weighted_jct = report.result.weighted_jct;
  entry.weighted_completion = report.result.weighted_completion;
  entry.makespan = report.result.makespan;
  entry.mean_utilization = report.result.mean_gpu_utilization();
  entry.scheduling_ms = report.scheduling_ms;
  entry.sim = std::move(report.result);
  return entry;
}

}  // namespace hare::exp
