// Deterministic parallel experiment engine.
//
// Enumerates a sweep's (scenario × seed × scheme) cells in one canonical
// order, fans them across a private thread pool, and merges results into
// pre-sized slots indexed by that same order — so the parallel output is
// **bit-identical** to running the cells serially (and to the pre-engine
// serial bench loops): parallelism changes wall-clock only, never a
// number. Each worker reuses one `sim::SimScratch` across the cells it
// happens to run, which also never changes a result (see simulator.hpp).
//
// Escape hatches: `Options::serial` (CLI `--serial`) or the
// HARE_EXP_SERIAL environment variable run every cell on the calling
// thread in canonical order; HARE_JOBS caps the worker count
// (common/thread_pool.hpp). A cell that throws fails the whole sweep
// loudly: the first exception is rethrown on the calling thread.
//
// Telemetry (hare::obs): `exp.cells_dispatched` / `exp.cells_completed`
// counters, an `exp.queue_depth` gauge of not-yet-finished cells, an
// `exp.cell_ms` histogram of per-cell wall time, and one `exp.cell` span
// per cell on its worker's ring — `--trace-out` on a sweep shows the
// whole fan-out on a per-worker timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "exp/experiment.hpp"

namespace hare::exp {

/// True when the HARE_EXP_SERIAL environment variable requests the serial
/// path (set to anything but "" or "0").
[[nodiscard]] inline bool serial_requested() {
  const char* env = std::getenv("HARE_EXP_SERIAL");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// A grid of experiment cells: every scenario × every seed × every scheme.
struct SweepSpec {
  std::vector<ScenarioSpec> scenarios;
  /// Seeds applied to every scenario; empty = each scenario's own
  /// `options.seed` (one seed per scenario).
  std::vector<std::uint64_t> seeds;

  [[nodiscard]] std::size_t seeds_per_scenario() const {
    return seeds.empty() ? 1 : seeds.size();
  }
  [[nodiscard]] std::size_t cell_count() const {
    return scenarios.size() * seeds_per_scenario() * scheme_count();
  }
};

/// One cell's coordinates plus its result.
struct CellResult {
  std::size_t scenario = 0;
  std::size_t seed_index = 0;
  std::size_t scheme = 0;
  std::uint64_t seed = 0;
  double cell_ms = 0.0;  ///< wall time of this cell (not replayable)
  SchemeResult result;
};

/// All cells in canonical order: scenario-major, then seed, then scheme.
struct SweepResult {
  std::vector<CellResult> cells;
  std::size_t seeds_per_scenario = 1;
  std::size_t workers = 1;   ///< 1 = serial path
  double wall_ms = 0.0;      ///< whole-sweep wall time

  [[nodiscard]] const CellResult& cell(std::size_t scenario,
                                       std::size_t seed_index,
                                       std::size_t scheme) const {
    return cells[(scenario * seeds_per_scenario + seed_index) *
                     scheme_count() +
                 scheme];
  }

  /// The scheme line-up for one (scenario, seed) — the shape the old
  /// serial `run_comparison` returned.
  [[nodiscard]] std::vector<SchemeResult> comparison(
      std::size_t scenario, std::size_t seed_index = 0) const {
    std::vector<SchemeResult> out;
    out.reserve(scheme_count());
    for (std::size_t m = 0; m < scheme_count(); ++m) {
      out.push_back(cell(scenario, seed_index, m).result);
    }
    return out;
  }
};

class Engine {
 public:
  struct Options {
    /// Worker threads; 0 = default_worker_count() (HARE_JOBS-aware).
    std::size_t workers = 0;
    /// Run every cell on the calling thread, in canonical order. ORed
    /// with the HARE_EXP_SERIAL environment variable.
    bool serial = false;
  };

  Engine();
  explicit Engine(Options options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Effective worker count (1 when serial).
  [[nodiscard]] std::size_t workers() const;
  [[nodiscard]] bool serial() const { return serial_; }

  /// Run every cell of the sweep; cells land in canonical order
  /// regardless of completion order. Rethrows the first cell failure.
  [[nodiscard]] SweepResult run(const SweepSpec& spec);

  /// Low-level deterministic fan-out: evaluate fn(i) for i in [0, n) and
  /// return the results in index order. fn must be safe to call from any
  /// thread with distinct i; its result type must be default-constructible
  /// and movable. The sweep above is built on this; tests and custom grids
  /// can use it directly.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    // One effective worker gains nothing from dispatch: a single pool
    // thread would run the cells in the same canonical order, paying task
    // allocation, queue locking, and a wake-up per cell (measured ~0.78x
    // at 1 worker). Run inline on the calling thread instead.
    if (serial_ || n <= 1 || workers() <= 1) {
      for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
      return out;
    }
    pool().parallel_for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  [[nodiscard]] common::ThreadPool& pool();

  Options options_;
  bool serial_;
  std::unique_ptr<common::ThreadPool> pool_;  ///< lazy; never in serial mode
};

}  // namespace hare::exp
