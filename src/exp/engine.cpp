#include "exp/engine.hpp"

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hare::exp {

namespace {

/// Sweep-wide telemetry handles (process-global registry).
struct SweepMetrics {
  obs::Counter& dispatched = obs::counter("exp.cells_dispatched");
  obs::Counter& completed = obs::counter("exp.cells_completed");
  obs::Gauge& queue_depth = obs::gauge("exp.queue_depth");
  obs::Histogram& cell_ms =
      obs::histogram("exp.cell_ms", obs::latency_bounds_us());
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics metrics;
  return metrics;
}

}  // namespace

Engine::Engine() : Engine(Options{}) {}

Engine::Engine(Options options)
    : options_(options), serial_(options.serial || serial_requested()) {}

Engine::~Engine() = default;

std::size_t Engine::workers() const {
  if (serial_) return 1;
  return options_.workers == 0 ? common::default_worker_count()
                               : options_.workers;
}

common::ThreadPool& Engine::pool() {
  if (!pool_) {
    pool_ = std::make_unique<common::ThreadPool>(workers());
  }
  return *pool_;
}

SweepResult Engine::run(const SweepSpec& spec) {
  HARE_SPAN_ARG("exp", "exp.sweep", "cells",
                static_cast<double>(spec.cell_count()));
  const auto sweep_start = std::chrono::steady_clock::now();

  const std::size_t seeds_per = spec.seeds_per_scenario();
  const std::size_t schemes = scheme_count();
  const std::size_t n = spec.cell_count();

  SweepMetrics& metrics = sweep_metrics();
  metrics.dispatched.add(n);
  std::atomic<std::size_t> remaining{n};
  metrics.queue_depth.set(static_cast<double>(n));

  // map() runs inline (no pool thread) below this cell/worker shape; the
  // per-worker trace-track naming must match, or the calling thread's span
  // ring would be mislabelled "exp-worker".
  const bool pooled = !serial_ && n > 1 && workers() > 1;

  auto run_one = [&](std::size_t index) {
    const std::size_t scheme = index % schemes;
    const std::size_t seed_index = (index / schemes) % seeds_per;
    const std::size_t scenario = index / (schemes * seeds_per);
    const ScenarioSpec& spec_s = spec.scenarios[scenario];
    const std::uint64_t seed =
        spec.seeds.empty() ? spec_s.options.seed : spec.seeds[seed_index];

    if (pooled) {
      // Label this worker's span ring once, so exported traces show the
      // sweep fan-out on named per-worker tracks.
      thread_local const bool named = [] {
        obs::Tracer::instance().set_thread_name("exp-worker");
        return true;
      }();
      static_cast<void>(named);
    }

    HARE_SPAN_ARG("exp", "exp.cell", "cell", static_cast<double>(index));
    const auto cell_start = std::chrono::steady_clock::now();

    // One simulator scratch per worker thread, reused across every cell
    // that thread happens to run (pure wall-clock optimization).
    thread_local sim::SimScratch scratch;

    CellResult cell;
    cell.scenario = scenario;
    cell.seed_index = seed_index;
    cell.scheme = scheme;
    cell.seed = seed;
    cell.result = run_cell(spec_s, seed, scheme, &scratch);
    cell.cell_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - cell_start)
                       .count();

    metrics.completed.add();
    metrics.cell_ms.record(cell.cell_ms * 1e3);  // histogram is in µs
    metrics.queue_depth.set(static_cast<double>(
        remaining.fetch_sub(1, std::memory_order_relaxed) - 1));
    return cell;
  };

  SweepResult result;
  result.seeds_per_scenario = seeds_per;
  result.workers = serial_ ? 1 : std::min<std::size_t>(workers(), n ? n : 1);
  result.cells = map(n, run_one);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - sweep_start)
                       .count();
  return result;
}

}  // namespace hare::exp
