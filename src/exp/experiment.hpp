// Experiment cells: the unit of work the sweep engine fans out.
//
// A *cell* is one (scenario, seed, scheme) triple: one scheduler from the
// standard §7.1 line-up run end-to-end (profile → plan → simulate) on one
// generated instance. Cells are pure functions of their inputs — each cell
// builds its own HareSystem, draws from its own seeded RNG streams, and
// shares no mutable state with any other cell — which is what lets the
// engine run them on any thread, in any order, and still merge results
// that are bit-identical to a serial loop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/hare_scheduler.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/job.hpp"
#include "workload/perf_model.hpp"

namespace hare::exp {

/// Per-scenario knobs (mirrors what the figure benches vary).
struct ScenarioOptions {
  std::uint64_t seed = 42;
  /// Testbed mode: per-task runtime jitter (0 = exact simulator).
  double runtime_noise_cv = 0.0;
  core::HareConfig hare{};
  workload::PerfModelConfig perf{};
};

/// One experiment instance: a cluster, a workload, and the knobs. Owns its
/// inputs by value so a cell never reads memory another cell writes.
struct ScenarioSpec {
  std::string label;
  cluster::Cluster cluster;
  workload::JobSet jobs;
  ScenarioOptions options{};
};

/// Number of schemes in the standard line-up (Hare + four baselines).
[[nodiscard]] std::size_t scheme_count();

/// Scheme display name without instantiating a scheduler stack.
[[nodiscard]] std::string scheme_name(std::size_t scheme);

/// One scheme's realized metrics on one instance.
struct SchemeResult {
  std::string scheduler;
  double weighted_jct = 0.0;
  double weighted_completion = 0.0;
  double makespan = 0.0;
  double mean_utilization = 0.0;
  double scheduling_ms = 0.0;  ///< wall time of the algorithm (not replayable)
  sim::SimResult sim;
};

/// Run scheme `scheme` of the standard line-up on `scenario`, overriding
/// the scenario's seed with `seed`. Every scheme sees the same jobs,
/// profiled times, and actual times: Hare runs under its fast-switching
/// executor with speculative memory, the baselines under the default
/// executor (they switch GPUs only at job granularity, so the cold cost
/// amortizes — the status quo the paper compares against).
///
/// `scratch` optionally reuses simulator buffers across cells on the same
/// thread; it never changes a result.
[[nodiscard]] SchemeResult run_cell(const ScenarioSpec& scenario,
                                    std::uint64_t seed, std::size_t scheme,
                                    sim::SimScratch* scratch = nullptr);

}  // namespace hare::exp
