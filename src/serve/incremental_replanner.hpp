// Warm incremental LP relaxation for admission batches.
//
// Each flushed batch contributes one independent block to a growing LP:
// per job, a start variable x_{j,r} per round and a completion variable
// C_j, chained by round-precedence rows x_{j,r+1} - x_{j,r} >= T_j and
// C_j - x_{j,last} >= T_j (T_j = the job's fastest per-task total), plus
// one aggregate parallel-load cut per batch,
//
//   sum_i p_i x_i  >=  ((sum p)^2 - sum p^2) / (2 * alive GPUs),
//
// the classic completion-time polymatroid bound with p_i = T_j per task.
// The objective is sum_j w_j C_j with a deterministic micro-perturbation
// delta * eps_v (eps_v distinct per block variable) added to every block
// variable's cost: the perturbed optimum is a unique vertex, so the sparse
// and dense backends — and a warm dual re-solve versus a cold two-phase
// solve of the same program — all land on the same point, and snapping the
// extracted values to a 1e-6 grid makes the hand-off bit-identical. All
// perturbed costs stay nonnegative, which is exactly what the sparse
// backend's warm column append needs to keep the retained basis dual
// feasible (IncrementalLpSolver::add_variable).
//
// New blocks land on the retained basis as appended columns + rows and the
// re-solve runs dual-simplex pivots only (`serve.basis_reuse`); the basis
// is invalidated only by LP compaction (accumulated rows exceeding the
// configured bound — solved blocks are independent, so dropping them is
// free) or by a failed solve. Fault events never invalidate it: they only
// change future blocks' bounds and the cut denominator.
//
// The block's solution feeds Algorithm 1 step 2 unchanged: middle
// completion times h_i = x_{j,r} + max_m T^c_{j,m}/2 go to
// HareScheduler::schedule_jobs_with_h, so placement semantics match every
// other planner path in the repo.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "opt/simplex.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"

namespace hare::serve {

struct ReplannerConfig {
  /// Retain the basis across batches (dual-simplex warm re-solves). With
  /// false the solver still accumulates the same program but re-solves it
  /// cold every batch — the reference path the serve bench compares pivot
  /// counts against.
  bool warm = true;
  opt::LpBackend backend = opt::LpBackend::Auto;
  /// Accumulated-row bound; exceeding it compacts the LP (drop solved
  /// blocks, rebuild from the next batch alone). Counts as a basis loss.
  std::size_t compact_rows = 2048;
};

struct ReplannerStats {
  std::size_t batches = 0;      ///< blocks relaxed
  std::size_t warm_solves = 0;  ///< re-solves on the retained basis
  std::size_t cold_solves = 0;  ///< two-phase solves (first/compacted/failed)
  std::size_t warm_pivots = 0;  ///< pivots spent in warm re-solves
  std::size_t cold_pivots = 0;  ///< pivots spent in cold solves
  std::size_t compactions = 0;  ///< LP rebuilds forced by the row bound
};

class IncrementalReplanner {
 public:
  explicit IncrementalReplanner(ReplannerConfig config) : config_(config) {}

  /// Relax one batch: append its block, re-solve, and write the middle
  /// completion time of every task of every batch job into `h` (indexed by
  /// TaskId value; `h` must already span the task array). `phi_floor` is
  /// the earliest commitment horizon across alive GPUs (start lower bound)
  /// and `gpus_alive` the parallel capacity in the aggregate cut. Returns
  /// false when the solve failed (caller falls back to a flat replan); the
  /// next batch then rebuilds from scratch.
  [[nodiscard]] bool relax_batch(const workload::JobSet& jobs,
                                 const profiler::TimeTable& times,
                                 const std::vector<JobId>& batch,
                                 Time phi_floor, std::size_t gpus_alive,
                                 std::vector<Time>& h);

  [[nodiscard]] const ReplannerStats& stats() const { return stats_; }

  /// True when the most recent relax_batch re-solved on the retained basis.
  [[nodiscard]] bool last_was_warm() const { return last_warm_; }

 private:
  ReplannerConfig config_;
  ReplannerStats stats_;
  std::optional<opt::IncrementalLpSolver> solver_;
  std::size_t rows_ = 0;
  bool pending_reset_ = false;
  bool last_warm_ = false;
};

}  // namespace hare::serve
