#include "serve/serve_service.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hare::serve {

namespace {

/// Horizon parked on a dead GPU: finite (no inf-arithmetic hazards in the
/// fluid relaxation) but beyond any plannable time, so earliest-finish
/// placement never selects it while capacity survives elsewhere.
constexpr Time kDeadHorizon = 1e18;

}  // namespace

ServeService::ServeService(const cluster::Cluster& cluster,
                           workload::PerfModel perf, ServeConfig config)
    : cluster_(cluster),
      perf_(perf),
      config_(config),
      times_(0, cluster.gpu_count()),
      flat_([&] {
        core::HareConfig hare = config.hare;
        hare.relaxation.mode = core::RelaxMode::Fluid;
        hare.sync = core::SyncScheme::Relaxed;
        return hare;
      }()),
      replanner_(ReplannerConfig{config.warm_lp, config.lp_backend,
                                 config.lp_compact_rows}) {
  HARE_CHECK_MSG(cluster.gpu_count() > 0, "serving needs a non-empty cluster");
  schedule_.sequences.resize(cluster.gpu_count());
  state_.phi.assign(cluster.gpu_count(), 0.0);
  saved_phi_.assign(cluster.gpu_count(), 0.0);
  alive_.assign(cluster.gpu_count(), 1);
  if (config_.shard_min_batch_jobs > 0) {
    sharded_.emplace(config_.shard);
  }
}

JobId ServeService::admit(workload::JobSpec spec, AdmissionBatcher& batcher) {
  const Time arrival = spec.arrival;
  const JobId id = jobs_.add_job(std::move(spec));
  const std::size_t j = static_cast<std::size_t>(id.value());
  times_.append_job();
  const workload::Job& job = jobs_.job(id);
  const auto batch_size = job.effective_batch_size();
  for (const auto& gpu : cluster_.gpus()) {
    const double uplink = cluster_.machine(gpu.machine).network_gbps;
    times_.set(id, gpu.id,
               perf_.task_compute_time(job.spec.model, gpu.type, batch_size,
                                       job.spec.batches_per_task),
               perf_.sync_time(job.spec.model, uplink));
  }
  canceled_.resize(j + 1, 0);
  planned_.resize(j + 1, 0);
  continued_.resize(j + 1, 0);
  if (j < precanceled_.size() && precanceled_[j]) {
    canceled_[j] = 1;
    ++report_.canceled;
    return id;  // never joins a batch
  }
  batcher.admit(id, arrival);
  return id;
}

void ServeService::plan_batch(const std::vector<JobId>& plannable) {
  static auto& latency_hist =
      obs::histogram("serve.replan_latency", obs::latency_bounds_us());
  static auto& batch_hist = obs::histogram(
      "serve.batch_size",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});
  static auto& replans = obs::counter("serve.replans");
  static auto& basis_reuse = obs::counter("serve.basis_reuse");
  static auto& basis_cold = obs::counter("serve.basis_cold");
  static auto& greedy_fallbacks = obs::counter("serve.greedy_fallbacks");
  const auto started = std::chrono::steady_clock::now();

  std::vector<char> mask(jobs_.job_count(), 0);
  for (JobId id : plannable) mask[static_cast<std::size_t>(id.value())] = 1;
  const sched::SchedulerInput input{cluster_, jobs_, times_};

  const bool budget_left = config_.replan_budget == 0 ||
                           replans_spent_ < config_.replan_budget;
  bool planned = false;
  if (!budget_left) {
    // Budget exhausted: list-schedule the batch in arrival order through
    // the same placement machinery (greedy earliest-finish).
    for (JobId id : plannable) {
      const workload::Job& job = jobs_.job(id);
      for (TaskId task : job.task_ids()) {
        h_[static_cast<std::size_t>(task.value())] = job.spec.arrival;
      }
    }
    flat_.schedule_jobs_with_h(input, mask, h_, state_, schedule_);
    ++report_.greedy_batches;
    greedy_fallbacks.add();
    planned = true;
  } else {
    if (config_.lp_max_batch_jobs > 0 &&
        plannable.size() <= config_.lp_max_batch_jobs) {
      Time phi_floor = kTimeInfinity;
      std::size_t gpus_alive = 0;
      for (std::size_t g = 0; g < alive_.size(); ++g) {
        if (!alive_[g]) continue;
        ++gpus_alive;
        phi_floor = std::min(phi_floor, state_.phi[g]);
      }
      if (gpus_alive == 0) phi_floor = 0.0;
      if (replanner_.relax_batch(jobs_, times_, plannable, phi_floor,
                                 gpus_alive, h_)) {
        flat_.schedule_jobs_with_h(input, mask, h_, state_, schedule_);
        ++report_.lp_batches;
        if (replanner_.last_was_warm()) {
          basis_reuse.add();
        } else {
          basis_cold.add();
        }
        planned = true;
      }
    }
    if (!planned) {
      if (sharded_ && plannable.size() >= config_.shard_min_batch_jobs) {
        sharded_->schedule_online(input, mask, state_.phi, schedule_);
        ++report_.sharded_batches;
      } else {
        flat_.schedule_jobs(input, mask, state_, schedule_);
        ++report_.flat_batches;
      }
      planned = true;
    }
    ++replans_spent_;
  }

  for (JobId id : plannable) {
    planned_[static_cast<std::size_t>(id.value())] = 1;
  }
  report_.planned_jobs += plannable.size();
  ++report_.batches;
  report_.max_batch_jobs = std::max(report_.max_batch_jobs, plannable.size());
  replans.add();
  batch_hist.record(static_cast<double>(plannable.size()));
  latency_hist.record(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - started)
          .count());
}

void ServeService::flush_batch(AdmissionBatcher& batcher) {
  if (batcher.empty()) return;
  const std::vector<JobId> batch = batcher.take();
  std::vector<JobId> plannable;
  plannable.reserve(batch.size());
  for (JobId id : batch) {
    if (!canceled_[static_cast<std::size_t>(id.value())]) {
      plannable.push_back(id);
    }
  }
  if (plannable.empty()) return;
  schedule_.predicted_start.resize(jobs_.task_count(), 0.0);
  h_.resize(jobs_.task_count(), 0.0);
  plan_batch(plannable);
}

void ServeService::apply_event(const ServeEvent& event,
                               AdmissionBatcher& batcher) {
  switch (event.kind) {
    case ServeEventKind::Arrival:
      HARE_CHECK_MSG(false, "arrivals come from the stream, not the script");
      break;
    case ServeEventKind::GpuFail: {
      ++report_.fault_events;
      const auto g = static_cast<std::size_t>(event.gpu.value());
      if (!alive_[g]) break;
      alive_[g] = 0;
      saved_phi_[g] = state_.phi[g];
      state_.phi[g] = kDeadHorizon;
      // Commitments on the dead GPU from the failure instant onward are
      // displaced; each affected job's remaining rounds re-enter as a
      // continuation job arriving now. std::map keeps the continuation
      // admission order deterministic (ascending original JobId).
      std::map<JobId, RoundIndex> first_displaced_round;
      for (TaskId tid : schedule_.sequences[g]) {
        const auto t = static_cast<std::size_t>(tid.value());
        if (schedule_.predicted_start[t] < event.time) continue;
        ++report_.displaced_tasks;
        const workload::Task& task = jobs_.task(tid);
        auto [it, inserted] =
            first_displaced_round.emplace(task.job, task.round);
        if (!inserted) it->second = std::min(it->second, task.round);
      }
      for (const auto& [job_id, first_round] : first_displaced_round) {
        const auto j = static_cast<std::size_t>(job_id.value());
        if (canceled_[j] || continued_[j]) continue;
        continued_[j] = 1;
        const workload::Job& job = jobs_.job(job_id);
        workload::JobSpec spec = job.spec;
        spec.arrival = event.time;
        spec.rounds = job.rounds() - static_cast<std::uint32_t>(first_round);
        spec.name += "+r" + std::to_string(first_round);
        ++report_.continuations;
        admit(std::move(spec), batcher);
      }
      break;
    }
    case ServeEventKind::GpuRecover: {
      ++report_.fault_events;
      const auto g = static_cast<std::size_t>(event.gpu.value());
      if (alive_[g]) break;
      alive_[g] = 1;
      state_.phi[g] = std::max(event.time, saved_phi_[g]);
      break;
    }
    case ServeEventKind::JobCancel: {
      const auto j = static_cast<std::size_t>(event.job.value());
      if (j >= jobs_.job_count()) {
        // Cancel outruns the arrival: drop the job at admission time.
        if (j >= precanceled_.size()) precanceled_.resize(j + 1, 0);
        precanceled_[j] = 1;
      } else if (!planned_[j] && !canceled_[j]) {
        canceled_[j] = 1;
        ++report_.canceled;
      } else {
        ++report_.late_cancels;
      }
      break;
    }
    case ServeEventKind::JobComplete: {
      ++report_.completions;
      const auto j = static_cast<std::size_t>(event.job.value());
      if (j >= jobs_.job_count()) break;  // completion outran the arrival
      // Early finish: committed tasks of the job that have not started by
      // the completion instant will never run, so the horizon they pinned
      // is released. Only contiguous tails can be freed — commitments are
      // never reordered, so a buried task cannot shrink phi without
      // revising every commitment after it. phi rolls back to the finish
      // (start + tc; sync overlaps) of the surviving tail task.
      for (std::size_t g = 0; g < schedule_.sequences.size(); ++g) {
        if (!alive_[g]) continue;
        auto& seq = schedule_.sequences[g];
        bool popped = false;
        while (!seq.empty()) {
          const TaskId tid = seq.back();
          const workload::Task& task = jobs_.task(tid);
          if (task.job != event.job) break;
          if (schedule_.predicted_start[static_cast<std::size_t>(
                  tid.value())] < event.time) {
            break;  // already running at completion time; leave committed
          }
          seq.pop_back();
          popped = true;
          ++report_.released_tasks;
        }
        if (!popped) continue;
        if (seq.empty()) {
          state_.phi[g] = 0.0;
        } else {
          const TaskId tail = seq.back();
          state_.phi[g] =
              schedule_.predicted_start[static_cast<std::size_t>(
                  tail.value())] +
              times_.tc(jobs_.task(tail).job, GpuId(static_cast<int>(g)));
        }
      }
      break;
    }
  }
}

template <typename NextSpec>
ServeReport ServeService::serve(NextSpec&& next_spec,
                                const fault::FaultPlan& faults) {
  HARE_CHECK_MSG(!ran_, "a ServeService instance serves one stream");
  ran_ = true;
  HARE_SPAN("serve", "serve.run");
  static auto& events_counter = obs::counter("serve.events");
  static auto& arrivals_counter = obs::counter("serve.arrivals");

  const std::vector<ServeEvent> scripted =
      events_from_fault_plan(faults, cluster_);
  AdmissionBatcher batcher(config_.tick);
  std::size_t next_event = 0;
  std::optional<workload::JobSpec> pending = next_spec();
  while (next_event < scripted.size() || pending.has_value()) {
    // Scripted events carry the lower sequence numbers, so they win ties
    // against an arrival with the same timestamp.
    const bool take_scripted =
        next_event < scripted.size() &&
        (!pending.has_value() || scripted[next_event].time <= pending->arrival);
    events_counter.add();
    if (take_scripted) {
      // A non-arrival event always closes the open batch first: a failure
      // must displace against a fully flushed plan.
      flush_batch(batcher);
      apply_event(scripted[next_event++], batcher);
    } else {
      if (batcher.should_flush(pending->arrival)) flush_batch(batcher);
      ++report_.arrivals;
      arrivals_counter.add();
      admit(std::move(*pending), batcher);
      pending = next_spec();
    }
  }
  flush_batch(batcher);

  report_.objective = schedule_.predicted_objective;
  report_.schedule = std::move(schedule_);
  report_.lp = replanner_.stats();
  return std::move(report_);
}

ServeReport ServeService::run(workload::TraceStream& stream,
                              const fault::FaultPlan& faults) {
  return serve(
      [&stream]() -> std::optional<workload::JobSpec> {
        if (stream.exhausted()) return std::nullopt;
        return stream.next();
      },
      faults);
}

ServeReport ServeService::run(const std::vector<workload::JobSpec>& arrivals,
                              const fault::FaultPlan& faults) {
  std::size_t i = 0;
  return serve(
      [&arrivals, &i]() -> std::optional<workload::JobSpec> {
        if (i >= arrivals.size()) return std::nullopt;
        return arrivals[i++];
      },
      faults);
}

}  // namespace hare::serve
