// Admission batching: coalesce arrivals within one replan tick.
//
// Planning every arrival individually wastes solver work under bursts; the
// batcher holds admitted jobs until (a) an arrival lands beyond the open
// batch's window `[batch_start, batch_start + tick]`, (b) any non-arrival
// event fires (a failure must see a flushed plan so its displacement scan
// covers every commitment), or (c) the stream ends. A tick of 0 still
// coalesces arrivals with identical timestamps — the window test is
// strictly `>` — which is the arrival-time-planning mode the online bench
// measures as its no-hindsight baseline.
//
// Flush points depend only on the event stream and the tick, never on wall
// clock, so two runs over the same stream batch identically — and two
// different ticks that induce the same partition produce bit-identical
// served schedules (the determinism test exercises exactly this).
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hare::serve {

class AdmissionBatcher {
 public:
  explicit AdmissionBatcher(Time tick) : tick_(tick) {}

  /// True when `arrival` falls outside the open batch's window and the
  /// pending batch must be planned before this job is admitted.
  [[nodiscard]] bool should_flush(Time arrival) const {
    return !pending_.empty() && arrival > batch_start_ + tick_;
  }

  /// Admit one job into the open batch (opening it at `arrival` if empty).
  void admit(JobId job, Time arrival) {
    if (pending_.empty()) batch_start_ = arrival;
    pending_.push_back(job);
  }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] Time tick() const { return tick_; }

  /// Close the batch and hand back its jobs in admission order.
  [[nodiscard]] std::vector<JobId> take() {
    return std::exchange(pending_, {});
  }

 private:
  Time tick_ = 0.0;
  Time batch_start_ = 0.0;
  std::vector<JobId> pending_;
};

}  // namespace hare::serve
