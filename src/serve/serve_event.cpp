#include "serve/serve_event.hpp"

namespace hare::serve {

std::vector<ServeEvent> events_from_fault_plan(const fault::FaultPlan& plan,
                                               const cluster::Cluster& cluster) {
  std::vector<ServeEvent> events;
  events.reserve(plan.events.size());
  std::uint64_t seq = 0;
  const auto push = [&](ServeEventKind kind, Time time) -> ServeEvent& {
    ServeEvent& event = events.emplace_back();
    event.time = time;
    event.seq = seq++;
    event.kind = kind;
    return event;
  };
  for (const fault::FaultEvent& fe : plan.events) {
    switch (fe.kind) {
      case fault::FaultKind::MachineFail:
      case fault::FaultKind::MachineRecover: {
        const ServeEventKind kind = fe.kind == fault::FaultKind::MachineFail
                                        ? ServeEventKind::GpuFail
                                        : ServeEventKind::GpuRecover;
        for (GpuId gpu : cluster.machine(fe.machine).gpus) {
          push(kind, fe.time).gpu = gpu;
        }
        break;
      }
      case fault::FaultKind::GpuFail:
        push(ServeEventKind::GpuFail, fe.time).gpu = fe.gpu;
        break;
      case fault::FaultKind::GpuRecover:
        push(ServeEventKind::GpuRecover, fe.time).gpu = fe.gpu;
        break;
      case fault::FaultKind::JobCancel:
        push(ServeEventKind::JobCancel, fe.time).job = fe.job;
        break;
      case fault::FaultKind::JobComplete:
        push(ServeEventKind::JobComplete, fe.time).job = fe.job;
        break;
      case fault::FaultKind::StragglerStart:
      case fault::FaultKind::StragglerEnd:
        break;  // no slowdown notion at planning level
    }
  }
  return events;
}

}  // namespace hare::serve
