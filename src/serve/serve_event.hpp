// Event stream of the serving loop.
//
// hare::serve is driven by one time-ordered stream of events: job arrivals
// (pulled from a workload::TraceStream or an explicit spec list), hardware
// failures/recoveries and job cancellations (adapted from a fault::FaultPlan,
// which doubles as the scripted event source), and job completions
// (bookkeeping). Every event carries a (time, seq) pair and the loop drains
// strictly in that order — the same discipline the simulator uses — so a
// fixed event stream produces a bit-identical served schedule run-to-run.
//
// Scripted events get their sequence numbers at registration (adapter
// emission order); streamed arrivals continue the numbering after them, so
// a scripted event always precedes an arrival with the same timestamp.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "workload/job.hpp"

namespace hare::serve {

enum class ServeEventKind : std::uint8_t {
  Arrival,     ///< a new job enters the system
  GpuFail,     ///< GPU dies; its uncommitted plan suffix is displaced
  GpuRecover,  ///< GPU returns at max(event time, its pre-failure horizon)
  JobCancel,   ///< job leaves; never planned if the cancel lands first
  JobComplete, ///< early finish; releases the job's unstarted committed tail
};

struct ServeEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;
  ServeEventKind kind = ServeEventKind::Arrival;
  workload::JobSpec spec;  ///< Arrival
  GpuId gpu;               ///< Gpu{Fail,Recover}
  JobId job;               ///< JobCancel / JobComplete
};

/// Adapt a fault plan into scripted serve events: machine events expand to
/// one event per hosted GPU (same timestamp, GPU-id order), GPU and cancel
/// events map directly, straggler events are dropped (the serving loop
/// plans with profiled times and has no slowdown notion). Events keep the
/// plan's time order and are numbered 0..N-1 in emission order.
[[nodiscard]] std::vector<ServeEvent> events_from_fault_plan(
    const fault::FaultPlan& plan, const cluster::Cluster& cluster);

}  // namespace hare::serve
