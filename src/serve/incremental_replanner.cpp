#include "serve/incremental_replanner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hare::serve {

namespace {

/// Perturbation scale: large enough to dominate solver tolerance (1e-9),
/// small enough that 10^6 weighted seconds of objective shift start times
/// by far less than any profiled task time.
constexpr double kDelta = 1e-6;

/// Snap an extracted value to the perturbation grid, collapsing the
/// backends' last-ulp arithmetic differences to identical doubles.
double snap(double v) { return std::round(v * 1e6) / 1e6; }

}  // namespace

bool IncrementalReplanner::relax_batch(const workload::JobSet& jobs,
                                       const profiler::TimeTable& times,
                                       const std::vector<JobId>& batch,
                                       Time phi_floor, std::size_t gpus_alive,
                                       std::vector<Time>& h) {
  if (batch.empty()) return true;
  HARE_CHECK_MSG(h.size() >= jobs.task_count(),
                 "h must span the task array before relax_batch");

  // Count the block so every variable's perturbation rank is known up
  // front (rounds + completion per job).
  std::size_t block_vars = 0;
  for (JobId id : batch) block_vars += jobs.job(id).rounds() + 1;
  const double denom = static_cast<double>(block_vars) + 2.0;

  const bool fresh = !solver_ || pending_reset_;
  if (fresh && pending_reset_) ++stats_.compactions;

  opt::LinearProgram lp;  // staging program for the fresh path
  const auto add_var = [&](double cost, double lower) -> std::size_t {
    if (fresh) {
      const std::size_t var = lp.add_variable(cost);
      lp.set_bounds(var, lower, opt::LinearProgram::kInfinity);
      return var;
    }
    return solver_->add_variable(cost, lower, opt::LinearProgram::kInfinity);
  };
  const auto add_row =
      [&](const std::vector<std::pair<std::size_t, double>>& terms,
          double rhs) {
        if (fresh) {
          lp.add_constraint(terms, opt::Relation::GreaterEqual, rhs);
        } else {
          solver_->add_ge_constraint(terms, rhs);
        }
        ++rows_;
      };
  if (fresh) rows_ = 0;

  // Build the batch block. Variables are created job-major (rounds then
  // completion) so the block's perturbation ranks are reproducible.
  std::size_t pos = 0;
  std::vector<std::pair<std::size_t, double>> cut;
  std::vector<std::vector<std::size_t>> round_vars(batch.size());
  double sum_p = 0.0;
  double sum_p2 = 0.0;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const workload::Job& job = jobs.job(batch[b]);
    const Time t_min = times.min_total(batch[b]);
    const double tpr = static_cast<double>(job.tasks_per_round());
    const Time release = std::max(job.spec.arrival, phi_floor);
    std::size_t prev = 0;
    auto& rounds = round_vars[b];
    rounds.reserve(job.rounds());
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      const double eps = 1.0 + static_cast<double>(pos + 1) / denom;
      ++pos;
      const std::size_t x =
          add_var(kDelta * eps, release + static_cast<double>(r) * t_min);
      if (r > 0) add_row({{x, 1.0}, {prev, -1.0}}, t_min);
      cut.emplace_back(x, tpr * t_min);
      rounds.push_back(x);
      prev = x;
    }
    const double eps = 1.0 + static_cast<double>(pos + 1) / denom;
    ++pos;
    const std::size_t completion =
        add_var(job.spec.weight + kDelta * eps,
                release + static_cast<double>(job.rounds()) * t_min);
    add_row({{completion, 1.0}, {prev, -1.0}}, t_min);
    sum_p += static_cast<double>(job.rounds()) * tpr * t_min;
    sum_p2 += static_cast<double>(job.rounds()) * tpr * t_min * t_min;
  }
  const double capacity = static_cast<double>(std::max<std::size_t>(
      gpus_alive, 1));
  add_row(cut, 0.5 * (sum_p * sum_p - sum_p2) / capacity);

  if (fresh) {
    solver_.emplace(lp, config_.warm, config_.backend);
    pending_reset_ = false;
  }

  const opt::LpSolution solution = solver_->solve();
  ++stats_.batches;
  const std::size_t pivots = solver_->last_stats().total();
  last_warm_ = solver_->last_solve_was_warm();
  if (last_warm_) {
    ++stats_.warm_solves;
    stats_.warm_pivots += pivots;
  } else {
    ++stats_.cold_solves;
    stats_.cold_pivots += pivots;
  }
  if (!solution.optimal()) {
    pending_reset_ = true;
    return false;
  }

  // Hand off: h_i = x_{j,r} + max_m T^c_{j,m} / 2 for every task of the
  // block, snapped so both backends (and warm vs cold) emit identical h.
  for (std::size_t b = 0; b < batch.size(); ++b) {
    const workload::Job& job = jobs.job(batch[b]);
    const Time half_tc = times.max_tc(batch[b]) / 2.0;
    const std::uint32_t tpr = job.tasks_per_round();
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      const Time mid = snap(solution.values[round_vars[b][r]]) + half_tc;
      for (std::uint32_t k = 0; k < tpr; ++k) {
        const TaskId task = job.task_at(r, k);
        h[static_cast<std::size_t>(task.value())] = mid;
      }
    }
  }

  if (rows_ > config_.compact_rows) pending_reset_ = true;
  return true;
}

}  // namespace hare::serve
