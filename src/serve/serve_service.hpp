// hare::serve — long-lived streaming scheduler service.
//
// The offline pipeline plans a fixed JobSet once; the serving loop instead
// drains a time-ordered event stream (arrivals, failures, recoveries,
// cancellations) and keeps a single growing plan current by *incremental*
// replanning: every flushed admission batch is planned on top of the
// standing per-GPU commitment horizons phi, commitments are never revised,
// and phi advances monotonically — the same contract the online scheduler
// and the shard planner's online entry point obey. The one exception is an
// early JobComplete: committed tasks of the completed job that have not
// started yet will never run, so contiguous committed tails are popped and
// phi rolls back to the surviving tail's finish (a pure release — no
// surviving commitment moves).
//
// Replan paths, chosen per batch:
//  * LP (batches of at most `lp_max_batch_jobs` jobs) — the
//    IncrementalReplanner appends the batch's rows/columns onto the
//    retained sparse basis, dual-simplex re-solves, and hands middle
//    completion times to HareScheduler::schedule_jobs_with_h.
//  * Flat fluid (larger batches) — HareScheduler::schedule_jobs with the
//    Fluid relaxation, exactly the OnlineHareScheduler path.
//  * Sharded (batches of at least `shard_min_batch_jobs`, when enabled) —
//    HierarchicalPlanner::schedule_online plans only the shards that
//    received batch jobs, with a bit-identical serial/pooled fan-out.
//  * Greedy fallback — once `replan_budget` non-greedy replans have been
//    spent, batches are list-scheduled in arrival order (h = arrival)
//    through the same placement code, so even the fallback is a valid
//    Algorithm-1 step-2 schedule.
//
// Fault semantics are planning-level (no re-simulation): a GPU failure
// parks its horizon at a dead sentinel (earliest-finish placement then
// never picks it), tasks committed to it at or after the failure instant
// count as displaced, and each affected job's remaining rounds re-enter
// the stream as a *continuation job* arriving at the failure time.
// Recovery restores max(event time, pre-failure horizon). A cancellation
// that lands before its job is planned removes the job from every future
// batch (the JobSet row stays, keeping arrival-index == JobId).
//
// Determinism: for a fixed event stream the served schedule is
// bit-identical across serial and pooled execution and across LP backends
// (see incremental_replanner.hpp for the perturbation argument).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/hare_scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "profiler/time_table.hpp"
#include "serve/admission_batcher.hpp"
#include "serve/incremental_replanner.hpp"
#include "serve/serve_event.hpp"
#include "shard/hierarchical_planner.hpp"
#include "sim/schedule.hpp"
#include "workload/perf_model.hpp"
#include "workload/trace.hpp"

namespace hare::serve {

struct ServeConfig {
  /// Admission batching window (seconds); 0 coalesces only simultaneous
  /// arrivals (arrival-time planning).
  Time tick = 0.0;
  /// Batches up to this many jobs take the incremental-LP path; 0 disables
  /// the LP entirely (every batch plans flat/sharded).
  std::size_t lp_max_batch_jobs = 32;
  /// LP compaction bound (accumulated rows), forwarded to the replanner.
  std::size_t lp_compact_rows = 2048;
  /// Retain the LP basis across batches; false = cold reference mode.
  bool warm_lp = true;
  opt::LpBackend lp_backend = opt::LpBackend::Auto;
  /// Non-greedy replans allowed before the greedy fallback takes over
  /// permanently; 0 = unlimited.
  std::size_t replan_budget = 0;
  /// Batches with at least this many plannable jobs use the sharded online
  /// planner; 0 = never shard.
  std::size_t shard_min_batch_jobs = 0;
  shard::ShardPlannerConfig shard{};
  /// Placement/engine knobs for the flat and greedy paths (the relaxation
  /// mode is forced to Fluid, sync to Relaxed).
  core::HareConfig hare{};
};

struct ServeReport {
  sim::Schedule schedule;      ///< cumulative served plan
  double objective = 0.0;      ///< planned sum of weighted completions
  std::size_t arrivals = 0;    ///< stream arrivals admitted
  std::size_t planned_jobs = 0;
  std::size_t batches = 0;     ///< planned (non-empty) batches
  std::size_t max_batch_jobs = 0;
  std::size_t canceled = 0;      ///< cancels that landed before planning
  std::size_t late_cancels = 0;  ///< cancels after the job was planned
  std::size_t completions = 0;
  std::size_t fault_events = 0;  ///< GPU failures + recoveries applied
  std::size_t displaced_tasks = 0;
  /// Committed tasks freed by early JobComplete events (horizon release).
  std::size_t released_tasks = 0;
  std::size_t continuations = 0;  ///< continuation jobs re-entered
  // Per-path batch counts.
  std::size_t lp_batches = 0;
  std::size_t flat_batches = 0;
  std::size_t sharded_batches = 0;
  std::size_t greedy_batches = 0;
  ReplannerStats lp;  ///< warm/cold solve + pivot counts
};

class ServeService {
 public:
  ServeService(const cluster::Cluster& cluster, workload::PerfModel perf,
               ServeConfig config);

  /// Drain a pull-based arrival stream (plus scripted fault events) to the
  /// end and return the served plan. A service instance serves one stream.
  ServeReport run(workload::TraceStream& stream,
                  const fault::FaultPlan& faults = {});

  /// Same, over an explicit arrival list (specs in nondecreasing arrival
  /// order) — the porting surface for the offline benches and tests.
  ServeReport run(const std::vector<workload::JobSpec>& arrivals,
                  const fault::FaultPlan& faults = {});

  /// Post-run instance state, for replaying the served schedule through
  /// the simulator or inspecting per-job outcomes.
  [[nodiscard]] const workload::JobSet& jobs() const { return jobs_; }
  [[nodiscard]] const profiler::TimeTable& times() const { return times_; }

 private:
  template <typename NextSpec>
  ServeReport serve(NextSpec&& next_spec, const fault::FaultPlan& faults);

  JobId admit(workload::JobSpec spec, AdmissionBatcher& batcher);
  void flush_batch(AdmissionBatcher& batcher);
  void apply_event(const ServeEvent& event, AdmissionBatcher& batcher);
  void plan_batch(const std::vector<JobId>& plannable);

  const cluster::Cluster& cluster_;
  workload::PerfModel perf_;
  ServeConfig config_;

  workload::JobSet jobs_;
  profiler::TimeTable times_;
  sim::Schedule schedule_;
  core::HareScheduler::IncrementalState state_;
  std::vector<Time> saved_phi_;  ///< pre-failure horizons of dead GPUs
  std::vector<char> alive_;
  std::vector<char> canceled_;   ///< admitted but never to be planned
  std::vector<char> planned_;
  std::vector<char> continued_;  ///< a continuation was already spawned
  std::vector<char> precanceled_;  ///< cancel seen before arrival (by index)
  std::vector<Time> h_;

  core::HareScheduler flat_;
  IncrementalReplanner replanner_;
  std::optional<shard::HierarchicalPlanner> sharded_;

  ServeReport report_;
  std::size_t replans_spent_ = 0;  ///< non-greedy replans so far
  bool ran_ = false;
};

}  // namespace hare::serve
