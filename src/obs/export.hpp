// hare::obs exporters.
//
// * Chrome/Perfetto `trace_event` JSON — load in chrome://tracing (or
//   ui.perfetto.dev). Spans become "X" (complete) events with microsecond
//   timestamps relative to the tracer epoch; instant events (log records)
//   become "i" events carrying their text in args.detail; each thread gets
//   a "M" thread_name metadata record.
// * Flamegraph-style text summary — per-thread span nesting is rebuilt
//   from start/end containment, then identical call paths are merged into
//   `total_ms  count  path;like;this` lines, heaviest first.
#pragma once

#include <iosfwd>
#include <string>

namespace hare::obs {

/// Serialize every registered ring as Chrome trace JSON.
void write_chrome_trace(std::ostream& out);
[[nodiscard]] bool write_chrome_trace_file(const std::string& path);

/// Aggregated call-path summary of all recorded spans.
[[nodiscard]] std::string flame_summary();
[[nodiscard]] bool write_flame_summary_file(const std::string& path);

}  // namespace hare::obs
