// hare::obs span tracer.
//
// RAII `HARE_SPAN(category, name)` scopes are recorded into lock-free
// per-thread ring buffers and exported as Chrome/Perfetto `trace_event`
// JSON (obs/export.hpp). The tracer is a process-wide singleton that is
// *disabled* by default: a disabled span costs one relaxed atomic load and
// a branch, so instrumentation can stay compiled into hot paths (the
// planner's LP-cut rounds, the simulator's event loop) without perturbing
// benchmarks. Compile with -DHARE_OBS_ENABLED=0 to erase the macros
// entirely.
//
// Writers are wait-free: each thread owns its ring (registered once, on
// first record) and publishes events with a release store of the head
// index. Snapshots are taken at quiescent points (end of a run / test
// barrier); a snapshot racing an active writer may miss or tear the very
// newest events but never blocks the writer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef HARE_OBS_ENABLED
#define HARE_OBS_ENABLED 1
#endif

namespace hare::obs {

enum class Phase : std::uint8_t { Complete, Instant };

/// One recorded scope (Complete) or point event (Instant). `name`,
/// `category` and `arg_name` must be pointers to static-storage strings
/// (string literals at the instrumentation site); `detail` owns free-form
/// text for instant events (log records) and stays empty for spans.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;  ///< == start_ns for Instant
  Phase phase = Phase::Complete;
  const char* arg_name = nullptr;  ///< optional numeric annotation
  double arg_value = 0.0;
  std::string detail;
};

/// Fixed-capacity single-writer ring. The owning thread appends with a
/// release publish; older events are overwritten once full (`dropped()`
/// reports how many).
class SpanRing {
 public:
  SpanRing(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), slots_(capacity) {}

  void record(TraceEvent event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[head % slots_.size()] = std::move(event);
    head_.store(head + 1, std::memory_order_release);
  }

  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

  /// Events written beyond capacity (oldest were overwritten).
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return head > slots_.size() ? head - slots_.size() : 0;
  }

  /// Copy surviving events oldest-first. Only safe while the owning thread
  /// is not concurrently recording (quiescent point).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, slots_.size());
    std::vector<TraceEvent> events;
    events.reserve(n);
    for (std::uint64_t i = head - n; i < head; ++i) {
      events.push_back(slots_[i % slots_.size()]);
    }
    return events;
  }

 private:
  std::uint32_t tid_;
  std::string thread_name_;
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Process-wide tracer: owns the per-thread rings and the shared epoch.
class Tracer {
 public:
  static Tracer& instance();

  /// Hot-path gate: one relaxed load.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Enabling also mirrors log records into the trace as instant events
  /// (common/logging.hpp sink) so logs and spans share one clock.
  void enable();
  void disable();

  /// Drop all recorded events and thread registrations. Test-only: callers
  /// must guarantee no thread is concurrently recording.
  void clear();

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Overridable with env HARE_OBS_RING at process start.
  void set_ring_capacity(std::size_t capacity);

  /// Name the calling thread's track in the exported trace.
  void set_thread_name(std::string name);

  /// The calling thread's ring (registered on first use).
  SpanRing& this_thread_ring();

  /// Stable copy of all registered rings.
  [[nodiscard]] std::vector<std::shared_ptr<SpanRing>> rings() const;

  /// Nanoseconds since the tracer epoch (process-wide steady clock).
  static std::uint64_t now_ns();

 private:
  Tracer();
  static std::atomic<bool>& enabled_flag();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<SpanRing>> rings_;
  std::size_t ring_capacity_;
  std::uint32_t next_tid_ = 1;
  /// Bumped by clear() to invalidate thread-local ring caches without
  /// locking on the record path.
  std::atomic<std::uint64_t> generation_{0};
};

/// Record a point event (log record, marker) on the calling thread.
void instant(const char* category, const char* name, std::string detail = {});

/// RAII scope. Costs nothing beyond the enabled() check when tracing is
/// off; records a Complete event on destruction when on.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (!Tracer::enabled()) return;
    active_ = true;
    category_ = category;
    name_ = name;
    start_ns_ = Tracer::now_ns();
  }

  Span(const char* category, const char* name, const char* arg_name,
       double arg_value)
      : Span(category, name) {
    arg_name_ = arg_name;
    arg_value_ = arg_value;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/overwrite the numeric annotation before the scope closes.
  void set_arg(const char* name, double value) {
    arg_name_ = name;
    arg_value_ = value;
  }

  /// Close the scope early (idempotent); the destructor is a no-op after.
  void end() {
    if (!active_) return;
    active_ = false;
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.start_ns = start_ns_;
    event.end_ns = Tracer::now_ns();
    event.arg_name = arg_name_;
    event.arg_value = arg_value_;
    Tracer::instance().this_thread_ring().record(std::move(event));
  }

  ~Span() { end(); }

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace hare::obs

#if HARE_OBS_ENABLED
#define HARE_OBS_CONCAT_IMPL(a, b) a##b
#define HARE_OBS_CONCAT(a, b) HARE_OBS_CONCAT_IMPL(a, b)
#define HARE_SPAN(category, name) \
  ::hare::obs::Span HARE_OBS_CONCAT(hare_obs_span_, __LINE__)(category, name)
#define HARE_SPAN_ARG(category, name, arg_name, arg_value)             \
  ::hare::obs::Span HARE_OBS_CONCAT(hare_obs_span_, __LINE__)(         \
      category, name, arg_name, static_cast<double>(arg_value))
#else
#define HARE_SPAN(category, name) static_cast<void>(0)
#define HARE_SPAN_ARG(category, name, arg_name, arg_value) static_cast<void>(0)
#endif
