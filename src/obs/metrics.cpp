#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hare::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  HARE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::record(double value) {
  // Upper-bound semantics: first bucket whose bound >= value.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

namespace {

/// JSON-safe number formatting (no inf/nan; plain decimal).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

void Registry::write_json(std::ostream& out) const {
  std::scoped_lock lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << json_number(gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"bounds\": [";
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << (i ? ", " : "") << json_number(bounds[i]);
    }
    out << "], \"counts\": [";
    const auto counts = histogram->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out << (i ? ", " : "") << counts[i];
    }
    out << "], \"count\": " << histogram->count()
        << ", \"sum\": " << json_number(histogram->sum()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  write_json(file);
  return static_cast<bool>(file);
}

void Registry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::vector<double> latency_bounds_us() {
  // 1, 3, 10, 30, ... 1e7 µs: half-decade resolution from 1 µs to 10 s.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    if (decade < 1e7) bounds.push_back(3.0 * decade);
  }
  return bounds;
}

}  // namespace hare::obs
