// Umbrella header for hare::obs — spans, metrics, exporters.
//
// See docs/OBSERVABILITY.md for naming conventions and usage.
#pragma once

#include "obs/export.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export
