// hare::obs metrics: named counters, gauges, and fixed-bucket histograms.
//
// Unlike spans, metric updates are always live (no enabled() gate): each is
// a relaxed atomic op, cheap enough for the layers that carry them
// (`planner.lp_pivots`, `sim.events_processed`, `switch.preempt_latency_us`,
// `runtime.queue_depth`). Instrumentation sites cache the reference:
//
//   static auto& events = obs::counter("sim.events_processed");
//   events.add();
//
// The registry hands out stable references (instruments are never
// destroyed, only reset), and snapshots everything as JSON for
// `hare_cli --metrics-out` / the bench harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hare::obs {

/// Monotonic event count. Unsigned 64-bit with well-defined wraparound
/// (modulo 2^64) — exporters report the raw value.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, pool occupancy).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples with
/// value <= bounds[i] (first matching bucket); samples above the last
/// bound land in the overflow bucket. Bounds are fixed at creation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Registry {
 public:
  static Registry& instance();

  /// Get-or-create. References stay valid for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only when the histogram is first created.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Snapshot every instrument as one JSON object.
  void write_json(std::ostream& out) const;
  [[nodiscard]] bool write_json_file(const std::string& path) const;

  /// Zero all values; registered instruments (and cached refs) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return Registry::instance().histogram(name, std::move(bounds));
}

/// Default bucket bounds for latencies in microseconds: 1 µs .. 10 s,
/// one bucket per decade half-step.
[[nodiscard]] std::vector<double> latency_bounds_us();

}  // namespace hare::obs
