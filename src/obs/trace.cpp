#include "obs/trace.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace hare::obs {

namespace {

std::size_t ring_capacity_from_env() {
  if (const char* env = std::getenv("HARE_OBS_RING")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::size_t{1} << 16;
}

const char* level_span_name(common::LogLevel level) {
  switch (level) {
    case common::LogLevel::Debug: return "log.debug";
    case common::LogLevel::Info: return "log.info";
    case common::LogLevel::Warn: return "log.warn";
    case common::LogLevel::Error: return "log.error";
    case common::LogLevel::Off: return "log.off";
  }
  return "log";
}

}  // namespace

/// Thread-local handle. Caches the ring shared_ptr plus the tracer
/// generation so clear() (which drops every ring) forces re-registration
/// instead of writes into an orphaned ring.
struct ThreadRingCache {
  std::shared_ptr<SpanRing> ring;
  std::uint64_t generation = ~std::uint64_t{0};
};

namespace {
thread_local ThreadRingCache t_ring_cache;
}  // namespace

Tracer::Tracer() : ring_capacity_(ring_capacity_from_env()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Tracer::enable() {
  instance();  // construct before first record
  enabled_flag().store(true, std::memory_order_relaxed);
  common::Logger::instance().set_sink(
      [](common::LogLevel level, std::string_view message) {
        instant("log", level_span_name(level), std::string(message));
      });
}

void Tracer::disable() {
  enabled_flag().store(false, std::memory_order_relaxed);
  common::Logger::instance().set_sink(nullptr);
}

void Tracer::clear() {
  std::scoped_lock lock(mutex_);
  rings_.clear();
  next_tid_ = 1;
  ++generation_;
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  std::scoped_lock lock(mutex_);
  if (capacity > 0) ring_capacity_ = capacity;
}

void Tracer::set_thread_name(std::string name) {
  this_thread_ring().set_thread_name(std::move(name));
}

SpanRing& Tracer::this_thread_ring() {
  if (t_ring_cache.ring &&
      t_ring_cache.generation == generation_.load(std::memory_order_acquire)) {
    return *t_ring_cache.ring;
  }
  std::scoped_lock lock(mutex_);
  auto ring = std::make_shared<SpanRing>(next_tid_++, ring_capacity_);
  rings_.push_back(ring);
  t_ring_cache.ring = std::move(ring);
  t_ring_cache.generation = generation_.load(std::memory_order_relaxed);
  return *t_ring_cache.ring;
}

std::vector<std::shared_ptr<SpanRing>> Tracer::rings() const {
  std::scoped_lock lock(mutex_);
  return rings_;
}

std::uint64_t Tracer::now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void instant(const char* category, const char* name, std::string detail) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = Tracer::now_ns();
  event.end_ns = event.start_ns;
  event.phase = Phase::Instant;
  event.detail = std::move(detail);
  Tracer::instance().this_thread_ring().record(std::move(event));
}

}  // namespace hare::obs
