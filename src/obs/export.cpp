#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/trace.hpp"

namespace hare::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';  // other control chars: not worth the \u escape
        } else {
          out << c;
        }
    }
  }
}

/// Microseconds with fixed sub-µs precision: default stream formatting
/// would switch to scientific notation (and lose ordering) once a trace
/// runs past a second.
std::string to_us(std::uint64_t ns) {
  std::ostringstream text;
  text.setf(std::ios::fixed);
  text.precision(3);
  text << static_cast<double>(ns) / 1000.0;
  return text.str();
}

void write_event(std::ostream& out, const TraceEvent& event,
                 std::uint32_t tid, bool& first) {
  out << (first ? "\n" : ",\n") << "    {\"name\": \"";
  write_escaped(out, event.name ? event.name : "?");
  out << "\", \"cat\": \"";
  write_escaped(out, event.category ? event.category : "?");
  out << "\", \"ph\": \""
      << (event.phase == Phase::Instant ? "i" : "X") << "\", \"ts\": "
      << to_us(event.start_ns) << ", \"pid\": 1, \"tid\": " << tid;
  if (event.phase == Phase::Instant) {
    out << ", \"s\": \"t\"";
  } else {
    out << ", \"dur\": " << to_us(event.end_ns - event.start_ns);
  }
  const bool has_arg = event.arg_name != nullptr;
  const bool has_detail = !event.detail.empty();
  if (has_arg || has_detail) {
    out << ", \"args\": {";
    if (has_arg) {
      out << "\"";
      write_escaped(out, event.arg_name);
      out << "\": " << event.arg_value;
    }
    if (has_detail) {
      out << (has_arg ? ", " : "") << "\"detail\": \"";
      write_escaped(out, event.detail);
      out << "\"";
    }
    out << "}";
  }
  out << "}";
  first = false;
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const auto rings = Tracer::instance().rings();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& ring : rings) {
    out << (first ? "\n" : ",\n") << "    {\"name\": \"thread_name\", "
        << "\"ph\": \"M\", \"pid\": 1, \"tid\": " << ring->tid()
        << ", \"args\": {\"name\": \"";
    write_escaped(out, ring->thread_name().empty()
                           ? "thread-" + std::to_string(ring->tid())
                           : ring->thread_name());
    out << "\"}}";
    first = false;
    for (const auto& event : ring->snapshot()) {
      write_event(out, event, ring->tid(), first);
    }
    if (const std::uint64_t dropped = ring->dropped()) {
      out << ",\n    {\"name\": \"obs.dropped_events\", \"cat\": \"obs\", "
          << "\"ph\": \"i\", \"ts\": 0, \"pid\": 1, \"tid\": " << ring->tid()
          << ", \"s\": \"t\", \"args\": {\"count\": " << dropped << "}}";
    }
  }
  out << "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  write_chrome_trace(file);
  return static_cast<bool>(file);
}

namespace {

struct PathStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Rebuild nesting per thread from interval containment: events sorted by
/// (start, longest-first) visit parents before their children, and a stack
/// of currently open spans yields each event's call path.
void accumulate_thread(const std::vector<TraceEvent>& events,
                       std::map<std::string, PathStats>& paths) {
  std::vector<const TraceEvent*> spans;
  spans.reserve(events.size());
  for (const auto& event : events) {
    if (event.phase == Phase::Complete) spans.push_back(&event);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
              return a->end_ns > b->end_ns;
            });
  std::vector<const TraceEvent*> open;
  std::string path;
  for (const TraceEvent* span : spans) {
    while (!open.empty() && span->start_ns >= open.back()->end_ns) {
      open.pop_back();
    }
    path.clear();
    for (const TraceEvent* ancestor : open) {
      path += ancestor->name;
      path += ';';
    }
    path += span->name;
    PathStats& stats = paths[path];
    ++stats.count;
    stats.total_ns += span->end_ns - span->start_ns;
    open.push_back(span);
  }
}

}  // namespace

std::string flame_summary() {
  std::map<std::string, PathStats> paths;
  for (const auto& ring : Tracer::instance().rings()) {
    accumulate_thread(ring->snapshot(), paths);
  }
  std::vector<std::pair<std::string, PathStats>> rows(paths.begin(),
                                                      paths.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  std::ostringstream out;
  out << "total_ms     count  path\n";
  for (const auto& [path, stats] : rows) {
    std::ostringstream ms;
    ms.setf(std::ios::fixed);
    ms.precision(3);
    ms << static_cast<double>(stats.total_ns) / 1e6;
    std::string ms_text = ms.str();
    if (ms_text.size() < 12) ms_text.append(12 - ms_text.size(), ' ');
    std::string count_text = std::to_string(stats.count);
    if (count_text.size() < 6) {
      count_text.insert(0, 6 - count_text.size(), ' ');
    }
    out << ms_text << ' ' << count_text << "  " << path << '\n';
  }
  return out.str();
}

bool write_flame_summary_file(const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << flame_summary();
  return static_cast<bool>(file);
}

}  // namespace hare::obs
