// HareSystem — the end-to-end facade (Fig 9's system overview).
//
// Wires the preparation stage (job submission → profiler + profile DB →
// scheduling algorithm) to the training stage (executors = the simulator
// with the fast-task-switching models). One call runs a scheduler against
// the submitted workload and returns the realized metrics; a comparison
// helper runs Hare plus the four baselines of §7.1 on identical inputs.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/bounds.hpp"
#include "core/hare_scheduler.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/profiler.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace hare::core {

struct RunReport {
  std::string scheduler;
  sim::SimResult result;
  double planned_objective = 0.0;  ///< scheduler's own prediction
  double scheduling_ms = 0.0;      ///< wall time of the algorithm itself
  ApproximationReport approximation;
};

class HareSystem {
 public:
  struct Options {
    std::uint64_t seed = 42;
    workload::PerfModelConfig perf{};
    profiler::ProfilerConfig profiler{};
    sim::SimConfig sim{};
    /// Consult/extend the historical profile database.
    bool use_profile_db = true;
  };

  explicit HareSystem(cluster::Cluster cluster);
  HareSystem(cluster::Cluster cluster, Options options);

  /// Submit one job (preparation stage input).
  JobId submit(workload::JobSpec spec);
  /// Submit a whole trace.
  void submit_all(const workload::JobSet& jobs);

  /// Profile (re)runs lazily before the first run() after a submission.
  [[nodiscard]] RunReport run(sched::Scheduler& scheduler);

  /// Same, reusing `scratch`'s simulator buffers (the sweep engine keeps
  /// one per worker thread). Never changes a result.
  [[nodiscard]] RunReport run(sched::Scheduler& scheduler,
                              sim::SimScratch& scratch);

  /// Hare + the four §7.1 baselines on the identical instance.
  [[nodiscard]] std::vector<RunReport> run_comparison(
      HareConfig hare_config = {});

  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const workload::JobSet& jobs() const { return jobs_; }
  [[nodiscard]] const profiler::ProfileDb& profile_db() const { return db_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Profiled table the schedulers plan with (profiles if stale).
  [[nodiscard]] const profiler::TimeTable& profiled_times();
  /// Ground-truth table the simulator executes with.
  [[nodiscard]] const profiler::TimeTable& actual_times();

 private:
  void ensure_profiled();

  cluster::Cluster cluster_;
  Options options_;
  workload::JobSet jobs_;
  profiler::ProfileDb db_;
  profiler::TimeTable profiled_;
  profiler::TimeTable actual_;
  bool profiled_fresh_ = false;
};

/// The standard §7.1 line-up: Hare, Gavel_FIFO, SRTF, Sched_Homo,
/// Sched_Allox.
[[nodiscard]] std::vector<std::unique_ptr<sched::Scheduler>>
make_standard_schedulers(HareConfig hare_config = {});

}  // namespace hare::core
