#include "core/hare_system.hpp"

#include "sched/gavel_fifo.hpp"
#include "sched/sched_allox.hpp"
#include "sched/sched_homo.hpp"
#include "sched/srtf.hpp"

namespace hare::core {

HareSystem::HareSystem(cluster::Cluster cluster)
    : HareSystem(std::move(cluster), Options()) {}

HareSystem::HareSystem(cluster::Cluster cluster, Options options)
    : cluster_(std::move(cluster)), options_(options) {}

JobId HareSystem::submit(workload::JobSpec spec) {
  profiled_fresh_ = false;
  return jobs_.add_job(std::move(spec));
}

void HareSystem::submit_all(const workload::JobSet& jobs) {
  for (const auto& job : jobs.jobs()) submit(job.spec);
}

void HareSystem::ensure_profiled() {
  if (profiled_fresh_) return;
  const workload::PerfModel perf(options_.perf);
  profiler::Profiler profiler(perf, options_.profiler, options_.seed);
  profiled_ =
      profiler.profile(jobs_, cluster_, options_.use_profile_db ? &db_ : nullptr);
  actual_ = profiler.exact(jobs_, cluster_);
  profiled_fresh_ = true;
}

const profiler::TimeTable& HareSystem::profiled_times() {
  ensure_profiled();
  return profiled_;
}

const profiler::TimeTable& HareSystem::actual_times() {
  ensure_profiled();
  return actual_;
}

RunReport HareSystem::run(sched::Scheduler& scheduler) {
  sim::SimScratch scratch;
  return run(scheduler, scratch);
}

RunReport HareSystem::run(sched::Scheduler& scheduler,
                          sim::SimScratch& scratch) {
  ensure_profiled();
  const sched::SchedulerInput input{cluster_, jobs_, profiled_};

  const auto start = std::chrono::steady_clock::now();
  const sim::Schedule schedule = scheduler.schedule(input);
  const auto end = std::chrono::steady_clock::now();

  const sim::Simulator simulator(cluster_, jobs_, actual_, options_.sim);

  RunReport report;
  report.scheduler = std::string(scheduler.name());
  report.result = simulator.run(schedule, scratch);
  report.planned_objective = schedule.predicted_objective;
  report.scheduling_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  report.approximation =
      check_approximation(cluster_, jobs_, actual_, report.result);
  return report;
}

std::vector<RunReport> HareSystem::run_comparison(HareConfig hare_config) {
  std::vector<RunReport> reports;
  for (const auto& scheduler : make_standard_schedulers(hare_config)) {
    reports.push_back(run(*scheduler));
  }
  return reports;
}

std::vector<std::unique_ptr<sched::Scheduler>> make_standard_schedulers(
    HareConfig hare_config) {
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<HareScheduler>(hare_config));
  schedulers.push_back(std::make_unique<sched::GavelFifoScheduler>());
  schedulers.push_back(std::make_unique<sched::SrtfScheduler>());
  schedulers.push_back(std::make_unique<sched::SchedHomoScheduler>());
  schedulers.push_back(std::make_unique<sched::SchedAlloxScheduler>());
  return schedulers;
}

}  // namespace hare::core
