#include "core/relaxation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/placement_index.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/queyranne.hpp"
#include "opt/simplex.hpp"
#include "workload/feasibility.hpp"

namespace hare::core {

common::ThreadPool* PlannerEngine::pool() const {
  if (naive || threads <= 1) return nullptr;
  return &common::shared_pool();
}

namespace {

/// Fluid relaxation pass: arrival-adjusted WSPT job sequencing with
/// earliest-finish-time task placement.
//
// Minimizing Σ w_n C_n wants short/heavy jobs *sequenced* ahead of long
// ones, not fair-shared — the LP relaxation produces exactly that shape in
// its x̂, so the fluid surrogate orders jobs by a_n + (minimum total
// work)/w_n and list-schedules each job's rounds in turn. Task placement
// is earliest-finish over max(release, φ_m) + T^c_{i,m}, which (a) keeps
// slow GPUs off a round's critical path when waiting for a fast one wins,
// and (b) *serializes same-round tasks onto one fast GPU* whenever
// 2·T^c_fast < T^c_slow — the relaxed scale-fixed behaviour of Fig 4(b)
// falls out of the greedy rather than being special-cased.
//
// Three engine paths compute the same placement argmin — the naive O(G)
// scan (reference), the PlacementIndex φ-set walk, and the pool-sharded
// scan for very wide clusters — and produce bit-identical passes.
struct FluidPass {
  std::vector<Time> x_hat;
  std::vector<GpuId> y_hat;
  std::vector<Time> finish;  ///< x̂ + T^c + T^s per task
  double objective = 0.0;
};

FluidPass run_fluid_pass(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const profiler::TimeTable& times,
                         const SubProblem& sub, const PlannerEngine& engine,
                         PlannerScratch* scratch) {
  HARE_SPAN("planner", "planner.fluid_pass");
  const std::size_t task_count = jobs.task_count();
  const std::size_t gpu_count = cluster.gpu_count();
  HARE_CHECK_MSG(gpu_count > 0, "cluster has no GPUs");
  common::ThreadPool* pool = engine.pool();

  FluidPass pass;
  pass.x_hat.assign(task_count, 0.0);
  pass.y_hat.assign(task_count, GpuId{});
  pass.finish.assign(task_count, 0.0);

  // Arrival-adjusted WSPT key: a_n + (minimum possible total work) / w_n.
  // The cached min_total aggregate turns the per-job O(G) reduction into an
  // O(1) lookup; the naive path keeps the seed's explicit rescan.
  std::vector<JobId> order;
  order.reserve(jobs.job_count());
  std::vector<double> key(jobs.job_count(), 0.0);
  for (const auto& job : jobs.jobs()) {
    if (!sub.active(job.id)) continue;
    Time best_round = kTimeInfinity;
    if (engine.naive) {
      for (std::size_t g = 0; g < gpu_count; ++g) {
        best_round = std::min(
            best_round, times.total(job.id, GpuId(static_cast<int>(g))));
      }
    } else {
      best_round = times.min_total(job.id);
    }
    key[static_cast<std::size_t>(job.id.value())] =
        job.spec.arrival + static_cast<double>(job.rounds()) *
                               static_cast<double>(job.tasks_per_round()) *
                               best_round / job.spec.weight;
    order.push_back(job.id);
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const double ka = key[static_cast<std::size_t>(a.value())];
    const double kb = key[static_cast<std::size_t>(b.value())];
    if (ka != kb) return ka < kb;
    return a < b;
  });

  // The fitting matrix and the index's masked T^c rows are φ-independent;
  // when the caller hands us a scratch, build them once and share them with
  // the list-scheduling pass. The naive engine keeps the seed's
  // build-per-pass behaviour.
  const bool share = scratch != nullptr && !engine.naive;
  std::vector<std::vector<char>> local_fits;
  if (share) {
    scratch->sync(cluster, jobs);
  } else {
    local_fits = workload::fitting_matrix(cluster, jobs);
  }
  const auto& fits = share ? scratch->fits : local_fits;
  std::vector<Time> phi(gpu_count, 0.0);
  for (std::size_t g = 0; g < gpu_count; ++g) phi[g] = sub.phi(g);

  const bool sharded = engine.use_sharded_scan(gpu_count) && pool != nullptr;
  std::optional<PlacementIndex> local_index;
  PlacementIndex* index = nullptr;
  if (!engine.naive && !sharded) {
    if (share) {
      if (scratch->index) {
        // A cross-batch scratch may lag a grown instance: extend the masked
        // rows for appended jobs before re-seeding the horizons.
        scratch->index->append_jobs(times, fits);
        scratch->index->reset_phi(phi);
      } else {
        scratch->index.emplace(times, gpu_count, fits, phi, pool, &cluster,
                               engine.bucketed_index_min_gpus);
      }
      index = &*scratch->index;
    } else {
      local_index.emplace(times, gpu_count, fits, phi, pool, &cluster,
                          engine.bucketed_index_min_gpus);
      index = &*local_index;
    }
  }

  for (const JobId job_id : order) {
    const workload::Job& job = jobs.job(job_id);
    const auto& job_fits = fits[static_cast<std::size_t>(job_id.value())];
    Time release = job.spec.arrival;
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      Time barrier = release;
      for (TaskId task_id :
           jobs.round_tasks(job_id, static_cast<RoundIndex>(r))) {
        PlacementIndex::Candidate chosen;
        if (engine.naive) {
          for (std::size_t g = 0; g < gpu_count; ++g) {
            if (!job_fits[g]) continue;  // task would not fit device memory
            const Time start = std::max(release, phi[g]);
            const Time finish =
                start + times.tc(job_id, GpuId(static_cast<int>(g)));
            if (finish < chosen.finish) {
              chosen = PlacementIndex::Candidate{g, start, finish};
            }
          }
        } else if (sharded) {
          chosen = sharded_earliest_finish(times, job_id, release, job_fits,
                                           phi, *pool);
        } else {
          chosen = index->earliest_finish(job_id, release);
        }
        HARE_CHECK_MSG(chosen.valid(), "no feasible GPU for task");
        const GpuId gpu(static_cast<int>(chosen.gpu));
        const std::size_t idx = static_cast<std::size_t>(task_id.value());
        pass.x_hat[idx] = chosen.start;
        pass.y_hat[idx] = gpu;
        pass.finish[idx] = chosen.start + times.total(job_id, gpu);
        const Time busy_until =
            chosen.start + times.tc(job_id, gpu);  // sync overlaps
        phi[chosen.gpu] = busy_until;
        if (index) index->set_phi(chosen.gpu, busy_until);
        barrier = std::max(barrier, pass.finish[idx]);
      }
      release = barrier;
    }
    pass.objective += job.spec.weight * release;
  }
  return pass;
}

std::vector<Time> middle_completion_times(const workload::JobSet& jobs,
                                          const profiler::TimeTable& times,
                                          const std::vector<Time>& x_hat,
                                          const PlannerEngine& engine) {
  HARE_SPAN("planner", "planner.middle_completion");
  std::vector<Time> h(jobs.task_count(), 0.0);
  if (engine.naive) {
    // Seed behaviour: rescan the GPU axis for every task.
    for (const auto& task : jobs.tasks()) {
      const std::size_t idx = static_cast<std::size_t>(task.id.value());
      Time max_tc = times.tc(task.job, GpuId(0));
      for (std::size_t g = 1; g < times.gpu_count(); ++g) {
        max_tc = std::max(max_tc,
                          times.tc(task.job, GpuId(static_cast<int>(g))));
      }
      h[idx] = x_hat[idx] + 0.5 * max_tc;
    }
    return h;
  }
  for (const auto& task : jobs.tasks()) {
    const std::size_t idx = static_cast<std::size_t>(task.id.value());
    h[idx] = x_hat[idx] + 0.5 * times.max_tc(task.job);
  }
  return h;
}

}  // namespace

RelaxationResult HareRelaxation::solve(const cluster::Cluster& cluster,
                                       const workload::JobSet& jobs,
                                       const profiler::TimeTable& times,
                                       const SubProblem& sub,
                                       PlannerScratch* scratch) const {
  HARE_SPAN("planner", "planner.relaxation");
  HARE_CHECK_MSG(times.job_count() == jobs.job_count() &&
                     times.gpu_count() == cluster.gpu_count(),
                 "time table does not match instance");
  // Freeze the aggregate cache before any pool fan-out: every later
  // min/max/α accessor is then a pure read.
  if (!config_.engine.naive) times.precompute();
  switch (config_.mode) {
    case RelaxMode::Fluid:
      return solve_fluid(cluster, jobs, times, sub, scratch);
    case RelaxMode::LpCuts:
      return solve_lp_cuts(cluster, jobs, times, sub, scratch);
  }
  HARE_CHECK_MSG(false, "unknown relaxation mode");
  return {};
}

RelaxationResult HareRelaxation::solve_fluid(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, const SubProblem& sub,
    PlannerScratch* scratch) const {
  const FluidPass pass =
      run_fluid_pass(cluster, jobs, times, sub, config_.engine, scratch);
  RelaxationResult result;
  result.x_hat = pass.x_hat;
  result.y_hat = pass.y_hat;
  result.objective = pass.objective;
  result.h = middle_completion_times(jobs, times, result.x_hat, config_.engine);
  return result;
}

RelaxationResult HareRelaxation::solve_lp_cuts(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, const SubProblem& sub,
    PlannerScratch* scratch) const {
  HARE_SPAN("planner", "planner.lp_cuts");
  static obs::Counter& lp_solve_counter = obs::counter("planner.lp_solves");
  static obs::Counter& pivot_counter = obs::counter("planner.lp_pivots");
  static obs::Counter& cut_counter = obs::counter("planner.cuts_added");
  static obs::Counter& dense_pivot_counter =
      obs::counter("planner.lp_pivots_dense");
  static obs::Counter& sparse_pivot_counter =
      obs::counter("planner.lp_pivots_sparse");
  static obs::Counter& canonical_counter =
      obs::counter("planner.lp_canonical_solves");
  static obs::Counter& sep_total_counter =
      obs::counter("planner.sep_tasks_total");
  static obs::Counter& sep_resorted_counter =
      obs::counter("planner.sep_tasks_resorted");
  static obs::Gauge& rows_gauge = obs::gauge("planner.lp_rows");
  static obs::Gauge& cols_gauge = obs::gauge("planner.lp_cols");
  static obs::Gauge& nonzeros_gauge = obs::gauge("planner.lp_nonzeros");
  static obs::Gauge& density_gauge = obs::gauge("planner.lp_density");
  HARE_CHECK_MSG(sub.job_mask.empty() && sub.initial_phi.empty(),
                 "LpCuts mode does not support incremental sub-problems; "
                 "use Fluid for online planning");
  // Fix ŷ with the fluid pass, then cut-plane the LP over x, round-end
  // variables E, and job completions C.
  const FluidPass pass =
      run_fluid_pass(cluster, jobs, times, sub, config_.engine, scratch);
  const std::size_t task_count = jobs.task_count();
  const std::size_t gpu_count = cluster.gpu_count();
  common::ThreadPool* pool = config_.engine.pool();

  obs::Span lp_build_span("planner", "planner.lp_build");
  opt::LinearProgram lp;
  // Variables: x_i per task, then E_{n,r} per round, then C_n per job.
  std::vector<std::size_t> x_var(task_count);
  for (std::size_t i = 0; i < task_count; ++i) x_var[i] = lp.add_variable(0.0);

  std::vector<std::vector<std::size_t>> e_var(jobs.job_count());
  std::vector<std::size_t> c_var(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    auto& rounds = e_var[static_cast<std::size_t>(job.id.value())];
    rounds.resize(job.rounds());
    for (auto& v : rounds) v = lp.add_variable(0.0);
    c_var[static_cast<std::size_t>(job.id.value())] =
        lp.add_variable(job.spec.weight);
  }

  auto assigned_total = [&](TaskId id) {
    const workload::Task& task = jobs.task(id);
    return times.total(task.job,
                       pass.y_hat[static_cast<std::size_t>(id.value())]);
  };

  for (const auto& job : jobs.jobs()) {
    const std::size_t j = static_cast<std::size_t>(job.id.value());
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      const std::size_t e = e_var[j][r];
      for (TaskId id : jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
        const std::size_t x = x_var[static_cast<std::size_t>(id.value())];
        // (4): release — round 0 at arrival, later rounds behind E_{r-1}.
        // The round-0 release is a single-variable constraint: stated as a
        // bound it never enters the row space of either LP backend.
        if (r == 0) {
          lp.set_bounds(x, job.spec.arrival, opt::LinearProgram::kInfinity);
        } else {
          lp.add_constraint({{x, 1.0}, {e_var[j][r - 1], -1.0}},
                            opt::Relation::GreaterEqual, 0.0);
        }
        // Round end dominates every member's completion: E >= x + T.
        lp.add_constraint({{e, 1.0}, {x, -1.0}}, opt::Relation::GreaterEqual,
                          assigned_total(id));
      }
    }
    // (6): C_n >= E_{n,last}.
    lp.add_constraint({{c_var[j], 1.0}, {e_var[j][job.rounds() - 1], -1.0}},
                      opt::Relation::GreaterEqual, 0.0);
  }

  // Group tasks per machine under ŷ for separation.
  std::vector<std::vector<TaskId>> machine_tasks(gpu_count);
  for (const auto& task : jobs.tasks()) {
    machine_tasks[static_cast<std::size_t>(
                      pass.y_hat[static_cast<std::size_t>(task.id.value())]
                          .value())]
        .push_back(task.id);
  }

  RelaxationResult result;
  result.y_hat = pass.y_hat;

  const opt::LpBackend backend = config_.engine.resolved_lp_backend();
  result.lp_backend = backend;
  const std::size_t base_rows = lp.constraint_count();
  const std::size_t base_nonzeros = lp.nonzero_count();
  std::size_t cut_nonzeros = 0;

  const bool warm = config_.engine.warm_start_lp && !config_.engine.naive;
  opt::IncrementalLpSolver solver(lp, warm, backend);

  // Canonical ε-objective program: same rows and bounds, objective Σ ε_i x_i
  // with pairwise-distinct ε_i ∈ (1, 2). Among all optima of the primary LP
  // (enforced by a cap row on Σ w_n C_n) the ε objective picks a unique x,
  // so the point the planner reports — and every schedule built from it —
  // is independent of backend, warm starts, and engine knobs. The primary
  // optimum is typically degenerate (many optimal vertices), which is why
  // different solvers legitimately land on different x̂ without this step.
  opt::LinearProgram canon_base = lp;
  for (std::size_t i = 0; i < task_count; ++i) {
    canon_base.set_objective(
        x_var[i], 1.0 + static_cast<double>(i + 1) /
                            static_cast<double>(task_count + 2));
  }
  for (const auto& job : jobs.jobs()) {
    canon_base.set_objective(
        c_var[static_cast<std::size_t>(job.id.value())], 0.0);
  }
  std::vector<std::pair<std::size_t, double>> cap_terms;
  for (const auto& job : jobs.jobs()) {
    cap_terms.emplace_back(c_var[static_cast<std::size_t>(job.id.value())],
                           job.spec.weight);
  }
  lp_build_span.end();

  using CutTerms = std::vector<std::pair<std::size_t, double>>;
  std::vector<std::pair<CutTerms, double>> cuts;
  std::vector<double> canonical_x(task_count, 0.0);

  const auto canonicalize = [&](double z_star) {
    HARE_SPAN("planner", "planner.lp_canonical");
    opt::LinearProgram canon = canon_base;
    for (const auto& [terms, rhs] : cuts) {
      canon.add_constraint(terms, opt::Relation::GreaterEqual, rhs);
    }
    canon.add_constraint(cap_terms, opt::Relation::LessEqual,
                         z_star + std::max(1e-6, 1e-6 * std::abs(z_star)));
    opt::LpIterationStats canon_stats;
    const opt::LpSolution canon_solution =
        canon.solve(100000, &canon_stats, backend);
    HARE_CHECK_MSG(canon_solution.optimal(),
                   "canonical relaxation LP is infeasible/unbounded");
    ++result.canonical_solves;
    result.canonical_pivots += canon_stats.total();
    canonical_counter.add();
    // Snap to a 1e-6 grid: solver noise well below the grid collapses to
    // bit-identical coordinates across backends.
    for (std::size_t i = 0; i < task_count; ++i) {
      canonical_x[i] =
          std::round(canon_solution.values[x_var[i]] * 1e6) / 1e6;
    }
  };

  opt::LpSolution solution;
  {
    HARE_SPAN_ARG("planner", "planner.lp_solve", "round", 0);
    solution = solver.solve();
  }
  HARE_CHECK_MSG(solution.optimal(), "relaxation LP is infeasible/unbounded");
  ++result.lp_solves;
  result.simplex_pivots += solver.last_stats().total();
  lp_solve_counter.add();
  pivot_counter.add(solver.last_stats().total());
  result.lp_rounds.push_back(LpRoundStats{0, solver.last_stats().total(),
                                          solver.last_solve_was_warm()});
  canonicalize(solution.objective);

  // One separation over all machines per round. The per-machine separations
  // read the same LP point and are independent, so they fan out across the
  // pool; cuts are then appended in ascending machine order, making the cut
  // sequence — and every downstream pivot — identical to the serial path.
  //
  // With incremental separation each machine retains its sorted order and
  // last point across rounds (the T^c vector is fixed given ŷ, so it is
  // built once) and re-sorts only the coordinates the canonical vertex
  // moved — same cuts, a fraction of the sort work. The per-round work
  // accounting (total vs. resorted task entries) feeds the savings metric.
  const bool incremental =
      config_.engine.incremental_separation && !config_.engine.naive;
  std::vector<opt::IncrementalSeparator> separators;
  std::vector<std::vector<double>> machine_point;
  if (incremental) {
    separators.resize(gpu_count);
    machine_point.resize(gpu_count);
    for (std::size_t g = 0; g < gpu_count; ++g) {
      const auto& members = machine_tasks[g];
      if (members.size() < 2) continue;
      std::vector<double> t(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        t[k] = times.tc(jobs.task(members[k]).job,
                        GpuId(static_cast<int>(g)));
      }
      separators[g] = opt::IncrementalSeparator(std::move(t));
      machine_point[g].resize(members.size());
    }
  }

  std::vector<opt::QueyranneCut> machine_cuts(gpu_count);
  auto separate_machine = [&](std::size_t g) {
    machine_cuts[g] = opt::QueyranneCut{};
    const auto& members = machine_tasks[g];
    if (members.size() < 2) return;
    if (incremental) {
      auto& point = machine_point[g];
      for (std::size_t k = 0; k < members.size(); ++k) {
        point[k] = canonical_x[static_cast<std::size_t>(members[k].value())];
      }
      machine_cuts[g] = separators[g].separate(point, config_.cut_tolerance);
      return;
    }
    std::vector<double> t(members.size());
    std::vector<double> point(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      const workload::Task& task = jobs.task(members[k]);
      t[k] = times.tc(task.job, GpuId(static_cast<int>(g)));
      // Separate on the canonical point: the cut trajectory is then the
      // same for every backend/engine combination.
      point[k] = canonical_x[static_cast<std::size_t>(members[k].value())];
    }
    machine_cuts[g] =
        opt::separate_queyranne_cut(t, point, config_.cut_tolerance);
  };

  for (std::size_t round = 0; round < config_.max_cut_rounds; ++round) {
    {
      HARE_SPAN_ARG("planner", "planner.separation", "round", round);
      if (pool) {
        pool->parallel_for_each(gpu_count, separate_machine);
      } else {
        for (std::size_t g = 0; g < gpu_count; ++g) separate_machine(g);
      }
    }
    // Separation-work accounting: what a full per-round re-sort would touch
    // vs. what this round actually re-sorted.
    for (std::size_t g = 0; g < gpu_count; ++g) {
      const std::size_t members = machine_tasks[g].size();
      if (members < 2) continue;
      result.sep_tasks_total += members;
      result.sep_tasks_resorted +=
          incremental ? separators[g].last_resorted() : members;
    }

    std::size_t added = 0;
    for (std::size_t g = 0; g < gpu_count; ++g) {
      const opt::QueyranneCut& cut = machine_cuts[g];
      if (cut.subset.empty()) continue;
      const auto& members = machine_tasks[g];

      // sum_{i in S} T_i x_i >= 1/2 [ (sum T)^2 - sum T^2 ].
      std::vector<std::pair<std::size_t, double>> terms;
      double t_sum = 0.0;
      double t_sq = 0.0;
      for (std::size_t k : cut.subset) {
        const double tk = times.tc(jobs.task(members[k]).job,
                                   GpuId(static_cast<int>(g)));
        terms.emplace_back(
            x_var[static_cast<std::size_t>(members[k].value())], tk);
        t_sum += tk;
        t_sq += tk * tk;
      }
      const double cut_rhs = 0.5 * (t_sum * t_sum - t_sq);
      solver.add_ge_constraint(terms, cut_rhs);
      cut_nonzeros += terms.size();
      cuts.emplace_back(std::move(terms), cut_rhs);
      ++result.cut_count;
      ++added;
    }
    if (added == 0) break;
    cut_counter.add(added);
    {
      HARE_SPAN_ARG("planner", "planner.lp_solve", "round", round + 1);
      solution = solver.solve();
    }
    HARE_CHECK_MSG(solution.optimal(), "cut LP became infeasible");
    ++result.lp_solves;
    result.simplex_pivots += solver.last_stats().total();
    lp_solve_counter.add();
    pivot_counter.add(solver.last_stats().total());
    result.lp_rounds.push_back(LpRoundStats{added, solver.last_stats().total(),
                                            solver.last_solve_was_warm()});
    canonicalize(solution.objective);
  }

  result.x_hat = canonical_x;
  result.objective = solution.objective;
  result.h = middle_completion_times(jobs, times, result.x_hat, config_.engine);

  result.lp_rows = base_rows + result.cut_count;
  result.lp_cols = lp.variable_count();
  result.lp_nonzeros = base_nonzeros + cut_nonzeros;
  rows_gauge.set(static_cast<double>(result.lp_rows));
  cols_gauge.set(static_cast<double>(result.lp_cols));
  nonzeros_gauge.set(static_cast<double>(result.lp_nonzeros));
  density_gauge.set(
      result.lp_rows * result.lp_cols == 0
          ? 0.0
          : static_cast<double>(result.lp_nonzeros) /
                (static_cast<double>(result.lp_rows) *
                 static_cast<double>(result.lp_cols)));
  obs::Counter& backend_pivots = backend == opt::LpBackend::Dense
                                     ? dense_pivot_counter
                                     : sparse_pivot_counter;
  backend_pivots.add(result.simplex_pivots + result.canonical_pivots);
  sep_total_counter.add(result.sep_tasks_total);
  sep_resorted_counter.add(result.sep_tasks_resorted);

  common::log_debug("planner: lp_cuts converged, ", result.lp_solves,
                    " solves, ", result.cut_count, " cuts, ",
                    result.simplex_pivots, " pivots, ",
                    result.canonical_solves, " canonical solves (",
                    opt::lp_backend_name(backend), " backend)");
  return result;
}

}  // namespace hare::core
