#include "core/relaxation.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "opt/queyranne.hpp"
#include "opt/simplex.hpp"
#include "workload/feasibility.hpp"

namespace hare::core {

namespace {

/// Fluid relaxation pass: arrival-adjusted WSPT job sequencing with
/// earliest-finish-time task placement.
//
// Minimizing Σ w_n C_n wants short/heavy jobs *sequenced* ahead of long
// ones, not fair-shared — the LP relaxation produces exactly that shape in
// its x̂, so the fluid surrogate orders jobs by a_n + (minimum total
// work)/w_n and list-schedules each job's rounds in turn. Task placement
// is earliest-finish over max(release, φ_m) + T^c_{i,m}, which (a) keeps
// slow GPUs off a round's critical path when waiting for a fast one wins,
// and (b) *serializes same-round tasks onto one fast GPU* whenever
// 2·T^c_fast < T^c_slow — the relaxed scale-fixed behaviour of Fig 4(b)
// falls out of the greedy rather than being special-cased.
struct FluidPass {
  std::vector<Time> x_hat;
  std::vector<GpuId> y_hat;
  std::vector<Time> finish;  ///< x̂ + T^c + T^s per task
  double objective = 0.0;
};

FluidPass run_fluid_pass(const cluster::Cluster& cluster,
                         const workload::JobSet& jobs,
                         const profiler::TimeTable& times,
                         const SubProblem& sub) {
  const std::size_t task_count = jobs.task_count();
  const std::size_t gpu_count = cluster.gpu_count();
  HARE_CHECK_MSG(gpu_count > 0, "cluster has no GPUs");

  FluidPass pass;
  pass.x_hat.assign(task_count, 0.0);
  pass.y_hat.assign(task_count, GpuId{});
  pass.finish.assign(task_count, 0.0);

  // Arrival-adjusted WSPT key: a_n + (minimum possible total work) / w_n.
  std::vector<JobId> order;
  order.reserve(jobs.job_count());
  std::vector<double> key(jobs.job_count(), 0.0);
  for (const auto& job : jobs.jobs()) {
    if (!sub.active(job.id)) continue;
    Time best_round = kTimeInfinity;
    for (std::size_t g = 0; g < gpu_count; ++g) {
      best_round = std::min(best_round,
                            times.total(job.id, GpuId(static_cast<int>(g))));
    }
    key[static_cast<std::size_t>(job.id.value())] =
        job.spec.arrival + static_cast<double>(job.rounds()) *
                               static_cast<double>(job.tasks_per_round()) *
                               best_round / job.spec.weight;
    order.push_back(job.id);
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const double ka = key[static_cast<std::size_t>(a.value())];
    const double kb = key[static_cast<std::size_t>(b.value())];
    if (ka != kb) return ka < kb;
    return a < b;
  });

  const auto fits = workload::fitting_matrix(cluster, jobs);
  std::vector<Time> phi(gpu_count, 0.0);
  for (std::size_t g = 0; g < gpu_count; ++g) phi[g] = sub.phi(g);
  for (const JobId job_id : order) {
    const workload::Job& job = jobs.job(job_id);
    const auto& job_fits = fits[static_cast<std::size_t>(job_id.value())];
    Time release = job.spec.arrival;
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      Time barrier = release;
      for (TaskId task_id :
           jobs.round_tasks(job_id, static_cast<RoundIndex>(r))) {
        std::size_t best_gpu = gpu_count;
        Time best_finish = kTimeInfinity;
        Time best_start = 0.0;
        for (std::size_t g = 0; g < gpu_count; ++g) {
          if (!job_fits[g]) continue;  // task would not fit device memory
          const Time start = std::max(release, phi[g]);
          const Time finish =
              start + times.tc(job_id, GpuId(static_cast<int>(g)));
          if (finish < best_finish) {
            best_finish = finish;
            best_gpu = g;
            best_start = start;
          }
        }
        HARE_CHECK_MSG(best_gpu < gpu_count, "no feasible GPU for task");
        const GpuId gpu(static_cast<int>(best_gpu));
        const std::size_t idx = static_cast<std::size_t>(task_id.value());
        pass.x_hat[idx] = best_start;
        pass.y_hat[idx] = gpu;
        pass.finish[idx] = best_start + times.total(job_id, gpu);
        phi[best_gpu] = best_start + times.tc(job_id, gpu);  // sync overlaps
        barrier = std::max(barrier, pass.finish[idx]);
      }
      release = barrier;
    }
    pass.objective += job.spec.weight * release;
  }
  return pass;
}

std::vector<Time> middle_completion_times(const workload::JobSet& jobs,
                                          const profiler::TimeTable& times,
                                          const std::vector<Time>& x_hat) {
  std::vector<Time> h(jobs.task_count(), 0.0);
  for (const auto& task : jobs.tasks()) {
    const std::size_t idx = static_cast<std::size_t>(task.id.value());
    h[idx] = x_hat[idx] + 0.5 * times.max_tc(task.job);
  }
  return h;
}

}  // namespace

RelaxationResult HareRelaxation::solve(const cluster::Cluster& cluster,
                                       const workload::JobSet& jobs,
                                       const profiler::TimeTable& times,
                                       const SubProblem& sub) const {
  HARE_CHECK_MSG(times.job_count() == jobs.job_count() &&
                     times.gpu_count() == cluster.gpu_count(),
                 "time table does not match instance");
  switch (config_.mode) {
    case RelaxMode::Fluid: return solve_fluid(cluster, jobs, times, sub);
    case RelaxMode::LpCuts: return solve_lp_cuts(cluster, jobs, times, sub);
  }
  HARE_CHECK_MSG(false, "unknown relaxation mode");
  return {};
}

RelaxationResult HareRelaxation::solve_fluid(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, const SubProblem& sub) const {
  const FluidPass pass = run_fluid_pass(cluster, jobs, times, sub);
  RelaxationResult result;
  result.x_hat = pass.x_hat;
  result.y_hat = pass.y_hat;
  result.objective = pass.objective;
  result.h = middle_completion_times(jobs, times, result.x_hat);
  return result;
}

RelaxationResult HareRelaxation::solve_lp_cuts(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, const SubProblem& sub) const {
  HARE_CHECK_MSG(sub.job_mask.empty() && sub.initial_phi.empty(),
                 "LpCuts mode does not support incremental sub-problems; "
                 "use Fluid for online planning");
  // Fix ŷ with the fluid pass, then cut-plane the LP over x, round-end
  // variables E, and job completions C.
  const FluidPass pass = run_fluid_pass(cluster, jobs, times, sub);
  const std::size_t task_count = jobs.task_count();
  const std::size_t gpu_count = cluster.gpu_count();

  opt::LinearProgram lp;
  // Variables: x_i per task, then E_{n,r} per round, then C_n per job.
  std::vector<std::size_t> x_var(task_count);
  for (std::size_t i = 0; i < task_count; ++i) x_var[i] = lp.add_variable(0.0);

  std::vector<std::vector<std::size_t>> e_var(jobs.job_count());
  std::vector<std::size_t> c_var(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    auto& rounds = e_var[static_cast<std::size_t>(job.id.value())];
    rounds.resize(job.rounds());
    for (auto& v : rounds) v = lp.add_variable(0.0);
    c_var[static_cast<std::size_t>(job.id.value())] =
        lp.add_variable(job.spec.weight);
  }

  auto assigned_total = [&](TaskId id) {
    const workload::Task& task = jobs.task(id);
    return times.total(task.job,
                       pass.y_hat[static_cast<std::size_t>(id.value())]);
  };

  for (const auto& job : jobs.jobs()) {
    const std::size_t j = static_cast<std::size_t>(job.id.value());
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      const std::size_t e = e_var[j][r];
      for (TaskId id : jobs.round_tasks(job.id, static_cast<RoundIndex>(r))) {
        const std::size_t x = x_var[static_cast<std::size_t>(id.value())];
        // (4): release — round 0 at arrival, later rounds behind E_{r-1}.
        if (r == 0) {
          lp.add_constraint({{x, 1.0}}, opt::Relation::GreaterEqual,
                            job.spec.arrival);
        } else {
          lp.add_constraint({{x, 1.0}, {e_var[j][r - 1], -1.0}},
                            opt::Relation::GreaterEqual, 0.0);
        }
        // Round end dominates every member's completion: E >= x + T.
        lp.add_constraint({{e, 1.0}, {x, -1.0}}, opt::Relation::GreaterEqual,
                          assigned_total(id));
      }
    }
    // (6): C_n >= E_{n,last}.
    lp.add_constraint({{c_var[j], 1.0}, {e_var[j][job.rounds() - 1], -1.0}},
                      opt::Relation::GreaterEqual, 0.0);
  }

  // Group tasks per machine under ŷ for separation.
  std::vector<std::vector<TaskId>> machine_tasks(gpu_count);
  for (const auto& task : jobs.tasks()) {
    machine_tasks[static_cast<std::size_t>(
                      pass.y_hat[static_cast<std::size_t>(task.id.value())]
                          .value())]
        .push_back(task.id);
  }

  RelaxationResult result;
  result.y_hat = pass.y_hat;

  opt::LpSolution solution = lp.solve();
  HARE_CHECK_MSG(solution.optimal(), "relaxation LP is infeasible/unbounded");
  ++result.lp_solves;

  for (std::size_t round = 0; round < config_.max_cut_rounds; ++round) {
    bool added = false;
    for (std::size_t g = 0; g < gpu_count; ++g) {
      const auto& members = machine_tasks[g];
      if (members.size() < 2) continue;
      std::vector<double> t(members.size());
      std::vector<double> point(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        const workload::Task& task = jobs.task(members[k]);
        t[k] = times.tc(task.job, GpuId(static_cast<int>(g)));
        point[k] =
            solution.values[x_var[static_cast<std::size_t>(
                members[k].value())]];
      }
      const opt::QueyranneCut cut =
          opt::separate_queyranne_cut(t, point, config_.cut_tolerance);
      if (cut.subset.empty()) continue;

      // sum_{i in S} T_i x_i >= 1/2 [ (sum T)^2 - sum T^2 ].
      std::vector<std::pair<std::size_t, double>> terms;
      double t_sum = 0.0;
      double t_sq = 0.0;
      for (std::size_t k : cut.subset) {
        terms.emplace_back(
            x_var[static_cast<std::size_t>(members[k].value())], t[k]);
        t_sum += t[k];
        t_sq += t[k] * t[k];
      }
      lp.add_constraint(terms, opt::Relation::GreaterEqual,
                        0.5 * (t_sum * t_sum - t_sq));
      ++result.cut_count;
      added = true;
    }
    if (!added) break;
    solution = lp.solve();
    HARE_CHECK_MSG(solution.optimal(), "cut LP became infeasible");
    ++result.lp_solves;
  }

  result.x_hat.resize(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    result.x_hat[i] = solution.values[x_var[i]];
  }
  result.objective = solution.objective;
  result.h = middle_completion_times(jobs, times, result.x_hat);
  return result;
}

}  // namespace hare::core
