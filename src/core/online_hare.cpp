#include "core/online_hare.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::core {

sim::Schedule OnlineHareScheduler::schedule(
    const sched::SchedulerInput& input) {
  const auto& jobs = input.jobs;
  HARE_CHECK_MSG(config_.batching_window_s >= 0.0,
                 "batching window must be non-negative");

  // Arrival sweep.
  std::vector<JobId> by_arrival;
  by_arrival.reserve(jobs.job_count());
  for (const auto& job : jobs.jobs()) by_arrival.push_back(job.id);
  std::sort(by_arrival.begin(), by_arrival.end(), [&](JobId a, JobId b) {
    const Time aa = jobs.job(a).spec.arrival;
    const Time ab = jobs.job(b).spec.arrival;
    if (aa != ab) return aa < ab;
    return a < b;
  });

  HareScheduler planner(config_.hare);
  HareScheduler::IncrementalState state;
  sim::Schedule schedule;
  planning_rounds_ = 0;

  std::size_t cursor = 0;
  while (cursor < by_arrival.size()) {
    // One batch: every job arriving within the window of the first.
    const Time batch_open = jobs.job(by_arrival[cursor]).spec.arrival;
    std::vector<char> mask(jobs.job_count(), 0);
    while (cursor < by_arrival.size() &&
           jobs.job(by_arrival[cursor]).spec.arrival <=
               batch_open + config_.batching_window_s) {
      mask[static_cast<std::size_t>(by_arrival[cursor].value())] = 1;
      ++cursor;
    }
    // Plan the batch on top of the standing commitments. Per-job release
    // times inside the planner already prevent anything from starting
    // before its arrival; commitments of earlier batches are never
    // revised.
    (void)planner.schedule_jobs(input, mask, state, schedule);
    ++planning_rounds_;
  }
  return schedule;
}

}  // namespace hare::core
