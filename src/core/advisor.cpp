#include "core/advisor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/hare_scheduler.hpp"
#include "profiler/profiler.hpp"
#include "sim/simulator.hpp"
#include "workload/feasibility.hpp"

namespace hare::core {

std::vector<SyncScaleAdvice> advise_sync_scale(
    const cluster::Cluster& cluster, workload::JobSpec spec,
    const workload::PerfModel& perf,
    const std::vector<std::uint32_t>& candidates) {
  HARE_CHECK_MSG(!candidates.empty(), "no candidate scales");
  spec.arrival = 0.0;
  // Hold total work constant: `spec.rounds` is interpreted at scale 1;
  // k-way data parallelism processes k batches per round, so the same
  // dataset pass takes ceil(rounds / k) rounds.
  const std::uint32_t total_rounds_at_one = spec.rounds;

  std::vector<SyncScaleAdvice> advice;
  for (std::uint32_t scale : candidates) {
    spec.tasks_per_round = scale;
    spec.rounds = std::max<std::uint32_t>(
        1, (total_rounds_at_one + scale - 1) / scale);

    workload::JobSet jobs;
    const JobId id = jobs.add_job(spec);

    // Skip scales the cluster cannot host (size or memory feasibility).
    std::size_t fitting = 0;
    for (const auto& gpu : cluster.gpus()) {
      if (workload::task_fits(jobs.job(id), gpu)) ++fitting;
    }
    if (fitting < scale) continue;

    profiler::Profiler profiler(perf, profiler::ProfilerConfig{}, 1);
    const profiler::TimeTable times = profiler.exact(jobs, cluster);
    HareScheduler scheduler;
    const sim::Schedule schedule = scheduler.schedule({cluster, jobs, times});
    const sim::Simulator simulator(cluster, jobs, times);
    const Time completion = simulator.run(schedule).jobs[0].completion;

    SyncScaleAdvice entry;
    entry.scale = scale;
    entry.completion = completion;
    advice.push_back(entry);
  }
  HARE_CHECK_MSG(!advice.empty(),
                 "no candidate sync scale fits this cluster");

  // Speedup and efficiency are relative to the smallest feasible scale.
  const Time reference = advice.front().completion;
  const double reference_scale = static_cast<double>(advice.front().scale);
  for (auto& entry : advice) {
    entry.speedup = reference / entry.completion;
    entry.efficiency = entry.speedup * reference_scale /
                       static_cast<double>(entry.scale);
  }
  return advice;
}

std::uint32_t recommend_sync_scale(const cluster::Cluster& cluster,
                                   workload::JobSpec spec,
                                   const workload::PerfModel& perf,
                                   double efficiency_floor,
                                   const std::vector<std::uint32_t>& candidates) {
  const auto advice = advise_sync_scale(cluster, spec, perf, candidates);
  std::uint32_t best = advice.front().scale;
  for (const auto& entry : advice) {
    if (entry.efficiency >= efficiency_floor && entry.scale > best) {
      best = entry.scale;
    }
  }
  return best;
}

}  // namespace hare::core
