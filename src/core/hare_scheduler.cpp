#include "core/hare_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/placement_index.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/feasibility.hpp"

namespace hare::core {

namespace {

struct RoundProgress {
  int scheduled = 0;       ///< tasks of the round placed so far
  Time barrier = 0.0;      ///< max realized x̃ + T̃^c + T̃^s
  std::vector<TaskId> waiting;  ///< deferred tasks blocked on this round
};

struct BuildState {
  const sched::SchedulerInput& input;
  const HareConfig& config;
  sim::Schedule schedule;
  std::vector<Time> phi;  ///< GPU available times
  std::vector<std::vector<RoundProgress>> rounds;  ///< [job][round]
  double objective = 0.0;
  /// Engine acceleration for the relaxed pass: either the masked-row index
  /// or the pool-sharded scan replaces the naive O(G) candidate loops. The
  /// index and fitting matrix live in the caller's scratch when one is
  /// shared with the relaxation (φ-independent, so rebuilt for free via
  /// reset_phi); the naive engine always builds its own fitting matrix.
  PlannerScratch* scratch = nullptr;
  std::vector<std::vector<char>> own_fits;
  const std::vector<std::vector<char>>* fits_ptr = nullptr;
  std::optional<PlacementIndex> own_index;
  PlacementIndex* index = nullptr;
  common::ThreadPool* pool = nullptr;
  bool sharded = false;

  BuildState(const sched::SchedulerInput& in, const HareConfig& cfg,
             PlannerScratch* shared)
      : input(in), config(cfg), scratch(shared) {
    if (scratch && !cfg.relaxation.engine.naive) {
      scratch->sync(in.cluster, in.jobs);
      fits_ptr = &scratch->fits;
    } else {
      own_fits = workload::fitting_matrix(in.cluster, in.jobs);
      fits_ptr = &own_fits;
    }
    schedule.sequences.resize(in.cluster.gpu_count());
    schedule.predicted_start.assign(in.jobs.task_count(), 0.0);
    phi.assign(in.cluster.gpu_count(), 0.0);
    rounds.resize(in.jobs.job_count());
    for (const auto& job : in.jobs.jobs()) {
      rounds[static_cast<std::size_t>(job.id.value())].resize(job.rounds());
    }
  }

  [[nodiscard]] const std::vector<std::vector<char>>& fits() const {
    return *fits_ptr;
  }

  /// Pick the candidate-scan strategy for the relaxed pass. Must run after
  /// `phi` holds the initial horizons (incremental planning seeds them).
  void enable_engine() {
    const PlannerEngine& engine = config.relaxation.engine;
    if (engine.naive) return;
    pool = engine.pool();
    sharded = engine.use_sharded_scan(phi.size()) && pool != nullptr;
    if (sharded) return;
    if (scratch) {
      if (scratch->index) {
        // A cross-batch scratch may lag a grown instance: extend the masked
        // rows for appended jobs before re-seeding the horizons.
        scratch->index->append_jobs(input.times, fits());
        scratch->index->reset_phi(phi);
      } else {
        scratch->index.emplace(input.times, phi.size(), fits(), phi, pool,
                               &input.cluster,
                               engine.bucketed_index_min_gpus);
      }
      index = &*scratch->index;
    } else {
      own_index.emplace(input.times, phi.size(), fits(), phi, pool,
                        &input.cluster, engine.bucketed_index_min_gpus);
      index = &*own_index;
    }
  }

  [[nodiscard]] RoundProgress& progress(JobId job, RoundIndex round) {
    return rounds[static_cast<std::size_t>(job.value())]
                 [static_cast<std::size_t>(round)];
  }

  /// Algorithm 1 lines 12-16 for one task with availability t_i. Returns
  /// the deferred tasks unblocked by any round completion this causes.
  std::vector<TaskId> place_task(TaskId task_id, Time available) {
    static obs::Counter& placed_counter = obs::counter("planner.tasks_placed");
    placed_counter.add();
    const workload::Task& task = input.jobs.task(task_id);
    const workload::Job& job = input.jobs.job(task.job);

    const auto& job_fits = fits()[static_cast<std::size_t>(task.job.value())];
    PlacementIndex::Candidate chosen;
    if (config.placement == Placement::EarliestAvailable) {
      if (index) {
        chosen = index->earliest_available(task.job, available);
      } else if (sharded) {
        chosen = sharded_earliest_available(available, job_fits, phi, *pool);
      } else {
        std::size_t best = phi.size();
        for (std::size_t g = 0; g < phi.size(); ++g) {
          if (!job_fits[g]) continue;
          if (best == phi.size() || phi[g] < phi[best]) best = g;
        }
        if (best < phi.size()) {
          chosen = PlacementIndex::Candidate{
              best, std::max(available, phi[best]), phi[best]};
        }
      }
    } else {
      if (index) {
        chosen = index->earliest_finish(task.job, available);
      } else if (sharded) {
        chosen = sharded_earliest_finish(input.times, task.job, available,
                                         job_fits, phi, *pool);
      } else {
        for (std::size_t g = 0; g < phi.size(); ++g) {
          if (!job_fits[g]) continue;
          const Time start = std::max(available, phi[g]);
          const Time finish =
              start + input.times.tc(task.job, GpuId(static_cast<int>(g)));
          if (finish < chosen.finish) {
            chosen = PlacementIndex::Candidate{g, start, finish};
          }
        }
      }
    }
    HARE_CHECK_MSG(chosen.valid(), "no feasible GPU for task " << task_id);
    const std::size_t best = chosen.gpu;
    const GpuId gpu(static_cast<int>(best));
    const Time start = chosen.start;
    const Time tc = input.times.tc(task.job, gpu);
    const Time ts = input.times.ts(task.job, gpu);

    schedule.sequences[best].push_back(task_id);
    schedule.predicted_start[static_cast<std::size_t>(task_id.value())] =
        start;
    phi[best] = start + tc;  // T^s overlaps the GPU's next task (line 16)
    if (index) index->set_phi(best, phi[best]);

    RoundProgress& round = progress(task.job, task.round);
    round.barrier = std::max(round.barrier, start + tc + ts);
    ++round.scheduled;

    std::vector<TaskId> unblocked;
    if (round.scheduled == static_cast<int>(job.tasks_per_round())) {
      if (static_cast<std::uint32_t>(task.round) + 1 == job.rounds()) {
        objective += job.spec.weight * round.barrier;
      }
      unblocked = std::move(round.waiting);
      round.waiting.clear();
    }
    return unblocked;
  }

  /// Availability t_i (Algorithm 1 lines 7-11), or nullopt when the
  /// previous round is not fully scheduled yet (deferral).
  [[nodiscard]] std::optional<Time> availability(TaskId task_id) {
    const workload::Task& task = input.jobs.task(task_id);
    const workload::Job& job = input.jobs.job(task.job);
    if (task.round == 0) return job.spec.arrival;
    RoundProgress& prev = progress(task.job, task.round - 1);
    if (prev.scheduled < static_cast<int>(job.tasks_per_round())) {
      return std::nullopt;
    }
    return std::max(job.spec.arrival, prev.barrier);
  }
};

/// Algorithm 1's main loop over a π sequence, with deferral for tasks
/// whose previous round is not yet fully placed.
void run_relaxed_pass(BuildState& state, const std::vector<TaskId>& pi) {
  std::deque<TaskId> queue;
  std::size_t pi_cursor = 0;
  while (pi_cursor < pi.size() || !queue.empty()) {
    TaskId task_id;
    if (!queue.empty()) {
      task_id = queue.front();
      queue.pop_front();
    } else {
      task_id = pi[pi_cursor++];
    }
    const auto available = state.availability(task_id);
    if (!available) {
      const workload::Task& task = state.input.jobs.task(task_id);
      state.progress(task.job, task.round - 1).waiting.push_back(task_id);
      continue;
    }
    for (TaskId unblocked : state.place_task(task_id, *available)) {
      queue.push_back(unblocked);
    }
  }
}

/// Line 4: sort π by non-descending H, ids breaking ties (deterministic).
/// The optimized engine sorts packed (H, id) pairs — the seed's comparator
/// paid two dependent random loads into h per comparison.
void sort_by_middle_completion(std::vector<TaskId>& pi,
                               const std::vector<Time>& h, bool naive) {
  HARE_SPAN("planner", "planner.sort_pi");
  if (naive) {
    std::sort(pi.begin(), pi.end(), [&](TaskId a, TaskId b) {
      const Time ha = h[static_cast<std::size_t>(a.value())];
      const Time hb = h[static_cast<std::size_t>(b.value())];
      if (ha != hb) return ha < hb;
      return a < b;
    });
    return;
  }
  std::vector<std::pair<Time, TaskId>> keyed(pi.size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    keyed[i] = {h[static_cast<std::size_t>(pi[i].value())], pi[i]};
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<Time, TaskId>& a,
               const std::pair<Time, TaskId>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = keyed[i].second;
}

sim::Schedule build_relaxed(const sched::SchedulerInput& input,
                            const HareConfig& config,
                            const std::vector<TaskId>& pi, double* objective,
                            PlannerScratch* scratch) {
  HARE_SPAN("planner", "planner.list_schedule");
  BuildState state(input, config, scratch);
  state.enable_engine();
  run_relaxed_pass(state, pi);
  *objective = state.objective;
  return std::move(state.schedule);
}

sim::Schedule build_strict(const sched::SchedulerInput& input,
                           const HareConfig& config,
                           const std::vector<TaskId>& pi, double* objective,
                           PlannerScratch* scratch) {
  // Strict scale-fixed: whole rounds gang on distinct GPUs with a common
  // start. Rounds are visited in the order their first member appears in π.
  HARE_SPAN("planner", "planner.gang_schedule");
  BuildState state(input, config, scratch);
  const auto& jobs = input.jobs;

  struct RoundKey {
    JobId job;
    RoundIndex round;
  };
  std::vector<RoundKey> round_order;
  std::vector<char> seen(jobs.task_count(), 0);
  for (TaskId id : pi) {
    const workload::Task& task = jobs.task(id);
    const std::size_t first =
        static_cast<std::size_t>(jobs.round_tasks(task.job, task.round)
                                     .front()
                                     .value());
    if (!seen[first]) {
      seen[first] = 1;
      round_order.push_back(RoundKey{task.job, task.round});
    }
  }

  // Deferral queue at round granularity.
  std::vector<std::vector<std::vector<RoundKey>>> blocked(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    blocked[static_cast<std::size_t>(job.id.value())].resize(job.rounds());
  }

  std::deque<RoundKey> queue;
  std::size_t cursor = 0;

  auto gang_place = [&](const RoundKey& key) -> std::vector<RoundKey> {
    const workload::Job& job = jobs.job(key.job);
    Time available = job.spec.arrival;
    if (key.round > 0) {
      available =
          std::max(available, state.progress(key.job, key.round - 1).barrier);
    }
    // |D_r| distinct earliest-available GPUs (memory-feasible only); the
    // gang starts together.
    const std::size_t k = job.tasks_per_round();
    const auto& job_fits =
        state.fits()[static_cast<std::size_t>(key.job.value())];
    std::vector<std::size_t> order;
    order.reserve(state.phi.size());
    for (std::size_t g = 0; g < state.phi.size(); ++g) {
      if (job_fits[g]) order.push_back(g);
    }
    HARE_CHECK_MSG(order.size() >= k,
                   "strict sync: job " << key.job << " fits only "
                                       << order.size() << " GPUs but needs "
                                       << k);
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        if (state.phi[a] != state.phi[b]) {
                          return state.phi[a] < state.phi[b];
                        }
                        return a < b;
                      });
    Time start = available;
    for (std::size_t i = 0; i < k; ++i) {
      start = std::max(start, state.phi[order[i]]);
    }
    const auto members = jobs.round_tasks(key.job, key.round);
    RoundProgress& round = state.progress(key.job, key.round);
    for (std::size_t i = 0; i < k; ++i) {
      const GpuId gpu(static_cast<int>(order[i]));
      const TaskId task_id = members[i];
      const Time tc = input.times.tc(key.job, gpu);
      const Time ts = input.times.ts(key.job, gpu);
      state.schedule.sequences[order[i]].push_back(task_id);
      state.schedule
          .predicted_start[static_cast<std::size_t>(task_id.value())] = start;
      state.phi[order[i]] = start + tc;
      round.barrier = std::max(round.barrier, start + tc + ts);
      ++round.scheduled;
    }
    if (static_cast<std::uint32_t>(key.round) + 1 == job.rounds()) {
      state.objective += job.spec.weight * round.barrier;
    }
    return std::move(
        blocked[static_cast<std::size_t>(key.job.value())]
               [static_cast<std::size_t>(key.round)]);
  };

  while (cursor < round_order.size() || !queue.empty()) {
    RoundKey key{};
    if (!queue.empty()) {
      key = queue.front();
      queue.pop_front();
    } else {
      key = round_order[cursor++];
    }
    if (key.round > 0) {
      const workload::Job& job = jobs.job(key.job);
      RoundProgress& prev = state.progress(key.job, key.round - 1);
      if (prev.scheduled < static_cast<int>(job.tasks_per_round())) {
        blocked[static_cast<std::size_t>(key.job.value())]
               [static_cast<std::size_t>(key.round - 1)]
                   .push_back(key);
        continue;
      }
    }
    for (const RoundKey& unblocked : gang_place(key)) {
      queue.push_back(unblocked);
    }
  }
  *objective = state.objective;
  return std::move(state.schedule);
}

}  // namespace

sim::Schedule HareScheduler::schedule(const sched::SchedulerInput& input) {
  HARE_SPAN("planner", "planner.schedule");
  HARE_CHECK_MSG(input.cluster.gpu_count() > 0, "cluster has no GPUs");
  for (const auto& job : input.jobs.jobs()) {
    HARE_CHECK_MSG(job.tasks_per_round() <= input.cluster.gpu_count(),
                   "job " << job.id << " sync scale exceeds cluster size");
  }

  PlannerScratch scratch;
  const HareRelaxation relaxation(config_.relaxation);
  last_relaxation_ =
      relaxation.solve(input.cluster, input.jobs, input.times, {}, &scratch);

  std::vector<TaskId> pi;
  pi.reserve(input.jobs.task_count());
  for (const auto& task : input.jobs.tasks()) pi.push_back(task.id);
  sort_by_middle_completion(pi, last_relaxation_.h,
                            config_.relaxation.engine.naive);

  double objective = 0.0;
  sim::Schedule result =
      config_.sync == SyncScheme::Relaxed
          ? build_relaxed(input, config_, pi, &objective, &scratch)
          : build_strict(input, config_, pi, &objective, &scratch);
  result.predicted_objective = objective;
  return result;
}

double HareScheduler::schedule_jobs(const sched::SchedulerInput& input,
                                    const std::vector<char>& job_mask,
                                    IncrementalState& state,
                                    sim::Schedule& schedule) {
  HARE_SPAN("planner", "planner.schedule_incremental");
  HARE_CHECK_MSG(config_.relaxation.mode == RelaxMode::Fluid,
                 "incremental planning requires the Fluid relaxation");
  HARE_CHECK_MSG(config_.sync == SyncScheme::Relaxed,
                 "incremental planning requires relaxed sync");
  HARE_CHECK_MSG(job_mask.size() == input.jobs.job_count(),
                 "job mask size mismatch");
  const std::size_t gpu_count = input.cluster.gpu_count();
  if (state.phi.empty()) state.phi.assign(gpu_count, 0.0);
  HARE_CHECK_MSG(state.phi.size() == gpu_count, "phi size mismatch");
  if (schedule.sequences.empty()) {
    schedule.sequences.resize(gpu_count);
    schedule.predicted_start.assign(input.jobs.task_count(), 0.0);
  }

  SubProblem sub;
  sub.job_mask = job_mask;
  sub.initial_phi = state.phi;
  const HareRelaxation relaxation(config_.relaxation);
  // The scratch rides in the caller's IncrementalState: batch k pays only
  // for the jobs appended since batch k-1 instead of rebuilding the
  // fitting matrix and masked index rows over the whole instance.
  PlannerScratch& scratch = state.scratch;
  last_relaxation_ =
      relaxation.solve(input.cluster, input.jobs, input.times, sub, &scratch);

  std::vector<TaskId> pi;
  for (const auto& task : input.jobs.tasks()) {
    if (job_mask[static_cast<std::size_t>(task.job.value())]) {
      pi.push_back(task.id);
    }
  }
  sort_by_middle_completion(pi, last_relaxation_.h,
                            config_.relaxation.engine.naive);

  BuildState build(input, config_, &scratch);
  build.phi = state.phi;
  build.enable_engine();
  run_relaxed_pass(build, pi);

  // Append the batch onto the cumulative plan. φ is monotone, so batch
  // tasks always start at or after every prior commitment on their GPU.
  for (std::size_t g = 0; g < gpu_count; ++g) {
    auto& target = schedule.sequences[g];
    const auto& batch = build.schedule.sequences[g];
    target.insert(target.end(), batch.begin(), batch.end());
  }
  for (TaskId id : pi) {
    schedule.predicted_start[static_cast<std::size_t>(id.value())] =
        build.schedule.predicted_start[static_cast<std::size_t>(id.value())];
  }
  state.phi = build.phi;
  schedule.predicted_objective += build.objective;
  return build.objective;
}

double HareScheduler::schedule_jobs_with_h(const sched::SchedulerInput& input,
                                           const std::vector<char>& job_mask,
                                           const std::vector<Time>& h,
                                           IncrementalState& state,
                                           sim::Schedule& schedule) {
  HARE_SPAN("planner", "planner.schedule_with_h");
  HARE_CHECK_MSG(config_.sync == SyncScheme::Relaxed,
                 "incremental planning requires relaxed sync");
  HARE_CHECK_MSG(job_mask.size() == input.jobs.job_count(),
                 "job mask size mismatch");
  HARE_CHECK_MSG(h.size() >= input.jobs.task_count(),
                 "middle completion times must span the task array");
  const std::size_t gpu_count = input.cluster.gpu_count();
  if (state.phi.empty()) state.phi.assign(gpu_count, 0.0);
  HARE_CHECK_MSG(state.phi.size() == gpu_count, "phi size mismatch");
  if (schedule.sequences.empty()) {
    schedule.sequences.resize(gpu_count);
    schedule.predicted_start.assign(input.jobs.task_count(), 0.0);
  }

  std::vector<TaskId> pi;
  for (const auto& task : input.jobs.tasks()) {
    if (job_mask[static_cast<std::size_t>(task.job.value())]) {
      pi.push_back(task.id);
    }
  }
  sort_by_middle_completion(pi, h, config_.relaxation.engine.naive);

  BuildState build(input, config_, &state.scratch);
  build.phi = state.phi;
  build.enable_engine();
  run_relaxed_pass(build, pi);

  for (std::size_t g = 0; g < gpu_count; ++g) {
    auto& target = schedule.sequences[g];
    const auto& batch = build.schedule.sequences[g];
    target.insert(target.end(), batch.begin(), batch.end());
  }
  for (TaskId id : pi) {
    schedule.predicted_start[static_cast<std::size_t>(id.value())] =
        build.schedule.predicted_start[static_cast<std::size_t>(id.value())];
  }
  state.phi = build.phi;
  schedule.predicted_objective += build.objective;
  return build.objective;
}

}  // namespace hare::core
