// Umbrella header: the full Hare public API.
//
//   #include "core/hare.hpp"
//
// pulls in the cluster/workload substrates, the profiler, the switching
// cost models, the simulator, Hare's scheduler and the baselines, and the
// HareSystem facade. See README.md for a quickstart and DESIGN.md for the
// module map.
#pragma once

#include "cluster/cluster.hpp"
#include "cluster/gpu.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "core/advisor.hpp"
#include "core/bounds.hpp"
#include "core/hare_scheduler.hpp"
#include "core/hare_system.hpp"
#include "core/online_hare.hpp"
#include "core/relaxation.hpp"
#include "opt/hungarian.hpp"
#include "opt/queyranne.hpp"
#include "opt/simplex.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/profiler.hpp"
#include "profiler/time_table.hpp"
#include "sched/backfill.hpp"
#include "sched/gavel_fifo.hpp"
#include "sched/sched_allox.hpp"
#include "sched/sched_homo.hpp"
#include "sched/scheduler.hpp"
#include "sched/srtf.hpp"
#include "sched/themis_fair.hpp"
#include "sim/metrics.hpp"
#include "sim/export.hpp"
#include "sim/fairness.hpp"
#include "sim/gantt.hpp"
#include "sim/schedule.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "switching/context_pool.hpp"
#include "switching/memory_manager.hpp"
#include "switching/switch_model.hpp"
#include "workload/job.hpp"
#include "workload/model_zoo.hpp"
#include "workload/perf_model.hpp"
#include "workload/trace.hpp"
