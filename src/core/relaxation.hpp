// Hare_Sched_RL relaxation solvers (§5.2 step 1).
//
// The paper relaxes the non-preemption constraint (8) into Queyranne's
// polyhedral constraint (9) and hands the resulting program to CPLEX /
// Gurobi. We provide two solvers:
//
//  * LpCuts — the honest reproduction for small/medium instances. Task→GPU
//    assignments ŷ are fixed by an earliest-finish greedy; given ŷ the
//    program in (x, C, per-round end variables) is a *linear* program whose
//    (9)-constraints over every machine-subset are added lazily: solve LP,
//    run Queyranne prefix separation per machine, add the violated cut,
//    repeat. This is exactly the cutting-plane treatment a commercial
//    solver applies.
//  * Fluid — the scalable surrogate for cluster-size instances: one
//    earliest-finish-time list-scheduling pass over the precedence DAG
//    yields fluid start times x̂ directly in O(|D|·(log|D| + |M|)).
//
// Both produce the quantities Algorithm 1 consumes: x̂_i and the middle
// completion time H_i = x̂_i + max_m T^c_{i,m} / 2. Tests verify the two
// modes agree on the Fig 1 toy example and that the LP value lower-bounds
// the fluid schedule's cost under the same assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "opt/simplex.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"

namespace hare::common {
class ThreadPool;
}

namespace hare::core {

struct PlannerScratch;  // placement_index.hpp

enum class RelaxMode : std::uint8_t { Fluid, LpCuts };

/// Engine knobs for the planning pipeline, shared by the relaxation solver
/// and Algorithm 1's list scheduler. Every setting produces bit-identical
/// schedules (tests assert it); the knobs trade wall-clock only.
struct PlannerEngine {
  /// Pre-optimization reference path: O(G) linear candidate scans, a cold
  /// two-phase LP per cut round, no caching shortcuts, no pool. Kept as the
  /// perf bench baseline and as the equivalence oracle in tests.
  bool naive = false;
  /// LpCuts: keep the simplex basis across solve→separate→add-cut rounds
  /// and restore feasibility with dual-simplex pivots instead of a cold
  /// restart.
  bool warm_start_lp = true;
  /// Worker threads for per-machine separation, per-job preprocessing, and
  /// sharded candidate scans. 0 or 1 = serial; >= 2 uses the process-wide
  /// common::shared_pool().
  std::size_t threads = 1;
  /// Shard the per-GPU earliest-finish/available scans across the pool only
  /// when the cluster has at least this many GPUs (below it, the indexed
  /// lane scan wins and per-task fan-out overhead dominates).
  std::size_t parallel_scan_min_gpus = 1024;
  /// LP backend for the LpCuts relaxation. Auto resolves via
  /// HARE_LP_BACKEND (default sparse revised simplex); the naive engine
  /// always runs the dense reference tableau regardless of this knob.
  opt::LpBackend lp_backend = opt::LpBackend::Auto;
  /// LpCuts: keep per-machine separation sort state across cut rounds and
  /// re-sort only the tasks whose canonical x̂ moved since the previous
  /// round. Identical cut sequence (the merge uses the full sort's exact
  /// comparator); wall-clock only. The naive engine always full-sorts.
  bool incremental_separation = true;
  /// Route placement queries through the per-(domain, type) bucketed index
  /// when the cluster has at least this many GPUs (0 disables). Exactness
  /// is verified per instance at index build; non-type-uniform time tables
  /// fall back to the flat SIMD scan automatically.
  std::size_t bucketed_index_min_gpus = 512;

  /// The LP backend the LpCuts solves actually run on under these knobs.
  [[nodiscard]] opt::LpBackend resolved_lp_backend() const {
    return naive ? opt::LpBackend::Dense
                 : opt::resolve_lp_backend(lp_backend);
  }

  /// The pool to use under the current knobs, or nullptr for serial.
  [[nodiscard]] common::ThreadPool* pool() const;
  /// True when per-GPU candidate scans should shard across the pool.
  [[nodiscard]] bool use_sharded_scan(std::size_t gpu_count) const {
    return !naive && threads > 1 && gpu_count >= parallel_scan_min_gpus;
  }
};

/// Pivot/cut accounting for one solve→separate→add-cut round (LpCuts).
struct LpRoundStats {
  std::size_t cuts_added = 0;      ///< cuts appended before this solve
  std::size_t simplex_pivots = 0;  ///< pivots the solve needed
  bool warm = false;               ///< solve reused the previous basis
};

struct RelaxationResult {
  std::vector<Time> x_hat;      ///< relaxed start time per task (by id)
  std::vector<GpuId> y_hat;     ///< assignment used by the relaxation
  std::vector<Time> h;          ///< H_i = x̂_i + max_m T^c_{i,m} / 2
  double objective = 0.0;       ///< relaxed Σ w_n C_n (lower bound given ŷ)
  std::size_t cut_count = 0;    ///< Queyranne cuts added (LpCuts mode)
  std::size_t lp_solves = 0;    ///< LP solve→separate rounds (LpCuts mode)
  std::size_t simplex_pivots = 0;  ///< total pivots across primary rounds
  std::vector<LpRoundStats> lp_rounds;  ///< per-round accounting

  // LP shape + backend attribution (LpCuts mode). Shape is the final
  // program: base rows plus appended cuts; bound-style constraints live in
  // the bound arrays and are absent from all three numbers.
  std::size_t lp_rows = 0;
  std::size_t lp_cols = 0;
  std::size_t lp_nonzeros = 0;
  opt::LpBackend lp_backend = opt::LpBackend::Auto;  ///< resolved backend
  /// Canonicalization accounting: one cold solve per cut round pins the
  /// reported vertex to a backend-independent point (see solve_lp_cuts).
  std::size_t canonical_solves = 0;
  std::size_t canonical_pivots = 0;

  /// Separation-work accounting (LpCuts): task entries a full per-round
  /// re-sort would touch vs. the entries actually re-sorted. With
  /// incremental separation the ratio resorted/total is the measured
  /// fraction of separation sort work remaining (≈1.0 for full sorts).
  std::size_t sep_tasks_total = 0;
  std::size_t sep_tasks_resorted = 0;
};

struct RelaxationConfig {
  RelaxMode mode = RelaxMode::Fluid;
  /// LpCuts: stop after this many solve→separate rounds.
  std::size_t max_cut_rounds = 16;
  /// LpCuts: per-machine cut-violation tolerance.
  double cut_tolerance = 1e-6;
  /// Execution-engine knobs (warm start, pool, scan strategy).
  PlannerEngine engine{};
};

/// Optional sub-problem view for incremental (online) planning: only jobs
/// with job_mask[id] != 0 are scheduled, and every GPU m is unavailable
/// before initial_phi[m] (prior commitments). Empty vectors mean
/// "all jobs" / "all GPUs free at 0".
struct SubProblem {
  std::vector<char> job_mask;
  std::vector<Time> initial_phi;

  [[nodiscard]] bool active(JobId job) const {
    return job_mask.empty() ||
           job_mask[static_cast<std::size_t>(job.value())] != 0;
  }
  [[nodiscard]] Time phi(std::size_t gpu) const {
    return initial_phi.empty() ? 0.0 : initial_phi[gpu];
  }
};

class HareRelaxation {
 public:
  explicit HareRelaxation(RelaxationConfig config = {}) : config_(config) {}

  /// `scratch` (optional) shares the φ-independent planning buffers — the
  /// fitting matrix and placement index — with the caller's list-scheduling
  /// pass; the naive engine ignores it.
  [[nodiscard]] RelaxationResult solve(const cluster::Cluster& cluster,
                                       const workload::JobSet& jobs,
                                       const profiler::TimeTable& times,
                                       const SubProblem& sub = {},
                                       PlannerScratch* scratch = nullptr) const;

 private:
  [[nodiscard]] RelaxationResult solve_fluid(const cluster::Cluster& cluster,
                                             const workload::JobSet& jobs,
                                             const profiler::TimeTable& times,
                                             const SubProblem& sub,
                                             PlannerScratch* scratch) const;
  [[nodiscard]] RelaxationResult solve_lp_cuts(const cluster::Cluster& cluster,
                                               const workload::JobSet& jobs,
                                               const profiler::TimeTable& times,
                                               const SubProblem& sub,
                                               PlannerScratch* scratch) const;

  RelaxationConfig config_;
};

}  // namespace hare::core
