// Hare_Sched_RL relaxation solvers (§5.2 step 1).
//
// The paper relaxes the non-preemption constraint (8) into Queyranne's
// polyhedral constraint (9) and hands the resulting program to CPLEX /
// Gurobi. We provide two solvers:
//
//  * LpCuts — the honest reproduction for small/medium instances. Task→GPU
//    assignments ŷ are fixed by an earliest-finish greedy; given ŷ the
//    program in (x, C, per-round end variables) is a *linear* program whose
//    (9)-constraints over every machine-subset are added lazily: solve LP,
//    run Queyranne prefix separation per machine, add the violated cut,
//    repeat. This is exactly the cutting-plane treatment a commercial
//    solver applies.
//  * Fluid — the scalable surrogate for cluster-size instances: one
//    earliest-finish-time list-scheduling pass over the precedence DAG
//    yields fluid start times x̂ directly in O(|D|·(log|D| + |M|)).
//
// Both produce the quantities Algorithm 1 consumes: x̂_i and the middle
// completion time H_i = x̂_i + max_m T^c_{i,m} / 2. Tests verify the two
// modes agree on the Fig 1 toy example and that the LP value lower-bounds
// the fluid schedule's cost under the same assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"

namespace hare::core {

enum class RelaxMode : std::uint8_t { Fluid, LpCuts };

struct RelaxationResult {
  std::vector<Time> x_hat;      ///< relaxed start time per task (by id)
  std::vector<GpuId> y_hat;     ///< assignment used by the relaxation
  std::vector<Time> h;          ///< H_i = x̂_i + max_m T^c_{i,m} / 2
  double objective = 0.0;       ///< relaxed Σ w_n C_n (lower bound given ŷ)
  std::size_t cut_count = 0;    ///< Queyranne cuts added (LpCuts mode)
  std::size_t lp_solves = 0;    ///< LP iterations (LpCuts mode)
};

struct RelaxationConfig {
  RelaxMode mode = RelaxMode::Fluid;
  /// LpCuts: stop after this many solve→separate rounds.
  std::size_t max_cut_rounds = 16;
  /// LpCuts: per-machine cut-violation tolerance.
  double cut_tolerance = 1e-6;
};

/// Optional sub-problem view for incremental (online) planning: only jobs
/// with job_mask[id] != 0 are scheduled, and every GPU m is unavailable
/// before initial_phi[m] (prior commitments). Empty vectors mean
/// "all jobs" / "all GPUs free at 0".
struct SubProblem {
  std::vector<char> job_mask;
  std::vector<Time> initial_phi;

  [[nodiscard]] bool active(JobId job) const {
    return job_mask.empty() ||
           job_mask[static_cast<std::size_t>(job.value())] != 0;
  }
  [[nodiscard]] Time phi(std::size_t gpu) const {
    return initial_phi.empty() ? 0.0 : initial_phi[gpu];
  }
};

class HareRelaxation {
 public:
  explicit HareRelaxation(RelaxationConfig config = {}) : config_(config) {}

  [[nodiscard]] RelaxationResult solve(const cluster::Cluster& cluster,
                                       const workload::JobSet& jobs,
                                       const profiler::TimeTable& times,
                                       const SubProblem& sub = {}) const;

 private:
  [[nodiscard]] RelaxationResult solve_fluid(const cluster::Cluster& cluster,
                                             const workload::JobSet& jobs,
                                             const profiler::TimeTable& times,
                                             const SubProblem& sub) const;
  [[nodiscard]] RelaxationResult solve_lp_cuts(
      const cluster::Cluster& cluster, const workload::JobSet& jobs,
      const profiler::TimeTable& times, const SubProblem& sub) const;

  RelaxationConfig config_;
};

}  // namespace hare::core
