#include "core/bounds.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace hare::core {

double critical_path_lower_bound(const workload::JobSet& jobs,
                                 const profiler::TimeTable& times) {
  double bound = 0.0;
  for (const auto& job : jobs.jobs()) {
    Time fastest_round = kTimeInfinity;
    for (std::size_t g = 0; g < times.gpu_count(); ++g) {
      fastest_round = std::min(
          fastest_round, times.total(job.id, GpuId(static_cast<int>(g))));
    }
    bound += job.spec.weight *
             (job.spec.arrival +
              static_cast<double>(job.rounds()) * fastest_round);
  }
  return bound;
}

double volume_lower_bound(const cluster::Cluster& cluster,
                          const workload::JobSet& jobs,
                          const profiler::TimeTable& times) {
  // Minimum possible GPU-seconds per job (every task at its fastest), then
  // WSPT completion times on a perfectly malleable |M|-machine fluid.
  const double machines = static_cast<double>(cluster.gpu_count());
  HARE_CHECK_MSG(machines > 0.0, "cluster has no GPUs");

  struct WorkItem {
    double work = 0.0;
    double weight = 1.0;
  };
  std::vector<WorkItem> items;
  items.reserve(jobs.job_count());
  for (const auto& job : jobs.jobs()) {
    const double work =
        static_cast<double>(job.rounds()) *
        static_cast<double>(job.tasks_per_round()) * times.min_tc(job.id);
    items.push_back(WorkItem{work, job.spec.weight});
  }
  // WSPT order minimizes Σ w C on the fluid machine; its value is a valid
  // lower bound for any feasible schedule of at least this much work.
  std::sort(items.begin(), items.end(), [](const WorkItem& a,
                                           const WorkItem& b) {
    return a.work * b.weight < b.work * a.weight;
  });
  double cumulative = 0.0;
  double bound = 0.0;
  for (const auto& item : items) {
    cumulative += item.work;
    bound += item.weight * cumulative / machines;
  }
  return bound;
}

double combined_lower_bound(const cluster::Cluster& cluster,
                            const workload::JobSet& jobs,
                            const profiler::TimeTable& times) {
  return std::max(critical_path_lower_bound(jobs, times),
                  volume_lower_bound(cluster, jobs, times));
}

ApproximationReport check_approximation(const cluster::Cluster& cluster,
                                        const workload::JobSet& jobs,
                                        const profiler::TimeTable& times,
                                        const sim::SimResult& result) {
  ApproximationReport report;
  report.objective = result.weighted_completion;
  report.lower_bound = combined_lower_bound(cluster, jobs, times);
  report.alpha = times.alpha();
  report.guarantee = report.alpha * (2.0 + report.alpha);
  report.ratio =
      report.lower_bound > 0.0 ? report.objective / report.lower_bound : 1.0;
  return report;
}

}  // namespace hare::core
