// Hare's task scheduling algorithm (§5.2, Algorithm 1).
//
// Step 1 relaxes Hare_Sched (HareRelaxation) to obtain fluid starts x̂ and
// middle completion times H_i = x̂_i + max_m T^c_{i,m}/2. Step 2 sorts all
// tasks by non-descending H and list-schedules them: a task is available at
// its job's arrival (round 0) or at the realized barrier of its previous
// round; it is placed on the GPU with the earliest available time φ_m
// (Algorithm 1 line 12), which becomes busy until x̃ + T̃^c — the sync
// T̃^s overlaps the GPU's next task (line 16). The result is an
// α(2+α)-approximation of the optimal total weighted completion time
// (Theorem 4).
//
// Options beyond the paper's default, used by the ablation bench:
//  * Placement::EarliestFinish — replace line 12's argmin φ_m with the
//    speed-aware argmin max(t_i, φ_m) + T^c_{i,m}.
//  * Sync::Strict — disable the relaxed scale-fixed scheme: a round's
//    tasks gang on |D_r| distinct GPUs with a common start (what Tiresias/
//    Gandiva-style scale-fixed systems do, Fig 4(a)).
#pragma once

#include "core/placement_index.hpp"
#include "core/relaxation.hpp"
#include "sched/scheduler.hpp"

namespace hare::core {

enum class Placement : std::uint8_t { EarliestAvailable, EarliestFinish };
enum class SyncScheme : std::uint8_t { Relaxed, Strict };

struct HareConfig {
  RelaxationConfig relaxation{};
  /// Line 12 interpretation. The pseudocode's literal argmin φ_m is
  /// speed-blind and lets slow GPUs onto every round's critical path; the
  /// earliest-finish reading (the same greedy the relaxation's fluid pass
  /// uses) is required to reproduce the paper's reported wins and is the
  /// default. The ablation bench quantifies the difference.
  Placement placement = Placement::EarliestFinish;
  SyncScheme sync = SyncScheme::Relaxed;
};

class HareScheduler final : public sched::Scheduler {
 public:
  explicit HareScheduler(HareConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return "Hare"; }
  [[nodiscard]] sim::Schedule schedule(
      const sched::SchedulerInput& input) override;

  /// Incremental planning state for the online extension: per-GPU
  /// commitment horizons carried across planning rounds, plus the
  /// φ-independent planning buffers (fitting matrix, placement index).
  /// Carrying the scratch across batches means a streaming caller pays
  /// append-only cost per batch — only jobs added since the previous call
  /// get new rows — instead of rebuilding O(jobs × GPUs) state every time.
  /// The instance behind one state may therefore only grow between calls:
  /// jobs are append-only and the cluster is fixed (the φ size check
  /// enforces the latter; PlannerScratch::sync rebuilds on a shrink).
  struct IncrementalState {
    std::vector<Time> phi;
    PlannerScratch scratch;
  };

  /// Plan only the jobs with `job_mask[id] != 0` on top of `state` (prior
  /// commitments), appending to `schedule`. Used by OnlineHareScheduler;
  /// requires the Fluid relaxation mode and relaxed sync. Returns the
  /// planned weighted-completion contribution of the batch.
  double schedule_jobs(const sched::SchedulerInput& input,
                       const std::vector<char>& job_mask,
                       IncrementalState& state, sim::Schedule& schedule);

  /// Like schedule_jobs, but list-schedule the masked jobs with externally
  /// supplied middle completion times `h` (indexed by TaskId value; only
  /// masked tasks' entries are read) instead of running the relaxation.
  /// The serving loop's incremental replanner derives h from its own warm
  /// LP re-solve (or an arrival-keyed greedy order when its replan budget
  /// is exhausted) and hands the ordering here, so placement semantics stay
  /// identical to every other planner path. Requires relaxed sync.
  double schedule_jobs_with_h(const sched::SchedulerInput& input,
                              const std::vector<char>& job_mask,
                              const std::vector<Time>& h,
                              IncrementalState& state,
                              sim::Schedule& schedule);

  /// Relaxation diagnostics of the last schedule() call.
  [[nodiscard]] const RelaxationResult& last_relaxation() const {
    return last_relaxation_;
  }

 private:
  HareConfig config_;
  RelaxationResult last_relaxation_;
};

}  // namespace hare::core
