// Lower bounds and the α(2+α) approximation-ratio check (§5.3).
//
// Two certified lower bounds on the optimal total weighted completion time
// of a Hare_Sched instance:
//  * critical path — job n cannot complete before
//      a_n + Σ_r min_m (T^c + T^s): rounds are sequential and each round
//      lasts at least one fastest task;
//  * volume — even splitting work perfectly, the machines cannot process
//    tasks faster than the speed-weighted capacity allows; applied through
//    Queyranne's full-set inequality on the "every task on its fastest
//    machine" load, combined per job by WSPT reasoning (we use the simpler
//    per-job form: total weighted mean-busy-time bound).
//
// The approximation checker divides a schedule's realized objective by the
// combined lower bound and compares against α(2+α) with
// α = max{T ratios} (Lemma 3 / Theorem 4).
#pragma once

#include "cluster/cluster.hpp"
#include "profiler/time_table.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"

namespace hare::core {

/// Σ_n w_n (a_n + Σ_r min_m(T^c + T^s)) — valid for any schedule.
[[nodiscard]] double critical_path_lower_bound(
    const workload::JobSet& jobs, const profiler::TimeTable& times);

/// Volume bound: order jobs by WSPT on their minimum total work spread over
/// all machines at fastest speeds; Σ w_n · (prefix work / |M|) is a lower
/// bound on Σ w_n C_n (machines cannot collectively do better than perfect
/// malleable splitting at per-task fastest rates).
[[nodiscard]] double volume_lower_bound(const cluster::Cluster& cluster,
                                        const workload::JobSet& jobs,
                                        const profiler::TimeTable& times);

/// max(critical path, volume).
[[nodiscard]] double combined_lower_bound(const cluster::Cluster& cluster,
                                          const workload::JobSet& jobs,
                                          const profiler::TimeTable& times);

struct ApproximationReport {
  double objective = 0.0;    ///< realized Σ w_n C_n
  double lower_bound = 0.0;  ///< certified LB on OPT
  double alpha = 1.0;        ///< heterogeneity ratio of the instance
  double ratio = 0.0;        ///< objective / lower_bound
  double guarantee = 0.0;    ///< α(2+α)

  [[nodiscard]] bool within_guarantee() const { return ratio <= guarantee; }
};

[[nodiscard]] ApproximationReport check_approximation(
    const cluster::Cluster& cluster, const workload::JobSet& jobs,
    const profiler::TimeTable& times, const sim::SimResult& result);

}  // namespace hare::core
