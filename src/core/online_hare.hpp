// Online Hare — the extension the paper leaves as future work (§1,
// "Limitations of the proposed approach").
//
// Offline Hare assumes every job (and its arrival) is known up front. The
// online scheduler only learns a job when it arrives: it sweeps arrival
// events in time order, optionally coalescing arrivals within a batching
// window (amortizing re-planning cost), and at each planning instant runs
// Algorithm 1 over the newly arrived jobs *on top of* the commitments
// already made — per-GPU horizons φ carried across batches. Earlier
// commitments are never revised (tasks may already be running), which is
// exactly the regret an online algorithm pays; the gap to offline Hare is
// measured in bench_online.
#pragma once

#include "core/hare_scheduler.hpp"

namespace hare::core {

struct OnlineHareConfig {
  HareConfig hare{};  ///< must keep Fluid relaxation + relaxed sync
  /// Coalesce arrivals within this window into one planning round
  /// (0 = re-plan at every distinct arrival instant).
  Time batching_window_s = 0.0;
};

class OnlineHareScheduler final : public sched::Scheduler {
 public:
  explicit OnlineHareScheduler(OnlineHareConfig config = {})
      : config_(config) {}

  [[nodiscard]] std::string_view name() const override {
    return "Hare_Online";
  }
  [[nodiscard]] sim::Schedule schedule(
      const sched::SchedulerInput& input) override;

  /// Number of planning rounds the last schedule() call performed.
  [[nodiscard]] std::size_t planning_rounds() const {
    return planning_rounds_;
  }

 private:
  OnlineHareConfig config_;
  std::size_t planning_rounds_ = 0;
};

}  // namespace hare::core
