// Indexed GPU-availability structure for the planning hot loops.
//
// Both the fluid relaxation pass and Algorithm 1's list scheduler place one
// task at a time with an argmin over GPUs — either earliest-available
// (line 12's literal argmin φ_m) or earliest-finish
// (argmin max(t_i, φ_m) + T^c_{i,m}). The seed implementation rescanned all
// G GPUs per task through per-element TimeTable calls, fit checks, and a
// branchy incumbent update. This index replaces both scans:
//
//  * earliest_available — the GPU horizon φ lives in an ordered set, so the
//    first memory-fitting entry is the lexicographic minimum of (φ, gpu),
//    exactly what the serial scan's strict-< update rule selects: O(log G)
//    per query instead of O(G). The set is built lazily on the first query
//    (earliest-finish pipelines never pay for it) and re-keyed via node
//    handles on φ updates — no per-placement allocation.
//  * earliest_finish — argmin over max(t_i, φ_m) + T^c is a min over two
//    independent per-GPU orders (φ and T^c); in the congested regime the
//    planner lives in, every pruned tree walk degenerates to visiting most
//    GPUs through cache-hostile pointer chasing. Instead the index
//    precomputes a masked T^c row per job (+∞ where the task does not fit
//    device memory) and runs a branch-free 4-lane strided scan over the
//    flat (φ, masked T^c) arrays: four independent incumbent chains give
//    the compiler ILP/SIMD freedom while each lane preserves the serial
//    scan's first-strict-< tie-break; the lane merge compares (finish, gpu)
//    lexicographically, so the selected candidate — and therefore the whole
//    schedule — is bit-identical to the seed loop at a fraction of its
//    per-element cost.
//
// Queries and set_phi are serial-planner operations (one task placed at a
// time); the lazily built φ-set means the index must not be shared across
// threads mid-build. `sharded_earliest_finish` / `sharded_earliest_available`
// are the thread-pool alternative for very wide clusters: shards compute
// their local lexicographic minimum over a contiguous GPU range and the
// results merge in shard order, which is again bit-identical to the serial
// scan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/gpu_bucket_index.hpp"
#include "profiler/time_table.hpp"
#include "workload/feasibility.hpp"

namespace hare::core {

namespace detail {

#if defined(__SSE2__)

/// SSE2 kernel for the earliest-finish scan: four strided incumbent chains
/// over (φ, masked T^c). min_pd keeps the earlier value on ties (the
/// serial strict-< rule) and the cmplt mask re-selects a lane's argmin only
/// on a strict improvement; indices ride along as doubles (exact up to
/// 2^53 GPUs). Returns the first unprocessed index; lanes land in
/// lane_best/lane_arg[0..3] (arg < 0 = lane saw only non-fitting +∞ rows).
inline std::size_t scan_lanes_sse2(const Time* row, const Time* phi,
                                   std::size_t n, Time release,
                                   double* lane_best, double* lane_arg) {
  const __m128d vrel = _mm_set1_pd(release);
  __m128d best0 = _mm_set1_pd(kTimeInfinity);
  __m128d best1 = best0;
  __m128d arg0 = _mm_set1_pd(-1.0);
  __m128d arg1 = arg0;
  __m128d idx0 = _mm_set_pd(1.0, 0.0);  // lanes {g, g+1}
  __m128d idx1 = _mm_set_pd(3.0, 2.0);  // lanes {g+2, g+3}
  const __m128d step = _mm_set1_pd(4.0);
  std::size_t g = 0;
  for (; g + 4 <= n; g += 4) {
    const __m128d f0 = _mm_add_pd(_mm_max_pd(vrel, _mm_loadu_pd(phi + g)),
                                  _mm_loadu_pd(row + g));
    const __m128d f1 = _mm_add_pd(_mm_max_pd(vrel, _mm_loadu_pd(phi + g + 2)),
                                  _mm_loadu_pd(row + g + 2));
    const __m128d lt0 = _mm_cmplt_pd(f0, best0);
    const __m128d lt1 = _mm_cmplt_pd(f1, best1);
    best0 = _mm_min_pd(best0, f0);
    best1 = _mm_min_pd(best1, f1);
    arg0 = _mm_or_pd(_mm_and_pd(lt0, idx0), _mm_andnot_pd(lt0, arg0));
    arg1 = _mm_or_pd(_mm_and_pd(lt1, idx1), _mm_andnot_pd(lt1, arg1));
    idx0 = _mm_add_pd(idx0, step);
    idx1 = _mm_add_pd(idx1, step);
  }
  _mm_storeu_pd(lane_best, best0);
  _mm_storeu_pd(lane_best + 2, best1);
  _mm_storeu_pd(lane_arg, arg0);
  _mm_storeu_pd(lane_arg + 2, arg1);
  return g;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HARE_HAVE_AVX2_DISPATCH 1

/// AVX2 variant of the same kernel: eight incumbent chains, compiled with a
/// target attribute and selected at runtime, so the baseline build still
/// runs on any x86-64. Identical selection semantics — lane decomposition
/// does not change the merged (finish, gpu) lexicographic minimum.
__attribute__((target("avx2"))) inline std::size_t scan_lanes_avx2(
    const Time* row, const Time* phi, std::size_t n, Time release,
    double* lane_best, double* lane_arg) {
  const __m256d vrel = _mm256_set1_pd(release);
  __m256d best0 = _mm256_set1_pd(kTimeInfinity);
  __m256d best1 = best0;
  __m256d arg0 = _mm256_set1_pd(-1.0);
  __m256d arg1 = arg0;
  __m256d idx0 = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);  // lanes {g .. g+3}
  __m256d idx1 = _mm256_set_pd(7.0, 6.0, 5.0, 4.0);  // lanes {g+4 .. g+7}
  const __m256d step = _mm256_set1_pd(8.0);
  std::size_t g = 0;
  for (; g + 8 <= n; g += 8) {
    const __m256d f0 = _mm256_add_pd(
        _mm256_max_pd(vrel, _mm256_loadu_pd(phi + g)), _mm256_loadu_pd(row + g));
    const __m256d f1 =
        _mm256_add_pd(_mm256_max_pd(vrel, _mm256_loadu_pd(phi + g + 4)),
                      _mm256_loadu_pd(row + g + 4));
    const __m256d lt0 = _mm256_cmp_pd(f0, best0, _CMP_LT_OQ);
    const __m256d lt1 = _mm256_cmp_pd(f1, best1, _CMP_LT_OQ);
    best0 = _mm256_min_pd(best0, f0);
    best1 = _mm256_min_pd(best1, f1);
    arg0 = _mm256_blendv_pd(arg0, idx0, lt0);
    arg1 = _mm256_blendv_pd(arg1, idx1, lt1);
    idx0 = _mm256_add_pd(idx0, step);
    idx1 = _mm256_add_pd(idx1, step);
  }
  _mm256_storeu_pd(lane_best, best0);
  _mm256_storeu_pd(lane_best + 4, best1);
  _mm256_storeu_pd(lane_arg, arg0);
  _mm256_storeu_pd(lane_arg + 4, arg1);
  return g;
}

[[nodiscard]] inline bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}
#endif  // x86-64 gcc/clang
#endif  // __SSE2__

}  // namespace detail

class PlacementIndex {
 public:
  static constexpr std::size_t kNoGpu = std::numeric_limits<std::size_t>::max();

  struct Candidate {
    std::size_t gpu = kNoGpu;
    Time start = 0.0;
    Time finish = kTimeInfinity;

    [[nodiscard]] bool valid() const { return gpu != kNoGpu; }
  };

  /// Builds the masked per-job T^c rows from the fitting matrix.
  /// `initial_phi` may be empty (all GPUs free at 0). With a pool, the
  /// per-job row builds fan out across workers (each job fills its own
  /// pre-sized slot — deterministic).
  ///
  /// With a `cluster` and `gpu_count >= bucket_min_gpus`, queries go through
  /// a per-(domain, type) GpuBucketIndex — O(buckets · log B) instead of
  /// O(G) — provided every job's masked row is bucket-uniform (checked here
  /// per job; a single mixed bucket falls the whole index back to the flat
  /// scan, keeping bit-identity unconditional).
  PlacementIndex(const profiler::TimeTable& times, std::size_t gpu_count,
                 const std::vector<std::vector<char>>& fits,
                 const std::vector<Time>& initial_phi = {},
                 common::ThreadPool* pool = nullptr,
                 const cluster::Cluster* cluster = nullptr,
                 std::size_t bucket_min_gpus = 0)
      : times_(&times), gpu_count_(gpu_count), phi_(gpu_count, 0.0) {
    if (!initial_phi.empty()) phi_ = initial_phi;

    const bool try_buckets = cluster != nullptr && bucket_min_gpus > 0 &&
                             gpu_count >= bucket_min_gpus;
    if (try_buckets) buckets_.emplace(*cluster, phi_);

    const std::size_t jobs = times.job_count();
    masked_tc_.resize(jobs * gpu_count);  // every slot written below
    std::atomic<bool> uniform{try_buckets};
    auto build_job = [&](std::size_t j) {
      const Time* tc = times_->tc_row(JobId(static_cast<int>(j)));
      const auto& job_fits = fits[j];
      Time* row = masked_tc_.data() + j * gpu_count_;
      for (std::size_t g = 0; g < gpu_count_; ++g) {
        row[g] = job_fits[g] ? tc[g] : kTimeInfinity;
      }
      if (try_buckets && uniform.load(std::memory_order_relaxed) &&
          !buckets_->row_uniform(row)) {
        uniform.store(false, std::memory_order_relaxed);
      }
    };
    if (pool && jobs > 1) {
      times.precompute();  // aggregate cache must not mutate under readers
      pool->parallel_for_each(jobs, build_job);
    } else {
      for (std::size_t j = 0; j < jobs; ++j) build_job(j);
    }
    // The memoized profiler keys measurements by (shape, type, uplink),
    // so same-type cells usually match and buckets survive; mixed uplinks
    // or hand-built tables still break uniformity, and the flat SIMD scan
    // stays exact for them.
    if (try_buckets && !uniform.load(std::memory_order_relaxed)) {
      buckets_.reset();
    }
  }

  /// True when queries run through the bucketed per-(domain, type) index.
  [[nodiscard]] bool bucketed() const { return buckets_.has_value(); }

  /// Jobs whose masked rows the index currently holds.
  [[nodiscard]] std::size_t job_count() const {
    return gpu_count_ ? masked_tc_.size() / gpu_count_ : 0;
  }

  /// Extend the job axis in place for streaming callers: masked T^c rows
  /// are built for jobs [job_count(), times.job_count()) only, so a
  /// standing index follows a growing instance at append-only cost instead
  /// of being rebuilt O(jobs × GPUs) per planning batch. Appended rows use
  /// the same arithmetic as the constructor, so a grown index and a fresh
  /// build agree bit for bit. Bucket exactness is re-verified for the new
  /// rows alone (the old verdict still holds); a non-uniform addition drops
  /// the whole index back to the flat scan, keeping bit-identity
  /// unconditional.
  void append_jobs(const profiler::TimeTable& times,
                   const std::vector<std::vector<char>>& fits) {
    times_ = &times;
    const std::size_t old_jobs = job_count();
    const std::size_t jobs = times.job_count();
    if (jobs <= old_jobs) return;
    masked_tc_.resize(jobs * gpu_count_);
    bool uniform = buckets_.has_value();
    for (std::size_t j = old_jobs; j < jobs; ++j) {
      const Time* tc = times.tc_row(JobId(static_cast<int>(j)));
      const auto& job_fits = fits[j];
      Time* row = masked_tc_.data() + j * gpu_count_;
      for (std::size_t g = 0; g < gpu_count_; ++g) {
        row[g] = job_fits[g] ? tc[g] : kTimeInfinity;
      }
      if (uniform && !buckets_->row_uniform(row)) uniform = false;
    }
    if (buckets_ && !uniform) buckets_.reset();
  }

  [[nodiscard]] Time phi(std::size_t gpu) const { return phi_[gpu]; }
  [[nodiscard]] const std::vector<Time>& phi() const { return phi_; }

  void set_phi(std::size_t gpu, Time value) {
    if (phi_set_built_) {
      // Node-handle reuse: re-key the existing tree node instead of paying
      // a deallocate/allocate pair on every placement.
      auto node = by_phi_.extract({phi_[gpu], gpu});
      node.value() = {value, gpu};
      by_phi_.insert(std::move(node));
    }
    if (buckets_) buckets_->set_phi(gpu, value);
    phi_[gpu] = value;
  }

  /// Re-seed every GPU horizon at once (empty = all free at 0). Lets one
  /// index — and its job-masked T^c rows, the expensive part — serve both
  /// the relaxation's fluid pass and Algorithm 1's list-scheduling pass.
  void reset_phi(const std::vector<Time>& initial_phi) {
    if (initial_phi.empty()) {
      std::fill(phi_.begin(), phi_.end(), 0.0);
    } else {
      phi_ = initial_phi;
    }
    if (buckets_) buckets_->reset_phi(phi_);
    by_phi_.clear();
    phi_set_built_ = false;
  }

  /// Lexicographic argmin of (φ, gpu) over fitting GPUs; start is
  /// max(release, φ).
  [[nodiscard]] Candidate earliest_available(JobId job, Time release) const {
    if (buckets_) {
      const GpuBucketIndex::Candidate c =
          buckets_->earliest_available(masked_row(job), release);
      return c.valid() ? Candidate{c.gpu, c.start, c.finish} : Candidate{};
    }
    if (!phi_set_built_) {
      for (std::size_t g = 0; g < gpu_count_; ++g) by_phi_.insert({phi_[g], g});
      phi_set_built_ = true;
    }
    const Time* row = masked_row(job);
    for (const auto& [p, g] : by_phi_) {
      if (row[g] == kTimeInfinity) continue;  // does not fit device memory
      const Time start = std::max(release, p);
      return Candidate{g, start, start};
    }
    return {};
  }

  /// Lexicographic argmin of (max(release, φ) + T^c, gpu) over fitting
  /// GPUs. Four strided incumbent chains, merged in lane order; any lane
  /// decomposition selects the same (finish, gpu) lexicographic minimum as
  /// the serial strict-< scan, because each lane keeps its first strict
  /// minimum and the merge breaks finish ties toward the lower GPU id.
  [[nodiscard]] Candidate earliest_finish(JobId job, Time release) const {
    const Time* row = masked_row(job);
    if (buckets_) {
      const GpuBucketIndex::Candidate c =
          buckets_->earliest_finish(row, release);
      return c.valid() ? Candidate{c.gpu, c.start, c.finish} : Candidate{};
    }
    const Time* phi = phi_.data();
    const std::size_t n = gpu_count_;

    Candidate chosen;
    std::size_t g = 0;
#if defined(__SSE2__)
    if (n >= 8) {
      // Branch-free SIMD incumbents; non-fitting GPUs carry +∞ and never
      // win a strict comparison. AVX2 (8 chains) is picked at runtime.
      alignas(32) double lane_best[8];
      alignas(32) double lane_arg[8];
      std::size_t lanes = 4;
#if defined(HARE_HAVE_AVX2_DISPATCH)
      if (n >= 16 && detail::cpu_has_avx2()) {
        g = detail::scan_lanes_avx2(row, phi, n, release, lane_best, lane_arg);
        lanes = 8;
      } else
#endif
      {
        g = detail::scan_lanes_sse2(row, phi, n, release, lane_best, lane_arg);
      }
      for (std::size_t l = 0; l < lanes; ++l) {
        if (lane_arg[l] < 0.0) continue;  // lane saw only non-fitting GPUs
        const std::size_t lane_gpu = static_cast<std::size_t>(lane_arg[l]);
        if (lane_best[l] < chosen.finish ||
            (lane_best[l] == chosen.finish && lane_gpu < chosen.gpu)) {
          chosen = Candidate{lane_gpu, 0.0, lane_best[l]};
        }
      }
    }
#else
    {
      // Portable four-chain unroll: independent incumbents give the
      // compiler ILP without changing any selected value.
      Time best[4] = {kTimeInfinity, kTimeInfinity, kTimeInfinity,
                      kTimeInfinity};
      std::size_t arg[4] = {kNoGpu, kNoGpu, kNoGpu, kNoGpu};
      for (; g + 4 <= n; g += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
          const Time finish = std::max(release, phi[g + l]) + row[g + l];
          if (finish < best[l]) {
            best[l] = finish;
            arg[l] = g + l;
          }
        }
      }
      for (std::size_t l = 0; l < 4; ++l) {
        if (arg[l] == kNoGpu) continue;  // lane saw only non-fitting GPUs
        if (best[l] < chosen.finish ||
            (best[l] == chosen.finish && arg[l] < chosen.gpu)) {
          chosen = Candidate{arg[l], 0.0, best[l]};
        }
      }
    }
#endif
    for (; g < n; ++g) {  // tail; indices above every lane winner
      if (row[g] == kTimeInfinity) continue;  // does not fit device memory
      const Time finish = std::max(release, phi[g]) + row[g];
      if (finish < chosen.finish) chosen = Candidate{g, 0.0, finish};
    }
    if (chosen.valid()) chosen.start = std::max(release, phi_[chosen.gpu]);
    return chosen;
  }

 private:
  [[nodiscard]] const Time* masked_row(JobId job) const {
    return masked_tc_.data() +
           static_cast<std::size_t>(job.value()) * gpu_count_;
  }

  const profiler::TimeTable* times_;
  std::size_t gpu_count_ = 0;
  std::vector<Time> phi_;
  /// T^c per (job, gpu); +∞ where the job's task does not fit the GPU.
  std::vector<Time> masked_tc_;
  mutable std::set<std::pair<Time, std::size_t>> by_phi_;
  mutable bool phi_set_built_ = false;
  /// Engaged only when bucket-uniformity verified for every job's row.
  std::optional<GpuBucketIndex> buckets_;
};

/// Reusable φ-independent planning buffers: the memory-fitting matrix and
/// the placement index (whose job-masked T^c rows are the expensive part).
/// One planning invocation builds them once; the relaxation's fluid pass
/// and Algorithm 1's list scheduler both reuse them via reset_phi(). A
/// scratch may also outlive one invocation — the incremental planners carry
/// it across batches through HareScheduler::IncrementalState, so a
/// streaming instance pays append-only cost per batch (sync below). The
/// naive engine never touches the scratch — it keeps the seed's
/// build-twice behaviour as the bench baseline.
struct PlannerScratch {
  std::vector<std::vector<char>> fits;  ///< [job][gpu] memory fit
  std::optional<PlacementIndex> index;

  /// Follow the caller's instance across planning calls. The first use
  /// builds the fitting matrix; later uses extend it for jobs appended
  /// since (the streaming contract: between calls sharing one scratch the
  /// job set may only grow and the cluster is fixed). A scratch that no
  /// longer matches the instance — more rows than jobs, or a different GPU
  /// axis — starts over from scratch. The standing index's masked rows are
  /// extended in lock-step by the engine-enable paths via append_jobs.
  void sync(const cluster::Cluster& cluster, const workload::JobSet& jobs) {
    if (fits.size() > jobs.job_count() ||
        (!fits.empty() && fits.front().size() != cluster.gpu_count())) {
      fits.clear();
      index.reset();
    }
    if (fits.size() < jobs.job_count()) {
      workload::append_fitting_rows(cluster, jobs, fits);
    }
  }
};

namespace detail {

template <typename CandidateFn>
PlacementIndex::Candidate sharded_argmin(std::size_t gpu_count,
                                         common::ThreadPool& pool,
                                         CandidateFn&& candidate_of) {
  const std::size_t shards = std::min(gpu_count, pool.size());
  std::vector<PlacementIndex::Candidate> local(shards);
  pool.parallel_for_each(shards, [&](std::size_t s) {
    const std::size_t lo = s * gpu_count / shards;
    const std::size_t hi = (s + 1) * gpu_count / shards;
    PlacementIndex::Candidate best;
    for (std::size_t g = lo; g < hi; ++g) {
      const PlacementIndex::Candidate c = candidate_of(g);
      if (!c.valid()) continue;
      if (c.finish < best.finish ||
          (c.finish == best.finish && c.gpu < best.gpu)) {
        best = c;
      }
    }
    local[s] = best;
  });
  PlacementIndex::Candidate best;
  for (const auto& c : local) {  // merge in shard order — deterministic
    if (!c.valid()) continue;
    if (c.finish < best.finish ||
        (c.finish == best.finish && c.gpu < best.gpu)) {
      best = c;
    }
  }
  return best;
}

}  // namespace detail

/// Pool-sharded earliest-finish scan over the raw φ vector. Same selection
/// (and bit pattern) as the serial scan; worth it only for very wide
/// clusters where one task's candidate scan amortizes the fan-out.
inline PlacementIndex::Candidate sharded_earliest_finish(
    const profiler::TimeTable& times, JobId job, Time release,
    const std::vector<char>& fits, const std::vector<Time>& phi,
    common::ThreadPool& pool) {
  return detail::sharded_argmin(
      phi.size(), pool, [&](std::size_t g) -> PlacementIndex::Candidate {
        if (!fits[g]) return {};
        const Time start = std::max(release, phi[g]);
        const Time finish = start + times.tc(job, GpuId(static_cast<int>(g)));
        return PlacementIndex::Candidate{g, start, finish};
      });
}

/// Pool-sharded earliest-available scan (argmin φ, ties to the lower id).
inline PlacementIndex::Candidate sharded_earliest_available(
    Time release, const std::vector<char>& fits, const std::vector<Time>& phi,
    common::ThreadPool& pool) {
  return detail::sharded_argmin(
      phi.size(), pool, [&](std::size_t g) -> PlacementIndex::Candidate {
        if (!fits[g]) return {};
        return PlacementIndex::Candidate{g, std::max(release, phi[g]), phi[g]};
      });
}

}  // namespace hare::core
