// Synchronization-scale advisor.
//
// §2.1 notes that the parallelism scale |K| is "chosen by the user"; on a
// heterogeneous cluster the right choice is not obvious — Fig 5 shows a
// gang stretched across slow GPUs gains nothing. The advisor evaluates a
// job alone on the cluster at each candidate scale (scheduled by Hare with
// relaxed sync, executed by the simulator) and reports completion time and
// parallel efficiency = speedup / scale, recommending the largest scale
// whose efficiency stays above a floor.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "workload/job.hpp"
#include "workload/perf_model.hpp"

namespace hare::core {

struct SyncScaleAdvice {
  std::uint32_t scale = 1;
  Time completion = 0.0;   ///< the job alone on the cluster
  double speedup = 1.0;    ///< vs scale 1
  double efficiency = 1.0; ///< speedup / scale
};

/// Evaluate `candidates` for a job of `spec`'s model/rounds/batch on an
/// otherwise idle `cluster`. Candidates wider than the cluster (or than
/// the job's memory-feasible GPU set) are skipped.
[[nodiscard]] std::vector<SyncScaleAdvice> advise_sync_scale(
    const cluster::Cluster& cluster, workload::JobSpec spec,
    const workload::PerfModel& perf,
    const std::vector<std::uint32_t>& candidates = {1, 2, 4, 8});

/// Largest candidate whose parallel efficiency is at least
/// `efficiency_floor` (falls back to 1).
[[nodiscard]] std::uint32_t recommend_sync_scale(
    const cluster::Cluster& cluster, workload::JobSpec spec,
    const workload::PerfModel& perf, double efficiency_floor = 0.5,
    const std::vector<std::uint32_t>& candidates = {1, 2, 4, 8});

}  // namespace hare::core
