// Per-(network-domain, GPU-type) bucketed GPU index: sublinear placement
// lookups for very wide clusters.
//
// The flat earliest-finish scan is O(G) per task no matter how clever its
// SIMD lanes are. But the candidate expression max(release, φ_g) + T^c only
// depends on g through φ_g and T^c_{i,g}, and on profiled clusters T^c is a
// function of the GPU *type* alone (the ProfileDb key is (model, type,
// batch, batches/task, uplink)). Group the GPUs into buckets keyed by
// (machine network domain, GPU type) — T^c and the memory fit are constant
// within a bucket — and the per-task argmin decomposes into one O(log B)
// segment-tree query per bucket plus a merge over the handful of buckets:
//
//  * earliest_finish: inside a bucket every GPU shares T^c, so the bucket's
//    best candidate is either its global φ-minimum GPU (when φ_min >
//    release — nothing is idle, take the soonest-free) or the lowest-id GPU
//    with φ ≤ release (something is idle; all idle GPUs tie on finish and
//    the serial scan breaks ties toward the lower id). Both are one
//    descent of a min-φ segment tree whose ties resolve toward the lower
//    GPU id. Bucket winners merge lexicographically on (finish, gpu) —
//    bit-identical to the flat scan.
//  * earliest_available: the bucket winner is its root (φ_min, argmin-id);
//    merge on (φ, gpu).
//
// Exactness precondition: the masked T^c row must be constant within every
// bucket. That holds for ProfileDb / exact tables but *not* for the noisy
// per-GPU profiler path, so PlacementIndex verifies each job's row at build
// time and silently keeps the flat scan when any bucket is mixed — the
// bucketed index is a wall-clock knob, never a semantics change.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"

namespace hare::core {

class GpuBucketIndex {
 public:
  static constexpr std::size_t kNoGpu = std::numeric_limits<std::size_t>::max();

  struct Candidate {
    std::size_t gpu = kNoGpu;
    Time start = 0.0;
    Time finish = kTimeInfinity;

    [[nodiscard]] bool valid() const { return gpu != kNoGpu; }
  };

  GpuBucketIndex() = default;

  /// Bucket the cluster's GPUs by (machine domain, GPU type), ascending GPU
  /// id within each bucket, and seed every φ horizon (empty = all 0).
  explicit GpuBucketIndex(const cluster::Cluster& cluster,
                          const std::vector<Time>& initial_phi = {}) {
    const std::size_t n = cluster.gpu_count();
    gpu_bucket_.assign(n, 0);
    gpu_pos_.assign(n, 0);

    // Assign bucket ids in first-appearance order over ascending GPU id —
    // deterministic, and bucket-major iteration visits GPUs in an order
    // that merges back to the global lexicographic minimum.
    struct Key {
      std::size_t domain;
      cluster::GpuType type;
      bool operator==(const Key&) const = default;
    };
    std::vector<Key> keys;
    for (const auto& gpu : cluster.gpus()) {
      const Key key{cluster.machine(gpu.machine).domain, gpu.type};
      std::size_t b = 0;
      for (; b < keys.size(); ++b) {
        if (keys[b] == key) break;
      }
      if (b == keys.size()) {
        keys.push_back(key);
        buckets_.emplace_back();
      }
      auto& bucket = buckets_[b];
      const auto g = static_cast<std::size_t>(gpu.id.value());
      gpu_bucket_[g] = static_cast<std::uint32_t>(b);
      gpu_pos_[g] = static_cast<std::uint32_t>(bucket.gpus.size());
      bucket.gpus.push_back(g);
    }
    for (auto& bucket : buckets_) bucket.build_tree();
    reset_phi(initial_phi.empty() ? std::vector<Time>(n, 0.0) : initial_phi);
  }

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// True when `row` (a masked T^c row, +∞ = does not fit) is constant
  /// within every bucket — the exactness precondition for queries.
  [[nodiscard]] bool row_uniform(const Time* row) const {
    for (const auto& bucket : buckets_) {
      const Time v = row[bucket.gpus.front()];
      for (const std::size_t g : bucket.gpus) {
        if (row[g] != v) return false;
      }
    }
    return true;
  }

  void set_phi(std::size_t gpu, Time value) {
    buckets_[gpu_bucket_[gpu]].update(gpu_pos_[gpu], value);
  }

  void reset_phi(const std::vector<Time>& phi) {
    for (auto& bucket : buckets_) {
      for (std::size_t p = 0; p < bucket.gpus.size(); ++p) {
        bucket.leaf_set(p, phi[bucket.gpus[p]]);
      }
      bucket.rebuild_internal();
    }
  }

  /// Lexicographic argmin of (max(release, φ) + T^c, gpu) over fitting
  /// GPUs; matches the flat scan bit for bit when row_uniform(row) holds.
  [[nodiscard]] Candidate earliest_finish(const Time* row,
                                          Time release) const {
    Candidate chosen;
    for (const auto& bucket : buckets_) {
      const Time tc = row[bucket.gpus.front()];
      if (tc == kTimeInfinity) continue;  // bucket does not fit the job
      const auto [phi_min, arg_min] = bucket.root();
      std::size_t pos;
      Time start;
      if (phi_min > release) {
        // Nothing idle: min finish at the soonest-free GPU; the tree
        // already breaks φ ties toward the lower position (= lower id).
        pos = arg_min;
        start = phi_min;
      } else {
        // At least one idle GPU: all of them tie on finish = release + tc,
        // and the serial scan's first-strict-< rule keeps the lowest id.
        pos = bucket.leftmost_at_most(release);
        start = release;
      }
      const std::size_t gpu = bucket.gpus[pos];
      const Time finish = start + tc;
      if (finish < chosen.finish ||
          (finish == chosen.finish && gpu < chosen.gpu)) {
        chosen = Candidate{gpu, start, finish};
      }
    }
    return chosen;
  }

  /// Lexicographic argmin of (φ, gpu) over fitting GPUs; start is
  /// max(release, φ).
  [[nodiscard]] Candidate earliest_available(const Time* row,
                                             Time release) const {
    std::size_t best_gpu = kNoGpu;
    Time best_phi = kTimeInfinity;
    for (const auto& bucket : buckets_) {
      if (row[bucket.gpus.front()] == kTimeInfinity) continue;
      const auto [phi_min, arg_min] = bucket.root();
      const std::size_t gpu = bucket.gpus[arg_min];
      if (phi_min < best_phi || (phi_min == best_phi && gpu < best_gpu)) {
        best_phi = phi_min;
        best_gpu = gpu;
      }
    }
    if (best_gpu == kNoGpu) return {};
    const Time start = std::max(release, best_phi);
    return Candidate{best_gpu, start, start};
  }

 private:
  /// Min-φ segment tree over one bucket's GPUs (by position = ascending
  /// global id). Internal nodes carry (min φ, argmin position); ties
  /// resolve toward the left child, i.e. the lower GPU id.
  struct Bucket {
    std::vector<std::size_t> gpus;  ///< global ids, ascending
    std::vector<Time> tree_phi;
    std::vector<std::uint32_t> tree_arg;
    std::size_t base = 1;

    void build_tree() {
      base = 1;
      while (base < gpus.size()) base <<= 1;
      tree_phi.assign(2 * base, kTimeInfinity);
      tree_arg.assign(2 * base, 0);
      for (std::size_t p = 0; p < base; ++p) {
        tree_arg[base + p] = static_cast<std::uint32_t>(p);
      }
    }

    void leaf_set(std::size_t pos, Time value) { tree_phi[base + pos] = value; }

    void rebuild_internal() {
      for (std::size_t i = base - 1; i >= 1; --i) pull(i);
    }

    void pull(std::size_t i) {
      const std::size_t l = 2 * i;
      const std::size_t r = 2 * i + 1;
      // <= keeps the left child on ties: lower position, lower GPU id.
      if (tree_phi[l] <= tree_phi[r]) {
        tree_phi[i] = tree_phi[l];
        tree_arg[i] = tree_arg[l];
      } else {
        tree_phi[i] = tree_phi[r];
        tree_arg[i] = tree_arg[r];
      }
    }

    void update(std::size_t pos, Time value) {
      std::size_t i = base + pos;
      tree_phi[i] = value;
      for (i >>= 1; i >= 1; i >>= 1) pull(i);
    }

    /// (min φ, argmin position) over the bucket.
    [[nodiscard]] std::pair<Time, std::size_t> root() const {
      return {tree_phi[1], tree_arg[1]};
    }

    /// Position of the lowest-id GPU with φ ≤ bound. Precondition: the
    /// root's min φ is ≤ bound (checked by the caller).
    [[nodiscard]] std::size_t leftmost_at_most(Time bound) const {
      std::size_t i = 1;
      while (i < base) {
        i = 2 * i + (tree_phi[2 * i] <= bound ? 0 : 1);
      }
      return i - base;
    }
  };

  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> gpu_bucket_;
  std::vector<std::uint32_t> gpu_pos_;
};

}  // namespace hare::core
