// Historical profiling database (§3, system overview).
//
// Jobs are often re-submitted (periodic retraining); the scheduler first
// consults a database of past profiling results keyed by
// (model, GPU type, batch size, batches per task, uplink bandwidth) and
// only profiles on a miss. The DB round-trips through a plain-text file so
// a long-lived deployment accumulates profiles across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/gpu.hpp"
#include "common/types.hpp"
#include "workload/model_zoo.hpp"

namespace hare::profiler {

struct ProfileKey {
  workload::ModelType model{};
  cluster::GpuType gpu{};
  std::uint32_t batch_size = 0;
  std::uint32_t batches_per_task = 0;
  /// Machine uplink in Mbit/s, rounded — sync time depends on it.
  std::uint32_t network_mbps = 0;

  friend bool operator==(const ProfileKey&, const ProfileKey&) = default;
};

struct ProfileKeyHash {
  std::size_t operator()(const ProfileKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.model);
    h = h * 131 + static_cast<std::size_t>(k.gpu);
    h = h * 131 + k.batch_size;
    h = h * 131 + k.batches_per_task;
    h = h * 131 + k.network_mbps;
    return h;
  }
};

struct ProfileEntry {
  Time tc = 0.0;  ///< task training time
  Time ts = 0.0;  ///< task synchronization time
  std::uint32_t sample_count = 0;
};

class ProfileDb {
 public:
  [[nodiscard]] std::optional<ProfileEntry> lookup(const ProfileKey& key) const;
  void store(const ProfileKey& key, const ProfileEntry& entry);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  void save(std::ostream& os) const;
  void load(std::istream& is);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  std::unordered_map<ProfileKey, ProfileEntry, ProfileKeyHash> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace hare::profiler
