// Task profiler (§3 preparation stage).
//
// The real profiler trains a small slice of data per (job, GPU) pair and
// records batch times. Offline, "running a batch" means sampling the
// analytic performance model with multiplicative measurement noise
// (testbed jitter: input pipeline variance, clock throttling, network).
// The profiler averages `sample_batches` draws after `warmup_batches`
// discarded warmups, which is exactly the shape of the real measurement
// loop, and optionally consults/extends a ProfileDb to skip repeat work.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"
#include "workload/perf_model.hpp"

namespace hare::profiler {

struct ProfilerConfig {
  std::uint32_t warmup_batches = 2;
  std::uint32_t sample_batches = 5;
  /// Coefficient of variation of one measured batch (testbed jitter).
  double measurement_noise_cv = 0.03;
};

class Profiler {
 public:
  Profiler(workload::PerfModel perf, ProfilerConfig config, std::uint64_t seed)
      : perf_(perf), config_(config), rng_(seed) {}

  /// Profile every (job, GPU) pair; uses `db` when provided (lookups keyed
  /// by GPU *type*, so a 160-GPU cluster needs only |models| × |types|
  /// actual profiling runs).
  [[nodiscard]] TimeTable profile(const workload::JobSet& jobs,
                                  const cluster::Cluster& cluster,
                                  ProfileDb* db = nullptr);

  /// Exact (noise-free) table straight from the performance model — the
  /// simulator's ground truth.
  [[nodiscard]] TimeTable exact(const workload::JobSet& jobs,
                                const cluster::Cluster& cluster) const;

  /// Total simulated profiling cost in GPU-seconds of the last profile()
  /// call (what the ProfileDb saves on repeat submissions).
  [[nodiscard]] Time last_profiling_cost() const { return profiling_cost_; }

  [[nodiscard]] const workload::PerfModel& perf_model() const { return perf_; }

 private:
  workload::PerfModel perf_;
  ProfilerConfig config_;
  common::Rng rng_;
  Time profiling_cost_ = 0.0;
};

}  // namespace hare::profiler
