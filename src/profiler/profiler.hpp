// Task profiler (§3 preparation stage).
//
// The real profiler trains a small slice of data per (job, GPU) pair and
// records batch times. Offline, "running a batch" means sampling the
// analytic performance model with multiplicative measurement noise
// (testbed jitter: input pipeline variance, clock throttling, network).
// The profiler averages `sample_batches` draws after `warmup_batches`
// discarded warmups, which is exactly the shape of the real measurement
// loop, and optionally consults/extends a ProfileDb to skip repeat work.
//
// Two scaling mechanisms keep profiling off the critical path at six-figure
// job counts:
//
//  * **Shape memoization.** A job's (T^c, T^s) row is a pure function of
//    its shape — (model, effective batch size, batches per task) — given
//    the cluster, and one measurement is keyed by (shape, GPU type,
//    uplink), exactly like the ProfileDb. Jobs sharing a shape share one
//    interned TimeTable row, and measurement keys are profiled once per
//    call, so a 100k-job trace with a handful of distinct shapes costs a
//    handful of row builds instead of 100k × G model evaluations.
//
//  * **Deterministic parallel row builds.** Unique rows fan out across
//    common::shared_pool() following the hare::exp engine contract
//    (HARE_EXP_SERIAL forces the serial path, HARE_JOBS caps workers,
//    nested calls from a pool worker degrade to inline). Each measurement
//    key draws a private RNG seed from the profiler stream *serially in
//    canonical first-seen order* before the fan-out, so serial and pooled
//    runs produce bit-identical tables: parallelism changes wall-clock
//    only, never a number.
//
// Telemetry (hare::obs): `profiler.exact` / `profiler.profile` spans with
// `profiler.enumerate` / `profiler.measure` / `profiler.build_rows` stage
// spans under them, plus `profiler.cells`, `profiler.memo_hits`,
// `profiler.measurements`, and `profiler.rows_computed` counters — the
// profile stage shows up in Chrome traces exactly like the planner.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "profiler/profile_db.hpp"
#include "profiler/time_table.hpp"
#include "workload/job.hpp"
#include "workload/perf_model.hpp"

namespace hare::profiler {

struct ProfilerConfig {
  std::uint32_t warmup_batches = 2;
  std::uint32_t sample_batches = 5;
  /// Coefficient of variation of one measured batch (testbed jitter).
  double measurement_noise_cv = 0.03;
  /// Run row builds and measurements on the calling thread in canonical
  /// order. ORed with the HARE_EXP_SERIAL environment variable. The result
  /// is bit-identical either way; this is a debugging/TSan escape hatch.
  bool serial = false;
};

class Profiler {
 public:
  Profiler(workload::PerfModel perf, ProfilerConfig config, std::uint64_t seed)
      : perf_(perf), config_(config), rng_(seed) {}

  /// Profile every (job, GPU) pair; uses `db` when provided (lookups keyed
  /// by GPU *type*, so a 160-GPU cluster needs only |models| × |types|
  /// actual profiling runs). Jobs with the same shape share one interned
  /// row — see the memoization notes above.
  [[nodiscard]] TimeTable profile(const workload::JobSet& jobs,
                                  const cluster::Cluster& cluster,
                                  ProfileDb* db = nullptr);

  /// Exact (noise-free) table straight from the performance model — the
  /// simulator's ground truth. Shape-memoized and fanned out like
  /// profile(), minus the measurement noise.
  [[nodiscard]] TimeTable exact(const workload::JobSet& jobs,
                                const cluster::Cluster& cluster) const;

  /// Total simulated profiling cost in GPU-seconds of the last profile()
  /// call (what the ProfileDb saves on repeat submissions).
  [[nodiscard]] Time last_profiling_cost() const { return profiling_cost_; }

  /// (job, GPU) cells of the last profile()/exact() call that were served
  /// from an already-resolved measurement key instead of fresh work — the
  /// in-call memo's savings (ProfileDb hits are counted by the db itself).
  [[nodiscard]] std::uint64_t last_memo_hits() const { return memo_hits_; }
  /// First-seen measurement keys of the last call (= cells - memo hits).
  [[nodiscard]] std::uint64_t last_memo_misses() const { return memo_misses_; }
  /// Unique rows interned by the last call (= distinct job shapes).
  [[nodiscard]] std::uint64_t last_rows_computed() const { return rows_; }

  [[nodiscard]] const workload::PerfModel& perf_model() const { return perf_; }

 private:
  workload::PerfModel perf_;
  ProfilerConfig config_;
  common::Rng rng_;
  Time profiling_cost_ = 0.0;
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
  mutable std::uint64_t rows_ = 0;
};

}  // namespace hare::profiler
