#include "profiler/profile_db.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace hare::profiler {

std::optional<ProfileEntry> ProfileDb::lookup(const ProfileKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ProfileDb::store(const ProfileKey& key, const ProfileEntry& entry) {
  entries_[key] = entry;
}

namespace {
constexpr std::string_view kDbHeader = "hare-profiledb-v1";
}

void ProfileDb::save(std::ostream& os) const {
  os << kDbHeader << ' ' << entries_.size() << '\n';
  os.precision(17);
  for (const auto& [key, entry] : entries_) {
    os << static_cast<int>(key.model) << ' ' << static_cast<int>(key.gpu)
       << ' ' << key.batch_size << ' ' << key.batches_per_task << ' '
       << key.network_mbps << ' ' << entry.tc << ' ' << entry.ts << ' '
       << entry.sample_count << '\n';
  }
}

void ProfileDb::load(std::istream& is) {
  std::string header;
  std::size_t count = 0;
  is >> header >> count;
  HARE_CHECK_MSG(header == kDbHeader, "not a hare profile DB (bad header)");
  for (std::size_t i = 0; i < count; ++i) {
    int model = 0;
    int gpu = 0;
    ProfileKey key;
    ProfileEntry entry;
    is >> model >> gpu >> key.batch_size >> key.batches_per_task >>
        key.network_mbps >> entry.tc >> entry.ts >> entry.sample_count;
    HARE_CHECK_MSG(static_cast<bool>(is), "truncated profile DB at " << i);
    key.model = static_cast<workload::ModelType>(model);
    key.gpu = static_cast<cluster::GpuType>(gpu);
    entries_[key] = entry;
  }
}

void ProfileDb::save_file(const std::string& path) const {
  std::ofstream os(path);
  HARE_CHECK_MSG(os.good(), "cannot open profile DB for writing: " << path);
  save(os);
}

void ProfileDb::load_file(const std::string& path) {
  std::ifstream is(path);
  HARE_CHECK_MSG(is.good(), "cannot open profile DB: " << path);
  load(is);
}

}  // namespace hare::profiler
