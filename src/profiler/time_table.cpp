#include "profiler/time_table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::profiler {

// One pass over the GPU axis fills every aggregate for the job; the old
// reduce_over_gpus helper ran a separate O(G) scan per min/max accessor.
const TimeTable::JobAggregates& TimeTable::aggregates(JobId job) const {
  HARE_CHECK_MSG(gpu_count_ > 0, "time table has no GPUs");
  const std::size_t j = static_cast<std::size_t>(job.value());
  HARE_CHECK_MSG(j < agg_.size(), "time table has no job " << job);
  if (agg_valid_[j]) return agg_[j];

  const std::size_t base = j * gpu_count_;
  JobAggregates agg;
  agg.min_tc = agg.max_tc = tc_[base];
  agg.min_ts = agg.max_ts = ts_[base];
  agg.min_total = tc_[base] + ts_[base];
  agg.fastest = GpuId(0);
  for (std::size_t g = 1; g < gpu_count_; ++g) {
    const Time c = tc_[base + g];
    const Time s = ts_[base + g];
    if (c < agg.min_tc) {
      agg.min_tc = c;
      agg.fastest = GpuId(static_cast<int>(g));
    }
    agg.max_tc = std::max(agg.max_tc, c);
    agg.min_ts = std::min(agg.min_ts, s);
    agg.max_ts = std::max(agg.max_ts, s);
    agg.min_total = std::min(agg.min_total, c + s);
  }
  agg_[j] = agg;
  agg_valid_[j] = 1;
  return agg_[j];
}

double TimeTable::alpha() const {
  if (alpha_valid_) return alpha_;
  double alpha = 1.0;
  for (std::size_t j = 0; j < job_count(); ++j) {
    const JobAggregates& agg = aggregates(JobId(static_cast<int>(j)));
    if (agg.min_tc > 0.0) alpha = std::max(alpha, agg.max_tc / agg.min_tc);
    if (agg.min_ts > 0.0) alpha = std::max(alpha, agg.max_ts / agg.min_ts);
  }
  alpha_ = alpha;
  alpha_valid_ = true;
  return alpha_;
}

void TimeTable::precompute() const {
  for (std::size_t j = 0; j < job_count(); ++j) {
    (void)aggregates(JobId(static_cast<int>(j)));
  }
  if (job_count() > 0) (void)alpha();
}

}  // namespace hare::profiler
