#include "profiler/time_table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hare::profiler {

namespace {
template <typename Fn>
Time reduce_over_gpus(std::size_t gpu_count, Fn&& value, bool want_min) {
  HARE_CHECK_MSG(gpu_count > 0, "time table has no GPUs");
  Time best = value(0);
  for (std::size_t g = 1; g < gpu_count; ++g) {
    const Time v = value(g);
    best = want_min ? std::min(best, v) : std::max(best, v);
  }
  return best;
}
}  // namespace

Time TimeTable::min_tc(JobId job) const {
  return reduce_over_gpus(
      gpu_count_, [&](std::size_t g) { return tc(job, GpuId(static_cast<int>(g))); },
      true);
}

Time TimeTable::max_tc(JobId job) const {
  return reduce_over_gpus(
      gpu_count_, [&](std::size_t g) { return tc(job, GpuId(static_cast<int>(g))); },
      false);
}

Time TimeTable::min_ts(JobId job) const {
  return reduce_over_gpus(
      gpu_count_, [&](std::size_t g) { return ts(job, GpuId(static_cast<int>(g))); },
      true);
}

Time TimeTable::max_ts(JobId job) const {
  return reduce_over_gpus(
      gpu_count_, [&](std::size_t g) { return ts(job, GpuId(static_cast<int>(g))); },
      false);
}

GpuId TimeTable::fastest_gpu(JobId job) const {
  HARE_CHECK_MSG(gpu_count_ > 0, "time table has no GPUs");
  GpuId best(0);
  for (std::size_t g = 1; g < gpu_count_; ++g) {
    const GpuId candidate(static_cast<int>(g));
    if (tc(job, candidate) < tc(job, best)) best = candidate;
  }
  return best;
}

double TimeTable::alpha() const {
  double alpha = 1.0;
  for (std::size_t j = 0; j < job_count(); ++j) {
    const JobId job(static_cast<int>(j));
    const Time tc_min = min_tc(job);
    const Time ts_min = min_ts(job);
    if (tc_min > 0.0) alpha = std::max(alpha, max_tc(job) / tc_min);
    if (ts_min > 0.0) alpha = std::max(alpha, max_ts(job) / ts_min);
  }
  return alpha;
}

}  // namespace hare::profiler
