#include "profiler/time_table.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace hare::profiler {

TimeTable::RowId TimeTable::allocate_row_copy(RowId src) {
  RowId row = 0;
  bool reused = false;
  while (!free_rows_.empty()) {
    const RowId candidate = free_rows_.back();
    free_rows_.pop_back();
    if (owners_[candidate] == 0) {  // stale entries were re-bound; skip them
      row = candidate;
      reused = true;
      break;
    }
  }
  if (!reused) {
    row = static_cast<RowId>(owners_.size());
    tc_.resize(tc_.size() + gpu_count_);
    ts_.resize(ts_.size() + gpu_count_);
    owners_.push_back(0);
    agg_.emplace_back();
    agg_valid_.push_back(0);
  }
  const std::size_t dst = static_cast<std::size_t>(row) * gpu_count_;
  const std::size_t from = static_cast<std::size_t>(src) * gpu_count_;
  if (gpu_count_ > 0) {
    std::memmove(tc_.data() + dst, tc_.data() + from,
                 gpu_count_ * sizeof(Time));
    std::memmove(ts_.data() + dst, ts_.data() + from,
                 gpu_count_ * sizeof(Time));
  }
  agg_valid_[row] = 0;
  return row;
}

TimeTable::RowId TimeTable::intern_row(const Time* tc, const Time* ts) {
  HARE_CHECK_MSG(!owners_.empty(), "intern_row on an unshaped time table");
  const RowId row = allocate_row_copy(kZeroRow);
  const std::size_t base = static_cast<std::size_t>(row) * gpu_count_;
  std::copy(tc, tc + gpu_count_, tc_.data() + base);
  std::copy(ts, ts + gpu_count_, ts_.data() + base);
  agg_valid_[row] = 0;
  alpha_valid_ = false;
  return row;
}

// One pass over the GPU axis fills every aggregate for the row; the old
// reduce_over_gpus helper ran a separate O(G) scan per min/max accessor.
const TimeTable::JobAggregates& TimeTable::row_aggregates(RowId row) const {
  HARE_CHECK_MSG(gpu_count_ > 0, "time table has no GPUs");
  if (agg_valid_[row]) return agg_[row];

  const std::size_t base = static_cast<std::size_t>(row) * gpu_count_;
  JobAggregates agg;
  agg.min_tc = agg.max_tc = tc_[base];
  agg.min_ts = agg.max_ts = ts_[base];
  agg.min_total = tc_[base] + ts_[base];
  agg.fastest = GpuId(0);
  for (std::size_t g = 1; g < gpu_count_; ++g) {
    const Time c = tc_[base + g];
    const Time s = ts_[base + g];
    if (c < agg.min_tc) {
      agg.min_tc = c;
      agg.fastest = GpuId(static_cast<int>(g));
    }
    agg.max_tc = std::max(agg.max_tc, c);
    agg.min_ts = std::min(agg.min_ts, s);
    agg.max_ts = std::max(agg.max_ts, s);
    agg.min_total = std::min(agg.min_total, c + s);
  }
  agg_[row] = agg;
  agg_valid_[row] = 1;
  return agg_[row];
}

const TimeTable::JobAggregates& TimeTable::aggregates(JobId job) const {
  const std::size_t j = static_cast<std::size_t>(job.value());
  HARE_CHECK_MSG(j < row_of_.size(), "time table has no job " << job);
  return row_aggregates(row_of_[j]);
}

double TimeTable::alpha() const {
  if (alpha_valid_) return alpha_;
  double alpha = 1.0;
  // Each owned row contributes its ratio once — the max over jobs equals
  // the max over distinct rows, and rows nobody points at are dead values.
  for (std::size_t r = 0; r < owners_.size(); ++r) {
    if (owners_[r] == 0) continue;
    const JobAggregates& agg = row_aggregates(static_cast<RowId>(r));
    if (agg.min_tc > 0.0) alpha = std::max(alpha, agg.max_tc / agg.min_tc);
    if (agg.min_ts > 0.0) alpha = std::max(alpha, agg.max_ts / agg.min_ts);
  }
  alpha_ = alpha;
  alpha_valid_ = true;
  return alpha_;
}

void TimeTable::precompute() const {
  if (gpu_count_ == 0) return;
  for (std::size_t r = 0; r < owners_.size(); ++r) {
    if (owners_[r] == 0 && r != kZeroRow) continue;
    (void)row_aggregates(static_cast<RowId>(r));
  }
  if (!row_of_.empty()) (void)alpha();
}

}  // namespace hare::profiler
