#include "profiler/profiler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hare::profiler {

namespace {

ProfileKey make_key(const workload::Job& job, const cluster::Gpu& gpu,
                    double network_gbps) {
  ProfileKey key;
  key.model = job.spec.model;
  key.gpu = gpu.type;
  key.batch_size = job.effective_batch_size();
  key.batches_per_task = job.spec.batches_per_task;
  key.network_mbps = static_cast<std::uint32_t>(network_gbps * 1000.0 + 0.5);
  return key;
}

}  // namespace

TimeTable Profiler::profile(const workload::JobSet& jobs,
                            const cluster::Cluster& cluster, ProfileDb* db) {
  TimeTable table(jobs.job_count(), cluster.gpu_count());
  profiling_cost_ = 0.0;

  for (const auto& job : jobs.jobs()) {
    const auto batch = job.effective_batch_size();
    for (const auto& gpu : cluster.gpus()) {
      const double uplink = cluster.machine(gpu.machine).network_gbps;
      const ProfileKey key = make_key(job, gpu, uplink);

      if (db != nullptr) {
        if (const auto hit = db->lookup(key)) {
          table.set(job.id, gpu.id, hit->tc, hit->ts);
          continue;
        }
      }

      // Measure: warmups discarded, then average `sample_batches` noisy
      // batch times. Noise is multiplicative log-normal with the configured
      // CV, matching how testbed batch times scatter around their mean.
      const Time true_batch = perf_.batch_time(job.spec.model, gpu.type, batch);
      const double sigma =
          std::sqrt(std::log(1.0 + config_.measurement_noise_cv *
                                       config_.measurement_noise_cv));
      for (std::uint32_t w = 0; w < config_.warmup_batches; ++w) {
        profiling_cost_ += true_batch * rng_.log_normal(-sigma * sigma / 2.0,
                                                        sigma) *
                           2.0;  // warmup batches run slower (cold caches)
      }
      Time measured_sum = 0.0;
      const std::uint32_t samples = std::max(1u, config_.sample_batches);
      for (std::uint32_t s = 0; s < samples; ++s) {
        const Time one = true_batch * rng_.log_normal(-sigma * sigma / 2.0, sigma);
        measured_sum += one;
        profiling_cost_ += one;
      }
      const Time measured_batch = measured_sum / samples;

      ProfileEntry entry;
      entry.tc = measured_batch * job.spec.batches_per_task;
      entry.ts = perf_.sync_time(job.spec.model, uplink);
      entry.sample_count = samples;
      table.set(job.id, gpu.id, entry.tc, entry.ts);
      if (db != nullptr) db->store(key, entry);
    }
  }
  return table;
}

TimeTable Profiler::exact(const workload::JobSet& jobs,
                          const cluster::Cluster& cluster) const {
  TimeTable table(jobs.job_count(), cluster.gpu_count());
  for (const auto& job : jobs.jobs()) {
    const auto batch = job.effective_batch_size();
    for (const auto& gpu : cluster.gpus()) {
      const double uplink = cluster.machine(gpu.machine).network_gbps;
      const Time tc = perf_.task_compute_time(job.spec.model, gpu.type, batch,
                                              job.spec.batches_per_task);
      const Time ts = perf_.sync_time(job.spec.model, uplink);
      table.set(job.id, gpu.id, tc, ts);
    }
  }
  return table;
}

}  // namespace hare::profiler
