#include "profiler/profiler.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace hare::profiler {

namespace {

/// One distinct job shape: everything a (T^c, T^s) row depends on besides
/// the cluster itself.
struct JobShape {
  workload::ModelType model{};
  std::uint32_t batch = 0;
  std::uint32_t batches_per_task = 0;
};

using ShapeKey = std::tuple<int, std::uint32_t, std::uint32_t>;

ShapeKey shape_key(const workload::Job& job) {
  return {static_cast<int>(job.spec.model), job.effective_batch_size(),
          job.spec.batches_per_task};
}

ProfileKey make_key(const JobShape& shape, const cluster::Gpu& gpu,
                    double network_gbps) {
  ProfileKey key;
  key.model = shape.model;
  key.gpu = gpu.type;
  key.batch_size = shape.batch;
  key.batches_per_task = shape.batches_per_task;
  key.network_mbps = static_cast<std::uint32_t>(network_gbps * 1000.0 + 0.5);
  return key;
}

/// Mirrors exp::serial_requested() without linking hare_exp (the dependency
/// points the other way): HARE_EXP_SERIAL set to anything but "" or "0"
/// forces the serial path.
bool serial_env_requested() {
  const char* env = std::getenv("HARE_EXP_SERIAL");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Deterministic fan-out following the exp-engine contract: fn(i) for i in
/// [0, n), results landing in caller-owned slots indexed by i. Inline when
/// serial was requested, when already on a pool worker (nested fan-out), or
/// when the shared pool has a single worker (dispatch would only add queue
/// overhead). Every branch computes identical numbers — the profiler's RNG
/// seeds are drawn serially before this is called.
template <typename Fn>
void for_each_index(bool serial, std::size_t n, Fn&& fn) {
  if (!serial && !serial_env_requested() && n > 1 &&
      common::ThreadPool::current() == nullptr &&
      common::shared_pool().size() > 1) {
    common::shared_pool().parallel_for_each(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Canonical first-seen shape enumeration: shapes[] in job order, plus each
/// job's shape slot. The order is a pure function of the jobset, so every
/// later pass (seed draws, interning, binding) is deterministic.
std::vector<JobShape> enumerate_shapes(const workload::JobSet& jobs,
                                       std::vector<std::uint32_t>& shape_of) {
  HARE_SPAN("profiler", "profiler.enumerate");
  std::vector<JobShape> shapes;
  shape_of.resize(jobs.job_count());
  std::map<ShapeKey, std::uint32_t> seen;
  for (const auto& job : jobs.jobs()) {
    const auto [it, inserted] =
        seen.try_emplace(shape_key(job), static_cast<std::uint32_t>(shapes.size()));
    if (inserted) {
      shapes.push_back(JobShape{job.spec.model, job.effective_batch_size(),
                                job.spec.batches_per_task});
    }
    shape_of[static_cast<std::size_t>(job.id.value())] = it->second;
  }
  return shapes;
}

struct ProfilerMetrics {
  obs::Counter& cells = obs::counter("profiler.cells");
  obs::Counter& memo_hits = obs::counter("profiler.memo_hits");
  obs::Counter& measurements = obs::counter("profiler.measurements");
  obs::Counter& rows_computed = obs::counter("profiler.rows_computed");
};

ProfilerMetrics& profiler_metrics() {
  static ProfilerMetrics metrics;
  return metrics;
}

}  // namespace

TimeTable Profiler::profile(const workload::JobSet& jobs,
                            const cluster::Cluster& cluster, ProfileDb* db) {
  HARE_SPAN("profiler", "profiler.profile");
  const std::size_t gpu_count = cluster.gpu_count();
  TimeTable table(jobs.job_count(), gpu_count);
  profiling_cost_ = 0.0;
  memo_hits_ = memo_misses_ = rows_ = 0;
  if (jobs.job_count() == 0 || gpu_count == 0) return table;

  // Pass 1 (serial): canonical shape + measurement-key enumeration. Every
  // (shape, GPU) cell resolves to one entry slot; first-seen keys either
  // hit the db or get a measurement seed drawn *here*, in canonical order,
  // so the fan-out below cannot perturb the RNG stream.
  std::vector<std::uint32_t> shape_of;
  const std::vector<JobShape> shapes = enumerate_shapes(jobs, shape_of);

  std::vector<ProfileKey> keys;              // entry slot -> key
  std::vector<ProfileEntry> entries;         // resolved values
  std::vector<char> needs_measure;           // entry slot -> db miss?
  std::vector<std::uint64_t> seeds;          // per-slot measurement seed
  std::vector<double> uplinks;               // per-slot uplink (Gbit/s)
  std::vector<std::uint32_t> cell_entry(shapes.size() * gpu_count);
  std::unordered_map<ProfileKey, std::uint32_t, ProfileKeyHash> slot_of;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (const auto& gpu : cluster.gpus()) {
      const double uplink = cluster.machine(gpu.machine).network_gbps;
      const ProfileKey key = make_key(shapes[s], gpu, uplink);
      const auto [it, inserted] =
          slot_of.try_emplace(key, static_cast<std::uint32_t>(entries.size()));
      if (inserted) {
        keys.push_back(key);
        uplinks.push_back(uplink);
        if (db != nullptr) {
          if (const auto hit = db->lookup(key)) {
            entries.push_back(*hit);
            needs_measure.push_back(0);
            seeds.push_back(0);
            cell_entry[s * gpu_count +
                       static_cast<std::size_t>(gpu.id.value())] = it->second;
            continue;
          }
        }
        entries.emplace_back();
        needs_measure.push_back(1);
        seeds.push_back(rng_.next_u64());
      }
      cell_entry[s * gpu_count + static_cast<std::size_t>(gpu.id.value())] =
          it->second;
    }
  }

  // Pass 2 (parallel): run the measurement loop for every db miss. Each
  // slot draws from its own pre-seeded stream, so slot i's numbers are
  // independent of which thread (or order) computed it.
  std::vector<Time> costs(entries.size(), 0.0);
  {
    HARE_SPAN("profiler", "profiler.measure");
    for_each_index(config_.serial, entries.size(), [&](std::size_t i) {
      if (!needs_measure[i]) return;
      const ProfileKey& key = keys[i];
      common::Rng rng(seeds[i]);
      // Measure: warmups discarded, then average `sample_batches` noisy
      // batch times. Noise is multiplicative log-normal with the configured
      // CV, matching how testbed batch times scatter around their mean.
      const Time true_batch =
          perf_.batch_time(key.model, key.gpu, key.batch_size);
      const double sigma =
          std::sqrt(std::log(1.0 + config_.measurement_noise_cv *
                                       config_.measurement_noise_cv));
      Time cost = 0.0;
      for (std::uint32_t w = 0; w < config_.warmup_batches; ++w) {
        cost += true_batch * rng.log_normal(-sigma * sigma / 2.0, sigma) *
                2.0;  // warmup batches run slower (cold caches)
      }
      Time measured_sum = 0.0;
      const std::uint32_t samples = std::max(1u, config_.sample_batches);
      for (std::uint32_t s = 0; s < samples; ++s) {
        const Time one = true_batch * rng.log_normal(-sigma * sigma / 2.0, sigma);
        measured_sum += one;
        cost += one;
      }
      const Time measured_batch = measured_sum / samples;

      ProfileEntry entry;
      entry.tc = measured_batch * key.batches_per_task;
      entry.ts = perf_.sync_time(key.model, uplinks[i]);
      entry.sample_count = samples;
      entries[i] = entry;
      costs[i] = cost;
    });
  }

  // Pass 3 (serial): accumulate cost and extend the db in canonical slot
  // order — the floating-point sum and the db contents are the same no
  // matter how pass 2 was scheduled.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!needs_measure[i]) continue;
    profiling_cost_ += costs[i];
    if (db != nullptr) db->store(keys[i], entries[i]);
  }

  // Pass 4 (serial): intern one row per shape and point every job at its
  // shape's row. Cost is O(shapes × G), not O(jobs × G).
  {
    HARE_SPAN("profiler", "profiler.build_rows");
    std::vector<Time> tc_row(gpu_count), ts_row(gpu_count);
    std::vector<TimeTable::RowId> row_of_shape(shapes.size());
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      for (std::size_t g = 0; g < gpu_count; ++g) {
        const ProfileEntry& entry = entries[cell_entry[s * gpu_count + g]];
        tc_row[g] = entry.tc;
        ts_row[g] = entry.ts;
      }
      row_of_shape[s] = table.intern_row(tc_row.data(), ts_row.data());
    }
    for (const auto& job : jobs.jobs()) {
      table.bind_row(job.id,
                     row_of_shape[shape_of[static_cast<std::size_t>(
                         job.id.value())]]);
    }
  }

  const std::uint64_t cells =
      static_cast<std::uint64_t>(jobs.job_count()) * gpu_count;
  std::uint64_t measured = 0;
  for (const char m : needs_measure) measured += static_cast<std::uint64_t>(m);
  memo_misses_ = entries.size();
  memo_hits_ = cells - memo_misses_;
  rows_ = shapes.size();
  auto& metrics = profiler_metrics();
  metrics.cells.add(cells);
  metrics.memo_hits.add(memo_hits_);
  metrics.measurements.add(measured);
  metrics.rows_computed.add(rows_);
  return table;
}

TimeTable Profiler::exact(const workload::JobSet& jobs,
                          const cluster::Cluster& cluster) const {
  HARE_SPAN("profiler", "profiler.exact");
  const std::size_t gpu_count = cluster.gpu_count();
  TimeTable table(jobs.job_count(), gpu_count);
  memo_hits_ = memo_misses_ = rows_ = 0;
  if (jobs.job_count() == 0 || gpu_count == 0) return table;

  std::vector<std::uint32_t> shape_of;
  const std::vector<JobShape> shapes = enumerate_shapes(jobs, shape_of);

  // One exact row per shape, fanned across the pool. Each slot is written
  // by exactly one index and the values are pure perf-model evaluations,
  // so pooled and serial builds are bit-identical.
  std::vector<Time> tc_rows(shapes.size() * gpu_count);
  std::vector<Time> ts_rows(shapes.size() * gpu_count);
  {
    HARE_SPAN("profiler", "profiler.build_rows");
    for_each_index(config_.serial, shapes.size(), [&](std::size_t s) {
      const JobShape& shape = shapes[s];
      Time* tc = tc_rows.data() + s * gpu_count;
      Time* ts = ts_rows.data() + s * gpu_count;
      for (const auto& gpu : cluster.gpus()) {
        const double uplink = cluster.machine(gpu.machine).network_gbps;
        const std::size_t g = static_cast<std::size_t>(gpu.id.value());
        tc[g] = perf_.task_compute_time(shape.model, gpu.type, shape.batch,
                                        shape.batches_per_task);
        ts[g] = perf_.sync_time(shape.model, uplink);
      }
    });
  }

  std::vector<TimeTable::RowId> row_of_shape(shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    row_of_shape[s] = table.intern_row(tc_rows.data() + s * gpu_count,
                                       ts_rows.data() + s * gpu_count);
  }
  for (const auto& job : jobs.jobs()) {
    table.bind_row(
        job.id,
        row_of_shape[shape_of[static_cast<std::size_t>(job.id.value())]]);
  }

  const std::uint64_t cells =
      static_cast<std::uint64_t>(jobs.job_count()) * gpu_count;
  memo_misses_ = static_cast<std::uint64_t>(shapes.size()) * gpu_count;
  memo_hits_ = cells - memo_misses_;
  rows_ = shapes.size();
  auto& metrics = profiler_metrics();
  metrics.cells.add(cells);
  metrics.memo_hits.add(memo_hits_);
  metrics.rows_computed.add(rows_);
  return table;
}

}  // namespace hare::profiler
