// Profiled task time tables: T^c_{i,m} and T^s_{i,m}.
//
// §5.1 (Fig 11) observes that per-round training and sync times are stable,
// so times are indexed by (job, GPU) — all tasks of a job share the same
// profile, exactly as the real profiler feeds Algorithm 1. The table also
// exposes α = max_i max{T^c max/min, T^s max/min}, the heterogeneity ratio
// in the α(2+α) approximation bound (Lemma 3 / Theorem 4).
//
// Per-job reductions (min/max T^c, min/max T^s, min total, fastest GPU) are
// cached: a single O(G) pass per job fills every aggregate, so the H_i
// computation and alpha() cost O(1) per lookup instead of rescanning the
// GPU axis inside the planner's O(T) loops. `set()` invalidates only the
// touched job's cache (plus α). Lazy recomputation mutates the cache from
// const accessors; call `precompute()` before sharing one table across
// threads so every later accessor is a pure read.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hare::profiler {

class TimeTable {
 public:
  TimeTable() = default;
  TimeTable(std::size_t job_count, std::size_t gpu_count)
      : gpu_count_(gpu_count),
        tc_(job_count * gpu_count, 0.0),
        ts_(job_count * gpu_count, 0.0),
        agg_(job_count),
        agg_valid_(job_count, 0) {}

  [[nodiscard]] std::size_t job_count() const {
    return gpu_count_ ? tc_.size() / gpu_count_ : 0;
  }
  [[nodiscard]] std::size_t gpu_count() const { return gpu_count_; }

  [[nodiscard]] Time tc(JobId job, GpuId gpu) const {
    return tc_[index(job, gpu)];
  }
  [[nodiscard]] Time ts(JobId job, GpuId gpu) const {
    return ts_[index(job, gpu)];
  }
  /// Contiguous T^c row of a job (indexed by GpuId value), for the planner's
  /// hot candidate scans. Values are the exact doubles tc() returns.
  [[nodiscard]] const Time* tc_row(JobId job) const {
    return tc_.data() + static_cast<std::size_t>(job.value()) * gpu_count_;
  }
  void set(JobId job, GpuId gpu, Time compute, Time sync) {
    tc_[index(job, gpu)] = compute;
    ts_[index(job, gpu)] = sync;
    agg_valid_[static_cast<std::size_t>(job.value())] = 0;
    alpha_valid_ = false;
  }

  /// Re-shape in place to a zero-filled (job_count × gpu_count) table,
  /// reusing the underlying storage. The per-shard planners rebuild a local
  /// sub-table for every plan; resetting a standing table lets the
  /// allocation survive across shard plans and migration re-plans instead
  /// of being malloc'd fresh each time. Every cached aggregate (and α) is
  /// dropped.
  void reset(std::size_t job_count, std::size_t gpu_count) {
    gpu_count_ = gpu_count;
    tc_.assign(job_count * gpu_count, 0.0);
    ts_.assign(job_count * gpu_count, 0.0);
    agg_.assign(job_count, JobAggregates{});
    agg_valid_.assign(job_count, 0);
    alpha_valid_ = false;
  }

  /// Grow the job axis by one zero-filled row (the streaming-admission path:
  /// a served arrival profiles into the row its JobId was just assigned).
  /// Returns the new row's index. Existing rows and their cached aggregates
  /// are untouched; α is invalidated.
  std::size_t append_job() {
    tc_.resize(tc_.size() + gpu_count_, 0.0);
    ts_.resize(ts_.size() + gpu_count_, 0.0);
    agg_.emplace_back();
    agg_valid_.push_back(0);
    alpha_valid_ = false;
    return agg_.size() - 1;
  }

  /// Total (compute + sync) time of one task of `job` on `gpu`.
  [[nodiscard]] Time total(JobId job, GpuId gpu) const {
    return tc(job, gpu) + ts(job, gpu);
  }

  /// Fastest compute time of a job's task across GPUs.
  [[nodiscard]] Time min_tc(JobId job) const { return aggregates(job).min_tc; }
  [[nodiscard]] Time max_tc(JobId job) const { return aggregates(job).max_tc; }
  [[nodiscard]] Time min_ts(JobId job) const { return aggregates(job).min_ts; }
  [[nodiscard]] Time max_ts(JobId job) const { return aggregates(job).max_ts; }

  /// Smallest T^c + T^s of a job's task across GPUs.
  [[nodiscard]] Time min_total(JobId job) const {
    return aggregates(job).min_total;
  }

  /// GPU with the smallest T^c for this job.
  [[nodiscard]] GpuId fastest_gpu(JobId job) const {
    return aggregates(job).fastest;
  }

  /// α = max over tasks of max{T^c,max/T^c,min, T^s,max/T^s,min} (Lemma 3).
  [[nodiscard]] double alpha() const;

  /// Force every per-job aggregate (and α) into the cache. After this, all
  /// aggregate accessors are pure reads until the next set() — required
  /// before concurrent readers share the table.
  void precompute() const;

 private:
  struct JobAggregates {
    Time min_tc = 0.0;
    Time max_tc = 0.0;
    Time min_ts = 0.0;
    Time max_ts = 0.0;
    Time min_total = 0.0;
    GpuId fastest{};
  };

  [[nodiscard]] std::size_t index(JobId job, GpuId gpu) const {
    return static_cast<std::size_t>(job.value()) * gpu_count_ +
           static_cast<std::size_t>(gpu.value());
  }

  [[nodiscard]] const JobAggregates& aggregates(JobId job) const;

  std::size_t gpu_count_ = 0;
  std::vector<Time> tc_;
  std::vector<Time> ts_;

  mutable std::vector<JobAggregates> agg_;
  mutable std::vector<char> agg_valid_;
  mutable double alpha_ = 1.0;
  mutable bool alpha_valid_ = false;
};

}  // namespace hare::profiler
