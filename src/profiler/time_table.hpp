// Profiled task time tables: T^c_{i,m} and T^s_{i,m}.
//
// §5.1 (Fig 11) observes that per-round training and sync times are stable,
// so times are indexed by (job, GPU) — all tasks of a job share the same
// profile, exactly as the real profiler feeds Algorithm 1. The table also
// exposes α = max_i max{T^c max/min, T^s max/min}, the heterogeneity ratio
// in the α(2+α) approximation bound (Lemma 3 / Theorem 4).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hare::profiler {

class TimeTable {
 public:
  TimeTable() = default;
  TimeTable(std::size_t job_count, std::size_t gpu_count)
      : gpu_count_(gpu_count),
        tc_(job_count * gpu_count, 0.0),
        ts_(job_count * gpu_count, 0.0) {}

  [[nodiscard]] std::size_t job_count() const {
    return gpu_count_ ? tc_.size() / gpu_count_ : 0;
  }
  [[nodiscard]] std::size_t gpu_count() const { return gpu_count_; }

  [[nodiscard]] Time tc(JobId job, GpuId gpu) const {
    return tc_[index(job, gpu)];
  }
  [[nodiscard]] Time ts(JobId job, GpuId gpu) const {
    return ts_[index(job, gpu)];
  }
  void set(JobId job, GpuId gpu, Time compute, Time sync) {
    tc_[index(job, gpu)] = compute;
    ts_[index(job, gpu)] = sync;
  }

  /// Total (compute + sync) time of one task of `job` on `gpu`.
  [[nodiscard]] Time total(JobId job, GpuId gpu) const {
    return tc(job, gpu) + ts(job, gpu);
  }

  /// Fastest compute time of a job's task across GPUs.
  [[nodiscard]] Time min_tc(JobId job) const;
  [[nodiscard]] Time max_tc(JobId job) const;
  [[nodiscard]] Time min_ts(JobId job) const;
  [[nodiscard]] Time max_ts(JobId job) const;

  /// GPU with the smallest T^c for this job.
  [[nodiscard]] GpuId fastest_gpu(JobId job) const;

  /// α = max over tasks of max{T^c,max/T^c,min, T^s,max/T^s,min} (Lemma 3).
  [[nodiscard]] double alpha() const;

 private:
  [[nodiscard]] std::size_t index(JobId job, GpuId gpu) const {
    return static_cast<std::size_t>(job.value()) * gpu_count_ +
           static_cast<std::size_t>(gpu.value());
  }

  std::size_t gpu_count_ = 0;
  std::vector<Time> tc_;
  std::vector<Time> ts_;
};

}  // namespace hare::profiler
