// Profiled task time tables: T^c_{i,m} and T^s_{i,m}.
//
// §5.1 (Fig 11) observes that per-round training and sync times are stable,
// so times are indexed by (job, GPU) — all tasks of a job share the same
// profile, exactly as the real profiler feeds Algorithm 1. The table also
// exposes α = max_i max{T^c max/min, T^s max/min}, the heterogeneity ratio
// in the α(2+α) approximation bound (Lemma 3 / Theorem 4).
//
// Storage is struct-of-arrays with **row interning**: the G-wide (T^c, T^s)
// row of a job is a pure function of its shape (model, batch size, batches
// per task) given a cluster, so the many identical jobs a trace emits can
// share one physical row. Jobs hold a 32-bit row index into an append-only
// row arena; `intern_row()` adds a unique row and `bind_row()` points a job
// at it. The classic per-job mutators still work: `set()` copies a shared
// (or the canonical zero) row on write, so callers that fill tables cell by
// cell see exactly the old dense semantics while interned tables stay
// interned. At the 100k-job × 8k-GPU bench point this is the difference
// between a 13 GB dense matrix and a few hundred KB of unique rows.
//
// Per-row reductions (min/max T^c, min/max T^s, min total, fastest GPU) are
// cached: a single O(G) pass per row fills every aggregate, so the H_i
// computation and alpha() cost O(1) per lookup instead of rescanning the
// GPU axis inside the planner's O(T) loops. `set()` invalidates only the
// touched row's cache (plus α). Lazy recomputation mutates the cache from
// const accessors; call `precompute()` before sharing one table across
// threads so every later accessor is a pure read.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hare::profiler {

class TimeTable {
 public:
  /// Row index type of the interning arena. 32 bits cover every realistic
  /// instance (even fully private rows top out at the job count).
  using RowId = std::uint32_t;

  /// The canonical all-zero row every job points at until written/bound.
  static constexpr RowId kZeroRow = 0;

  TimeTable() = default;
  TimeTable(std::size_t job_count, std::size_t gpu_count) {
    reset(job_count, gpu_count);
  }

  [[nodiscard]] std::size_t job_count() const { return row_of_.size(); }
  [[nodiscard]] std::size_t gpu_count() const { return gpu_count_; }
  /// Physical rows in the arena (including the zero row). The memory
  /// footprint scales with this, not with job_count().
  [[nodiscard]] std::size_t row_count() const { return owners_.size(); }

  [[nodiscard]] Time tc(JobId job, GpuId gpu) const {
    return tc_[index(job, gpu)];
  }
  [[nodiscard]] Time ts(JobId job, GpuId gpu) const {
    return ts_[index(job, gpu)];
  }
  /// Contiguous T^c row of a job (indexed by GpuId value), for the planner's
  /// hot candidate scans. Values are the exact doubles tc() returns.
  [[nodiscard]] const Time* tc_row(JobId job) const {
    return tc_.data() + row_base(job);
  }
  [[nodiscard]] const Time* ts_row(JobId job) const {
    return ts_.data() + row_base(job);
  }

  /// Write one (job, GPU) cell. Copy-on-write: a job sharing its row with
  /// other jobs (or sitting on the zero row) is detached onto a private
  /// copy first, so the write never leaks into neighbours.
  void set(JobId job, GpuId gpu, Time compute, Time sync) {
    const std::size_t j = static_cast<std::size_t>(job.value());
    RowId row = row_of_[j];
    if (row == kZeroRow || owners_[row] > 1) {
      const RowId fresh = allocate_row_copy(row);
      --owners_[row];
      ++owners_[fresh];
      row_of_[j] = fresh;
      row = fresh;
    }
    const std::size_t base = static_cast<std::size_t>(row) * gpu_count_;
    tc_[base + static_cast<std::size_t>(gpu.value())] = compute;
    ts_[base + static_cast<std::size_t>(gpu.value())] = sync;
    agg_valid_[row] = 0;
    alpha_valid_ = false;
  }

  /// The interned row a job currently points at. Stable until the next
  /// set()/bind_row() on that job; use it to deduplicate gathers (e.g. the
  /// shard planner copies each unique global row into its sub-table once).
  [[nodiscard]] RowId row_of(JobId job) const {
    return row_of_[static_cast<std::size_t>(job.value())];
  }

  /// Append a unique row (gpu_count values from each of `tc`/`ts`) to the
  /// arena and return its id. The row starts with no owners; point jobs at
  /// it with bind_row(). Reuses a previously freed slot when one exists.
  RowId intern_row(const Time* tc, const Time* ts);

  /// Re-point `job` at arena row `row` (from intern_row or row_of). Owner
  /// counts move with it; a non-zero row left with no owners is recycled by
  /// later intern_row/set calls.
  void bind_row(JobId job, RowId row) {
    const std::size_t j = static_cast<std::size_t>(job.value());
    const RowId old = row_of_[j];
    if (old == row) return;
    if (--owners_[old] == 0 && old != kZeroRow) free_rows_.push_back(old);
    ++owners_[row];
    row_of_[j] = row;
    alpha_valid_ = false;
  }

  /// Re-shape in place to a zero-filled (job_count × gpu_count) table,
  /// reusing the underlying storage. The per-shard planners rebuild a local
  /// sub-table for every plan; resetting a standing table lets the
  /// allocation survive across shard plans and migration re-plans instead
  /// of being malloc'd fresh each time. Every cached aggregate (and α) is
  /// dropped and every job points back at the zero row.
  void reset(std::size_t job_count, std::size_t gpu_count) {
    gpu_count_ = gpu_count;
    row_of_.assign(job_count, kZeroRow);
    tc_.assign(gpu_count, 0.0);
    ts_.assign(gpu_count, 0.0);
    owners_.assign(1, static_cast<std::uint32_t>(job_count));
    agg_.assign(1, JobAggregates{});
    agg_valid_.assign(1, 0);
    free_rows_.clear();
    alpha_valid_ = false;
  }

  /// Grow the job axis by one job on the zero row (the streaming-admission
  /// path: a served arrival profiles into the row its JobId was just
  /// assigned). Returns the new job's index. Existing rows and their cached
  /// aggregates are untouched; α is invalidated.
  std::size_t append_job() {
    if (owners_.empty()) {
      // Degenerate table grown from the default constructor: materialize
      // the zero row first so the new job has something to point at.
      tc_.assign(gpu_count_, 0.0);
      ts_.assign(gpu_count_, 0.0);
      owners_.assign(1, 0);
      agg_.assign(1, JobAggregates{});
      agg_valid_.assign(1, 0);
    }
    row_of_.push_back(kZeroRow);
    ++owners_[kZeroRow];
    alpha_valid_ = false;
    return row_of_.size() - 1;
  }

  /// Total (compute + sync) time of one task of `job` on `gpu`.
  [[nodiscard]] Time total(JobId job, GpuId gpu) const {
    return tc(job, gpu) + ts(job, gpu);
  }

  /// Fastest compute time of a job's task across GPUs.
  [[nodiscard]] Time min_tc(JobId job) const { return aggregates(job).min_tc; }
  [[nodiscard]] Time max_tc(JobId job) const { return aggregates(job).max_tc; }
  [[nodiscard]] Time min_ts(JobId job) const { return aggregates(job).min_ts; }
  [[nodiscard]] Time max_ts(JobId job) const { return aggregates(job).max_ts; }

  /// Smallest T^c + T^s of a job's task across GPUs.
  [[nodiscard]] Time min_total(JobId job) const {
    return aggregates(job).min_total;
  }

  /// GPU with the smallest T^c for this job.
  [[nodiscard]] GpuId fastest_gpu(JobId job) const {
    return aggregates(job).fastest;
  }

  /// α = max over tasks of max{T^c,max/T^c,min, T^s,max/T^s,min} (Lemma 3).
  [[nodiscard]] double alpha() const;

  /// Force every per-row aggregate (and α) into the cache. After this, all
  /// aggregate accessors are pure reads until the next set()/bind_row() —
  /// required before concurrent readers share the table. Cost is O(rows ×
  /// G), not O(jobs × G): interned tables precompute in microseconds.
  void precompute() const;

 private:
  struct JobAggregates {
    Time min_tc = 0.0;
    Time max_tc = 0.0;
    Time min_ts = 0.0;
    Time max_ts = 0.0;
    Time min_total = 0.0;
    GpuId fastest{};
  };

  [[nodiscard]] std::size_t row_base(JobId job) const {
    return static_cast<std::size_t>(
               row_of_[static_cast<std::size_t>(job.value())]) *
           gpu_count_;
  }
  [[nodiscard]] std::size_t index(JobId job, GpuId gpu) const {
    return row_base(job) + static_cast<std::size_t>(gpu.value());
  }

  /// Arena slot holding a copy of row `src`, with no owners yet. Pops a
  /// recycled slot when available (skipping stale free-list entries whose
  /// row was re-bound in the meantime), else appends.
  [[nodiscard]] RowId allocate_row_copy(RowId src);

  [[nodiscard]] const JobAggregates& aggregates(JobId job) const;
  [[nodiscard]] const JobAggregates& row_aggregates(RowId row) const;

  std::size_t gpu_count_ = 0;
  std::vector<RowId> row_of_;          ///< per job: arena row index
  std::vector<Time> tc_;               ///< arena, row-major, rows × G
  std::vector<Time> ts_;               ///< arena, row-major, rows × G
  std::vector<std::uint32_t> owners_;  ///< per row: jobs pointing at it
  std::vector<RowId> free_rows_;       ///< zero-owner rows ready for reuse

  mutable std::vector<JobAggregates> agg_;  ///< per row
  mutable std::vector<char> agg_valid_;
  mutable double alpha_ = 1.0;
  mutable bool alpha_valid_ = false;
};

}  // namespace hare::profiler
