// Shared machinery for job-level gang-scheduling baselines.
//
// Gavel_FIFO, SRTF and Sched_Homo all follow the same skeleton: jobs are
// unsplittable units; a job grabs |D_r| whole GPUs (strict scale-fixed
// sync, §2.2.3), runs all of its rounds on them without preemption, and
// releases them at completion. The baselines differ only in *which waiting
// job dispatches next* and *which free GPUs it takes*, expressed as hooks.
// The planner simulates dispatch with the scheduler's predicted times and
// emits the per-GPU task sequences the simulator then executes with actual
// times.
#pragma once

#include <functional>
#include <vector>

#include "sched/scheduler.hpp"

namespace hare::sched {

struct GangPlannerHooks {
  /// Choose the next job to dispatch among `waiting` (already arrived, not
  /// yet started) given currently `free_gpus`, or return `waiting.size()`
  /// to dispatch nothing at this instant (e.g. FIFO head-of-line blocking,
  /// or nothing fits).
  std::function<std::size_t(const std::vector<JobId>& waiting,
                            const std::vector<GpuId>& free_gpus, Time now)>
      pick_job;
  /// Choose exactly tasks_per_round GPUs for `job` out of `free_gpus`
  /// (pre-checked to be large enough).
  std::function<std::vector<GpuId>(JobId job,
                                   const std::vector<GpuId>& free_gpus)>
      pick_gpus;
  /// Planner's belief about one round's duration for `job` on `gpus`
  /// (drives the simulated clock; an oblivious scheduler may misestimate).
  std::function<Time(JobId job, const std::vector<GpuId>& gpus)> round_time;
};

/// Simulate gang dispatch and return the plan. Every job runs all rounds
/// on one fixed GPU gang chosen at its dispatch instant.
[[nodiscard]] sim::Schedule run_gang_planner(const SchedulerInput& input,
                                             const GangPlannerHooks& hooks);

}  // namespace hare::sched
