#include "sched/sched_allox.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "opt/hungarian.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

sim::Schedule SchedAlloxScheduler::schedule(const SchedulerInput& input) {
  const auto& jobs = input.jobs;
  const auto& cluster = input.cluster;
  const std::size_t n = jobs.job_count();
  const std::size_t m = cluster.gpu_count();
  HARE_CHECK_MSG(m > 0, "cluster has no GPUs");

  // Whole-job processing time on GPU g: every round serializes its |D_r|
  // tasks on the single GPU, then synchronizes once (model update through
  // the PS, still a push+pull).
  auto job_time_on = [&](JobId job_id, GpuId gpu) {
    const workload::Job& job = jobs.job(job_id);
    const Time round = static_cast<double>(job.tasks_per_round()) *
                           input.times.tc(job_id, gpu) +
                       input.times.ts(job_id, gpu);
    return static_cast<double>(job.rounds()) * round;
  };

  // Positions per GPU: enough to host every job even on one GPU's queue is
  // overkill; ceil(n/m) + 1 covers the optimum (some slack for skew).
  const std::size_t positions = n / m + 2;
  const std::size_t cols = m * positions;
  HARE_CHECK_MSG(n <= cols, "not enough (GPU, position) slots");

  // A job may only match slots of GPUs with enough memory; huge (but
  // finite) costs keep the assignment problem feasible while making such
  // matches impossible whenever any fitting slot exists.
  const auto fits = workload::fitting_matrix(cluster, jobs);
  constexpr double kForbidden = 1e18;

  std::vector<double> cost(n * cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const JobId job_id(static_cast<int>(j));
    const double w = jobs.job(job_id).spec.weight;
    const Time arrival = jobs.job(job_id).spec.arrival;
    for (std::size_t g = 0; g < m; ++g) {
      if (!fits[j][g]) {
        for (std::size_t k = 0; k < positions; ++k) {
          cost[j * cols + g * positions + k] = kForbidden;
        }
        continue;
      }
      const Time p = job_time_on(job_id, GpuId(static_cast<int>(g)));
      for (std::size_t k = 0; k < positions; ++k) {
        // Position k=0 is the *last* job on the GPU (delays only itself);
        // k-th from the end delays k+1 jobs' completions by p. The arrival
        // term charges the job's own unavoidable wait.
        cost[j * cols + g * positions + k] =
            w * (static_cast<double>(k + 1) * p + arrival);
      }
    }
  }

  const opt::AssignmentResult matching = opt::solve_assignment(cost, n, cols);

  // Group jobs per GPU and order by descending position-from-end (the job
  // with the largest k runs first).
  std::vector<std::vector<std::pair<std::size_t, JobId>>> queues(m);
  for (std::size_t j = 0; j < n; ++j) {
    const auto slot = static_cast<std::size_t>(matching.assignment[j]);
    const std::size_t gpu = slot / positions;
    HARE_CHECK_MSG(fits[j][gpu],
                   "matching ran out of memory-feasible slots for job " << j
                       << "; raise the per-GPU position count");
    const std::size_t position = slot % positions;
    queues[gpu].emplace_back(position, JobId(static_cast<int>(j)));
  }
  for (auto& queue : queues) {
    std::sort(queue.begin(), queue.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
  }

  sim::Schedule schedule;
  schedule.sequences.resize(m);
  schedule.predicted_start.assign(jobs.task_count(), 0.0);
  double objective = 0.0;

  for (std::size_t g = 0; g < m; ++g) {
    const GpuId gpu(static_cast<int>(g));
    Time cursor = 0.0;
    for (const auto& [position, job_id] : queues[g]) {
      (void)position;
      const workload::Job& job = jobs.job(job_id);
      cursor = std::max(cursor, job.spec.arrival);
      for (std::uint32_t r = 0; r < job.rounds(); ++r) {
        for (TaskId task :
             jobs.round_tasks(job_id, static_cast<RoundIndex>(r))) {
          schedule.sequences[g].push_back(task);
          schedule.predicted_start[static_cast<std::size_t>(task.value())] =
              cursor;
          cursor += input.times.tc(job_id, gpu);
        }
        cursor += input.times.ts(job_id, gpu);
      }
      objective += job.spec.weight * cursor;
    }
  }
  schedule.predicted_objective = objective;
  return schedule;
}

}  // namespace hare::sched
