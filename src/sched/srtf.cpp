#include "sched/srtf.hpp"

#include <algorithm>
#include <limits>

#include "sched/gang_planner.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

namespace {

/// Fastest `count` memory-feasible free GPUs for `job` (by the job's own
/// T^c); fewer than `count` when the job does not fit enough of them.
std::vector<GpuId> fastest_gpus(const SchedulerInput& input, JobId job,
                                const std::vector<GpuId>& free_gpus,
                                std::size_t count) {
  std::vector<GpuId> sorted;
  sorted.reserve(free_gpus.size());
  for (GpuId g : free_gpus) {
    if (workload::task_fits(input.jobs.job(job), input.cluster.gpu(g))) {
      sorted.push_back(g);
    }
  }
  std::sort(sorted.begin(), sorted.end(), [&](GpuId a, GpuId b) {
    const Time ta = input.times.tc(job, a);
    const Time tb = input.times.tc(job, b);
    if (ta != tb) return ta < tb;
    return a < b;
  });
  if (sorted.size() > count) sorted.resize(count);
  return sorted;
}

Time gang_round_time(const SchedulerInput& input, JobId job,
                     const std::vector<GpuId>& gang) {
  Time slowest = 0.0;
  for (GpuId g : gang) slowest = std::max(slowest, input.times.total(job, g));
  return slowest;
}

}  // namespace

sim::Schedule SrtfScheduler::schedule(const SchedulerInput& input) {
  GangPlannerHooks hooks;

  hooks.pick_job = [&input](const std::vector<JobId>& waiting,
                            const std::vector<GpuId>& free_gpus,
                            Time /*now*/) -> std::size_t {
    std::size_t best = waiting.size();
    Time best_remaining = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      const workload::Job& job = input.jobs.job(waiting[i]);
      const auto gang = fastest_gpus(input, waiting[i], free_gpus,
                                     job.tasks_per_round());
      if (gang.size() < job.tasks_per_round()) continue;  // doesn't fit yet
      const Time remaining = static_cast<double>(job.rounds()) *
                             gang_round_time(input, waiting[i], gang);
      if (remaining < best_remaining ||
          (remaining == best_remaining && best < waiting.size() &&
           waiting[i] < waiting[best])) {
        best_remaining = remaining;
        best = i;
      }
    }
    return best;
  };

  hooks.pick_gpus = [&input](JobId job, const std::vector<GpuId>& free_gpus) {
    return fastest_gpus(input, job, free_gpus,
                        input.jobs.job(job).tasks_per_round());
  };

  hooks.round_time = [&input](JobId job, const std::vector<GpuId>& gang) {
    return gang_round_time(input, job, gang);
  };

  return run_gang_planner(input, hooks);
}

}  // namespace hare::sched
