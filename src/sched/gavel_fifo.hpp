// Gavel_FIFO baseline (§7.1).
//
// FIFO in arrival order with strict head-of-line semantics: the queue head
// waits until its full gang of GPUs is free, blocking everything behind it.
// Heterogeneity-aware in Gavel's sense: when the head dispatches, it takes
// the *fastest* available GPUs for its model.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class GavelFifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Gavel_FIFO"; }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
