// FIFO + EASY backfill baseline (extension beyond the paper's line-up).
//
// Gavel_FIFO's weakness is head-of-line blocking: a wide job waiting for
// its gang idles GPUs smaller jobs could use. EASY backfilling (the
// classic HPC policy) fixes exactly that: the queue head gets a
// *reservation* at the earliest instant its gang can exist, and jobs
// behind it may jump ahead only if their predicted completion does not
// push that reservation back. With exact predicted runtimes (Fig 11's
// stability) the head is provably never delayed — starvation-free — while
// the idle holes in front of it get filled. Hare still wins (it reshapes
// placement and intra-job parallelism, not just queue order), which the
// extensions bench quantifies.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class BackfillScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "FIFO_Backfill";
  }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
