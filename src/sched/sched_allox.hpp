// Sched_Allox baseline — AlloX (EuroSys'20) adapted as in §7.1 / Fig 1(b).
//
// Job-level, heterogeneity-aware, no intra-job parallelism: each job runs
// entirely on one GPU (its rounds' tasks serialize there). Scheduling is a
// min-cost bipartite matching between jobs and (GPU, position) slots: a job
// placed k-th from the end of GPU m's queue delays itself and everything
// after it by p_{n,m}, so its weighted cost is w_n · k · p_{n,m} (plus an
// arrival-time term). The Hungarian solver computes the optimal matching;
// per GPU, jobs then execute in descending-position (i.e. shortest-
// weighted-first) order.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class SchedAlloxScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Sched_Allox"; }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
