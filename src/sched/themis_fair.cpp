#include "sched/themis_fair.hpp"

#include <algorithm>
#include <limits>

#include "sched/gang_planner.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

namespace {

std::vector<GpuId> fastest_fitting(const SchedulerInput& input, JobId job,
                                   const std::vector<GpuId>& pool,
                                   std::size_t count) {
  std::vector<GpuId> fitting;
  for (GpuId g : pool) {
    if (workload::task_fits(input.jobs.job(job), input.cluster.gpu(g))) {
      fitting.push_back(g);
    }
  }
  std::sort(fitting.begin(), fitting.end(), [&](GpuId a, GpuId b) {
    const Time ta = input.times.tc(job, a);
    const Time tb = input.times.tc(job, b);
    if (ta != tb) return ta < tb;
    return a < b;
  });
  if (fitting.size() > count) fitting.resize(count);
  return fitting;
}

Time gang_round_time(const SchedulerInput& input, JobId job,
                     const std::vector<GpuId>& gang) {
  Time slowest = 0.0;
  for (GpuId g : gang) slowest = std::max(slowest, input.times.total(job, g));
  return slowest;
}

/// Exclusive runtime: the job with the whole cluster to itself (its gang
/// on the globally fastest fitting GPUs).
Time exclusive_runtime(const SchedulerInput& input, JobId job) {
  std::vector<GpuId> all;
  for (const auto& gpu : input.cluster.gpus()) all.push_back(gpu.id);
  const auto gang = fastest_fitting(input, job, all,
                                    input.jobs.job(job).tasks_per_round());
  return static_cast<double>(input.jobs.job(job).rounds()) *
         gang_round_time(input, job, gang);
}

}  // namespace

sim::Schedule ThemisFairScheduler::schedule(const SchedulerInput& input) {
  // Precompute exclusive runtimes once.
  std::vector<Time> exclusive(input.jobs.job_count(), 0.0);
  for (const auto& job : input.jobs.jobs()) {
    exclusive[static_cast<std::size_t>(job.id.value())] =
        std::max(1e-9, exclusive_runtime(input, job.id));
  }

  GangPlannerHooks hooks;

  hooks.pick_job = [&input, exclusive](const std::vector<JobId>& waiting,
                                       const std::vector<GpuId>& free_gpus,
                                       Time now) -> std::size_t {
    // Finish-time fairness: rho = (wait so far + remaining on the gang it
    // could get now) / exclusive runtime. Serve the largest rho that fits.
    std::size_t best = waiting.size();
    double best_rho = -1.0;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      const workload::Job& job = input.jobs.job(waiting[i]);
      const auto gang = fastest_fitting(input, waiting[i], free_gpus,
                                        job.tasks_per_round());
      if (gang.size() < job.tasks_per_round()) continue;
      const Time shared_finish =
          (now - job.spec.arrival) +
          static_cast<double>(job.rounds()) *
              gang_round_time(input, waiting[i], gang);
      const double rho =
          shared_finish /
          exclusive[static_cast<std::size_t>(waiting[i].value())];
      if (rho > best_rho ||
          (rho == best_rho && best < waiting.size() &&
           waiting[i] < waiting[best])) {
        best_rho = rho;
        best = i;
      }
    }
    return best;
  };

  hooks.pick_gpus = [&input](JobId job, const std::vector<GpuId>& free_gpus) {
    return fastest_fitting(input, job, free_gpus,
                           input.jobs.job(job).tasks_per_round());
  };

  hooks.round_time = [&input](JobId job, const std::vector<GpuId>& gang) {
    return gang_round_time(input, job, gang);
  };

  return run_gang_planner(input, hooks);
}

}  // namespace hare::sched
