#include "sched/gang_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hare::sched {

sim::Schedule run_gang_planner(const SchedulerInput& input,
                               const GangPlannerHooks& hooks) {
  const auto& jobs = input.jobs;
  const auto& cluster = input.cluster;

  for (const auto& job : jobs.jobs()) {
    HARE_CHECK_MSG(job.tasks_per_round() <= cluster.gpu_count(),
                   "job " << job.id << " needs " << job.tasks_per_round()
                          << " GPUs but the cluster has "
                          << cluster.gpu_count());
  }

  sim::Schedule schedule;
  schedule.sequences.resize(cluster.gpu_count());
  schedule.predicted_start.assign(jobs.task_count(), 0.0);

  // Arrival order.
  std::vector<JobId> by_arrival;
  by_arrival.reserve(jobs.job_count());
  for (const auto& job : jobs.jobs()) by_arrival.push_back(job.id);
  std::sort(by_arrival.begin(), by_arrival.end(), [&](JobId a, JobId b) {
    const Time aa = jobs.job(a).spec.arrival;
    const Time ab = jobs.job(b).spec.arrival;
    if (aa != ab) return aa < ab;
    return a < b;
  });

  std::vector<GpuId> free_gpus;
  free_gpus.reserve(cluster.gpu_count());
  for (const auto& gpu : cluster.gpus()) free_gpus.push_back(gpu.id);

  struct Running {
    JobId job;
    Time completion = 0.0;
    std::vector<GpuId> gang;
  };
  std::vector<Running> running;
  std::vector<JobId> waiting;
  std::size_t next_arrival = 0;
  Time now = 0.0;
  double objective = 0.0;
  std::size_t dispatched = 0;

  while (dispatched < jobs.job_count() || !running.empty()) {
    // Admit arrivals up to `now`.
    while (next_arrival < by_arrival.size() &&
           jobs.job(by_arrival[next_arrival]).spec.arrival <= now + 1e-12) {
      waiting.push_back(by_arrival[next_arrival++]);
    }

    // Dispatch greedily until the hook declines.
    for (;;) {
      if (waiting.empty() || free_gpus.empty()) break;
      const std::size_t pick = hooks.pick_job(waiting, free_gpus, now);
      if (pick >= waiting.size()) break;
      const JobId job_id = waiting[pick];
      const workload::Job& job = jobs.job(job_id);
      HARE_CHECK_MSG(job.tasks_per_round() <= free_gpus.size(),
                     "pick_job chose a job that does not fit");

      std::vector<GpuId> gang = hooks.pick_gpus(job_id, free_gpus);
      HARE_CHECK_MSG(gang.size() == job.tasks_per_round(),
                     "pick_gpus returned wrong gang size");
      for (GpuId g : gang) {
        const auto it = std::find(free_gpus.begin(), free_gpus.end(), g);
        HARE_CHECK_MSG(it != free_gpus.end(), "pick_gpus chose a busy GPU");
        free_gpus.erase(it);
      }

      const Time round_time = hooks.round_time(job_id, gang);
      HARE_CHECK_MSG(round_time > 0.0, "round time must be positive");
      const Time completion =
          now + static_cast<double>(job.rounds()) * round_time;

      // Emit this job's tasks: slot k of every round on gang[k].
      for (std::uint32_t r = 0; r < job.rounds(); ++r) {
        const auto round_tasks = jobs.round_tasks(job_id,
                                                  static_cast<RoundIndex>(r));
        for (std::uint32_t k = 0; k < job.tasks_per_round(); ++k) {
          const TaskId task = round_tasks[k];
          schedule.sequences[static_cast<std::size_t>(gang[k].value())]
              .push_back(task);
          schedule.predicted_start[static_cast<std::size_t>(task.value())] =
              now + static_cast<double>(r) * round_time;
        }
      }

      running.push_back(Running{job_id, completion, std::move(gang)});
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pick));
      objective += job.spec.weight * completion;
      ++dispatched;
    }

    // Advance to the next event: a completion or an arrival.
    Time next_time = std::numeric_limits<Time>::infinity();
    for (const auto& r : running) next_time = std::min(next_time, r.completion);
    if (next_arrival < by_arrival.size()) {
      next_time = std::min(next_time,
                           jobs.job(by_arrival[next_arrival]).spec.arrival);
    }
    HARE_CHECK_MSG(std::isfinite(next_time),
                   "gang planner stalled: nothing runs and nothing arrives");
    now = std::max(now, next_time);

    // Release finished gangs.
    for (auto it = running.begin(); it != running.end();) {
      if (it->completion <= now + 1e-12) {
        free_gpus.insert(free_gpus.end(), it->gang.begin(), it->gang.end());
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  schedule.predicted_objective = objective;
  return schedule;
}

}  // namespace hare::sched
