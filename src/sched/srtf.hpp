// SRTF (Shortest Remaining Time First) baseline (§7.1).
//
// At every dispatch opportunity, among the waiting jobs whose gang fits the
// free GPUs, start the one whose predicted completion (rounds × slowest
// gang member round time, on the fastest free GPUs it could take) is
// smallest. Jobs are non-preemptive once running, per the baseline's
// job-level semantics.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class SrtfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "SRTF"; }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
