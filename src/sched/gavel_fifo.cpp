#include "sched/gavel_fifo.hpp"

#include <algorithm>

#include "sched/gang_planner.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

sim::Schedule GavelFifoScheduler::schedule(const SchedulerInput& input) {
  GangPlannerHooks hooks;

  auto fitting = [&input](JobId job, const std::vector<GpuId>& gpus) {
    std::vector<GpuId> out;
    out.reserve(gpus.size());
    for (GpuId g : gpus) {
      if (workload::task_fits(input.jobs.job(job), input.cluster.gpu(g))) {
        out.push_back(g);
      }
    }
    return out;
  };

  hooks.pick_job = [&input, fitting](const std::vector<JobId>& waiting,
                                     const std::vector<GpuId>& free_gpus,
                                     Time /*now*/) -> std::size_t {
    // Head of line = earliest arrival (ties by id). Blocks if it does not
    // fit — no job may overtake it.
    std::size_t head = 0;
    for (std::size_t i = 1; i < waiting.size(); ++i) {
      const Time ai = input.jobs.job(waiting[i]).spec.arrival;
      const Time ah = input.jobs.job(waiting[head]).spec.arrival;
      if (ai < ah || (ai == ah && waiting[i] < waiting[head])) head = i;
    }
    const auto need = input.jobs.job(waiting[head]).tasks_per_round();
    return need <= fitting(waiting[head], free_gpus).size() ? head
                                                            : waiting.size();
  };

  hooks.pick_gpus = [&input, fitting](JobId job,
                                      const std::vector<GpuId>& free_gpus) {
    // Fastest available memory-feasible GPUs for this job's model.
    std::vector<GpuId> sorted = fitting(job, free_gpus);
    std::sort(sorted.begin(), sorted.end(), [&](GpuId a, GpuId b) {
      const Time ta = input.times.tc(job, a);
      const Time tb = input.times.tc(job, b);
      if (ta != tb) return ta < tb;
      return a < b;
    });
    sorted.resize(input.jobs.job(job).tasks_per_round());
    return sorted;
  };

  hooks.round_time = [&input](JobId job, const std::vector<GpuId>& gang) {
    Time slowest = 0.0;
    for (GpuId g : gang) {
      slowest = std::max(slowest, input.times.total(job, g));
    }
    return slowest;
  };

  return run_gang_planner(input, hooks);
}

}  // namespace hare::sched
