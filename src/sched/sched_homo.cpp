#include "sched/sched_homo.hpp"

#include <algorithm>
#include <limits>

#include "sched/gang_planner.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

namespace {

/// Free GPUs with enough memory for `job` (even an oblivious scheduler
/// cannot place a task that does not fit).
std::vector<GpuId> fitting_gpus(const SchedulerInput& input, JobId job,
                                const std::vector<GpuId>& free_gpus) {
  std::vector<GpuId> out;
  out.reserve(free_gpus.size());
  for (GpuId g : free_gpus) {
    if (workload::task_fits(input.jobs.job(job), input.cluster.gpu(g))) {
      out.push_back(g);
    }
  }
  return out;
}

/// Cluster-average round time — what a homogeneity-assuming planner
/// believes a round costs, irrespective of which GPUs it lands on.
Time average_round_time(const SchedulerInput& input, JobId job) {
  Time sum = 0.0;
  const std::size_t gpus = input.times.gpu_count();
  for (std::size_t g = 0; g < gpus; ++g) {
    sum += input.times.total(job, GpuId(static_cast<int>(g)));
  }
  return sum / static_cast<double>(gpus);
}

}  // namespace

sim::Schedule SchedHomoScheduler::schedule(const SchedulerInput& input) {
  GangPlannerHooks hooks;

  hooks.pick_job = [&input](const std::vector<JobId>& waiting,
                            const std::vector<GpuId>& free_gpus,
                            Time /*now*/) -> std::size_t {
    // Weighted shortest (believed) remaining time first.
    std::size_t best = waiting.size();
    double best_key = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      const workload::Job& job = input.jobs.job(waiting[i]);
      if (job.tasks_per_round() >
          fitting_gpus(input, waiting[i], free_gpus).size()) {
        continue;
      }
      const double key = static_cast<double>(job.rounds()) *
                         average_round_time(input, waiting[i]) /
                         job.spec.weight;
      if (key < best_key || (key == best_key && best < waiting.size() &&
                             waiting[i] < waiting[best])) {
        best_key = key;
        best = i;
      }
    }
    return best;
  };

  hooks.pick_gpus = [&input](JobId job, const std::vector<GpuId>& free_gpus) {
    // GPUs are interchangeable under the homogeneity assumption: take the
    // first free (memory-feasible) ones.
    std::vector<GpuId> gang = fitting_gpus(input, job, free_gpus);
    gang.resize(input.jobs.job(job).tasks_per_round());
    return gang;
  };

  hooks.round_time = [&input](JobId job, const std::vector<GpuId>& gang) {
    // The planner's clock advances by its *belief* (the average), not the
    // true slowest-member time; its plan is built on that misestimate.
    (void)gang;
    return average_round_time(input, job);
  };

  return run_gang_planner(input, hooks);
}

}  // namespace hare::sched
