// Scheduler interface.
//
// A scheduler maps a problem instance — cluster, job set, profiled time
// table — to an execution plan (per-GPU task sequences). Hare's scheduler
// lives in core/; this module hosts the four comparison baselines of §7.1:
// Gavel_FIFO, SRTF, Sched_Homo (Zhang et al.), and Sched_Allox.
#pragma once

#include <memory>
#include <string_view>

#include "cluster/cluster.hpp"
#include "profiler/time_table.hpp"
#include "sim/schedule.hpp"
#include "workload/job.hpp"

namespace hare::sched {

struct SchedulerInput {
  const cluster::Cluster& cluster;
  const workload::JobSet& jobs;
  /// Profiled (possibly noisy) times the scheduler plans with; the
  /// simulator executes with its own ground-truth table.
  const profiler::TimeTable& times;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual sim::Schedule schedule(const SchedulerInput& input) = 0;
};

}  // namespace hare::sched
