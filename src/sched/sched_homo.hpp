// Sched_Homo baseline — Zhang et al. (2020), §7.1.
//
// Exploits inter- and intra-job parallelism to minimize weighted JCT like
// Hare, but assumes *homogeneous* GPUs and forbids GPU preemption during a
// job. Being heterogeneity-oblivious, it plans with the cluster-average
// round time for every job, picks whichever free GPUs come first (GPUs are
// interchangeable in its model), and orders jobs by weighted shortest
// remaining (average) time. On a heterogeneous cluster its gangs routinely
// mix fast and slow GPUs, so the fast ones idle at every round barrier —
// the pathology Fig 5/6 demonstrates.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class SchedHomoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "Sched_Homo"; }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
