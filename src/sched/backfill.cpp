#include "sched/backfill.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "workload/feasibility.hpp"

namespace hare::sched {

namespace {

struct Running {
  JobId job;
  Time completion = 0.0;
  std::vector<GpuId> gang;
};

/// Fastest `count` memory-feasible GPUs for `job` from `pool`.
std::vector<GpuId> fastest_fitting(const SchedulerInput& input, JobId job,
                                   const std::vector<GpuId>& pool,
                                   std::size_t count) {
  std::vector<GpuId> fitting;
  for (GpuId g : pool) {
    if (workload::task_fits(input.jobs.job(job), input.cluster.gpu(g))) {
      fitting.push_back(g);
    }
  }
  std::sort(fitting.begin(), fitting.end(), [&](GpuId a, GpuId b) {
    const Time ta = input.times.tc(job, a);
    const Time tb = input.times.tc(job, b);
    if (ta != tb) return ta < tb;
    return a < b;
  });
  if (fitting.size() > count) fitting.resize(count);
  return fitting;
}

Time gang_completion(const SchedulerInput& input, JobId job,
                     const std::vector<GpuId>& gang, Time start) {
  Time slowest = 0.0;
  for (GpuId g : gang) slowest = std::max(slowest, input.times.total(job, g));
  return start +
         static_cast<double>(input.jobs.job(job).rounds()) * slowest;
}

}  // namespace

sim::Schedule BackfillScheduler::schedule(const SchedulerInput& input) {
  const auto& jobs = input.jobs;
  const auto& cluster = input.cluster;
  for (const auto& job : jobs.jobs()) {
    HARE_CHECK_MSG(job.tasks_per_round() <= cluster.gpu_count(),
                   "job " << job.id << " sync scale exceeds cluster size");
  }

  sim::Schedule schedule;
  schedule.sequences.resize(cluster.gpu_count());
  schedule.predicted_start.assign(jobs.task_count(), 0.0);

  std::vector<JobId> by_arrival;
  for (const auto& job : jobs.jobs()) by_arrival.push_back(job.id);
  std::sort(by_arrival.begin(), by_arrival.end(), [&](JobId a, JobId b) {
    const Time aa = jobs.job(a).spec.arrival;
    const Time ab = jobs.job(b).spec.arrival;
    if (aa != ab) return aa < ab;
    return a < b;
  });

  std::vector<GpuId> free_gpus;
  for (const auto& gpu : cluster.gpus()) free_gpus.push_back(gpu.id);
  std::vector<Running> running;
  std::vector<JobId> queue;  // waiting, arrival order
  std::size_t next_arrival = 0;
  Time now = 0.0;
  double objective = 0.0;
  std::size_t done = 0;

  auto start_job = [&](JobId job_id, const std::vector<GpuId>& gang) {
    const workload::Job& job = jobs.job(job_id);
    const Time completion = gang_completion(input, job_id, gang, now);
    Time slowest = 0.0;
    for (GpuId g : gang) {
      slowest = std::max(slowest, input.times.total(job_id, g));
    }
    for (std::uint32_t r = 0; r < job.rounds(); ++r) {
      const auto round = jobs.round_tasks(job_id, static_cast<RoundIndex>(r));
      for (std::uint32_t k = 0; k < job.tasks_per_round(); ++k) {
        schedule.sequences[static_cast<std::size_t>(gang[k].value())]
            .push_back(round[k]);
        schedule.predicted_start[static_cast<std::size_t>(
            round[k].value())] = now + static_cast<double>(r) * slowest;
      }
    }
    for (GpuId g : gang) {
      free_gpus.erase(std::find(free_gpus.begin(), free_gpus.end(), g));
    }
    running.push_back(Running{job_id, completion, gang});
    objective += job.spec.weight * completion;
    ++done;
  };

  while (done < jobs.job_count()) {
    while (next_arrival < by_arrival.size() &&
           jobs.job(by_arrival[next_arrival]).spec.arrival <= now + 1e-12) {
      queue.push_back(by_arrival[next_arrival++]);
    }

    bool dispatched_any = true;
    while (dispatched_any) {
      dispatched_any = false;
      // Start queue heads as long as they fit.
      while (!queue.empty()) {
        const JobId head = queue.front();
        const std::size_t need = jobs.job(head).tasks_per_round();
        const auto gang = fastest_fitting(input, head, free_gpus, need);
        if (gang.size() < need) break;
        start_job(head, gang);
        queue.erase(queue.begin());
        dispatched_any = true;
      }
      if (queue.empty()) break;

      // Head blocked: compute its reservation time T_res — the earliest
      // instant enough fitting GPUs exist, assuming running gangs release
      // at their predicted completions.
      const JobId head = queue.front();
      const std::size_t need = jobs.job(head).tasks_per_round();
      std::size_t have = 0;
      for (GpuId g : free_gpus) {
        if (workload::task_fits(jobs.job(head), cluster.gpu(g))) ++have;
      }
      std::vector<std::pair<Time, std::size_t>> releases;  // (time, count)
      for (const auto& r : running) {
        std::size_t fitting = 0;
        for (GpuId g : r.gang) {
          if (workload::task_fits(jobs.job(head), cluster.gpu(g))) ++fitting;
        }
        if (fitting > 0) releases.emplace_back(r.completion, fitting);
      }
      std::sort(releases.begin(), releases.end());
      Time reservation = kTimeInfinity;
      for (const auto& [time, count] : releases) {
        have += count;
        if (have >= need) {
          reservation = time;
          break;
        }
      }
      HARE_CHECK_MSG(std::isfinite(reservation),
                     "head job " << head << " can never acquire its gang");

      // EASY backfill: later jobs may start now iff they fit and their
      // predicted completion does not cross the head's reservation.
      for (std::size_t q = 1; q < queue.size();) {
        const JobId candidate = queue[q];
        const std::size_t cneed = jobs.job(candidate).tasks_per_round();
        const auto gang = fastest_fitting(input, candidate, free_gpus, cneed);
        if (gang.size() == cneed &&
            gang_completion(input, candidate, gang, now) <=
                reservation + 1e-9) {
          start_job(candidate, gang);
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(q));
          dispatched_any = true;
        } else {
          ++q;
        }
      }
    }

    // Advance to the next event.
    Time next_time = std::numeric_limits<Time>::infinity();
    for (const auto& r : running) next_time = std::min(next_time, r.completion);
    if (next_arrival < by_arrival.size()) {
      next_time = std::min(next_time,
                           jobs.job(by_arrival[next_arrival]).spec.arrival);
    }
    if (!std::isfinite(next_time)) break;
    now = std::max(now, next_time);
    for (auto it = running.begin(); it != running.end();) {
      if (it->completion <= now + 1e-12) {
        free_gpus.insert(free_gpus.end(), it->gang.begin(), it->gang.end());
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  HARE_CHECK_MSG(done == jobs.job_count(), "backfill planner stalled");
  schedule.predicted_objective = objective;
  return schedule;
}

}  // namespace hare::sched
