// Themis-style finish-time-fairness baseline (related work, §8).
//
// Themis (NSDI'20) allocates by *finish-time fairness*: ρ = (predicted
// completion under sharing) / (completion with the whole cluster to
// itself). The most-disadvantaged job (largest ρ) gets resources next.
// Adapted to this framework's gang semantics: at every dispatch point the
// waiting job with the highest ρ estimate — its age so far plus its
// remaining time on the fastest free gang, normalized by its exclusive
// runtime — is started. Fairness-first ordering trades total weighted JCT
// for evenness, which the extensions bench quantifies against Hare.
#pragma once

#include "sched/scheduler.hpp"

namespace hare::sched {

class ThemisFairScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "Themis_Fair";
  }
  [[nodiscard]] sim::Schedule schedule(const SchedulerInput& input) override;
};

}  // namespace hare::sched
