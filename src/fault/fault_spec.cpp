#include "fault/fault_spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hare::fault {

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view fragment) {
  std::ostringstream os;
  os << "fault spec: " << what << " in '" << fragment << "'";
  throw common::Error(os.str());
}

double parse_number(std::string_view text, std::string_view fragment) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    bad_spec("number out of range", fragment);
  }
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec("malformed number", fragment);
  }
  if (std::isinf(value)) bad_spec("number out of range", fragment);
  return value;
}

int parse_id(std::string_view text, std::string_view fragment) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 0) {
    bad_spec("malformed id", fragment);
  }
  return value;
}

std::size_t parse_count(std::string_view text, std::string_view fragment) {
  const double value = parse_number(text, fragment);
  // Reject magnitudes the long cast below can't represent before casting
  // (the cast itself would be undefined behaviour on overflow).
  if (value >= 9.2e18) bad_spec("number out of range", fragment);
  if (value < 0.0 || value != static_cast<double>(static_cast<long>(value))) {
    bad_spec("expected a non-negative integer", fragment);
  }
  return static_cast<std::size_t>(value);
}

/// One `kind:id@t[...]` entry from the events=(...) list.
FaultEvent parse_event(std::string_view entry) {
  const auto colon = entry.find(':');
  const auto at = entry.find('@');
  if (colon == std::string_view::npos || at == std::string_view::npos ||
      at < colon) {
    bad_spec("expected kind:id@time", entry);
  }
  const std::string_view kind = entry.substr(0, colon);
  const int id = parse_id(entry.substr(colon + 1, at - colon - 1), entry);
  std::string_view rest = entry.substr(at + 1);

  FaultEvent event;
  if (kind == "fail_machine" || kind == "recover_machine") {
    event.kind = kind == "fail_machine" ? FaultKind::MachineFail
                                        : FaultKind::MachineRecover;
    event.machine = MachineId(id);
    event.time = parse_number(rest, entry);
  } else if (kind == "fail_gpu" || kind == "recover_gpu") {
    event.kind =
        kind == "fail_gpu" ? FaultKind::GpuFail : FaultKind::GpuRecover;
    event.gpu = GpuId(id);
    event.time = parse_number(rest, entry);
  } else if (kind == "cancel_job") {
    event.kind = FaultKind::JobCancel;
    event.job = JobId(id);
    event.time = parse_number(rest, entry);
  } else if (kind == "complete_job") {
    event.kind = FaultKind::JobComplete;
    event.job = JobId(id);
    event.time = parse_number(rest, entry);
  } else {
    bad_spec("unknown event kind", entry);
  }
  return event;
}

/// Stragglers expand into a Start/End pair; everything else is one event.
void parse_entry_into(std::string_view entry, std::vector<FaultEvent>& out) {
  if (entry.substr(0, 13) == "straggle_gpu:") {
    const auto at = entry.find('@');
    if (at == std::string_view::npos) bad_spec("expected @time", entry);
    const int id = parse_id(entry.substr(13, at - 13), entry);
    const std::string_view rest = entry.substr(at + 1);
    const auto dash = rest.find('-');
    const auto factor_colon = rest.find(':');
    if (dash == std::string_view::npos ||
        factor_colon == std::string_view::npos || factor_colon < dash) {
      bad_spec("expected straggle_gpu:id@t0-t1:factor", entry);
    }
    const Time start = parse_number(rest.substr(0, dash), entry);
    const Time end =
        parse_number(rest.substr(dash + 1, factor_colon - dash - 1), entry);
    const double factor = parse_number(rest.substr(factor_colon + 1), entry);
    if (end <= start) bad_spec("straggler window is empty", entry);
    if (factor <= 1.0) bad_spec("straggler factor must be > 1", entry);
    FaultEvent begin;
    begin.kind = FaultKind::StragglerStart;
    begin.gpu = GpuId(id);
    begin.time = start;
    begin.factor = factor;
    out.push_back(begin);
    FaultEvent finish;
    finish.kind = FaultKind::StragglerEnd;
    finish.gpu = GpuId(id);
    finish.time = end;
    out.push_back(finish);
    return;
  }
  out.push_back(parse_event(entry));
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view text) {
  if (text.empty()) bad_spec("empty spec", text);
  FaultSpec spec;
  std::vector<std::string_view> seen_keys;
  std::size_t pos = 0;
  bool trailing = false;
  while (pos < text.size() || trailing) {
    // `events=(...)` may contain commas-free ';' lists but we still scan
    // to the matching ')' so a future nested grammar stays parseable.
    std::size_t end = pos;
    int depth = 0;
    while (end < text.size() && (text[end] != ',' || depth > 0)) {
      if (text[end] == '(') ++depth;
      if (text[end] == ')') --depth;
      ++end;
    }
    const std::string_view item = text.substr(pos, end - pos);
    trailing = end < text.size();  // a ',' consumed with nothing after it
    pos = end + (trailing ? 1 : 0);
    if (item.empty()) bad_spec("dangling separator", text);

    const auto eq = item.find('=');
    if (eq == std::string_view::npos) bad_spec("expected key=value", item);
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
        seen_keys.end()) {
      bad_spec("duplicate key", item);
    }
    seen_keys.push_back(key);

    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_count(value, item));
    } else if (key == "machine_failures") {
      spec.machine_failures = parse_count(value, item);
    } else if (key == "gpu_failures") {
      spec.gpu_failures = parse_count(value, item);
    } else if (key == "mttf") {
      spec.mttf = parse_number(value, item);
    } else if (key == "mttr") {
      spec.mttr = parse_number(value, item);
    } else if (key == "cancellations") {
      spec.cancellations = parse_count(value, item);
    } else if (key == "stragglers") {
      spec.stragglers = parse_count(value, item);
    } else if (key == "straggler_factor") {
      spec.straggler_factor = parse_number(value, item);
      if (spec.straggler_factor <= 1.0) {
        bad_spec("straggler_factor must be > 1", item);
      }
    } else if (key == "straggler_duration") {
      spec.straggler_duration = parse_number(value, item);
    } else if (key == "max_retries") {
      spec.retry.max_retries = parse_count(value, item);
    } else if (key == "backoff_base") {
      spec.retry.backoff_base_s = parse_number(value, item);
    } else if (key == "backoff_factor") {
      spec.retry.backoff_factor = parse_number(value, item);
    } else if (key == "backoff_cap") {
      spec.retry.backoff_cap_s = parse_number(value, item);
    } else if (key == "restart_overhead") {
      spec.retry.restart_overhead_s = parse_number(value, item);
    } else if (key == "replan_budget") {
      spec.replan_budget = parse_count(value, item);
    } else if (key == "horizon") {
      spec.horizon = parse_number(value, item);
    } else if (key == "events") {
      if (value.size() < 2 || value.front() != '(' || value.back() != ')') {
        bad_spec("events value must be (entry;entry;...)", item);
      }
      std::string_view list = value.substr(1, value.size() - 2);
      std::size_t p = 0;
      while (p <= list.size()) {
        const auto semi = list.find(';', p);
        const std::string_view entry =
            list.substr(p, semi == std::string_view::npos ? semi : semi - p);
        if (!entry.empty()) {
          parse_entry_into(entry, spec.scripted);
        } else if (!list.empty()) {
          bad_spec("dangling separator", item);
        }
        if (semi == std::string_view::npos) break;
        p = semi + 1;
      }
    } else {
      bad_spec("unknown key", item);
    }
  }
  return spec;
}

FaultPlan generate_fault_plan(const FaultSpec& spec,
                              const cluster::Cluster& cluster,
                              const workload::JobSet& jobs, Time horizon) {
  if (spec.horizon > 0.0) horizon = spec.horizon;
  HARE_CHECK_MSG(horizon > 0.0, "fault plan needs a positive horizon");

  FaultPlan plan;
  common::Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);

  const std::size_t machine_count = cluster.machine_count();
  const std::size_t gpu_count = cluster.gpu_count();

  const auto push_failure = [&](FaultKind fail, FaultKind recover, int id) {
    FaultEvent event;
    event.kind = fail;
    // Fail inside the first 60% of the horizon so recovery/replanned work
    // has runway to finish inside the simulated scenario.
    event.time = rng.uniform(0.05, 0.6) * horizon;
    if (fail == FaultKind::MachineFail) {
      event.machine = MachineId(id);
    } else {
      event.gpu = GpuId(id);
    }
    plan.events.push_back(event);
    if (spec.mttr > 0.0) {
      FaultEvent back = event;
      back.kind = recover;
      back.time = event.time + std::max(0.05 * spec.mttr,
                                        rng.exponential(1.0 / spec.mttr));
      plan.events.push_back(back);
    }
  };

  // Distinct victims per category: cycle a shuffled id list so requesting
  // N failures never hits the same machine/GPU twice before its recovery.
  const auto shuffled_ids = [&](std::size_t n) {
    std::vector<int> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<int>(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.uniform_int(i)]);
    }
    return ids;
  };

  if (spec.machine_failures > 0 && machine_count > 0) {
    const auto ids = shuffled_ids(machine_count);
    for (std::size_t i = 0; i < spec.machine_failures; ++i) {
      push_failure(FaultKind::MachineFail, FaultKind::MachineRecover,
                   ids[i % ids.size()]);
    }
  }
  if (spec.gpu_failures > 0 && gpu_count > 0) {
    const auto ids = shuffled_ids(gpu_count);
    for (std::size_t i = 0; i < spec.gpu_failures; ++i) {
      push_failure(FaultKind::GpuFail, FaultKind::GpuRecover,
                   ids[i % ids.size()]);
    }
  }
  // Poisson arrival mode: no explicit counts, mttf shapes a failure stream
  // across the whole fleet (rate = gpu_count / mttf).
  if (spec.machine_failures == 0 && spec.gpu_failures == 0 &&
      spec.mttf > 0.0 && gpu_count > 0) {
    const double rate = static_cast<double>(gpu_count) / spec.mttf;
    Time t = rng.exponential(rate);
    while (t < horizon) {
      push_failure(FaultKind::GpuFail, FaultKind::GpuRecover,
                   static_cast<int>(rng.uniform_int(gpu_count)));
      // push_failure drew its own fail time; overwrite with the arrival.
      const std::size_t idx =
          plan.events.size() - (spec.mttr > 0.0 ? 2 : 1);
      const Time delta = t - plan.events[idx].time;
      plan.events[idx].time = t;
      if (spec.mttr > 0.0) plan.events[idx + 1].time += delta;
      t += rng.exponential(rate);
    }
  }

  if (spec.cancellations > 0 && jobs.job_count() > 0) {
    const auto ids = shuffled_ids(jobs.job_count());
    for (std::size_t i = 0; i < spec.cancellations; ++i) {
      const workload::Job& job = jobs.job(JobId(ids[i % ids.size()]));
      FaultEvent event;
      event.kind = FaultKind::JobCancel;
      event.job = job.id;
      event.time = std::max(job.spec.arrival + 1e-6,
                            rng.uniform(0.1, 0.5) * horizon);
      plan.events.push_back(event);
    }
  }

  for (std::size_t i = 0; i < spec.stragglers && gpu_count > 0; ++i) {
    FaultEvent begin;
    begin.kind = FaultKind::StragglerStart;
    begin.gpu = GpuId(static_cast<int>(rng.uniform_int(gpu_count)));
    begin.time = rng.uniform(0.0, 0.7) * horizon;
    begin.factor = spec.straggler_factor;
    const Time duration = spec.straggler_duration > 0.0
                              ? spec.straggler_duration
                              : rng.exponential(1.0 / (0.2 * horizon));
    FaultEvent finish;
    finish.kind = FaultKind::StragglerEnd;
    finish.gpu = begin.gpu;
    finish.time = begin.time + std::max(duration, 1e-6);
    plan.events.push_back(begin);
    plan.events.push_back(finish);
  }

  plan.events.insert(plan.events.end(), spec.scripted.begin(),
                     spec.scripted.end());
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return plan;
}

std::string describe(const FaultEvent& event) {
  std::ostringstream os;
  switch (event.kind) {
    case FaultKind::MachineFail:
      os << "fail_machine:" << event.machine.value();
      break;
    case FaultKind::MachineRecover:
      os << "recover_machine:" << event.machine.value();
      break;
    case FaultKind::GpuFail:
      os << "fail_gpu:" << event.gpu.value();
      break;
    case FaultKind::GpuRecover:
      os << "recover_gpu:" << event.gpu.value();
      break;
    case FaultKind::JobCancel:
      os << "cancel_job:" << event.job.value();
      break;
    case FaultKind::JobComplete:
      os << "complete_job:" << event.job.value();
      break;
    case FaultKind::StragglerStart:
      os << "straggle_gpu:" << event.gpu.value() << " x" << event.factor;
      break;
    case FaultKind::StragglerEnd:
      os << "straggle_end_gpu:" << event.gpu.value();
      break;
  }
  os << "@" << event.time;
  return os.str();
}

}  // namespace hare::fault
