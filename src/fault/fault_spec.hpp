// WiredTiger-style fault-spec config strings.
//
// A scenario is one comma-separated `key=value` string (SNIPPETS.md
// snippet 3's cppsuite idiom) instead of a C++ struct literal, so new
// fault scenarios are a config line, not a recompile:
//
//   "seed=7,machine_failures=1,mttr=40,cancellations=1,max_retries=2"
//
// Stochastic knobs (counts + mttf/mttr) expand into a concrete
// `FaultPlan` via `generate_fault_plan`, deterministically from `seed`.
// Fully scripted scenarios pin every event with the explicit list:
//
//   "events=(fail_machine:0@30;recover_machine:0@80;cancel_job:3@12)"
//
// Entry grammar inside `events=(...)` (';'-separated):
//   fail_machine:<id>@<t>      recover_machine:<id>@<t>
//   fail_gpu:<id>@<t>          recover_gpu:<id>@<t>
//   cancel_job:<id>@<t>        complete_job:<id>@<t>
//   straggle_gpu:<id>@<t0>-<t1>:<factor>
//
// Unknown keys, malformed or out-of-range values, duplicate keys,
// dangling separators, and the empty string all throw common::Error with
// the offending fragment — a typo'd scenario must fail loudly, not
// silently run fault-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "workload/job.hpp"

namespace hare::fault {

struct FaultSpec {
  std::uint64_t seed = 1;

  // Stochastic generation knobs.
  std::size_t machine_failures = 0;
  std::size_t gpu_failures = 0;
  /// Mean time to failure (s). With explicit counts it shapes nothing;
  /// with counts at 0 and mttf > 0, GPU failures arrive as a Poisson
  /// process of rate gpu_count / mttf over the horizon.
  Time mttf = 0.0;
  /// Mean time to repair (s); 0 = failures are permanent (no recovery).
  Time mttr = 0.0;
  std::size_t cancellations = 0;
  std::size_t stragglers = 0;
  double straggler_factor = 2.0;
  Time straggler_duration = 0.0;  ///< 0 = drawn ~ Exp(mean 0.2 * horizon)

  // Retry / replan policy.
  RetryPolicy retry{};
  std::size_t replan_budget = 8;  ///< full replans before greedy fallback

  /// Overrides the caller-provided horizon when > 0 (the runner passes
  /// the fault-free makespan).
  Time horizon = 0.0;

  /// Scripted events, appended verbatim to whatever the knobs generate.
  std::vector<FaultEvent> scripted;
};

/// Parse a config string. Throws common::Error on unknown keys or
/// malformed values.
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view text);

/// Expand a spec into a concrete, time-sorted plan. Deterministic in
/// (spec, cluster shape, job count, horizon). `horizon` should be the
/// expected fault-free run length; spec.horizon overrides it when set.
[[nodiscard]] FaultPlan generate_fault_plan(const FaultSpec& spec,
                                            const cluster::Cluster& cluster,
                                            const workload::JobSet& jobs,
                                            Time horizon);

/// Human-readable one-liner for an event ("fail_machine:2@30.0"), used in
/// logs, traces, and the CLI scenario dump.
[[nodiscard]] std::string describe(const FaultEvent& event);

}  // namespace hare::fault
